//! # pascal — phase-aware scheduling for reasoning-LLM serving
//!
//! A from-scratch Rust reproduction of *"PASCAL: A Phase-Aware Scheduling
//! Algorithm for Serving Reasoning-based Large Language Models"*
//! (HPCA 2026). Reasoning LLMs hide a long chain-of-thought phase before
//! the first user-visible token, so Time-To-First-Token spans most of the
//! decode stage; PASCAL schedules the two phases differently — reasoning is
//! interruption-sensitive and gets strict priority, answering is
//! threshold-sensitive and tolerates controlled preemption behind a token
//! pacer — and migrates requests between instances at phase boundaries.
//!
//! This facade re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `pascal-sim` | virtual clock, event queue, deterministic RNG |
//! | [`model`] | `pascal-model` | H100-class roofline perf/memory/transfer model |
//! | [`workload`] | `pascal-workload` | two-phase requests, dataset profiles, traces |
//! | [`metrics`] | `pascal-metrics` | TTFT/TTFAT, QoE, tails, histograms |
//! | [`cluster`] | `pascal-cluster` | KV pools, PCIe/fabric channels, pacer, instances |
//! | [`federation`] | `pascal-federation` | regions, WAN tiers, cross-region routing policies |
//! | [`predict`] | `pascal-predict` | online length prediction (oracle, EMA, pairwise rank) |
//! | [`sched`] | `pascal-sched` | FCFS, RR, PASCAL (Algorithms 1–2 + ablations + predictive hooks) |
//! | [`telemetry`] | `pascal-telemetry` | lifecycle tracing, time-series gauges, hot-path profiler |
//! | [`core`] | `pascal-core` | the serving engine and per-figure experiments |
//!
//! # Quickstart
//!
//! ```
//! use pascal::core::{run_simulation, SimConfig};
//! use pascal::sched::{PascalConfig, SchedPolicy};
//! use pascal::workload::{ArrivalProcess, DatasetMix, DatasetProfile, TraceBuilder};
//!
//! // 50 Arena-Hard-like requests on a 2-instance cluster under PASCAL.
//! let trace = TraceBuilder::new(DatasetMix::single(DatasetProfile::arena_hard()))
//!     .arrivals(ArrivalProcess::poisson(2.0))
//!     .count(50)
//!     .seed(7)
//!     .build();
//! let mut config = SimConfig::evaluation_cluster(SchedPolicy::pascal(PascalConfig::default()));
//! config.num_instances = 2;
//! let out = run_simulation(&trace, &config);
//!
//! let mean_ttft: f64 = out
//!     .records
//!     .iter()
//!     .filter_map(|r| r.ttft().map(|d| d.as_secs_f64()))
//!     .sum::<f64>()
//!     / out.records.len() as f64;
//! assert!(mean_ttft > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pascal_cluster as cluster;
pub use pascal_core as core;
pub use pascal_federation as federation;
pub use pascal_metrics as metrics;
pub use pascal_model as model;
pub use pascal_predict as predict;
pub use pascal_sched as sched;
pub use pascal_sim as sim;
pub use pascal_telemetry as telemetry;
pub use pascal_workload as workload;
