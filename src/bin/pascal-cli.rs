//! `pascal-cli` — run serving simulations from the command line.
//!
//! ```text
//! pascal-cli run  --dataset arena --policy pascal --rate high --count 1000
//! pascal-cli run  --dataset alpaca --policy fcfs --rate 12.5 --csv out.csv
//! pascal-cli sweep --grid ci --threads 4 --out sweep-out
//! pascal-cli sweep --grid ci --baseline BENCH_BASELINE.json
//! pascal-cli capacity --dataset mixed
//! ```

use std::process::ExitCode;

use pascal::core::report::{records_csv, render_table};
use pascal::core::sweep::gate::{compare, GateTolerances};
use pascal::core::sweep::SweepThroughput;
use pascal::core::{
    anatomy_to_csv, anatomy_to_json, anatomy_waterfall, estimate_capacity_rps, events_to_chrome,
    events_to_jsonl, parse_trace_jsonl, run_simulation, series_to_csv, series_to_json,
    AdmissionMode, FleetPreset, FleetSpec, RateLevel, SimConfig, SweepGrid, SweepReport,
    SweepRunner, TelemetryConfig, TraceFormat,
};
use pascal::federation::{FederationPolicy, WanLink};
use pascal::metrics::{
    goodput_requests_per_s, slo_violation_rate, throughput_tokens_per_s, LatencySummary, QoeParams,
    SLO_QOE_THRESHOLD,
};
use pascal::predict::PredictorKind;
use pascal::sched::{PolicyKind, RouterPolicy, SchedPolicy};
use pascal::sim::SimDuration;
use pascal::telemetry::{reconstruct, SloAlertPreset, SloAlertSpec};
use pascal::workload::{ArrivalProcess, DatasetMix, MixPreset, TraceBuilder};

const USAGE: &str = "\
pascal-cli — PASCAL reasoning-LLM serving simulator

USAGE:
  pascal-cli run [OPTIONS]       simulate a trace and print metrics
  pascal-cli sweep [OPTIONS]     run a scenario grid on a worker pool
  pascal-cli analyze [OPTIONS]   latency anatomy of a captured trace
  pascal-cli capacity [OPTIONS]  print the analytic cluster capacity

OPTIONS (run):
  --dataset <alpaca|arena|math500|gpqa|lcb|mixed|reasoning-heavy>  [alpaca]
  --policy  <fcfs|rr|pascal|pascal-nomigration|pascal-nonadaptive> [pascal]
  --predictor <none|oracle|ema|rank|quantile>       length predictor [none]
          valid values: none (reactive, the default), oracle (reads the
          trace's hidden lengths), ema (learns per-dataset running means),
          rank (orders by predicted remaining work), quantile (P² streaming
          per-phase quantiles, robust to heavy tails). With pascal, enables
          speculative demotion + predicted-footprint placement and prints
          a calibration report.
  --admission <none|predictive>                     admission ctrl [none]
          predictive rejects arrivals whose predicted aggregate KV
          footprint exceeds the pool budget, instead of waiting for
          pacer starvation.
  --migration-benefit <RATIO>                       cost/benefit migration
          enables the predictive migration controller: veto Algorithm 2
          migrations whose predicted remaining service is below RATIO
          transfer-times (needs --predictor).
  --rate    <low|medium|high|REQ_PER_S>             arrival rate   [high]
  --count   <N>                                     requests       [1000]
  --seed    <N>                                     RNG seed       [42]
  --instances <N>                                   cluster size   [8]
  --shards  <N>                                     scheduling domains [1]
          partitions the instances into N shards behind a cluster
          router; 1 reproduces the single-pool engine byte-for-byte.
          Must divide --instances.
  --router  <rr|least|predictive>                   cross-shard router [rr]
          rr rotates arrivals, least picks the smallest current KV
          footprint, predictive ranks shards by current+predicted
          footprint (Algorithm 1 lifted to shard granularity).
  --regions <N>                                     geographic regions [1]
          federates the cluster: instances split into N regions (each a
          cluster of --shards shards) behind a federation router; 1
          reproduces the cluster engine byte-for-byte. Must divide
          --instances together with --shards. Arrivals carry geo-skewed
          origin tags.
  --fed-router <static|nearest|predictive>          federation router [static]
          static pins arrivals to their origin region, nearest fails over
          to the closest healthy region, predictive ranks regions by
          current+predicted footprint (Algorithm 1 lifted once more).
  --wan     <metro|regional|continental|transoceanic>  WAN class [continental]
          the cross-region link tier; always pricier than the inter-shard
          interconnect, so the migration cost/benefit veto forbids
          frivolous cross-region moves.
  --fleet-events <PATH|outage|flash-crowd|diurnal>  fleet elasticity [off]
          inject timed instance joins, planned drains, failures and
          whole-shard/whole-region outages, plus standby capacity and
          the reactive autoscaler. A PATH is parsed as a line-oriented
          schedule (`<secs> <kind> [id]`; kinds: join, drain, fail,
          shard-down, shard-up, region-down, region-up); anything else
          must name one of the presets, scaled to the run's horizon.
          Draining instances migrate residents away under the usual
          cost/benefit veto; failed instances strand whatever cannot
          escape. Off by default, and an empty schedule is
          byte-identical to a run without the flag.
  --csv     <PATH>                                  dump per-request CSV
  --trace-out <PATH>                                dump a request-lifecycle
          trace (admission decisions, phase transitions, demotions, the
          full migration decision tree at all three tiers, completions)
          to PATH, each event tagged with sim time and
          region/shard/instance ids.
  --trace-format <jsonl|chrome>                     trace encoding [jsonl]
          jsonl is one JSON object per line (grep/jq friendly); chrome
          is a single trace-event JSON array loadable in Perfetto or
          chrome://tracing.
  --series-out <PATH>                               sample per-shard and
          per-region gauges (queue depth, KV utilization, active
          requests by phase, admission headroom, predictor error, WAN
          backlog) into PATH — a .json path gets a JSON array, anything
          else columnar CSV. Needs --series-interval.
  --series-interval <SECS>                          gauge sampling period
          in sim seconds (positive). Needs --series-out.
  --alerts <PATH|paging|ticket>                     SLO burn-rate alerts [off]
          evaluate sliding-window error-budget burn rates per shard in
          sim-time and emit slo_alert_fired/resolved trace events plus a
          deterministic stderr summary. A PATH is parsed as a
          line-oriented rule file (`budget <frac>`, `min-samples <n>`,
          `rule <window_s> <burn_threshold>`; # comments); anything else
          must name a preset (paging: fast-burn page, ticket: slow-burn
          ticket), scaled to the run's horizon. Pure observation: the
          simulation's records and gauges are byte-identical with or
          without the flag.
  --profile                                         print a wall-clock
          hot-path profile of the event loop to stderr (per-event-type
          counts, timing quantiles, events/sec). Host-dependent by
          design; never part of any deterministic output.
  --run-threads <N>                                 intra-run worker
          threads for the event loop; 0 = auto (available parallelism,
          capped at 8 and at the shard count), max 64. Outputs are
          byte-identical at any value; >1 engages the windowed parallel
          executor over shards (needs --shards or --regions > 1 to
          help). Tracing (--trace-out) forces the sequential path.  [1]

All telemetry is off by default, and a run with it off is byte-identical
to one that never had the flags.

OPTIONS (sweep):
  --grid    <main|predictive|migration|ci|sharded|federated|chaos|stress|stress-smoke>
          preset(s) [ci]; a comma-separated list (e.g. ci,sharded,federated)
          runs the grids as one merged report — how the CI perf gate
          sweeps them. chaos crosses static vs predictive federation
          routing with the three fleet-elasticity presets (outage,
          flash-crowd, diurnal). stress is the 10M-request 64-shard
          capacity cell (minutes of wall clock — run deliberately);
          stress-smoke is the same topology at CI size.
  --threads <N>                                     worker pool width; 0 =
          available parallelism (capped at 8). Results are identical at
          any width.                                               [0]
  --count   <N>                                     override requests/cell
  --seed    <N>                                     override base seed
  --out     <DIR>                                   write sweep.json +
          sweep.csv into DIR (created if missing)
  --baseline <PATH>                                 compare against a
          committed sweep JSON; regressions beyond tolerance exit 1 with
          a per-cell diff table (the CI perf gate)
  --ttft-tol <REL>      p99-TTFT relative tolerance               [0.10]
  --ttft-abs-tol <SEC>  p99-TTFT absolute slack                   [0.5]
  --slo-tol <ABS>       SLO-violation-rate absolute tolerance     [0.02]
  --tput-tol <REL>      events/sec loss tolerance (gated only when the
          baseline commits a throughput figure)                   [0.20]
  --profile             profile each cell's event loop, print per-cell and
          aggregate events/sec to stderr, and stamp the aggregate into
          the report's schema-4 throughput block (the only host-dependent
          field sweep.json can carry; cells stay byte-identical)
  --run-threads <N>     intra-run worker threads per cell's event loop;
          0 = auto, max 64. Cells stay byte-identical at any value —
          this trades cell-level for intra-run parallelism (useful when
          a grid has fewer cells than cores, e.g. stress)          [1]
  --blame               attach a latency-anatomy blame profile to every
          cell: each cell runs traced, the trace is reconstructed into an
          exact additive decomposition of E2E latency (queue, service,
          offload, parked, migration tiers) and the aggregate lands in
          the report's schema-5 blame keys/columns. Deterministic; every
          other cell field is byte-identical with or without it.

OPTIONS (analyze):
  --trace  <PATH>       a JSONL request-lifecycle trace captured with
          `run --trace-out` (required). Each request's span timeline is
          reconstructed and its TTFT/E2E latency decomposed into an
          exact additive blame profile (segments sum to the measured
          latency by construction).
  --format <json|csv|waterfall>                     stdout rendering [json]
          json is the canonical machine-readable document (aggregate
          profile + per-request blame), csv is one row per request,
          waterfall is a human-readable top-K worst-request breakdown.
  --top    <N>          worst requests in the waterfall rendering     [5]
  --out    <DIR>        also write anatomy.json, anatomy.csv and
          waterfall.txt into DIR (created if missing)

Unknown values for any option exit with status 2.
";

/// A CLI failure: bad invocation (exit 2, prints usage) or a runtime
/// error after a valid invocation (exit 1).
enum CliError {
    Usage(String),
    Runtime(String),
}

// `?` on the parsing/validation helpers classifies as a usage error;
// runtime failures are wrapped explicitly.
impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

fn dataset(name: &str) -> Result<DatasetMix, String> {
    MixPreset::parse(name).map(MixPreset::mix)
}

fn policy(name: &str) -> Result<SchedPolicy, String> {
    PolicyKind::parse(name).map(PolicyKind::build)
}

/// Parsed `run` options.
#[derive(Debug)]
struct RunOpts {
    dataset: String,
    policy: String,
    predictor: String,
    admission: String,
    migration_benefit: Option<f64>,
    rate: String,
    count: usize,
    seed: u64,
    instances: usize,
    shards: usize,
    router: String,
    regions: usize,
    fed_router: String,
    wan: String,
    fleet_events: Option<String>,
    alerts: Option<String>,
    csv: Option<String>,
    trace_out: Option<String>,
    trace_format: TraceFormat,
    series_out: Option<String>,
    series_interval: Option<f64>,
    profile: bool,
    run_threads: usize,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            dataset: "alpaca".to_owned(),
            policy: "pascal".to_owned(),
            predictor: "none".to_owned(),
            admission: "none".to_owned(),
            migration_benefit: None,
            rate: "high".to_owned(),
            count: 1000,
            seed: 42,
            instances: 8,
            shards: 1,
            router: "rr".to_owned(),
            regions: 1,
            fed_router: "static".to_owned(),
            wan: "continental".to_owned(),
            fleet_events: None,
            alerts: None,
            csv: None,
            trace_out: None,
            trace_format: TraceFormat::Jsonl,
            series_out: None,
            series_interval: None,
            profile: false,
            run_threads: 1,
        }
    }
}

/// Parses and range-checks a `--run-threads` value: `0` (auto) or an
/// explicit worker count up to [`MAX_RUN_THREADS`].
const MAX_RUN_THREADS: usize = 64;

fn run_threads(raw: &str) -> Result<usize, String> {
    let n: usize = raw
        .parse()
        .map_err(|e| format!("--run-threads: {e} (valid: 0 for auto, or 1-{MAX_RUN_THREADS})"))?;
    if n > MAX_RUN_THREADS {
        return Err(format!(
            "--run-threads must be 0 (auto) or 1-{MAX_RUN_THREADS}, got {n}"
        ));
    }
    Ok(n)
}

fn predictor(name: &str) -> Result<Option<PredictorKind>, String> {
    match name {
        "none" => Ok(None),
        other => PredictorKind::parse(other).map(Some).map_err(|_| {
            format!("unknown predictor '{other}' (valid: none, oracle, ema, rank, quantile)")
        }),
    }
}

fn admission(name: &str) -> Result<AdmissionMode, String> {
    match name {
        "none" => Ok(AdmissionMode::Disabled),
        "predictive" => Ok(AdmissionMode::predictive()),
        other => Err(format!(
            "unknown admission mode '{other}' (valid: none, predictive)"
        )),
    }
}

fn parse_opts(args: &[String]) -> Result<RunOpts, String> {
    let mut opts = RunOpts::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--dataset" => opts.dataset = value()?,
            "--policy" => opts.policy = value()?,
            "--predictor" => opts.predictor = value()?,
            "--admission" => opts.admission = value()?,
            "--migration-benefit" => {
                let ratio: f64 = value()?
                    .parse()
                    .map_err(|e| format!("--migration-benefit: {e}"))?;
                if !(ratio.is_finite() && ratio >= 0.0) {
                    return Err(format!(
                        "--migration-benefit must be a non-negative number, got {ratio}"
                    ));
                }
                opts.migration_benefit = Some(ratio);
            }
            "--rate" => opts.rate = value()?,
            "--count" => {
                opts.count = value()?.parse().map_err(|e| format!("--count: {e}"))?;
            }
            "--seed" => opts.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--instances" => {
                opts.instances = value()?.parse().map_err(|e| format!("--instances: {e}"))?;
            }
            "--shards" => {
                let shards: usize = value()?.parse().map_err(|e| format!("--shards: {e}"))?;
                if shards == 0 {
                    return Err("--shards must be positive".to_owned());
                }
                opts.shards = shards;
            }
            "--router" => opts.router = value()?,
            "--regions" => {
                let regions: usize = value()?.parse().map_err(|e| format!("--regions: {e}"))?;
                if regions == 0 {
                    return Err("--regions must be positive".to_owned());
                }
                opts.regions = regions;
            }
            "--fed-router" => opts.fed_router = value()?,
            "--wan" => opts.wan = value()?,
            "--fleet-events" => opts.fleet_events = Some(value()?),
            "--alerts" => opts.alerts = Some(value()?),
            "--csv" => opts.csv = Some(value()?),
            "--trace-out" => opts.trace_out = Some(value()?),
            "--trace-format" => {
                let raw = value()?;
                opts.trace_format = TraceFormat::parse(&raw).ok_or_else(|| {
                    let keys: Vec<&str> = TraceFormat::ALL.iter().map(|f| f.key()).collect();
                    format!("unknown trace format '{raw}' (valid: {})", keys.join(", "))
                })?;
            }
            "--series-out" => opts.series_out = Some(value()?),
            "--series-interval" => {
                let secs: f64 = value()?
                    .parse()
                    .map_err(|e| format!("--series-interval: {e}"))?;
                if !(secs.is_finite() && secs > 0.0) {
                    return Err(format!(
                        "--series-interval must be a positive number of sim seconds, got {secs}"
                    ));
                }
                opts.series_interval = Some(secs);
            }
            "--profile" => opts.profile = true,
            "--run-threads" => opts.run_threads = run_threads(&value()?)?,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

fn resolve_rate(rate: &str, config: &SimConfig, mix: &DatasetMix) -> Result<f64, String> {
    // Symbolic levels go through `RateLevel::parse` so the error lists the
    // valid values; anything else must be a positive numeric req/s.
    match RateLevel::parse(rate) {
        Ok(level) => Ok(level.rate_rps(config, mix)),
        Err(level_err) => match rate.parse::<f64>() {
            Ok(r) if r > 0.0 => Ok(r),
            Ok(_) => Err("--rate must be positive".to_owned()),
            Err(_) => Err(format!("--rate must be a number, or {level_err}")),
        },
    }
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let mix = dataset(&opts.dataset)?;
    let policy = policy(&opts.policy)?;
    let mut config = SimConfig::evaluation_cluster(policy);
    config.num_instances = opts.instances;
    config.shards = opts.shards;
    config.router = RouterPolicy::parse(&opts.router)?;
    config.regions = opts.regions;
    config.fed_router = FederationPolicy::parse(&opts.fed_router)?;
    config.wan = WanLink::parse(&opts.wan)?;
    config.run_threads = opts.run_threads;
    if opts.instances % opts.shards != 0 {
        return Err(CliError::Usage(format!(
            "--shards {} does not divide --instances {} evenly",
            opts.shards, opts.instances
        )));
    }
    if opts.instances % (opts.regions * opts.shards) != 0 {
        return Err(CliError::Usage(format!(
            "--regions {} x --shards {} does not divide --instances {} evenly",
            opts.regions, opts.shards, opts.instances
        )));
    }
    config.predictor = predictor(&opts.predictor)?;
    config.admission = admission(&opts.admission)?;
    if let Some(ratio) = opts.migration_benefit {
        match config.predictor {
            None => {
                return Err(CliError::Usage(
                    "--migration-benefit needs a length predictor (--predictor)".to_owned(),
                ));
            }
            // The rank predictor never produces absolute estimates, so the
            // cost test could never fire — reject rather than mislabel the
            // run as cost-aware.
            Some(PredictorKind::PairwiseRank) => {
                return Err(CliError::Usage(
                    "--migration-benefit needs absolute length estimates; \
                     the rank predictor only orders requests (use oracle or ema)"
                        .to_owned(),
                ));
            }
            Some(_) => config = config.with_predictive_migration(ratio),
        }
    }
    // Telemetry: tracing follows --trace-out, sampling follows the
    // --series-out/--series-interval pair (each is useless alone, so a
    // lone half is a usage error rather than silently discarded work).
    match (&opts.series_out, opts.series_interval) {
        (Some(_), None) => {
            return Err(CliError::Usage(
                "--series-out needs --series-interval".to_owned(),
            ));
        }
        (None, Some(_)) => {
            return Err(CliError::Usage(
                "--series-interval needs --series-out".to_owned(),
            ));
        }
        _ => {}
    }
    config.telemetry = TelemetryConfig {
        trace: opts.trace_out.is_some(),
        series_interval: opts.series_interval.map(SimDuration::from_secs_f64),
        profile: opts.profile,
    };
    let rate = resolve_rate(&opts.rate, &config, &mix)?;

    // Fleet elasticity: a path is an explicit event schedule, anything
    // else must name a preset (resolved against the run's horizon and
    // topology). Either way every referenced id is validated up front so
    // a typo exits 2 here instead of panicking mid-simulation.
    if let Some(src) = &opts.fleet_events {
        let spec = if std::path::Path::new(src).is_file() {
            let text = std::fs::read_to_string(src)
                .map_err(|e| CliError::Runtime(format!("reading {src}: {e}")))?;
            FleetSpec::parse(&text)
                .map_err(|e| CliError::Usage(format!("--fleet-events {src}: {e}")))?
        } else {
            let preset = FleetPreset::parse(src).map_err(|e| {
                CliError::Usage(format!(
                    "--fleet-events '{src}': not a readable file, and {e}"
                ))
            })?;
            preset.spec(
                opts.count as f64 / rate,
                opts.regions,
                opts.shards,
                opts.instances,
            )
        };
        spec.validate(opts.regions, opts.shards, opts.instances)
            .map_err(|e| CliError::Usage(format!("--fleet-events: {e}")))?;
        if !spec.is_empty() {
            eprintln!(
                "fleet schedule: {} events, {} standby, autoscaler {}",
                spec.events.len(),
                spec.standby.len(),
                if spec.autoscale.is_some() {
                    "on"
                } else {
                    "off"
                }
            );
        }
        config.fleet = Some(spec);
    }

    // SLO burn-rate alerting: a path is an explicit rule file, anything
    // else must name a preset (scaled to the run's horizon, like the
    // fleet presets). Observation only — the run's deterministic outputs
    // never change — so it rides on whatever else the run does.
    if let Some(src) = &opts.alerts {
        let spec = if std::path::Path::new(src).is_file() {
            let text = std::fs::read_to_string(src)
                .map_err(|e| CliError::Runtime(format!("reading {src}: {e}")))?;
            SloAlertSpec::parse(&text)
                .map_err(|e| CliError::Usage(format!("--alerts {src}: {e}")))?
        } else {
            let preset = SloAlertPreset::parse(src).map_err(|e| {
                CliError::Usage(format!("--alerts '{src}': not a readable file, and {e}"))
            })?;
            preset.spec(opts.count as f64 / rate)
        };
        eprintln!(
            "slo alerting: {} rule(s), error budget {:.3}, min {} samples",
            spec.rules.len(),
            spec.budget,
            spec.min_samples
        );
        config.alerts = Some(spec);
    }

    // Predictions only steer PASCAL; under the baselines the predictor is
    // observational (calibration only) and the label stays the plain name.
    let policy_label = match (config.predictor, policy) {
        (Some(kind), SchedPolicy::Pascal(_)) => {
            format!("{}(Predictive-{kind})", policy.name())
        }
        _ => policy.name().to_owned(),
    };
    if opts.regions > 1 {
        eprintln!(
            "simulating {} {} requests at {rate:.2} req/s on {} instances \
             ({} regions x {} shards, {} federation over {} WAN, {} router) \
             under {policy_label} …",
            opts.count,
            opts.dataset,
            opts.instances,
            opts.regions,
            opts.shards,
            opts.fed_router,
            opts.wan,
            opts.router,
        );
    } else if opts.shards > 1 {
        eprintln!(
            "simulating {} {} requests at {rate:.2} req/s on {} instances \
             ({} shards, {} router) under {policy_label} …",
            opts.count, opts.dataset, opts.instances, opts.shards, opts.router,
        );
    } else {
        eprintln!(
            "simulating {} {} requests at {rate:.2} req/s on {} instances under {policy_label} …",
            opts.count, opts.dataset, opts.instances,
        );
    }
    let trace = TraceBuilder::new(mix)
        .arrivals(ArrivalProcess::poisson(rate))
        .count(opts.count)
        .seed(opts.seed)
        .regions(opts.regions)
        .build();
    let out = run_simulation(&trace, &config);

    let ttft = LatencySummary::from_values(
        out.records
            .iter()
            .filter_map(|r| r.ttft().map(|d| d.as_secs_f64())),
    );
    let qoe = QoeParams::paper_eval();
    let mut rows = vec![
        vec![
            "throughput".to_owned(),
            format!("{:.0} tokens/s", throughput_tokens_per_s(&out.records)),
        ],
        vec![
            "goodput".to_owned(),
            format!(
                "{:.2} req/s",
                goodput_requests_per_s(&out.records, &qoe, SLO_QOE_THRESHOLD)
            ),
        ],
        vec![
            "SLO violations".to_owned(),
            format!(
                "{:.2}%",
                100.0 * slo_violation_rate(&out.records, &qoe, SLO_QOE_THRESHOLD)
            ),
        ],
        vec![
            "migrations".to_owned(),
            out.migrations().count().to_string(),
        ],
        vec![
            "makespan".to_owned(),
            format!("{:.1}s", out.makespan.as_secs_f64()),
        ],
    ];
    if opts.migration_benefit.is_some() {
        rows.push(vec![
            "migrations vetoed by cost".to_owned(),
            out.migration_outcomes.vetoed_by_cost.to_string(),
        ]);
    }
    if config.admission != AdmissionMode::Disabled {
        rows.push(vec![
            "admission rejections".to_owned(),
            format!(
                "{} ({:.2}%)",
                out.admission.rejected,
                100.0 * out.admission.rejection_rate()
            ),
        ]);
    }
    if opts.shards > 1 {
        rows.push(vec![
            "cross-shard migrations".to_owned(),
            format!(
                "{} ({} considered, {} vetoed)",
                out.migration_outcomes.cross_shard_launched,
                out.migration_outcomes.cross_shard_considered,
                out.migration_outcomes.cross_shard_vetoed_by_cost
            ),
        ]);
    }
    if opts.regions > 1 {
        rows.push(vec![
            "cross-region migrations".to_owned(),
            format!(
                "{} ({} considered, {} vetoed)",
                out.migration_outcomes.cross_region_launched,
                out.migration_outcomes.cross_region_considered,
                out.migration_outcomes.cross_region_vetoed_by_cost
            ),
        ]);
        rows.push(vec![
            "admission spills".to_owned(),
            out.admission.spilled.to_string(),
        ]);
    }
    if config.fleet.as_ref().is_some_and(|f| !f.is_empty()) {
        rows.push(vec![
            "fleet transitions".to_owned(),
            format!(
                "{} ({} joins, {} fails, {}/{} drains done)",
                out.fleet.transitions,
                out.fleet.joins,
                out.fleet.fails,
                out.fleet.drains_completed,
                out.fleet.drains_started
            ),
        ]);
        rows.push(vec![
            "requests stranded".to_owned(),
            out.fleet.stranded.to_string(),
        ]);
        rows.push(vec![
            "rebalance moves".to_owned(),
            out.fleet.rebalanced.to_string(),
        ]);
        if out.fleet.drains_completed > 0 {
            rows.push(vec![
                "mean drain completion".to_owned(),
                format!("{:.1}s", out.fleet.mean_drain_completion_s()),
            ]);
        }
        rows.push(vec![
            "autoscale actions".to_owned(),
            format!(
                "{} up / {} down",
                out.fleet.autoscale_up, out.fleet.autoscale_down
            ),
        ]);
    }
    if let Some(cal) = out.calibration() {
        rows.push(vec!["prediction calibration".to_owned(), cal.to_string()]);
    }
    if let Some(t) = ttft {
        rows.insert(
            0,
            vec![
                "TTFT mean/p50/p99/max".to_owned(),
                format!(
                    "{:.1} / {:.1} / {:.1} / {:.1} s",
                    t.mean, t.p50, t.p99, t.max
                ),
            ],
        );
    }
    println!("{}", render_table(&["metric", "value"], &rows));

    if opts.shards > 1 {
        let shard_rows: Vec<Vec<String>> = out
            .shard_stats
            .iter()
            .map(|s| {
                vec![
                    s.shard.to_string(),
                    s.instances.to_string(),
                    s.routed_arrivals.to_string(),
                    s.completed.to_string(),
                    s.migrations.launched.to_string(),
                    s.migrations.cross_shard_launched.to_string(),
                    s.cross_shard_in.to_string(),
                    s.admission.rejected.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "shard",
                    "inst",
                    "routed",
                    "completed",
                    "migr",
                    "out",
                    "in",
                    "rejected",
                ],
                &shard_rows
            )
        );
    }

    if opts.regions > 1 {
        let region_rows: Vec<Vec<String>> = out
            .region_stats
            .iter()
            .map(|r| {
                vec![
                    r.region.to_string(),
                    r.shards.to_string(),
                    r.instances.to_string(),
                    r.origin_arrivals.to_string(),
                    r.routed_arrivals.to_string(),
                    r.nonlocal_arrivals.to_string(),
                    format!("{}/{}", r.spill_in, r.spill_out),
                    format!("{}/{}", r.cross_region_in, r.cross_region_out),
                    r.completed.to_string(),
                    r.admission.rejected.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "region",
                    "shards",
                    "inst",
                    "origin",
                    "routed",
                    "nonlocal",
                    "spill i/o",
                    "wan i/o",
                    "completed",
                    "rejected",
                ],
                &region_rows
            )
        );
    }

    if let Some(path) = opts.csv {
        std::fs::write(&path, records_csv(&out.records))
            .map_err(|e| CliError::Runtime(format!("writing {path}: {e}")))?;
        eprintln!("wrote per-request CSV to {path}");
    }

    // Telemetry artifacts. The buffers exist exactly when the matching
    // flag enabled the stream, so the expects document invariants.
    if let Some(path) = &opts.trace_out {
        let telemetry = out.telemetry.as_ref().expect("tracing was enabled");
        let text = match opts.trace_format {
            TraceFormat::Jsonl => events_to_jsonl(&telemetry.events),
            TraceFormat::Chrome => events_to_chrome(&telemetry.events),
        };
        std::fs::write(path, text)
            .map_err(|e| CliError::Runtime(format!("writing {path}: {e}")))?;
        eprintln!(
            "wrote {} trace events ({}) to {path}",
            telemetry.events.len(),
            opts.trace_format.key()
        );
    }
    if let Some(path) = &opts.series_out {
        let telemetry = out.telemetry.as_ref().expect("series sampling was enabled");
        let text = if path.ends_with(".json") {
            series_to_json(&telemetry.series)
        } else {
            series_to_csv(&telemetry.series)
        };
        std::fs::write(path, text)
            .map_err(|e| CliError::Runtime(format!("writing {path}: {e}")))?;
        eprintln!("wrote {} gauge samples to {path}", telemetry.series.len());
    }
    if opts.profile {
        let profile = out
            .telemetry
            .as_ref()
            .and_then(|t| t.profile.as_ref())
            .expect("profiling was enabled");
        eprint!("{}", profile.render());
    }
    // Deterministic alert summary (sim-time quantities only, ordered by
    // (time, shard, rule)) — byte-identical across hosts and thread counts.
    if opts.alerts.is_some() {
        if out.alerts.is_empty() {
            eprintln!("slo alerts: none fired");
        } else {
            eprintln!("slo alerts: {} fired", out.alerts.len());
            for a in &out.alerts {
                eprintln!(
                    "  t={:.3}s region {} shard {} rule {} burn {:.2}x budget",
                    a.at.as_secs_f64(),
                    a.region,
                    a.shard,
                    a.rule,
                    a.burn_milli as f64 / 1000.0
                );
            }
        }
    }
    Ok(())
}

/// Parsed `sweep` options.
struct SweepOpts {
    grid: String,
    threads: usize,
    count: Option<usize>,
    seed: Option<u64>,
    out: Option<String>,
    baseline: Option<String>,
    ttft_tol: f64,
    ttft_abs_tol: f64,
    slo_tol: f64,
    tput_tol: f64,
    profile: bool,
    run_threads: usize,
    blame: bool,
}

impl Default for SweepOpts {
    fn default() -> Self {
        let tol = GateTolerances::default();
        SweepOpts {
            grid: "ci".to_owned(),
            threads: 0,
            count: None,
            seed: None,
            out: None,
            baseline: None,
            ttft_tol: tol.ttft_p99_rel,
            ttft_abs_tol: tol.ttft_p99_abs_s,
            slo_tol: tol.slo_rate_abs,
            tput_tol: tol.throughput_rel,
            profile: false,
            run_threads: 1,
            blame: false,
        }
    }
}

fn parse_sweep_opts(args: &[String]) -> Result<SweepOpts, String> {
    let mut opts = SweepOpts::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let tolerance = |raw: String, flag: &str| -> Result<f64, String> {
            let v: f64 = raw.parse().map_err(|e| format!("{flag}: {e}"))?;
            if v.is_finite() && v >= 0.0 {
                Ok(v)
            } else {
                Err(format!("{flag} must be a non-negative number, got {v}"))
            }
        };
        match flag.as_str() {
            "--grid" => opts.grid = value()?,
            "--threads" => {
                opts.threads = value()?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--count" => {
                let count: usize = value()?.parse().map_err(|e| format!("--count: {e}"))?;
                if count == 0 {
                    return Err("--count must be positive".to_owned());
                }
                opts.count = Some(count);
            }
            "--seed" => {
                opts.seed = Some(value()?.parse().map_err(|e| format!("--seed: {e}"))?);
            }
            "--out" => opts.out = Some(value()?),
            "--baseline" => opts.baseline = Some(value()?),
            "--ttft-tol" => opts.ttft_tol = tolerance(value()?, "--ttft-tol")?,
            "--ttft-abs-tol" => opts.ttft_abs_tol = tolerance(value()?, "--ttft-abs-tol")?,
            "--slo-tol" => opts.slo_tol = tolerance(value()?, "--slo-tol")?,
            "--tput-tol" => opts.tput_tol = tolerance(value()?, "--tput-tol")?,
            "--profile" => opts.profile = true,
            "--run-threads" => opts.run_threads = run_threads(&value()?)?,
            "--blame" => opts.blame = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

/// Formats an optional seconds value for the sweep tables.
fn opt_secs(x: Option<f64>) -> String {
    x.map_or_else(|| "-".to_owned(), |v| format!("{v:.2}"))
}

/// The `sweep --profile` aggregate stderr line: the headline events/sec
/// figure plus the windowed-executor counters (all zero on sequential
/// runs). Kept as a function so a test can assert the line stays parseable.
fn aggregate_profile_line(
    t: &SweepThroughput,
    windows: u64,
    window_events: u64,
    barrier_events: u64,
) -> String {
    format!(
        "aggregate: {} events in {:.3}s single-cell wall = {:.0} events/sec \
         ({windows} windows, {window_events} window events, {barrier_events} barrier events)",
        t.events, t.wall_s, t.events_per_sec
    )
}

fn cmd_sweep(args: &[String]) -> Result<(), CliError> {
    let opts = parse_sweep_opts(args)?;
    // `--grid a,b` merges several presets into one report (unique labels
    // enforced by the runner) — the CI gate sweeps `ci,sharded` this way.
    let names: Vec<&str> = opts
        .grid
        .split(',')
        .filter(|name| !name.is_empty())
        .collect();
    if names.is_empty() {
        return Err(CliError::Usage(
            "--grid needs at least one preset".to_owned(),
        ));
    }
    let mut grids = names
        .into_iter()
        .map(SweepGrid::preset)
        .collect::<Result<Vec<SweepGrid>, String>>()?;
    // Merged reports need globally unique cell labels (the gate matches by
    // label) — catch collisions (e.g. `--grid ci,ci` or `--grid main,ci`,
    // whose cells overlap) as a usage error rather than a runner panic.
    {
        let mut labels: Vec<String> = grids
            .iter()
            .flat_map(SweepGrid::expand)
            .map(|spec| spec.label())
            .collect();
        labels.sort();
        if let Some(dup) = labels.windows(2).find(|w| w[0] == w[1]) {
            return Err(CliError::Usage(format!(
                "--grid '{}' produces the cell '{}' more than once — \
                 merged presets must have disjoint cells",
                opts.grid, dup[0]
            )));
        }
    }
    for grid in &mut grids {
        if let Some(count) = opts.count {
            grid.count = count;
        }
        if let Some(seed) = opts.seed {
            grid.base_seed = seed;
        }
    }
    let runner = SweepRunner::new(opts.threads)
        .with_profile(opts.profile)
        .with_run_threads(opts.run_threads)
        .with_blame(opts.blame);
    let cells: usize = grids.iter().map(|g| g.expand().len()).sum();
    eprintln!(
        "sweeping grid '{}': {cells} cells × {} requests on {} threads …",
        opts.grid,
        grids
            .iter()
            .map(|g| g.count.to_string())
            .collect::<Vec<_>>()
            .join("/"),
        runner.threads()
    );
    let started = std::time::Instant::now();
    let (report, profiles) = runner.run_grids_profiled(&grids);
    let elapsed = started.elapsed().as_secs_f64();
    eprintln!(
        "swept {cells} cells in {elapsed:.2}s ({} threads)",
        runner.threads()
    );
    if opts.profile {
        // Per-cell engine speed, to stderr only; the aggregate also lands
        // in the report's schema-4 throughput block (the single
        // host-dependent field sweep.json can carry — every cell stays
        // byte-identical with or without --profile).
        eprintln!("per-cell hot-path profile (wall-clock, host-dependent):");
        for (cell, profile) in report.cells.iter().zip(&profiles) {
            if let Some(p) = profile {
                eprintln!(
                    "  {:<44} {:>9} events  {:>12.0} events/sec",
                    cell.label(),
                    p.events,
                    p.events_per_sec
                );
            }
        }
        if let Some(t) = &report.throughput {
            // Summed across cells so the line also reports how much of
            // the sweep the windowed parallel executor actually drained.
            let (windows, window_events, barrier_events) = profiles
                .iter()
                .flatten()
                .fold((0u64, 0u64, 0u64), |(w, we, be), p| {
                    (w + p.windows, we + p.window_events, be + p.barrier_events)
                });
            eprintln!(
                "{}",
                aggregate_profile_line(t, windows, window_events, barrier_events)
            );
        }
    }

    let rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|cell| {
            let m = &cell.metrics;
            vec![
                cell.label(),
                cell.policy_label.clone(),
                format!("{:.2}", cell.rate_rps),
                opt_secs(m.ttft_p50_s),
                opt_secs(m.ttft_p99_s),
                format!("{:.2}%", 100.0 * m.slo_violation_rate),
                m.migrations_launched.to_string(),
                m.migrations_vetoed.to_string(),
                m.migrations_cross_shard.to_string(),
                m.admission_rejected.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "cell", "policy", "req/s", "p50 TTFT", "p99 TTFT", "SLO viol", "migr", "vetoed",
                "cross", "rejected",
            ],
            &rows
        )
    );

    if let Some(dir) = &opts.out {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::Runtime(format!("creating {}: {e}", dir.display())))?;
        for (name, contents) in [
            ("sweep.json", report.to_json()),
            ("sweep.csv", report.to_csv()),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, contents)
                .map_err(|e| CliError::Runtime(format!("writing {}: {e}", path.display())))?;
            eprintln!("wrote {}", path.display());
        }
    }

    if let Some(path) = &opts.baseline {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Runtime(format!("reading baseline {path}: {e}")))?;
        let baseline = SweepReport::from_json(&text)
            .map_err(|e| CliError::Runtime(format!("parsing baseline {path}: {e}")))?;
        let tolerances = GateTolerances {
            ttft_p99_rel: opts.ttft_tol,
            ttft_p99_abs_s: opts.ttft_abs_tol,
            slo_rate_abs: opts.slo_tol,
            throughput_rel: opts.tput_tol,
        };
        let gate = compare(&baseline, &report, &tolerances);
        let fmt = |x: Option<f64>| x.map_or_else(|| "-".to_owned(), |v| format!("{v:.4}"));
        let diff_rows: Vec<Vec<String>> = gate
            .findings
            .iter()
            .map(|f| {
                vec![
                    f.label.clone(),
                    f.metric.to_owned(),
                    fmt(f.baseline),
                    fmt(f.current),
                    format!("{:.4}", f.allowed),
                    if f.regression { "REGRESSED" } else { "ok" }.to_owned(),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &["cell", "metric", "baseline", "current", "allowed", "verdict"],
                &diff_rows
            )
        );
        for issue in &gate.structural {
            eprintln!("structural: {issue}");
        }
        if gate.passed() {
            println!("perf gate PASSED against {path}");
        } else {
            let regressions = gate.regressions().count();
            return Err(CliError::Runtime(format!(
                "perf gate FAILED against {path}: {regressions} metric regression(s), \
                 {} structural issue(s)",
                gate.structural.len()
            )));
        }
    }
    Ok(())
}

/// Parsed `analyze` options.
#[derive(Debug)]
struct AnalyzeOpts {
    trace: Option<String>,
    out: Option<String>,
    format: String,
    top: usize,
}

const ANALYZE_FORMATS: [&str; 3] = ["json", "csv", "waterfall"];

fn parse_analyze_opts(args: &[String]) -> Result<AnalyzeOpts, String> {
    let mut opts = AnalyzeOpts {
        trace: None,
        out: None,
        format: "json".to_owned(),
        top: 5,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--trace" => opts.trace = Some(value()?),
            "--out" => opts.out = Some(value()?),
            "--format" => {
                let raw = value()?;
                if !ANALYZE_FORMATS.contains(&raw.as_str()) {
                    return Err(format!(
                        "unknown analyze format '{raw}' (valid: {})",
                        ANALYZE_FORMATS.join(", ")
                    ));
                }
                opts.format = raw;
            }
            "--top" => {
                opts.top = value()?.parse().map_err(|e| format!("--top: {e}"))?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

fn cmd_analyze(args: &[String]) -> Result<(), CliError> {
    let opts = parse_analyze_opts(args)?;
    let path = opts
        .trace
        .ok_or_else(|| CliError::Usage("analyze needs --trace <jsonl>".to_owned()))?;
    let text = std::fs::read_to_string(&path)
        .map_err(|e| CliError::Runtime(format!("reading {path}: {e}")))?;
    // A malformed trace is a bad input file, not a bad invocation: exit 1.
    let events =
        parse_trace_jsonl(&text).map_err(|e| CliError::Runtime(format!("parsing {path}: {e}")))?;
    let report = reconstruct(&events);
    eprintln!(
        "reconstructed {} events from {path}: {} requests ({} rejected, {} unterminated)",
        events.len(),
        report.requests.len(),
        report.rejected,
        report.unterminated
    );
    match opts.format.as_str() {
        "json" => print!("{}", anatomy_to_json(&report)),
        "csv" => print!("{}", anatomy_to_csv(&report)),
        "waterfall" => print!("{}", anatomy_waterfall(&report, opts.top)),
        other => unreachable!("format '{other}' was validated at parse time"),
    }
    if let Some(dir) = &opts.out {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::Runtime(format!("creating {}: {e}", dir.display())))?;
        for (name, contents) in [
            ("anatomy.json", anatomy_to_json(&report)),
            ("anatomy.csv", anatomy_to_csv(&report)),
            ("waterfall.txt", anatomy_waterfall(&report, opts.top)),
        ] {
            let file = dir.join(name);
            std::fs::write(&file, contents)
                .map_err(|e| CliError::Runtime(format!("writing {}: {e}", file.display())))?;
            eprintln!("wrote {}", file.display());
        }
    }
    Ok(())
}

fn cmd_capacity(args: &[String]) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let mix = dataset(&opts.dataset)?;
    let mut config = SimConfig::evaluation_cluster(SchedPolicy::Fcfs);
    config.num_instances = opts.instances;
    let capacity = estimate_capacity_rps(&config, &mix);
    println!(
        "estimated capacity for '{}' on {} instances: {capacity:.2} req/s",
        opts.dataset, opts.instances
    );
    for level in RateLevel::ALL {
        println!(
            "  {level:<7} ({:>3.0}%): {:.2} req/s",
            level.utilization() * 100.0,
            level.rate_rps(&config, &mix)
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("capacity") => cmd_capacity(&args[1..]),
        Some("--help" | "-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(CliError::Usage(format!("unknown command '{other}'"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        // Bad invocations (unknown flags/values) exit with the
        // conventional status 2 and reprint the usage.
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
        // Runtime failures after a valid invocation exit 1, no usage spam.
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let opts = parse_opts(&strs(&[
            "--dataset",
            "arena",
            "--policy",
            "rr",
            "--rate",
            "12.5",
            "--count",
            "50",
            "--seed",
            "7",
            "--instances",
            "4",
            "--csv",
            "/tmp/x.csv",
        ]))
        .expect("valid flags");
        assert_eq!(opts.dataset, "arena");
        assert_eq!(opts.policy, "rr");
        assert_eq!(opts.count, 50);
        assert_eq!(opts.instances, 4);
        assert_eq!(opts.csv.as_deref(), Some("/tmp/x.csv"));
    }

    #[test]
    fn rejects_unknown_flags_and_datasets() {
        assert!(parse_opts(&strs(&["--bogus", "1"])).is_err());
        assert!(dataset("nope").is_err());
        assert!(policy("nope").is_err());
    }

    #[test]
    fn resolves_symbolic_and_numeric_rates() {
        let mix = dataset("alpaca").expect("dataset");
        let config = SimConfig::evaluation_cluster(SchedPolicy::Fcfs);
        let high = resolve_rate("high", &config, &mix).expect("rate");
        let num = resolve_rate("3.5", &config, &mix).expect("rate");
        assert!(high > 0.0);
        assert!((num - 3.5).abs() < 1e-12);
        assert!(resolve_rate("-2", &config, &mix).is_err());
        let err = resolve_rate("fast", &config, &mix).expect_err("unknown rate");
        assert!(
            err.contains("valid: low, medium, high"),
            "rate error must list the valid levels, got: {err}"
        );
    }

    #[test]
    fn shard_flags_parse_and_validate() {
        let opts = parse_opts(&strs(&["--shards", "4", "--router", "least"])).expect("valid");
        assert_eq!(opts.shards, 4);
        assert_eq!(opts.router, "least");
        // Usage errors: zero shards, non-numeric shards.
        assert!(parse_opts(&strs(&["--shards", "0"])).is_err());
        assert!(parse_opts(&strs(&["--shards", "many"])).is_err());
        // Unknown routers are rejected with the valid values listed.
        let err = RouterPolicy::parse("hash").expect_err("unknown router");
        assert!(err.contains("valid: rr, least, predictive"), "got: {err}");
        for key in ["rr", "least", "predictive"] {
            assert!(RouterPolicy::parse(key).is_ok(), "{key}");
        }
    }

    #[test]
    fn predictor_flag_resolves() {
        assert_eq!(predictor("none"), Ok(None));
        assert_eq!(predictor("oracle"), Ok(Some(PredictorKind::Oracle)));
        assert_eq!(predictor("ema"), Ok(Some(PredictorKind::ProfileEma)));
        assert_eq!(predictor("rank"), Ok(Some(PredictorKind::PairwiseRank)));
        assert_eq!(predictor("quantile"), Ok(Some(PredictorKind::Quantile)));
        let err = predictor("psychic").expect_err("unknown predictor");
        assert!(
            err.contains("valid: none, oracle, ema, rank, quantile"),
            "error must list the valid values, got: {err}"
        );
        let opts = parse_opts(&strs(&["--predictor", "oracle"])).expect("valid");
        assert_eq!(opts.predictor, "oracle");
    }

    #[test]
    fn usage_lists_predictor_and_admission_values() {
        for needle in ["none|oracle|ema|rank|quantile", "none|predictive", "[none]"] {
            assert!(USAGE.contains(needle), "usage missing {needle}");
        }
    }

    #[test]
    fn federation_flags_parse_and_validate() {
        let opts = parse_opts(&strs(&[
            "--regions",
            "2",
            "--fed-router",
            "nearest",
            "--wan",
            "metro",
        ]))
        .expect("valid");
        assert_eq!(opts.regions, 2);
        assert_eq!(opts.fed_router, "nearest");
        assert_eq!(opts.wan, "metro");
        // Usage errors: zero or non-numeric regions.
        assert!(parse_opts(&strs(&["--regions", "0"])).is_err());
        assert!(parse_opts(&strs(&["--regions", "everywhere"])).is_err());
        // Unknown federation routers / WAN classes list the valid values.
        let err = FederationPolicy::parse("anycast").expect_err("unknown router");
        assert!(err.contains("valid: static, nearest, predictive"), "{err}");
        let err = WanLink::parse("dialup").expect_err("unknown wan");
        assert!(
            err.contains("valid: metro, regional, continental, transoceanic"),
            "{err}"
        );
        for key in ["static", "nearest", "predictive"] {
            assert!(FederationPolicy::parse(key).is_ok(), "{key}");
        }
        for key in ["metro", "regional", "continental", "transoceanic"] {
            assert!(WanLink::parse(key).is_ok(), "{key}");
        }
    }

    #[test]
    fn fleet_events_flag_parses_and_usage_lists_it() {
        let opts = parse_opts(&strs(&["--fleet-events", "outage"])).expect("valid");
        assert_eq!(opts.fleet_events.as_deref(), Some("outage"));
        assert_eq!(parse_opts(&[]).expect("empty").fleet_events, None);
        // Non-file values must resolve as presets with the list in the error.
        let err = FleetPreset::parse("meteor").expect_err("unknown preset");
        assert!(err.contains("valid: outage, flash-crowd, diurnal"), "{err}");
        for needle in ["--fleet-events", "PATH|outage|flash-crowd|diurnal", "chaos"] {
            assert!(USAGE.contains(needle), "usage missing {needle}");
        }
    }

    #[test]
    fn admission_flag_resolves() {
        assert_eq!(admission("none"), Ok(AdmissionMode::Disabled));
        assert_eq!(admission("predictive"), Ok(AdmissionMode::predictive()));
        let err = admission("strict").expect_err("unknown mode");
        assert!(err.contains("valid: none, predictive"), "got: {err}");
        let opts = parse_opts(&strs(&["--admission", "predictive"])).expect("valid");
        assert_eq!(opts.admission, "predictive");
    }

    #[test]
    fn migration_benefit_flag_parses_and_validates() {
        let opts = parse_opts(&strs(&["--migration-benefit", "2.5"])).expect("valid");
        assert_eq!(opts.migration_benefit, Some(2.5));
        assert!(parse_opts(&strs(&["--migration-benefit", "-1"])).is_err());
        assert!(parse_opts(&strs(&["--migration-benefit", "inf"])).is_err());
        assert!(parse_opts(&strs(&["--migration-benefit", "many"])).is_err());
    }

    #[test]
    fn sweep_opts_parse_and_validate() {
        let opts = parse_sweep_opts(&strs(&[
            "--grid",
            "main",
            "--threads",
            "4",
            "--count",
            "200",
            "--seed",
            "9",
            "--out",
            "/tmp/sweep-out",
            "--baseline",
            "BENCH_BASELINE.json",
            "--ttft-tol",
            "0.2",
            "--slo-tol",
            "0.05",
        ]))
        .expect("valid flags");
        assert_eq!(opts.grid, "main");
        assert_eq!(opts.threads, 4);
        assert_eq!(opts.count, Some(200));
        assert_eq!(opts.seed, Some(9));
        assert_eq!(opts.out.as_deref(), Some("/tmp/sweep-out"));
        assert_eq!(opts.baseline.as_deref(), Some("BENCH_BASELINE.json"));
        assert!((opts.ttft_tol - 0.2).abs() < 1e-12);
        assert!((opts.slo_tol - 0.05).abs() < 1e-12);

        assert!(parse_sweep_opts(&strs(&["--count", "0"])).is_err());
        assert!(parse_sweep_opts(&strs(&["--ttft-tol", "-1"])).is_err());
        assert!(parse_sweep_opts(&strs(&["--ttft-abs-tol", "inf"])).is_err());
        assert!(parse_sweep_opts(&strs(&["--bogus", "1"])).is_err());
    }

    #[test]
    fn sweep_defaults_match_gate_defaults() {
        let opts = parse_sweep_opts(&[]).expect("empty is valid");
        let tol = GateTolerances::default();
        assert_eq!(opts.grid, "ci");
        assert_eq!(opts.threads, 0);
        assert!((opts.ttft_tol - tol.ttft_p99_rel).abs() < 1e-12);
        assert!((opts.ttft_abs_tol - tol.ttft_p99_abs_s).abs() < 1e-12);
        assert!((opts.slo_tol - tol.slo_rate_abs).abs() < 1e-12);
    }

    #[test]
    fn usage_lists_sweep_grid_presets() {
        for needle in [
            "main|predictive|migration|ci|sharded|federated",
            "--baseline",
            "--threads",
            "--shards",
            "--regions",
            "rr|least|predictive",
            "static|nearest|predictive",
            "metro|regional|continental|transoceanic",
        ] {
            assert!(USAGE.contains(needle), "usage missing {needle}");
        }
    }

    #[test]
    fn telemetry_flags_parse_and_validate() {
        let opts = parse_opts(&strs(&[
            "--trace-out",
            "/tmp/t.jsonl",
            "--trace-format",
            "chrome",
            "--series-out",
            "/tmp/s.csv",
            "--series-interval",
            "2.5",
            "--profile",
        ]))
        .expect("valid");
        assert_eq!(opts.trace_out.as_deref(), Some("/tmp/t.jsonl"));
        assert_eq!(opts.trace_format, TraceFormat::Chrome);
        assert_eq!(opts.series_out.as_deref(), Some("/tmp/s.csv"));
        assert_eq!(opts.series_interval, Some(2.5));
        assert!(opts.profile);

        // Unknown formats list the valid values; bad intervals are usage
        // errors whatever flavor of bad they are.
        let err = parse_opts(&strs(&["--trace-format", "bogus"])).expect_err("unknown format");
        assert!(err.contains("valid: jsonl, chrome"), "got: {err}");
        for bad in ["0", "-1", "inf", "nan", "soon"] {
            assert!(
                parse_opts(&strs(&["--series-interval", bad])).is_err(),
                "interval '{bad}' must be rejected"
            );
        }

        // Everything defaults to off.
        let opts = parse_opts(&[]).expect("empty is valid");
        assert_eq!(opts.trace_out, None);
        assert_eq!(opts.trace_format, TraceFormat::Jsonl);
        assert_eq!(opts.series_out, None);
        assert_eq!(opts.series_interval, None);
        assert!(!opts.profile);
    }

    #[test]
    fn sweep_profile_flag_parses() {
        assert!(
            parse_sweep_opts(&strs(&["--profile"]))
                .expect("valid")
                .profile
        );
        assert!(!parse_sweep_opts(&[]).expect("empty is valid").profile);
    }

    #[test]
    fn run_threads_flag_parses_and_validates() {
        // Defaults to the sequential engine on both subcommands.
        assert_eq!(parse_opts(&[]).expect("empty is valid").run_threads, 1);
        assert_eq!(
            parse_sweep_opts(&[]).expect("empty is valid").run_threads,
            1
        );
        for (raw, want) in [("0", 0), ("1", 1), ("4", 4), ("64", 64)] {
            assert_eq!(
                parse_opts(&strs(&["--run-threads", raw]))
                    .expect("valid")
                    .run_threads,
                want
            );
            assert_eq!(
                parse_sweep_opts(&strs(&["--run-threads", raw]))
                    .expect("valid")
                    .run_threads,
                want
            );
        }
        // Out-of-range and non-numeric values are usage errors that name
        // the valid range.
        for bad in ["65", "1000", "-1", "two", "1.5", ""] {
            let err = parse_opts(&strs(&["--run-threads", bad]))
                .expect_err("bad thread count must be rejected");
            assert!(err.contains("64"), "error must state the range: {err}");
            assert!(
                parse_sweep_opts(&strs(&["--run-threads", bad])).is_err(),
                "sweep must reject '{bad}' too"
            );
        }
    }

    #[test]
    fn usage_lists_telemetry_flags() {
        for needle in [
            "--trace-out",
            "jsonl|chrome",
            "--series-out",
            "--series-interval",
            "--profile",
            "--run-threads",
        ] {
            assert!(USAGE.contains(needle), "usage missing {needle}");
        }
    }

    #[test]
    fn analyze_opts_parse_and_validate() {
        let opts = parse_analyze_opts(&strs(&[
            "--trace",
            "/tmp/t.jsonl",
            "--format",
            "waterfall",
            "--top",
            "3",
            "--out",
            "/tmp/anatomy",
        ]))
        .expect("valid");
        assert_eq!(opts.trace.as_deref(), Some("/tmp/t.jsonl"));
        assert_eq!(opts.format, "waterfall");
        assert_eq!(opts.top, 3);
        assert_eq!(opts.out.as_deref(), Some("/tmp/anatomy"));
        // Defaults: machine-readable JSON, top-5 waterfall, no files.
        let opts = parse_analyze_opts(&[]).expect("empty parses");
        assert_eq!(opts.format, "json");
        assert_eq!(opts.top, 5);
        assert!(opts.trace.is_none());
        // Unknown formats list the valid values; bad counts are usage
        // errors.
        let err = parse_analyze_opts(&strs(&["--format", "xml"])).expect_err("unknown format");
        assert!(err.contains("valid: json, csv, waterfall"), "got: {err}");
        assert!(parse_analyze_opts(&strs(&["--top", "many"])).is_err());
        assert!(parse_analyze_opts(&strs(&["--bogus", "1"])).is_err());
    }

    #[test]
    fn alerts_flag_parses_and_usage_lists_it() {
        let opts = parse_opts(&strs(&["--alerts", "paging"])).expect("valid");
        assert_eq!(opts.alerts.as_deref(), Some("paging"));
        assert_eq!(parse_opts(&[]).expect("empty").alerts, None);
        // Non-file values must resolve as presets with the list in the
        // error (the same file-else-preset contract as --fleet-events).
        let err = SloAlertPreset::parse("smoke-signal").expect_err("unknown preset");
        assert!(err.contains("valid: paging, ticket"), "{err}");
        for needle in ["--alerts", "PATH|paging|ticket", "analyze", "--blame"] {
            assert!(USAGE.contains(needle), "usage missing {needle}");
        }
    }

    #[test]
    fn sweep_blame_flag_parses() {
        assert!(parse_sweep_opts(&strs(&["--blame"])).expect("valid").blame);
        assert!(!parse_sweep_opts(&[]).expect("empty is valid").blame);
    }

    #[test]
    fn sweep_aggregate_profile_line_parses() {
        let t = SweepThroughput {
            events: 123_456,
            wall_s: 1.5,
            events_per_sec: 82_304.0,
        };
        let line = aggregate_profile_line(&t, 7, 900, 334);
        // Every figure must survive a whitespace-and-label round trip —
        // the CI perf job greps this line out of stderr.
        let nums: Vec<f64> = line
            .split(|c: char| !(c.is_ascii_digit() || c == '.'))
            .filter(|s| !s.is_empty() && *s != ".")
            .map(|s| s.parse().expect("numeric"))
            .collect();
        assert_eq!(
            nums,
            vec![123_456.0, 1.5, 82_304.0, 7.0, 900.0, 334.0],
            "line: {line}"
        );
    }

    #[test]
    fn all_policies_resolve() {
        for name in [
            "fcfs",
            "rr",
            "pascal",
            "pascal-nomigration",
            "pascal-nonadaptive",
        ] {
            assert!(policy(name).is_ok(), "{name}");
        }
    }
}
