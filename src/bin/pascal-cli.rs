//! `pascal-cli` — run serving simulations from the command line.
//!
//! ```text
//! pascal-cli run  --dataset arena --policy pascal --rate high --count 1000
//! pascal-cli run  --dataset alpaca --policy fcfs --rate 12.5 --csv out.csv
//! pascal-cli capacity --dataset mixed
//! ```

use std::process::ExitCode;

use pascal::core::report::{records_csv, render_table};
use pascal::core::{estimate_capacity_rps, run_simulation, RateLevel, SimConfig};
use pascal::metrics::{
    goodput_requests_per_s, slo_violation_rate, throughput_tokens_per_s, LatencySummary, QoeParams,
    SLO_QOE_THRESHOLD,
};
use pascal::predict::PredictorKind;
use pascal::sched::{PascalConfig, SchedPolicy};
use pascal::workload::{ArrivalProcess, DatasetMix, DatasetProfile, TraceBuilder};

const USAGE: &str = "\
pascal-cli — PASCAL reasoning-LLM serving simulator

USAGE:
  pascal-cli run [OPTIONS]       simulate a trace and print metrics
  pascal-cli capacity [OPTIONS]  print the analytic cluster capacity

OPTIONS (run):
  --dataset <alpaca|arena|math500|gpqa|lcb|mixed>   workload       [alpaca]
  --policy  <fcfs|rr|pascal|pascal-nomigration|pascal-nonadaptive> [pascal]
  --predictor <none|oracle|ema|rank>                length predictor [none]
          oracle reads the trace's hidden lengths; ema learns per-dataset
          running means; rank orders by predicted remaining work. With
          pascal, enables speculative demotion + predicted-footprint
          placement and prints a calibration report.
  --rate    <low|medium|high|REQ_PER_S>             arrival rate   [high]
  --count   <N>                                     requests       [1000]
  --seed    <N>                                     RNG seed       [42]
  --instances <N>                                   cluster size   [8]
  --csv     <PATH>                                  dump per-request CSV
";

fn dataset(name: &str) -> Result<DatasetMix, String> {
    Ok(match name {
        "alpaca" => DatasetMix::single(DatasetProfile::alpaca_eval2()),
        "arena" => DatasetMix::single(DatasetProfile::arena_hard()),
        "math500" => DatasetMix::single(DatasetProfile::math500()),
        "gpqa" => DatasetMix::single(DatasetProfile::gpqa()),
        "lcb" => DatasetMix::single(DatasetProfile::live_code_bench()),
        "mixed" => DatasetMix::arena_with_reasoning_heavy(),
        other => return Err(format!("unknown dataset '{other}'")),
    })
}

fn policy(name: &str) -> Result<SchedPolicy, String> {
    Ok(match name {
        "fcfs" => SchedPolicy::Fcfs,
        "rr" => SchedPolicy::round_robin_default(),
        "pascal" => SchedPolicy::pascal(PascalConfig::default()),
        "pascal-nomigration" => SchedPolicy::pascal(PascalConfig {
            migration_enabled: false,
            ..PascalConfig::default()
        }),
        "pascal-nonadaptive" => SchedPolicy::pascal(PascalConfig {
            adaptive_migration: false,
            ..PascalConfig::default()
        }),
        other => return Err(format!("unknown policy '{other}'")),
    })
}

/// Parsed `run` options.
struct RunOpts {
    dataset: String,
    policy: String,
    predictor: String,
    rate: String,
    count: usize,
    seed: u64,
    instances: usize,
    csv: Option<String>,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            dataset: "alpaca".to_owned(),
            policy: "pascal".to_owned(),
            predictor: "none".to_owned(),
            rate: "high".to_owned(),
            count: 1000,
            seed: 42,
            instances: 8,
            csv: None,
        }
    }
}

fn predictor(name: &str) -> Result<Option<PredictorKind>, String> {
    match name {
        "none" => Ok(None),
        other => PredictorKind::parse(other).map(Some),
    }
}

fn parse_opts(args: &[String]) -> Result<RunOpts, String> {
    let mut opts = RunOpts::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--dataset" => opts.dataset = value()?,
            "--policy" => opts.policy = value()?,
            "--predictor" => opts.predictor = value()?,
            "--rate" => opts.rate = value()?,
            "--count" => {
                opts.count = value()?.parse().map_err(|e| format!("--count: {e}"))?;
            }
            "--seed" => opts.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--instances" => {
                opts.instances = value()?.parse().map_err(|e| format!("--instances: {e}"))?;
            }
            "--csv" => opts.csv = Some(value()?),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

fn resolve_rate(rate: &str, config: &SimConfig, mix: &DatasetMix) -> Result<f64, String> {
    match rate {
        "low" => Ok(RateLevel::Low.rate_rps(config, mix)),
        "medium" => Ok(RateLevel::Medium.rate_rps(config, mix)),
        "high" => Ok(RateLevel::High.rate_rps(config, mix)),
        other => other
            .parse::<f64>()
            .map_err(|_| format!("--rate must be low/medium/high or a number, got '{other}'"))
            .and_then(|r| {
                if r > 0.0 {
                    Ok(r)
                } else {
                    Err("--rate must be positive".to_owned())
                }
            }),
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let mix = dataset(&opts.dataset)?;
    let policy = policy(&opts.policy)?;
    let mut config = SimConfig::evaluation_cluster(policy);
    config.num_instances = opts.instances;
    config.predictor = predictor(&opts.predictor)?;
    let rate = resolve_rate(&opts.rate, &config, &mix)?;

    // Predictions only steer PASCAL; under the baselines the predictor is
    // observational (calibration only) and the label stays the plain name.
    let policy_label = match (config.predictor, policy) {
        (Some(kind), SchedPolicy::Pascal(_)) => {
            format!("{}(Predictive-{kind})", policy.name())
        }
        _ => policy.name().to_owned(),
    };
    eprintln!(
        "simulating {} {} requests at {rate:.2} req/s on {} instances under {policy_label} …",
        opts.count, opts.dataset, opts.instances,
    );
    let trace = TraceBuilder::new(mix)
        .arrivals(ArrivalProcess::poisson(rate))
        .count(opts.count)
        .seed(opts.seed)
        .build();
    let out = run_simulation(&trace, &config);

    let ttft = LatencySummary::from_values(
        out.records
            .iter()
            .filter_map(|r| r.ttft().map(|d| d.as_secs_f64())),
    );
    let qoe = QoeParams::paper_eval();
    let mut rows = vec![
        vec![
            "throughput".to_owned(),
            format!("{:.0} tokens/s", throughput_tokens_per_s(&out.records)),
        ],
        vec![
            "goodput".to_owned(),
            format!(
                "{:.2} req/s",
                goodput_requests_per_s(&out.records, &qoe, SLO_QOE_THRESHOLD)
            ),
        ],
        vec![
            "SLO violations".to_owned(),
            format!(
                "{:.2}%",
                100.0 * slo_violation_rate(&out.records, &qoe, SLO_QOE_THRESHOLD)
            ),
        ],
        vec!["migrations".to_owned(), out.migrations().len().to_string()],
        vec![
            "makespan".to_owned(),
            format!("{:.1}s", out.makespan.as_secs_f64()),
        ],
    ];
    if let Some(cal) = out.calibration() {
        rows.push(vec!["prediction calibration".to_owned(), cal.to_string()]);
    }
    if let Some(t) = ttft {
        rows.insert(
            0,
            vec![
                "TTFT mean/p50/p99/max".to_owned(),
                format!(
                    "{:.1} / {:.1} / {:.1} / {:.1} s",
                    t.mean, t.p50, t.p99, t.max
                ),
            ],
        );
    }
    println!("{}", render_table(&["metric", "value"], &rows));

    if let Some(path) = opts.csv {
        std::fs::write(&path, records_csv(&out.records))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote per-request CSV to {path}");
    }
    Ok(())
}

fn cmd_capacity(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let mix = dataset(&opts.dataset)?;
    let mut config = SimConfig::evaluation_cluster(SchedPolicy::Fcfs);
    config.num_instances = opts.instances;
    let capacity = estimate_capacity_rps(&config, &mix);
    println!(
        "estimated capacity for '{}' on {} instances: {capacity:.2} req/s",
        opts.dataset, opts.instances
    );
    for level in RateLevel::ALL {
        println!(
            "  {level:<7} ({:>3.0}%): {:.2} req/s",
            level.utilization() * 100.0,
            level.rate_rps(&config, &mix)
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("capacity") => cmd_capacity(&args[1..]),
        Some("--help" | "-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let opts = parse_opts(&strs(&[
            "--dataset",
            "arena",
            "--policy",
            "rr",
            "--rate",
            "12.5",
            "--count",
            "50",
            "--seed",
            "7",
            "--instances",
            "4",
            "--csv",
            "/tmp/x.csv",
        ]))
        .expect("valid flags");
        assert_eq!(opts.dataset, "arena");
        assert_eq!(opts.policy, "rr");
        assert_eq!(opts.count, 50);
        assert_eq!(opts.instances, 4);
        assert_eq!(opts.csv.as_deref(), Some("/tmp/x.csv"));
    }

    #[test]
    fn rejects_unknown_flags_and_datasets() {
        assert!(parse_opts(&strs(&["--bogus", "1"])).is_err());
        assert!(dataset("nope").is_err());
        assert!(policy("nope").is_err());
    }

    #[test]
    fn resolves_symbolic_and_numeric_rates() {
        let mix = dataset("alpaca").expect("dataset");
        let config = SimConfig::evaluation_cluster(SchedPolicy::Fcfs);
        let high = resolve_rate("high", &config, &mix).expect("rate");
        let num = resolve_rate("3.5", &config, &mix).expect("rate");
        assert!(high > 0.0);
        assert!((num - 3.5).abs() < 1e-12);
        assert!(resolve_rate("-2", &config, &mix).is_err());
        assert!(resolve_rate("fast", &config, &mix).is_err());
    }

    #[test]
    fn predictor_flag_resolves() {
        assert_eq!(predictor("none"), Ok(None));
        assert_eq!(predictor("oracle"), Ok(Some(PredictorKind::Oracle)));
        assert_eq!(predictor("ema"), Ok(Some(PredictorKind::ProfileEma)));
        assert_eq!(predictor("rank"), Ok(Some(PredictorKind::PairwiseRank)));
        assert!(predictor("psychic").is_err());
        let opts = parse_opts(&strs(&["--predictor", "oracle"])).expect("valid");
        assert_eq!(opts.predictor, "oracle");
    }

    #[test]
    fn all_policies_resolve() {
        for name in [
            "fcfs",
            "rr",
            "pascal",
            "pascal-nomigration",
            "pascal-nonadaptive",
        ] {
            assert!(policy(name).is_ok(), "{name}");
        }
    }
}
