//! The oracle predictor: reads the trace's hidden lengths.

use pascal_workload::RequestSpec;

use crate::predictor::{LengthEstimate, LengthPredictor};

/// Perfect-information predictor — it reads the actual reasoning/answering
/// lengths straight out of the request spec (which the trace knows but a
/// real serving system would not). The upper bound every learned predictor
/// is compared against; its calibration error is zero by construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct Oracle;

impl LengthPredictor for Oracle {
    fn name(&self) -> &'static str {
        "Oracle"
    }

    fn estimate(&self, req: &RequestSpec) -> LengthEstimate {
        LengthEstimate {
            reasoning_tokens: Some(f64::from(req.reasoning_tokens)),
            answering_tokens: Some(f64::from(req.answering_tokens)),
        }
    }

    fn work_score(&self, req: &RequestSpec) -> f64 {
        f64::from(req.output_tokens())
    }

    fn observe(&mut self, _completed: &RequestSpec) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use pascal_sim::SimTime;
    use pascal_workload::RequestId;

    #[test]
    fn oracle_reads_hidden_lengths_exactly() {
        let req = RequestSpec::new(RequestId(0), SimTime::ZERO, 128, 4321, 99);
        let est = Oracle.estimate(&req);
        assert_eq!(est.reasoning_tokens, Some(4321.0));
        assert_eq!(est.answering_tokens, Some(99.0));
        assert_eq!(est.total_tokens(), Some(4420.0));
        assert!(Oracle.predicts_oversized(&req, 4320));
        assert!(!Oracle.predicts_oversized(&req, 4321));
    }

    #[test]
    fn oracle_work_score_orders_by_actual_total() {
        let small = RequestSpec::new(RequestId(0), SimTime::ZERO, 128, 100, 10);
        let big = RequestSpec::new(RequestId(1), SimTime::ZERO, 128, 5000, 10);
        assert!(Oracle.work_score(&big) > Oracle.work_score(&small));
    }
}
