//! The [`LengthPredictor`] interface.
//!
//! A length predictor estimates, *online*, how many reasoning and answering
//! tokens a request will generate, learning from every completed request the
//! engine feeds back through [`LengthPredictor::observe`]. The scheduler
//! consumes predictions in three places:
//!
//! * **speculative demotion** — demote a reasoning request the moment its
//!   *predicted* total reasoning length exceeds the §IV-C threshold, instead
//!   of waiting for its generated tokens to cross it;
//! * **predicted-footprint placement** — Algorithm 1 ranks instances by
//!   current *plus predicted future* KV blocks;
//! * **remaining-service queries** — the migration controller weighs KV
//!   transfer cost against [`LengthPredictor::predicted_remaining_tokens`],
//!   and the admission controller projects aggregate KV demand from it;
//! * **calibration reporting** — predicted-vs-actual error quantiles in
//!   `pascal-metrics`.
//!
//! Not every predictor estimates absolute lengths: a pairwise ranker only
//! orders requests by predicted remaining work. The interface therefore
//! separates absolute estimates ([`LengthEstimate`], which may be unknown)
//! from the always-available ordering key ([`LengthPredictor::work_score`]).

use pascal_workload::RequestSpec;

/// Predicted output lengths of one request, in tokens. Either component may
/// be unknown (rank-only predictors know neither).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LengthEstimate {
    /// Predicted total reasoning tokens (including the boundary token).
    pub reasoning_tokens: Option<f64>,
    /// Predicted answering tokens.
    pub answering_tokens: Option<f64>,
}

impl LengthEstimate {
    /// The fully-unknown estimate.
    pub const UNKNOWN: LengthEstimate = LengthEstimate {
        reasoning_tokens: None,
        answering_tokens: None,
    };

    /// Predicted total output tokens, if both phases are estimated.
    #[must_use]
    pub fn total_tokens(&self) -> Option<f64> {
        match (self.reasoning_tokens, self.answering_tokens) {
            (Some(r), Some(a)) => Some(r + a),
            _ => None,
        }
    }

    /// Whether any component is known.
    #[must_use]
    pub fn is_known(&self) -> bool {
        self.reasoning_tokens.is_some() || self.answering_tokens.is_some()
    }
}

/// An online reasoning/answering length predictor.
///
/// Implementations must be deterministic: the same sequence of `observe`
/// calls must produce identical internal state (and therefore identical
/// predictions) on every run — the engine's byte-identical-replay guarantee
/// extends through the predictor.
// `Send` so a `Shard` owning a boxed predictor can be driven from the
// windowed parallel executor's worker threads; every implementation is
// plain owned data.
pub trait LengthPredictor: std::fmt::Debug + Send {
    /// Display name, used in policy names ("PASCAL(Predictive-Oracle)").
    fn name(&self) -> &'static str;

    /// Absolute length estimate for `req` at its current state of knowledge.
    /// Must not peek at the hidden actual lengths (Oracle excepted — that is
    /// its entire purpose).
    fn estimate(&self, req: &RequestSpec) -> LengthEstimate;

    /// Unitless predicted-work score usable *only* for ordering requests
    /// (larger = more predicted remaining work). Every predictor can rank,
    /// even ones that cannot produce absolute estimates.
    fn work_score(&self, req: &RequestSpec) -> f64;

    /// Whether the predictor believes `req`'s total reasoning length will
    /// exceed `threshold_tokens` — the speculative-demotion question. The
    /// default answers from the absolute estimate; rank-only predictors
    /// override it with a quantile-matching rule over observed completions.
    fn predicts_oversized(&self, req: &RequestSpec, threshold_tokens: u32) -> bool {
        self.estimate(req)
            .reasoning_tokens
            .is_some_and(|r| r > f64::from(threshold_tokens))
    }

    /// Predicted output tokens an in-flight request still has to generate,
    /// given that it has produced `generated` tokens so far — the
    /// remaining-service query the migration and admission controllers ask.
    /// `None` when the predictor cannot produce an absolute estimate
    /// (rank-only predictors). Never negative: a request that outlived its
    /// prediction reports zero remaining work.
    fn predicted_remaining_tokens(&self, req: &RequestSpec, generated: u32) -> Option<f64> {
        self.estimate(req)
            .total_tokens()
            .map(|total| (total - f64::from(generated)).max(0.0))
    }

    /// Feeds back a completed request (its spec carries the actual lengths).
    /// Called by the engine exactly once per completion, in completion
    /// order.
    fn observe(&mut self, completed: &RequestSpec);

    /// Early feedback: `req` has just generated its `threshold_tokens`-th
    /// reasoning token and is still running — proof it is oversized, long
    /// before it completes. Under saturation, completion feedback is
    /// survivorship-biased (short requests finish first; the oversized tail
    /// completes last, often after every arrival has already been
    /// scheduled), so label-hungry predictors must learn from crossings.
    /// Default: ignored.
    fn observe_threshold_crossing(&mut self, _req: &RequestSpec, _threshold_tokens: u32) {}
}
