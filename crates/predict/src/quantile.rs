//! The streaming-quantile predictor: P² estimates per phase class.
//!
//! The EMA predictor tracks per-dataset *means* — fine for symmetric
//! lengths, but reasoning lengths are heavy-tailed, where the mean
//! over-predicts the typical request and under-predicts the tail. This
//! predictor instead tracks *quantiles* with the P² algorithm (Jain &
//! Chlamtac, 1985): five markers per tracked quantile, updated in O(1) per
//! observation with parabolic interpolation, no sample buffer. Each
//! dataset bucket tracks the median reasoning and answering lengths (the
//! estimate served to placement and admission) and an upper reasoning
//! quantile (the speculative-demotion signal), with the same
//! right-censored threshold-crossing feedback the EMA uses — completions
//! under saturation are survivorship-biased short, and mid-flight
//! crossings are the only early evidence of the tail.

use std::collections::BTreeMap;

use pascal_workload::RequestSpec;

use crate::predictor::{LengthEstimate, LengthPredictor};

/// One P² streaming quantile estimator: O(1) state, O(1) update.
///
/// # Examples
///
/// ```
/// use pascal_predict::P2Quantile;
///
/// let mut p50 = P2Quantile::new(0.5);
/// for x in 1..=101 {
///     p50.observe(f64::from(x));
/// }
/// let est = p50.estimate().unwrap();
/// assert!((est - 51.0).abs() < 5.0, "median of 1..=101 is 51, got {est}");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct P2Quantile {
    q: f64,
    /// Samples seen. The first five land in `heights` directly.
    count: u64,
    /// Marker heights (the quantile estimates); `heights[2]` is the
    /// q-quantile once warmed up.
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    increments: [f64; 5],
}

impl P2Quantile {
    /// A tracker for the `q`-quantile.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1)`.
    #[must_use]
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "P² quantile {q} must be in (0, 1)");
        P2Quantile {
            q,
            count: 0,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
        }
    }

    /// Samples observed so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The current quantile estimate: exact over the first five samples,
    /// the P² center marker afterwards. `None` before the first sample.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            n if n < 5 => {
                // Exact small-sample quantile by nearest rank.
                let mut sorted = self.heights;
                let filled = &mut sorted[..n as usize];
                filled.sort_by(f64::total_cmp);
                let rank = (self.q * n as f64).ceil().max(1.0) as usize - 1;
                Some(filled[rank.min(n as usize - 1)])
            }
            _ => Some(self.heights[2]),
        }
    }

    /// Feeds one sample.
    pub fn observe(&mut self, x: f64) {
        if self.count < 5 {
            self.heights[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;

        // Locate the cell, extending the extreme markers when x escapes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            (0..4)
                .find(|&i| x < self.heights[i + 1])
                .expect("x is below heights[4]")
        };

        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Nudge the three interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let step_up = self.positions[i + 1] - self.positions[i] > 1.0;
            let step_down = self.positions[i - 1] - self.positions[i] < -1.0;
            if (d >= 1.0 && step_up) || (d <= -1.0 && step_down) {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    /// Piecewise-parabolic (P²) height prediction for marker `i` moving by
    /// `d` (±1).
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (h, p) = (&self.heights, &self.positions);
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    /// Linear fallback when the parabola would cross a neighbor.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }
}

/// Per-phase P² trackers of one dataset bucket.
#[derive(Clone, Copy, Debug)]
struct QuantileBucket {
    observations: u64,
    reasoning_median: P2Quantile,
    answering_median: P2Quantile,
    /// Upper reasoning quantile — the oversize/demotion signal.
    reasoning_upper: P2Quantile,
    /// Right-censored tail bound from mid-flight threshold crossings; kept
    /// outside the P² state so a burst of crossings cannot distort the
    /// completion-driven quantile, exactly like the EMA's censored tracker.
    censored_tail: f64,
}

impl QuantileBucket {
    fn new() -> Self {
        QuantileBucket {
            observations: 0,
            reasoning_median: P2Quantile::new(0.5),
            answering_median: P2Quantile::new(0.5),
            reasoning_upper: P2Quantile::new(QuantilePredictor::UPPER_QUANTILE),
            censored_tail: 0.0,
        }
    }

    fn observe(&mut self, reasoning: f64, answering: f64) {
        self.observations += 1;
        self.reasoning_median.observe(reasoning);
        self.answering_median.observe(answering);
        self.reasoning_upper.observe(reasoning);
    }

    fn observe_censored(&mut self, bound: f64) {
        // The true length provably exceeds `bound`; assume the conditional
        // tail expectation overshoot and approach it, never past it.
        let target = bound * QuantilePredictor::CENSOR_OVERSHOOT;
        if target > self.censored_tail {
            self.censored_tail += QuantilePredictor::UPPER_QUANTILE * (target - self.censored_tail);
        }
    }

    fn upper_reasoning(&self) -> f64 {
        self.reasoning_upper
            .estimate()
            .unwrap_or(0.0)
            .max(self.censored_tail)
    }
}

/// Per-dataset streaming-quantile estimator (`--predictor quantile`).
///
/// Maintains one [`P2Quantile`] triple per dataset tag (falling back to a
/// global bucket for untagged requests or unseen datasets) and predicts
/// the tracked *median* per phase. Estimates are withheld until a bucket
/// has seen [`QuantilePredictor::MIN_OBSERVATIONS`] completions — P²'s own
/// warm-up — so the cold-start phase degrades to non-predictive
/// scheduling.
///
/// # Examples
///
/// ```
/// use pascal_predict::{LengthPredictor, QuantilePredictor};
/// use pascal_sim::SimTime;
/// use pascal_workload::{RequestId, RequestSpec};
///
/// let mut q = QuantilePredictor::default();
/// let mk = |id, r| {
///     RequestSpec::new(RequestId(id), SimTime::ZERO, 64, r, 50).with_dataset("d")
/// };
/// for i in 0..40 {
///     // 75% short, 25% long: the median must follow the short mode.
///     q.observe(&mk(i, if i % 4 == 0 { 4000 } else { 300 }));
/// }
/// let est = q.estimate(&mk(99, 1)).reasoning_tokens.unwrap();
/// assert!(est < 1000.0, "median tracks the typical request, got {est}");
/// ```
#[derive(Clone, Debug)]
pub struct QuantilePredictor {
    buckets: BTreeMap<String, QuantileBucket>,
    global: QuantileBucket,
}

impl Default for QuantilePredictor {
    fn default() -> Self {
        QuantilePredictor {
            buckets: BTreeMap::new(),
            global: QuantileBucket::new(),
        }
    }
}

impl QuantilePredictor {
    /// Completions a bucket needs before it starts predicting (P²'s five-
    /// sample initialization).
    pub const MIN_OBSERVATIONS: u64 = 5;
    /// The tracked upper quantile of reasoning length.
    pub const UPPER_QUANTILE: f64 = 0.9;
    /// How far past a censored crossing bound the true length is assumed
    /// to land (conditional tail expectation factor).
    pub const CENSOR_OVERSHOOT: f64 = 1.25;

    /// The bucket that answers for `req`: its dataset's, if warmed up,
    /// else the global one, else nothing.
    fn lookup(&self, req: &RequestSpec) -> Option<&QuantileBucket> {
        let warm = |b: &&QuantileBucket| b.observations >= QuantilePredictor::MIN_OBSERVATIONS;
        self.buckets
            .get(req.dataset_key())
            .filter(warm)
            .or_else(|| Some(&self.global).filter(warm))
    }

    /// The tracked upper-quantile reasoning length for `req`'s dataset, if
    /// warmed up (includes the censored tail bound).
    #[must_use]
    pub fn reasoning_upper_quantile(&self, req: &RequestSpec) -> Option<f64> {
        self.lookup(req).map(QuantileBucket::upper_reasoning)
    }
}

impl LengthPredictor for QuantilePredictor {
    fn name(&self) -> &'static str {
        "Quantile"
    }

    fn estimate(&self, req: &RequestSpec) -> LengthEstimate {
        match self.lookup(req) {
            Some(b) => LengthEstimate {
                reasoning_tokens: b.reasoning_median.estimate(),
                answering_tokens: b.answering_median.estimate(),
            },
            None => LengthEstimate::UNKNOWN,
        }
    }

    fn work_score(&self, req: &RequestSpec) -> f64 {
        self.estimate(req).total_tokens().unwrap_or(0.0)
    }

    fn predicts_oversized(&self, req: &RequestSpec, threshold_tokens: u32) -> bool {
        // Demote on the tracked *upper* quantile, not the median: a
        // median-driven rule would never demote a bucket whose typical
        // request is short even when a fifth of it is oversized.
        self.lookup(req)
            .is_some_and(|b| b.upper_reasoning() > f64::from(threshold_tokens))
    }

    fn observe(&mut self, completed: &RequestSpec) {
        let r = f64::from(completed.reasoning_tokens);
        let a = f64::from(completed.answering_tokens);
        self.buckets
            .entry(completed.dataset_key().to_owned())
            .or_insert_with(QuantileBucket::new)
            .observe(r, a);
        self.global.observe(r, a);
    }

    fn observe_threshold_crossing(&mut self, req: &RequestSpec, threshold_tokens: u32) {
        let bound = f64::from(threshold_tokens) + 1.0;
        self.buckets
            .entry(req.dataset_key().to_owned())
            .or_insert_with(QuantileBucket::new)
            .observe_censored(bound);
        self.global.observe_censored(bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pascal_sim::{log_normal_mu_for_mean, SimRng, SimTime};
    use pascal_workload::RequestId;

    fn req(id: u64, dataset: &str, reasoning: u32, answering: u32) -> RequestSpec {
        RequestSpec::new(RequestId(id), SimTime::ZERO, 64, reasoning, answering)
            .with_dataset(dataset)
    }

    #[test]
    fn p2_tracks_known_quantiles_of_a_lognormal_stream() {
        // Property: the P² estimate lands within a few percent of the
        // exact sample quantile on a heavy-tailed stream, for several
        // seeds and quantiles.
        for seed in [1u64, 7, 42] {
            for q in [0.5, 0.9] {
                let mut rng = SimRng::seed_from(seed);
                let mut p2 = P2Quantile::new(q);
                let mut samples = Vec::new();
                let mu = log_normal_mu_for_mean(900.0, 0.8);
                for _ in 0..5000 {
                    let x = rng.log_normal(mu, 0.8);
                    p2.observe(x);
                    samples.push(x);
                }
                samples.sort_by(f64::total_cmp);
                let exact = samples[(q * 5000.0) as usize - 1];
                let est = p2.estimate().expect("warmed up");
                let rel = (est - exact).abs() / exact;
                assert!(
                    rel < 0.06,
                    "seed {seed} q{q}: P² {est:.1} vs exact {exact:.1} ({rel:.3} rel)"
                );
            }
        }
    }

    #[test]
    fn p2_small_sample_estimates_are_exact_order_statistics() {
        let mut p2 = P2Quantile::new(0.5);
        assert_eq!(p2.estimate(), None);
        p2.observe(30.0);
        assert_eq!(p2.estimate(), Some(30.0));
        p2.observe(10.0);
        p2.observe(20.0);
        // Nearest-rank median of {10, 20, 30} at n=3: ceil(0.5·3)=2nd.
        assert_eq!(p2.estimate(), Some(20.0));
        assert_eq!(p2.count(), 3);
    }

    #[test]
    fn p2_monotone_markers_survive_adversarial_input() {
        // Strictly decreasing input forces every extreme-marker branch.
        let mut p2 = P2Quantile::new(0.9);
        for x in (0..500).rev() {
            p2.observe(f64::from(x));
        }
        let est = p2.estimate().unwrap();
        assert!((400.0..500.0).contains(&est), "p90 of 0..500 ≈ 450: {est}");
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1)")]
    fn p2_rejects_degenerate_quantiles() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn cold_start_withholds_estimates() {
        let mut q = QuantilePredictor::default();
        assert_eq!(q.estimate(&req(0, "a", 100, 100)), LengthEstimate::UNKNOWN);
        for i in 0..QuantilePredictor::MIN_OBSERVATIONS - 1 {
            q.observe(&req(i, "a", 100, 100));
        }
        assert!(!q.estimate(&req(9, "a", 1, 1)).is_known());
        q.observe(&req(8, "a", 100, 100));
        assert!(q.estimate(&req(9, "a", 1, 1)).is_known());
    }

    #[test]
    fn unseen_dataset_falls_back_to_global() {
        let mut q = QuantilePredictor::default();
        for i in 0..10 {
            q.observe(&req(i, "a", 400, 40));
        }
        let est = q.estimate(&req(99, "never-seen", 1, 1));
        assert!((est.reasoning_tokens.unwrap() - 400.0).abs() < 1e-6);
    }

    #[test]
    fn median_resists_the_tail_that_skews_the_mean() {
        // 80% short / 20% giant: the mean lands mid-air, the median stays
        // on the typical request — the estimator's whole reason to exist.
        let mut q = QuantilePredictor::default();
        for i in 0..500 {
            q.observe(&req(i, "tailed", if i % 5 == 0 { 20_000 } else { 300 }, 10));
        }
        let probe = req(9999, "tailed", 1, 1);
        let median = q.estimate(&probe).reasoning_tokens.unwrap();
        assert!(median < 500.0, "median must hug the short mode: {median}");
        // …while the upper quantile still sees the giants and demotes.
        assert!(
            q.predicts_oversized(&probe, 2000),
            "p90 {:?} must cross 2000",
            q.reasoning_upper_quantile(&probe)
        );
        assert!(!q.predicts_oversized(&probe, 50_000));
        assert!(q.work_score(&probe) > 0.0);
    }

    #[test]
    fn censored_crossings_raise_the_tail_estimate() {
        let mut q = QuantilePredictor::default();
        for i in 0..50 {
            q.observe(&req(i, "biased", 300, 10));
        }
        let probe = req(9999, "biased", 1, 1);
        assert!(!q.predicts_oversized(&probe, 5000));
        for i in 0..200 {
            q.observe_threshold_crossing(&req(1000 + i, "biased", 1, 1), 5000);
        }
        assert!(
            q.predicts_oversized(&probe, 5000),
            "censored tail {:?} must cross 5000",
            q.reasoning_upper_quantile(&probe)
        );
        // The completion-driven median is untouched by censored feedback.
        let median = q.estimate(&probe).reasoning_tokens.unwrap();
        assert!((median - 300.0).abs() < 1e-6);
    }

    #[test]
    fn observe_sequences_are_deterministic() {
        let run = || {
            let mut q = QuantilePredictor::default();
            for i in 0..300 {
                q.observe(&req(
                    i,
                    if i % 3 == 0 { "a" } else { "b" },
                    (i as u32) * 7 % 900 + 1,
                    5,
                ));
                if i % 11 == 0 {
                    q.observe_threshold_crossing(&req(1000 + i, "a", 1, 1), 2000);
                }
            }
            format!("{q:?}")
        };
        assert_eq!(run(), run());
    }
}
