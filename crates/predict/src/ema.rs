//! The per-dataset running mean / quantile predictor.

use std::collections::BTreeMap;

use pascal_workload::RequestSpec;

use crate::predictor::{LengthEstimate, LengthPredictor};

/// Exponential-moving-average statistics of one dataset bucket.
#[derive(Clone, Copy, Debug)]
struct BucketStats {
    observations: u64,
    reasoning_mean: f64,
    answering_mean: f64,
    /// Robbins–Monro tracker of the reasoning-length upper quantile
    /// ([`ProfileEma::QUANTILE`]), used for the oversize decision: demote
    /// speculatively only when a meaningful fraction of the dataset's
    /// requests exceed the threshold.
    reasoning_upper_q: f64,
}

impl BucketStats {
    fn new() -> Self {
        BucketStats {
            observations: 0,
            reasoning_mean: 0.0,
            answering_mean: 0.0,
            reasoning_upper_q: 0.0,
        }
    }

    fn update(&mut self, reasoning: f64, answering: f64, alpha: f64) {
        self.observations += 1;
        if self.observations == 1 {
            self.reasoning_mean = reasoning;
            self.answering_mean = answering;
            // max, not assignment: censored threshold crossings may already
            // have established a tail bound before the first (survivorship
            // -biased short) completion arrives.
            self.reasoning_upper_q = reasoning.max(self.reasoning_upper_q);
            return;
        }
        // Early observations get a larger effective step so the estimator
        // forgets its first-sample initialization quickly.
        let a = alpha.max(1.0 / self.observations as f64);
        self.reasoning_mean += a * (reasoning - self.reasoning_mean);
        self.answering_mean += a * (answering - self.answering_mean);
        // Robbins–Monro quantile step, scaled to the running mean so the
        // tracker moves at a workload-appropriate pace.
        let step = (self.reasoning_mean / 16.0).max(1.0);
        if reasoning > self.reasoning_upper_q {
            self.reasoning_upper_q += step * ProfileEma::QUANTILE;
        } else {
            self.reasoning_upper_q -= step * (1.0 - ProfileEma::QUANTILE);
        }
        self.reasoning_upper_q = self.reasoning_upper_q.max(0.0);
    }

    /// Quantile step for a right-censored sample known to exceed `bound`:
    /// whenever the tracker sits below the bound the sample is provably
    /// above it, so only the upward branch can fire. The step covers a
    /// [`ProfileEma::QUANTILE`] fraction of the remaining gap — censored
    /// bounds sit far above a survivorship-biased mean, and the fixed
    /// mean-scaled step would take hundreds of crossings to catch up. The
    /// tracker approaches but never exceeds the bound, so a burst of
    /// crossings cannot run away; completion updates keep pulling it back
    /// down when the tail evidence stops.
    fn update_quantile_censored(&mut self, bound: f64) {
        if self.observations == 0 {
            // No completions yet: the bound itself is the best tail guess.
            self.reasoning_upper_q = self.reasoning_upper_q.max(bound);
            return;
        }
        // A request observed crossing `bound` will finish above it — the
        // conditional tail mean of a heavy-tailed length sits well past the
        // crossing point. Without the overshoot the tracker asymptotes to
        // `bound` from below while completion updates drag it down, and the
        // equilibrium lands just *under* the demotion threshold.
        let target = bound * ProfileEma::CENSOR_OVERSHOOT;
        if target > self.reasoning_upper_q {
            self.reasoning_upper_q += ProfileEma::QUANTILE * (target - self.reasoning_upper_q);
        }
    }
}

/// Per-dataset running mean / quantile estimator.
///
/// Maintains one EMA bucket per dataset tag (falling back to a global
/// bucket for untagged requests or unseen datasets) and predicts the bucket
/// mean. Estimates are withheld (`None`) until a bucket has seen
/// [`ProfileEma::MIN_OBSERVATIONS`] completions, so the cold-start phase
/// degrades to non-predictive scheduling instead of guessing wildly.
///
/// # Examples
///
/// ```
/// use pascal_predict::{LengthPredictor, ProfileEma};
/// use pascal_sim::SimTime;
/// use pascal_workload::{RequestId, RequestSpec};
///
/// let mut ema = ProfileEma::default();
/// let mk = |id, r| {
///     RequestSpec::new(RequestId(id), SimTime::ZERO, 64, r, 50).with_dataset("d")
/// };
/// for i in 0..20 {
///     ema.observe(&mk(i, 800));
/// }
/// let est = ema.estimate(&mk(99, 1)); // actual length is hidden
/// assert!((est.reasoning_tokens.unwrap() - 800.0).abs() < 1e-6);
/// ```
#[derive(Clone, Debug)]
pub struct ProfileEma {
    alpha: f64,
    buckets: BTreeMap<String, BucketStats>,
    global: BucketStats,
}

impl Default for ProfileEma {
    fn default() -> Self {
        ProfileEma::new(ProfileEma::DEFAULT_ALPHA)
    }
}

impl ProfileEma {
    /// Default EMA smoothing factor.
    pub const DEFAULT_ALPHA: f64 = 0.05;
    /// Completions a bucket needs before it starts predicting.
    pub const MIN_OBSERVATIONS: u64 = 5;
    /// The tracked upper quantile of reasoning length.
    pub const QUANTILE: f64 = 0.9;
    /// How far past a censored crossing bound the true length is assumed to
    /// land (conditional tail expectation factor).
    pub const CENSOR_OVERSHOOT: f64 = 1.25;

    /// Creates an estimator with the given smoothing factor.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EMA alpha {alpha} must be in (0, 1]"
        );
        ProfileEma {
            alpha,
            buckets: BTreeMap::new(),
            global: BucketStats::new(),
        }
    }

    /// The bucket that answers for `req`: its dataset's, if warmed up, else
    /// the global one, else nothing.
    fn lookup(&self, req: &RequestSpec) -> Option<&BucketStats> {
        let warm = |b: &&BucketStats| b.observations >= ProfileEma::MIN_OBSERVATIONS;
        self.buckets
            .get(req.dataset_key())
            .filter(warm)
            .or_else(|| Some(&self.global).filter(warm))
    }

    /// The tracked upper-quantile reasoning length for `req`'s dataset, if
    /// warmed up.
    #[must_use]
    pub fn reasoning_upper_quantile(&self, req: &RequestSpec) -> Option<f64> {
        self.lookup(req).map(|b| b.reasoning_upper_q)
    }
}

impl LengthPredictor for ProfileEma {
    fn name(&self) -> &'static str {
        "EMA"
    }

    fn estimate(&self, req: &RequestSpec) -> LengthEstimate {
        match self.lookup(req) {
            Some(b) => LengthEstimate {
                reasoning_tokens: Some(b.reasoning_mean),
                answering_tokens: Some(b.answering_mean),
            },
            None => LengthEstimate::UNKNOWN,
        }
    }

    fn work_score(&self, req: &RequestSpec) -> f64 {
        self.estimate(req).total_tokens().unwrap_or(0.0)
    }

    fn predicts_oversized(&self, req: &RequestSpec, threshold_tokens: u32) -> bool {
        // Demote a whole dataset bucket only once its *tail* (tracked upper
        // quantile), not just its mean, has crossed the threshold; the mean
        // alone demotes too eagerly on heavy-tailed profiles.
        let t = f64::from(threshold_tokens);
        self.lookup(req)
            .is_some_and(|b| b.reasoning_mean > t || b.reasoning_upper_q > t)
    }

    fn observe(&mut self, completed: &RequestSpec) {
        let r = f64::from(completed.reasoning_tokens);
        let a = f64::from(completed.answering_tokens);
        self.buckets
            .entry(completed.dataset_key().to_owned())
            .or_insert_with(BucketStats::new)
            .update(r, a, self.alpha);
        self.global.update(r, a, self.alpha);
    }

    /// A mid-flight crossing is a right-censored observation: the final
    /// length is unknown but provably above `threshold_tokens`. Completions
    /// under load are survivorship-biased toward short requests, so without
    /// this signal the tracked upper quantile chronically under-estimates
    /// the tail. Only the quantile trackers move (a censored value would
    /// bias the means).
    fn observe_threshold_crossing(&mut self, req: &RequestSpec, threshold_tokens: u32) {
        let bound = f64::from(threshold_tokens) + 1.0;
        let bucket = self
            .buckets
            .entry(req.dataset_key().to_owned())
            .or_insert_with(BucketStats::new);
        bucket.update_quantile_censored(bound);
        self.global.update_quantile_censored(bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pascal_sim::{SimRng, SimTime};
    use pascal_workload::RequestId;

    fn req(id: u64, dataset: &str, reasoning: u32, answering: u32) -> RequestSpec {
        RequestSpec::new(RequestId(id), SimTime::ZERO, 64, reasoning, answering)
            .with_dataset(dataset)
    }

    #[test]
    fn cold_start_withholds_estimates() {
        let mut ema = ProfileEma::default();
        assert_eq!(
            ema.estimate(&req(0, "a", 100, 100)),
            LengthEstimate::UNKNOWN
        );
        for i in 0..ProfileEma::MIN_OBSERVATIONS - 1 {
            ema.observe(&req(i, "a", 100, 100));
        }
        assert!(!ema.estimate(&req(9, "a", 1, 1)).is_known());
        ema.observe(&req(8, "a", 100, 100));
        assert!(ema.estimate(&req(9, "a", 1, 1)).is_known());
    }

    #[test]
    fn unseen_dataset_falls_back_to_global() {
        let mut ema = ProfileEma::default();
        for i in 0..10 {
            ema.observe(&req(i, "a", 400, 40));
        }
        let est = ema.estimate(&req(99, "never-seen", 1, 1));
        assert!((est.reasoning_tokens.unwrap() - 400.0).abs() < 1e-6);
    }

    #[test]
    fn buckets_are_conditioned_on_dataset() {
        let mut ema = ProfileEma::default();
        for i in 0..20 {
            ema.observe(&req(2 * i, "short", 100, 50));
            ema.observe(&req(2 * i + 1, "long", 3000, 50));
        }
        let short = ema.estimate(&req(100, "short", 1, 1));
        let long = ema.estimate(&req(101, "long", 1, 1));
        assert!(short.reasoning_tokens.unwrap() < 200.0);
        assert!(long.reasoning_tokens.unwrap() > 2000.0);
        assert!(ema.work_score(&req(101, "long", 1, 1)) > ema.work_score(&req(100, "short", 1, 1)));
    }

    /// Property: on a stationary dataset the running mean converges to the
    /// true mean (within sampling noise) from any of several seeds.
    #[test]
    fn prop_converges_to_stationary_mean() {
        for seed in [1u64, 7, 42, 1234] {
            let mut rng = SimRng::seed_from(seed);
            // With alpha below 1/n the update rule degenerates to the true
            // running mean, which converges almost surely on a stationary
            // stream — the property under test.
            let mut ema = ProfileEma::new(1e-9);
            let true_mean = 900.0;
            let mu = pascal_sim::log_normal_mu_for_mean(true_mean, 0.5);
            for i in 0..4000 {
                let r = rng.log_normal(mu, 0.5).round().max(1.0) as u32;
                ema.observe(&req(i, "stationary", r, 10));
            }
            let est = ema
                .estimate(&req(u64::MAX, "stationary", 1, 1))
                .reasoning_tokens
                .expect("warmed up");
            let rel = (est - true_mean).abs() / true_mean;
            assert!(
                rel < 0.05,
                "seed {seed}: EMA {est:.1} not within 5% of stationary mean {true_mean}"
            );
        }
    }

    #[test]
    fn oversize_decision_follows_the_tail() {
        let mut ema = ProfileEma::default();
        // 80% short, 20% oversized: mean stays below a 2000 threshold but the
        // tracked 0.9-quantile must cross it.
        for i in 0..500 {
            let r = if i % 5 == 0 { 6000 } else { 300 };
            ema.observe(&req(i, "tailed", r, 10));
        }
        let probe = req(9999, "tailed", 1, 1);
        let mean = ema.estimate(&probe).reasoning_tokens.unwrap();
        assert!(mean < 2000.0, "mean {mean} should stay below threshold");
        assert!(
            ema.predicts_oversized(&probe, 2000),
            "upper quantile {:?} should cross 2000",
            ema.reasoning_upper_quantile(&probe)
        );
        assert!(!ema.predicts_oversized(&probe, 20_000));
    }

    #[test]
    fn censored_crossings_raise_the_tail_estimate() {
        let mut ema = ProfileEma::default();
        // Completions are survivorship-biased short: only 300-token requests
        // finish during the window.
        for i in 0..50 {
            ema.observe(&req(i, "biased", 300, 10));
        }
        let probe = req(9_999, "biased", 1, 1);
        assert!(!ema.predicts_oversized(&probe, 5_000));
        // Mid-flight crossings prove the tail exists even though no giant
        // has completed; the quantile tracker must follow.
        for i in 0..200 {
            ema.observe_threshold_crossing(&req(1_000 + i, "biased", 1, 1), 5_000);
        }
        assert!(
            ema.predicts_oversized(&probe, 5_000),
            "tracked q = {:?} should have crossed 5000",
            ema.reasoning_upper_quantile(&probe)
        );
        // Means stay driven by completions alone (censored values excluded).
        let mean = ema.estimate(&probe).reasoning_tokens.unwrap();
        assert!((mean - 300.0).abs() < 1e-6);
    }

    #[test]
    fn first_completion_keeps_censored_tail_bound() {
        let mut ema = ProfileEma::default();
        // Crossings establish the tail before anything completes …
        ema.observe_threshold_crossing(&req(0, "d", 1, 1), 5_000);
        // … and the first short completion must not erase that bound.
        for i in 0..10 {
            ema.observe(&req(1 + i, "d", 300, 10));
        }
        let q = ema
            .reasoning_upper_quantile(&req(99, "d", 1, 1))
            .expect("warm");
        assert!(
            q > 4_000.0,
            "first completion clobbered the tail bound: {q}"
        );
    }

    #[test]
    fn observe_sequences_are_deterministic() {
        let run = || {
            let mut ema = ProfileEma::default();
            for i in 0..200 {
                ema.observe(&req(
                    i,
                    if i % 3 == 0 { "a" } else { "b" },
                    (i as u32) * 7 % 900 + 1,
                    5,
                ));
            }
            format!("{ema:?}")
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn bad_alpha_rejected() {
        let _ = ProfileEma::new(0.0);
    }
}
