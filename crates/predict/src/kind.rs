//! Predictor selection: a small, copyable configuration enum.

use crate::ema::ProfileEma;
use crate::oracle::Oracle;
use crate::predictor::LengthPredictor;
use crate::quantile::QuantilePredictor;
use crate::rank::PairwiseRank;

/// Which length predictor a deployment runs. Lives in `SimConfig`; the
/// engine builds the stateful predictor from it at simulation start, so
/// configs stay `Clone + Copy`-friendly and every run begins from identical
/// (empty) predictor state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// Perfect information from the trace — the upper bound.
    Oracle,
    /// Per-dataset running mean / quantile estimator.
    ProfileEma,
    /// Pairwise learning-to-rank comparator (no absolute estimates).
    PairwiseRank,
    /// Per-dataset P² streaming-quantile estimator (median per phase class,
    /// upper quantile for demotion).
    Quantile,
}

impl PredictorKind {
    /// All kinds, in presentation order.
    pub const ALL: [PredictorKind; 4] = [
        PredictorKind::Oracle,
        PredictorKind::ProfileEma,
        PredictorKind::PairwiseRank,
        PredictorKind::Quantile,
    ];

    /// Builds a fresh predictor of this kind.
    #[must_use]
    pub fn build(self) -> Box<dyn LengthPredictor> {
        match self {
            PredictorKind::Oracle => Box::new(Oracle),
            PredictorKind::ProfileEma => Box::new(ProfileEma::default()),
            PredictorKind::PairwiseRank => Box::new(PairwiseRank::default()),
            PredictorKind::Quantile => Box::new(QuantilePredictor::default()),
        }
    }

    /// Display name, matching the predictor's `name()`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PredictorKind::Oracle => "Oracle",
            PredictorKind::ProfileEma => "EMA",
            PredictorKind::PairwiseRank => "Rank",
            PredictorKind::Quantile => "Quantile",
        }
    }

    /// The short CLI/JSON key accepted by [`PredictorKind::parse`].
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            PredictorKind::Oracle => "oracle",
            PredictorKind::ProfileEma => "ema",
            PredictorKind::PairwiseRank => "rank",
            PredictorKind::Quantile => "quantile",
        }
    }

    /// Parses a CLI-style name (`oracle` / `ema` / `rank` / `quantile`).
    ///
    /// # Errors
    ///
    /// Returns the unknown string back as the error.
    pub fn parse(s: &str) -> Result<PredictorKind, String> {
        PredictorKind::ALL
            .into_iter()
            .find(|k| k.key() == s)
            .ok_or_else(|| {
                format!("unknown predictor '{s}' (expected oracle, ema, rank or quantile)")
            })
    }
}

impl std::fmt::Display for PredictorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        for kind in PredictorKind::ALL {
            let cli = kind.name().to_lowercase();
            let cli = match cli.as_str() {
                "ema" | "rank" | "oracle" | "quantile" => cli,
                other => unreachable!("unexpected name {other}"),
            };
            assert_eq!(PredictorKind::parse(&cli), Ok(kind));
            assert_eq!(PredictorKind::parse(kind.key()), Ok(kind));
            assert_eq!(kind.build().name(), kind.name());
        }
        let err = PredictorKind::parse("magic").expect_err("unknown kind");
        assert!(err.contains("quantile"), "error lists quantile: {err}");
    }
}
