//! # pascal-predict — online output-length prediction
//!
//! PASCAL's scheduler, as published, is purely *reactive*: it learns a
//! request's phase when the boundary token appears and demotes oversized
//! reasoning requests only after their generated tokens cross the §IV-C
//! threshold. This crate adds the *predictive* layer: online estimators of
//! how many reasoning/answering tokens a request will generate, learned
//! from completed requests, which the engine and scheduler consume for
//! speculative demotion and predicted-KV-footprint placement.
//!
//! Four predictors behind one trait:
//!
//! * [`Oracle`] — reads the trace's hidden lengths; perfect information,
//!   the upper bound on what prediction can buy;
//! * [`ProfileEma`] — per-dataset running mean plus a tracked upper
//!   quantile, updated from every completion;
//! * [`PairwiseRank`] — a learning-to-rank comparator that only *orders*
//!   requests by predicted remaining work, never estimating absolute
//!   lengths;
//! * [`QuantilePredictor`] — per-dataset P² streaming quantiles: the
//!   median per phase class as the estimate (robust to the heavy tails
//!   that skew the EMA's mean), an upper quantile for demotion.
//!
//! All predictors are deterministic functions of their observation
//! sequence, preserving the engine's byte-identical-replay guarantee.
//!
//! # Examples
//!
//! ```
//! use pascal_predict::{LengthPredictor, PredictorKind};
//! use pascal_sim::SimTime;
//! use pascal_workload::{RequestId, RequestSpec};
//!
//! let mut predictor = PredictorKind::ProfileEma.build();
//! for i in 0..20 {
//!     let done = RequestSpec::new(RequestId(i), SimTime::ZERO, 64, 1200, 300)
//!         .with_dataset("Arena-Hard");
//!     predictor.observe(&done);
//! }
//! let incoming = RequestSpec::new(RequestId(99), SimTime::ZERO, 64, 1, 1)
//!     .with_dataset("Arena-Hard");
//! let est = predictor.estimate(&incoming);
//! assert!((est.reasoning_tokens.unwrap() - 1200.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ema;
mod kind;
mod oracle;
mod predictor;
mod quantile;
mod rank;

pub use ema::ProfileEma;
pub use kind::PredictorKind;
pub use oracle::Oracle;
pub use predictor::{LengthEstimate, LengthPredictor};
pub use quantile::{P2Quantile, QuantilePredictor};
pub use rank::PairwiseRank;
