//! The pairwise learning-to-rank predictor.

use std::collections::{BTreeMap, VecDeque};

use pascal_workload::RequestSpec;

use crate::predictor::{LengthEstimate, LengthPredictor};

/// Number of feature slots: bias, log-prompt, and dataset one-hot buckets.
const NUM_DATASET_SLOTS: usize = 14;
const NUM_FEATURES: usize = 2 + NUM_DATASET_SLOTS;

/// A completed request retained for pairwise training and score
/// calibration.
#[derive(Clone, Debug)]
struct Observation {
    features: [f64; NUM_FEATURES],
    actual_reasoning: u32,
    actual_total: u32,
}

/// Pairwise-rank predictor: learns to *order* requests by total output
/// length without ever estimating absolute lengths ("Ranking Before
/// Serving"-style). A linear scorer over cheap request features (bias,
/// log-prompt-length, dataset one-hot) is trained with perceptron updates on
/// every pair the new completion forms with a sliding window of recent
/// completions: whenever the score order disagrees with the actual length
/// order, the weights move to fix that pair.
///
/// Because it cannot produce token counts, [`LengthPredictor::estimate`]
/// returns [`LengthEstimate::UNKNOWN`] and predicted-footprint placement
/// falls back to current footprints. Speculative demotion still works, via
/// quantile matching: the window knows which fraction of recent completions
/// were oversized, and the request is flagged when its score lands in that
/// top fraction of window scores.
#[derive(Clone, Debug)]
pub struct PairwiseRank {
    weights: [f64; NUM_FEATURES],
    learning_rate: f64,
    window: VecDeque<Observation>,
    window_cap: usize,
    /// Stable dataset-tag → feature-slot interning (first come, first
    /// served; overflow tags share the last slot).
    dataset_slots: BTreeMap<String, usize>,
}

impl Default for PairwiseRank {
    fn default() -> Self {
        PairwiseRank::new(0.05, 64)
    }
}

impl PairwiseRank {
    /// Required score gap for a pair to count as correctly ordered.
    pub const MARGIN: f64 = 1.0;

    /// Creates a ranker with the given perceptron learning rate and
    /// training-window capacity.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not positive or `window_cap` is zero.
    #[must_use]
    pub fn new(learning_rate: f64, window_cap: usize) -> Self {
        assert!(
            learning_rate.is_finite() && learning_rate > 0.0,
            "learning rate must be positive"
        );
        assert!(window_cap > 0, "window capacity must be non-zero");
        PairwiseRank {
            weights: [0.0; NUM_FEATURES],
            learning_rate,
            window: VecDeque::with_capacity(window_cap),
            window_cap,
            dataset_slots: BTreeMap::new(),
        }
    }

    fn features(&mut self, req: &RequestSpec) -> [f64; NUM_FEATURES] {
        let mut f = [0.0; NUM_FEATURES];
        f[0] = 1.0;
        f[1] = f64::from(req.prompt_tokens + 1).ln();
        let next = self.dataset_slots.len().min(NUM_DATASET_SLOTS - 1);
        let slot = *self
            .dataset_slots
            .entry(req.dataset_key().to_owned())
            .or_insert(next);
        f[2 + slot] = 1.0;
        f
    }

    /// Features without interning new datasets (read-only scoring path).
    fn features_readonly(&self, req: &RequestSpec) -> [f64; NUM_FEATURES] {
        let mut f = [0.0; NUM_FEATURES];
        f[0] = 1.0;
        f[1] = f64::from(req.prompt_tokens + 1).ln();
        if let Some(&slot) = self.dataset_slots.get(req.dataset_key()) {
            f[2 + slot] = 1.0;
        }
        f
    }

    fn score(&self, features: &[f64; NUM_FEATURES]) -> f64 {
        self.weights
            .iter()
            .zip(features.iter())
            .map(|(w, x)| w * x)
            .sum()
    }
}

impl LengthPredictor for PairwiseRank {
    fn name(&self) -> &'static str {
        "Rank"
    }

    /// Always unknown: a ranker orders, it does not measure.
    fn estimate(&self, _req: &RequestSpec) -> LengthEstimate {
        LengthEstimate::UNKNOWN
    }

    fn work_score(&self, req: &RequestSpec) -> f64 {
        self.score(&self.features_readonly(req))
    }

    fn predicts_oversized(&self, req: &RequestSpec, threshold_tokens: u32) -> bool {
        // Quantile matching over the training window: if k of the recent
        // completions were actually oversized, flag `req` iff its score
        // beats the k-th largest window score. Uses only score *ordering*
        // plus the binary oversize labels of past completions.
        let k = self
            .window
            .iter()
            .filter(|o| o.actual_reasoning > threshold_tokens)
            .count();
        if k == 0 || self.window.len() < self.window_cap / 2 {
            return false;
        }
        if k == self.window.len() {
            // Every retained observation was oversized — a homogeneous
            // oversized workload, not an untrained scorer; flag everything.
            return true;
        }
        let mut scores: Vec<f64> = self
            .window
            .iter()
            .map(|o| self.score(&o.features))
            .collect();
        scores.sort_by(f64::total_cmp);
        let cutoff = scores[scores.len() - k];
        if cutoff <= scores[0] {
            // The scorer does not separate the window yet (e.g. untrained
            // all-equal scores); refusing beats flagging everything.
            return false;
        }
        self.work_score(req) >= cutoff
    }

    fn observe(&mut self, completed: &RequestSpec) {
        let features = self.features(completed);
        let actual_total = completed.output_tokens();
        // Pairwise perceptron pass against the retained window; updates
        // apply immediately so later pairs in the pass see the corrected
        // scorer (classic sequential perceptron).
        let lr = self.learning_rate;
        let mut new_score = self.score(&features);
        for other in &self.window {
            if other.actual_total == actual_total {
                continue;
            }
            let other_score = self.score(&other.features);
            let new_is_longer = actual_total > other.actual_total;
            // Margin-perceptron update: a pair counts as ordered only when
            // the score gap clears MARGIN. Without the margin, one `lr`
            // step flips a near-zero comparison and unorderable
            // within-dataset pairs drag the weights back to zero — the
            // scorer never accumulates real separations.
            let gap = if new_is_longer {
                new_score - other_score
            } else {
                other_score - new_score
            };
            if gap < Self::MARGIN {
                let sign = if new_is_longer { 1.0 } else { -1.0 };
                for (w, (f_new, f_old)) in self
                    .weights
                    .iter_mut()
                    .zip(features.iter().zip(other.features.iter()))
                {
                    *w += sign * lr * (f_new - f_old);
                }
                new_score = self.score(&features);
            }
        }
        if self.window.len() == self.window_cap {
            self.window.pop_front();
        }
        self.window.push_back(Observation {
            features,
            actual_reasoning: completed.reasoning_tokens,
            actual_total,
        });
    }

    /// A mid-flight threshold crossing is a labelled example the completion
    /// stream cannot deliver in time: the request is provably oversized
    /// *now*. Train it as longer than every retained sub-threshold
    /// completion and retain it with the crossing itself as a length lower
    /// bound.
    fn observe_threshold_crossing(&mut self, req: &RequestSpec, threshold_tokens: u32) {
        let features = self.features(req);
        let lr = self.learning_rate;
        let mut score = self.score(&features);
        for other in &self.window {
            if other.actual_reasoning > threshold_tokens {
                continue; // relative order among oversized is unknown here
            }
            let other_score = self.score(&other.features);
            if score - other_score < Self::MARGIN {
                for (w, (f_new, f_old)) in self
                    .weights
                    .iter_mut()
                    .zip(features.iter().zip(other.features.iter()))
                {
                    *w += lr * (f_new - f_old);
                }
                score = self.score(&features);
            }
        }
        if self.window.len() == self.window_cap {
            self.window.pop_front();
        }
        let bound = threshold_tokens.saturating_add(1);
        self.window.push_back(Observation {
            features,
            actual_reasoning: bound,
            actual_total: bound,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pascal_sim::SimTime;
    use pascal_workload::RequestId;

    fn req(id: u64, dataset: &str, prompt: u32, reasoning: u32, answering: u32) -> RequestSpec {
        RequestSpec::new(RequestId(id), SimTime::ZERO, prompt, reasoning, answering)
            .with_dataset(dataset)
    }

    #[test]
    fn never_estimates_absolute_lengths() {
        let mut rank = PairwiseRank::default();
        for i in 0..100 {
            rank.observe(&req(i, "a", 64, 500, 100));
        }
        assert_eq!(
            rank.estimate(&req(999, "a", 64, 1, 1)),
            LengthEstimate::UNKNOWN
        );
    }

    #[test]
    fn learns_to_order_datasets_by_length() {
        let mut rank = PairwiseRank::default();
        // "short" completes with ~200 total tokens, "long" with ~4000.
        for i in 0..150 {
            rank.observe(&req(2 * i, "short", 64, 150, 50));
            rank.observe(&req(2 * i + 1, "long", 64, 3500, 500));
        }
        let s = rank.work_score(&req(1000, "short", 64, 1, 1));
        let l = rank.work_score(&req(1001, "long", 64, 1, 1));
        assert!(
            l > s,
            "long-dataset score {l} must beat short-dataset score {s}"
        );
    }

    #[test]
    fn oversize_flag_matches_window_quantile() {
        let mut rank = PairwiseRank::default();
        for i in 0..200 {
            rank.observe(&req(2 * i, "short", 64, 200, 50));
            rank.observe(&req(2 * i + 1, "long", 64, 6000, 50));
        }
        // Half the window is oversized at threshold 2000 and "long" scores
        // higher, so a long-dataset request lands in the flagged fraction.
        assert!(rank.predicts_oversized(&req(1000, "long", 64, 1, 1), 2000));
        assert!(!rank.predicts_oversized(&req(1001, "short", 64, 1, 1), 2000));
        // Nothing in the window exceeds an enormous threshold.
        assert!(!rank.predicts_oversized(&req(1002, "long", 64, 1, 1), 100_000));
    }

    #[test]
    fn threshold_crossings_teach_the_ranker_without_completions() {
        // Nothing oversized ever completes (saturation survivorship bias);
        // only short completions plus mid-flight crossings of the "long"
        // dataset arrive. The ranker must still learn to flag it.
        let mut rank = PairwiseRank::default();
        for i in 0..120 {
            rank.observe(&req(2 * i, "short", 64, 200, 50));
            rank.observe_threshold_crossing(&req(2 * i + 1, "long", 64, 1, 1), 5000);
        }
        assert!(rank.predicts_oversized(&req(9_000, "long", 64, 1, 1), 5000));
        assert!(!rank.predicts_oversized(&req(9_001, "short", 64, 1, 1), 5000));
    }

    #[test]
    fn homogeneous_oversized_window_flags_everything() {
        // All-giant workload: the scorer cannot separate (nothing to rank
        // against), but 100% of observed completions were oversized, so the
        // quantile-matching rule must flag every arrival.
        let mut rank = PairwiseRank::default();
        for i in 0..80 {
            rank.observe(&req(i, "giants", 64, 7000 + (i as u32 % 50), 50));
        }
        assert!(rank.predicts_oversized(&req(9_000, "giants", 64, 1, 1), 5000));
    }

    #[test]
    fn cold_ranker_flags_nothing() {
        let rank = PairwiseRank::default();
        assert!(!rank.predicts_oversized(&req(0, "a", 64, 1, 1), 1));
    }

    #[test]
    fn observe_sequences_are_deterministic() {
        let run = || {
            let mut rank = PairwiseRank::default();
            for i in 0..300u64 {
                let ds = ["a", "b", "c"][(i % 3) as usize];
                rank.observe(&req(
                    i,
                    ds,
                    32 + (i as u32 % 128),
                    (i as u32 * 37) % 4000 + 1,
                    20,
                ));
            }
            format!("{:?}", rank.weights)
        };
        assert_eq!(run(), run());
    }
}
