//! Regenerates Fig. 5: answering-phase latency breakdown and SLO attainment
//! (oracle / FCFS / RR) for warm requests on a memory-capped instance.

use pascal_bench::{figure_header, smoke_count};
use pascal_core::experiments::fig05::{run, Fig05Params};
use pascal_core::report::{pct, render_table};

fn main() {
    figure_header(
        "Figure 5",
        "answering-phase latency breakdown and SLO attainment",
    );
    let rows = run(Fig05Params {
        count: smoke_count(Fig05Params::default().count),
        ..Fig05Params::default()
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.answering_tokens.to_string(),
                r.policy.clone(),
                format!("{:.2}", r.executed_s),
                format!("{:.2}", r.blocked_s),
                format!("{:.2}", r.preempted_s),
                format!("{:.2}", r.total_s),
                pct(r.slo_attainment),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "answering_tokens",
                "policy",
                "executed_s",
                "blocked_s",
                "preempted_s",
                "total_s",
                "slo_attainment",
            ],
            &table,
        )
    );

    let mean_attainment = |policy: &str| {
        let xs: Vec<f64> = rows
            .iter()
            .filter(|r| r.policy == policy)
            .map(|r| r.slo_attainment)
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    println!("paper: RR sustains near-oracle SLO attainment; FCFS collapses under blocking");
    println!(
        "ours : attainment oracle={} rr={} fcfs={}",
        pct(mean_attainment("Oracle")),
        pct(mean_attainment("RR")),
        pct(mean_attainment("FCFS")),
    );
}
