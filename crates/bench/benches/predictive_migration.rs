//! Regenerates the predictive-migration comparison: reactive Algorithm 2
//! vs the cost/benefit migration controller (Oracle and EMA predictors) on
//! the Arena-Hard chat mix at the high arrival rate.
//!
//! `PASCAL_BENCH_COUNT` overrides the trace size (the CI smoke step runs a
//! tiny trace so the experiment wiring cannot rot).

use pascal_bench::{figure_header, trace_count_override};
use pascal_core::experiments::predictive_migration::{run, PredictiveMigrationParams};
use pascal_core::report::render_table;

fn main() {
    figure_header(
        "Predictive migration",
        "Algorithm 2 with the KV-transfer cost vs predicted-remaining-service test (high rate)",
    );
    let mut params = PredictiveMigrationParams::default();
    if let Some(count) = trace_count_override() {
        params.count = count;
    }
    let rows = run(params);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let (p50, p99) = row
                .ttft
                .as_ref()
                .map_or((f64::NAN, f64::NAN), |t| (t.p50, t.p99));
            vec![
                row.policy.clone(),
                row.benefit_ratio
                    .map_or_else(|| "-".to_owned(), |r| format!("{r:.0}")),
                row.migrations.to_string(),
                row.vetoed.to_string(),
                row.landed_in_cpu.to_string(),
                format!("{:.3}", row.mean_stall_s),
                format!("{p50:.2}"),
                format!("{p99:.2}"),
                format!("{:.1}%", 100.0 * row.slo_violations),
                row.remaining_error_tokens
                    .map_or_else(|| "-".to_owned(), |e| format!("{e:.1}")),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "policy",
                "benefit ratio",
                "migrations",
                "vetoed",
                "cpu landings",
                "mean stall (s)",
                "TTFT p50 (s)",
                "p99 (s)",
                "SLO viol",
                "|rem err| (tok)",
            ],
            &table
        )
    );
}
