//! Regenerates the elasticity-under-failure comparison: a region outage
//! (drain warning → hard failure → recovery) on a two-region federation,
//! static vs predictive routing on the identical paired trace.
//!
//! `PASCAL_BENCH_COUNT` overrides the trace size (the CI smoke step runs a
//! tiny trace so the experiment wiring cannot rot).

use pascal_bench::{figure_header, trace_count_override};
use pascal_core::experiments::elasticity::{
    run, run_lead_time_sweep, ElasticityParams, LeadTimeParams,
};
use pascal_core::report::render_table;

fn main() {
    figure_header(
        "Elasticity under failure",
        "region outage on a two-region federation: static vs predictive routing, paired trace",
    );
    let mut params = ElasticityParams::default();
    if let Some(count) = trace_count_override() {
        params.count = count;
    }
    let rows = run(params);

    let opt = |x: Option<f64>| x.map_or_else(|| "-".to_owned(), |v| format!("{v:.2}"));
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let m = &row.metrics;
            vec![
                row.fed_router.to_string(),
                m.requests.to_string(),
                row.stranded.to_string(),
                row.rebalanced.to_string(),
                row.drains_completed.to_string(),
                opt(m.ttft_p99_s),
                opt(row.worst_region_p99_s),
                format!("{:.1}%", 100.0 * m.slo_violation_rate),
                m.migrations_cross_region.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "fed router",
                "completed",
                "stranded",
                "rebalanced",
                "drains done",
                "p99 TTFT (s)",
                "worst-region p99 (s)",
                "SLO viol",
                "cross-region",
            ],
            &table
        )
    );
    println!(
        "The outage preset drains the last region at 25% of the horizon, fails it at 45%\n\
         and restores it at 70%. Static routing pins that region's users to dead capacity\n\
         (they strand); predictive routing sees zero healthy instances and serves them\n\
         from the survivor, while drain-and-migrate moves residents out ahead of the\n\
         failure under the usual cost/benefit veto."
    );

    figure_header(
        "Scale-up lead time",
        "flash-crowd autoscaling: provisioning lead time vs SLO violations, paired trace",
    );
    let mut lead_params = LeadTimeParams::default();
    if let Some(count) = trace_count_override() {
        lead_params.count = count;
    }
    let lead_rows = run_lead_time_sweep(&lead_params);
    let lead_table: Vec<Vec<String>> = lead_rows
        .iter()
        .map(|row| {
            let m = &row.metrics;
            vec![
                format!("{:.1}", row.lead_s),
                m.requests.to_string(),
                format!("{:.1}%", 100.0 * m.slo_violation_rate),
                opt(m.ttft_p50_s),
                opt(m.ttft_p99_s),
                format!("{:.0}", m.throughput_tokens_per_s),
                row.autoscale_up.to_string(),
                row.autoscale_down.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "lead (s)",
                "completed",
                "SLO viol",
                "TTFT p50 (s)",
                "p99 (s)",
                "tok/s",
                "scale-ups",
                "scale-downs",
            ],
            &lead_table
        )
    );
    println!(
        "Every row serves the identical bursty trace against the identical scaler\n\
         thresholds; only how long a scale-up takes to deliver capacity varies. The\n\
         tail TTFT degrades as the provisioning window grows — the burst queues for\n\
         exactly as long as capacity is in flight."
    );
}
