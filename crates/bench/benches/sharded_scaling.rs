//! Regenerates the shard-scaling comparison: 1/2/4 scheduling domains at
//! fixed aggregate capacity (eight instances) × the three cross-shard
//! routers, on the mixed trace at medium and high load.
//!
//! `PASCAL_BENCH_COUNT` overrides the trace size (the CI smoke step runs a
//! tiny trace so the experiment wiring cannot rot).

use pascal_bench::{figure_header, trace_count_override};
use pascal_core::experiments::sharded_scaling::{run, ShardedScalingParams};
use pascal_core::report::render_table;

fn main() {
    figure_header(
        "Shard scaling",
        "cluster-of-shards partitioning at fixed aggregate capacity (router × shard count)",
    );
    let mut params = ShardedScalingParams::default();
    if let Some(count) = trace_count_override() {
        params.count = count;
    }
    let rows = run(params);

    let opt = |x: Option<f64>| x.map_or_else(|| "-".to_owned(), |v| format!("{v:.2}"));
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let m = &row.metrics;
            vec![
                row.level.clone(),
                row.predictor.clone(),
                row.shards.to_string(),
                if row.shards == 1 {
                    "-".to_owned()
                } else {
                    row.router.to_string()
                },
                opt(m.ttft_p50_s),
                opt(m.ttft_p99_s),
                format!("{:.1}%", 100.0 * m.slo_violation_rate),
                format!("{:.0}", m.throughput_tokens_per_s),
                m.migrations_launched.to_string(),
                m.migrations_cross_shard.to_string(),
                format!("{}..{}", row.routed_min, row.routed_max),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "rate",
                "predictor",
                "shards",
                "router",
                "TTFT p50 (s)",
                "p99 (s)",
                "SLO viol",
                "tok/s",
                "migr",
                "cross-shard",
                "routed min..max",
            ],
            &table
        )
    );
}
