//! Ablation: PASCAL's per-queue token quantum (paper default 500, §V-A).
//!
//! Small quanta preempt more (transfer churn, tail blocking); huge quanta
//! degenerate towards FCFS-like monopolization inside each queue.

use pascal_bench::{figure_header, smoke_count};
use pascal_core::experiments::ablations::{quantum_blocking_profile, quantum_sweep, SweepParams};
use pascal_core::report::{pct, render_table};

fn main() {
    figure_header(
        "Ablation",
        "PASCAL token quantum sweep (Arena-Hard, high rate)",
    );
    let rows = quantum_sweep(SweepParams {
        count: smoke_count(SweepParams::default().count),
        ..SweepParams::default()
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.value.to_string(),
                format!("{:.2}", r.mean_ttft_s),
                format!("{:.2}", r.p99_ttft_s),
                pct(r.slo_violation),
                format!("{:.2}", r.preemptions_per_request),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "quantum_tokens",
                "mean_ttft_s",
                "p99_ttft_s",
                "slo_violation",
                "preemptions/req",
            ],
            &table,
        )
    );

    println!("P99 blocking latency vs quantum (mixed reasoning-heavy trace):");
    for (quantum, p99) in quantum_blocking_profile(SweepParams {
        count: smoke_count(800),
        seed: 2026,
    }) {
        println!("  quantum {quantum:>5}: {p99:>7.2}s");
    }
    println!("\npaper default: 500 tokens per queue");
}
