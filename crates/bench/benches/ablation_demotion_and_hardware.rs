//! Ablations: PASCAL's conditional-demotion threshold (§IV-C, default 5000
//! tokens) and hardware sensitivity (§VII-flavoured H100 vs A100 study).

use pascal_bench::{figure_header, smoke_count};
use pascal_core::experiments::ablations::{demotion_sweep, hardware_comparison, SweepParams};
use pascal_core::report::{pct, render_table};

fn main() {
    figure_header(
        "Ablation",
        "demotion threshold sweep (mixed reasoning-heavy trace, high rate)",
    );
    let rows = demotion_sweep(SweepParams {
        count: smoke_count(SweepParams::default().count),
        ..SweepParams::default()
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                if r.value == u64::from(u32::MAX) {
                    "disabled".to_owned()
                } else {
                    r.value.to_string()
                },
                format!("{:.2}", r.mean_ttft_s),
                format!("{:.2}", r.p99_ttft_s),
                pct(r.slo_violation),
                format!("{:.2}", r.preemptions_per_request),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "demotion_threshold",
                "mean_ttft_s",
                "p99_ttft_s",
                "slo_violation",
                "preemptions/req",
            ],
            &table,
        )
    );
    println!("paper default: 5000 tokens\n");

    figure_header(
        "Sensitivity",
        "same trace on H100-96GB vs A100-80GB clusters (PASCAL)",
    );
    let rows = hardware_comparison(SweepParams {
        count: smoke_count(SweepParams::default().count),
        ..SweepParams::default()
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.gpu.clone(),
                format!("{:.2}", r.mean_ttft_s),
                format!("{:.2}", r.p99_ttft_s),
                pct(r.slo_violation),
                format!("{:.0}", r.throughput),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "gpu",
                "mean_ttft_s",
                "p99_ttft_s",
                "slo_violation",
                "tokens_per_s"
            ],
            &table,
        )
    );
}
