//! Regenerates Fig. 14: token-count distributions of the reasoning-heavy
//! problem-solving benchmarks (MATH-500, GPQA, LiveCodeBench).

use pascal_bench::{figure_header, smoke_count};
use pascal_core::experiments::fig08::{fig14_profiles, run};
use pascal_core::report::render_table;

fn main() {
    figure_header(
        "Figure 14",
        "token-count distributions of MATH-500, GPQA and LiveCodeBench",
    );
    let rows = run(&fig14_profiles(), smoke_count(10_000), 14);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.phase.clone(),
                format!("{:.2}", r.paper_mean),
                format!("{:.2}", r.sampled_mean),
                format!("{:.2}", r.sampled_std),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "phase",
                "paper_mean",
                "sampled_mean",
                "sampled_std"
            ],
            &table,
        )
    );

    // §V-D: reasoning tokens reach up to 8.48x the answering tokens.
    for pair in rows.chunks(2) {
        let ratio = pair[0].sampled_mean / pair[1].sampled_mean;
        println!(
            "{}: reasoning/answering ratio = {ratio:.2}x",
            pair[0].dataset
        );
    }
}
