//! Regenerates Fig. 11: answering-phase SLO violation rates (QoE < 0.95)
//! across arrival rates and schedulers.

use pascal_bench::{figure_header, smoke_count};
use pascal_core::experiments::fig11::{run, Fig11Params};
use pascal_core::report::{pct, render_table};

fn main() {
    figure_header("Figure 11", "SLO violation rates across arrival rates");
    let rows = run(Fig11Params {
        count: smoke_count(Fig11Params::default().count),
        ..Fig11Params::default()
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.level.to_string(),
                r.policy.clone(),
                pct(r.violation_rate),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["dataset", "rate", "policy", "slo_violation"], &table)
    );
    println!("paper: PASCAL achieves lower or comparable violation rates than both baselines");
}
