//! Microbenchmarks of the scheduler's hot paths: the event queue, the
//! placement algorithms (Algorithm 1/2), the decode latency model, and a
//! full small simulation — the engineering costs behind every figure.
//!
//! The offline workspace carries no criterion; a minimal warmup-then-measure
//! harness (median of timed batches) stands in.

use std::hint::black_box;
use std::time::Instant;

use pascal_cluster::InstanceStats;
use pascal_core::{run_simulation, SimConfig};
use pascal_model::{DecodeBatch, GpuSpec, LlmSpec, PerfModel};
use pascal_sched::{PascalConfig, SchedPolicy};
use pascal_sim::{EventQueue, SimTime};
use pascal_workload::{ArrivalProcess, DatasetMix, DatasetProfile, TraceBuilder};

/// Times `iters` calls of `f` per batch over `batches` batches and prints
/// the median per-call latency.
fn bench_function<R>(name: &str, batches: usize, iters: usize, mut f: impl FnMut() -> R) {
    // Warmup.
    for _ in 0..iters.max(1) {
        black_box(f());
    }
    let mut per_call: Vec<f64> = (0..batches)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    per_call.sort_by(f64::total_cmp);
    let median = per_call[per_call.len() / 2];
    let (value, unit) = if median >= 1e-3 {
        (median * 1e3, "ms")
    } else if median >= 1e-6 {
        (median * 1e6, "µs")
    } else {
        (median * 1e9, "ns")
    };
    println!("{name:<40} {value:>10.3} {unit}/iter  (median of {batches}x{iters})");
}

fn bench_event_queue() {
    let times: Vec<u64> = (0..10_000u64).map(|i| (i * 37) % 10_000).collect();
    bench_function("event_queue_push_pop_10k", 20, 5, || {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(*t + 10_000), i);
        }
        let mut n = 0usize;
        while q.pop().is_some() {
            n += 1;
        }
        n
    });
}

fn stats_pool(n: u32) -> Vec<InstanceStats> {
    (0..n)
        .map(|i| InstanceStats {
            instance: i,
            slo_ok: i % 3 != 0,
            kv_footprint_bytes: u64::from((i * 7919) % 1000) * 1_000_000,
            reasoning_count: (i * 31) % 40,
            fresh_answering_count: (i * 17) % 10,
            gpu_free_blocks: Some(u64::from((i * 13) % 2000)),
            predicted_future_kv_bytes: 0,
        })
        .collect()
}

fn bench_placement() {
    let policy = SchedPolicy::pascal(PascalConfig::default());
    let stats = stats_pool(64);
    bench_function("algorithm1_place_64_instances", 20, 10_000, || {
        black_box(policy.place_new_request(black_box(&stats)))
    });
    bench_function("algorithm2_migrate_64_instances", 20, 10_000, || {
        black_box(policy.migration_decision(0, 100, black_box(&stats)))
    });
}

fn bench_perf_model() {
    let perf = PerfModel::new(
        LlmSpec::deepseek_r1_distill_qwen_32b(),
        GpuSpec::h100_96gb(),
    );
    bench_function("decode_step_time", 20, 10_000, || {
        black_box(perf.decode_step_time(black_box(DecodeBatch {
            num_seqs: 128,
            total_context_tokens: 128 * 900,
        })))
    });
}

fn bench_small_simulation() {
    let count = pascal_bench::smoke_count(100);
    let trace = TraceBuilder::new(DatasetMix::single(DatasetProfile::alpaca_eval2()))
        .arrivals(ArrivalProcess::poisson(8.0))
        .count(count)
        .seed(99)
        .build();
    let config = SimConfig::evaluation_cluster(SchedPolicy::pascal(PascalConfig::default()));
    bench_function(&format!("simulate_{count}_requests_pascal"), 10, 3, || {
        black_box(run_simulation(black_box(&trace), black_box(&config)))
    });
}

fn main() {
    println!("=== micro_scheduler_overhead — hot-path microbenchmarks ===");
    bench_event_queue();
    bench_placement();
    bench_perf_model();
    bench_small_simulation();
}
