//! Criterion microbenchmarks of the scheduler's hot paths: the event queue,
//! the placement algorithms (Algorithm 1/2), the decode latency model, and
//! a full small simulation — the engineering costs behind every figure.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use pascal_cluster::InstanceStats;
use pascal_core::{run_simulation, SimConfig};
use pascal_model::{DecodeBatch, GpuSpec, LlmSpec, PerfModel};
use pascal_sched::{PascalConfig, SchedPolicy};
use pascal_sim::{EventQueue, SimTime};
use pascal_workload::{ArrivalProcess, DatasetMix, DatasetProfile, TraceBuilder};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter_batched(
            || (0..10_000u64).map(|i| (i * 37) % 10_000).collect::<Vec<_>>(),
            |times| {
                let mut q = EventQueue::new();
                for (i, t) in times.iter().enumerate() {
                    q.schedule(SimTime::from_nanos(*t + 10_000), i);
                }
                let mut n = 0usize;
                while q.pop().is_some() {
                    n += 1;
                }
                black_box(n)
            },
            BatchSize::SmallInput,
        );
    });
}

fn stats_pool(n: u32) -> Vec<InstanceStats> {
    (0..n)
        .map(|i| InstanceStats {
            instance: i,
            slo_ok: i % 3 != 0,
            kv_footprint_bytes: u64::from((i * 7919) % 1000) * 1_000_000,
            reasoning_count: (i * 31) % 40,
            fresh_answering_count: (i * 17) % 10,
            gpu_free_blocks: Some(u64::from((i * 13) % 2000)),
        })
        .collect()
}

fn bench_placement(c: &mut Criterion) {
    let policy = SchedPolicy::pascal(PascalConfig::default());
    let stats = stats_pool(64);
    c.bench_function("algorithm1_place_64_instances", |b| {
        b.iter(|| black_box(policy.place_new_request(black_box(&stats))));
    });
    c.bench_function("algorithm2_migrate_64_instances", |b| {
        b.iter(|| black_box(policy.migration_decision(0, 100, black_box(&stats))));
    });
}

fn bench_perf_model(c: &mut Criterion) {
    let perf = PerfModel::new(
        LlmSpec::deepseek_r1_distill_qwen_32b(),
        GpuSpec::h100_96gb(),
    );
    c.bench_function("decode_step_time", |b| {
        b.iter(|| {
            black_box(perf.decode_step_time(black_box(DecodeBatch {
                num_seqs: 128,
                total_context_tokens: 128 * 900,
            })))
        });
    });
}

fn bench_small_simulation(c: &mut Criterion) {
    let trace = TraceBuilder::new(DatasetMix::single(DatasetProfile::alpaca_eval2()))
        .arrivals(ArrivalProcess::poisson(8.0))
        .count(100)
        .seed(99)
        .build();
    let config = SimConfig::evaluation_cluster(SchedPolicy::pascal(PascalConfig::default()));
    c.bench_function("simulate_100_requests_pascal", |b| {
        b.iter(|| black_box(run_simulation(black_box(&trace), black_box(&config))));
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_placement,
    bench_perf_model,
    bench_small_simulation
);
criterion_main!(benches);
