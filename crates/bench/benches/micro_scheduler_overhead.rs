//! Microbenchmarks of the scheduler's hot paths: the event queue, the
//! placement algorithms (Algorithm 1/2), the decode latency model, and a
//! full small simulation — the engineering costs behind every figure.
//!
//! The offline workspace carries no criterion; a minimal warmup-then-measure
//! harness (median of timed batches) stands in.

use std::hint::black_box;
use std::time::Instant;

use pascal_cluster::InstanceStats;
use pascal_core::bench_support::MonitorSweepFixture;
use pascal_core::{reconstruct, run_simulation, FederationPolicy, SimConfig, TelemetryConfig};
use pascal_model::{DecodeBatch, GpuSpec, LlmSpec, PerfModel};
use pascal_predict::PredictorKind;
use pascal_sched::{PascalConfig, RouterPolicy, SchedPolicy};
use pascal_sim::{EventQueue, HeapEventQueue, SimDuration, SimTime};
use pascal_workload::{ArrivalProcess, DatasetMix, DatasetProfile, TraceBuilder};

/// Times `iters` calls of `f` per batch over `batches` batches and prints
/// the median per-call latency.
fn bench_function<R>(name: &str, batches: usize, iters: usize, mut f: impl FnMut() -> R) {
    // Warmup.
    for _ in 0..iters.max(1) {
        black_box(f());
    }
    let mut per_call: Vec<f64> = (0..batches)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    per_call.sort_by(f64::total_cmp);
    let median = per_call[per_call.len() / 2];
    let (value, unit) = if median >= 1e-3 {
        (median * 1e3, "ms")
    } else if median >= 1e-6 {
        (median * 1e6, "µs")
    } else {
        (median * 1e9, "ns")
    };
    println!("{name:<40} {value:>10.3} {unit}/iter  (median of {batches}x{iters})");
}

fn bench_event_queue() {
    let times: Vec<u64> = (0..10_000u64).map(|i| (i * 37) % 10_000).collect();
    bench_function("event_queue_push_pop_10k", 20, 5, || {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(*t + 10_000), i);
        }
        let mut n = 0usize;
        while q.pop().is_some() {
            n += 1;
        }
        n
    });
}

/// The schedule/pop/cancel surface both queue implementations share, so
/// one steady-state harness can drive the calendar queue and the
/// reference binary heap side by side.
trait QueueOps: Default {
    type Id;
    fn now(&self) -> SimTime;
    fn schedule(&mut self, time: SimTime, payload: u64) -> Self::Id;
    fn pop(&mut self) -> Option<(SimTime, u64)>;
    fn cancel(&mut self, id: Self::Id) -> bool;
}

impl QueueOps for EventQueue<u64> {
    type Id = pascal_sim::EventId;
    fn now(&self) -> SimTime {
        EventQueue::now(self)
    }
    fn schedule(&mut self, time: SimTime, payload: u64) -> Self::Id {
        EventQueue::schedule(self, time, payload)
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        EventQueue::pop(self)
    }
    fn cancel(&mut self, id: Self::Id) -> bool {
        EventQueue::cancel(self, id)
    }
}

impl QueueOps for HeapEventQueue<u64> {
    type Id = pascal_sim::HeapEventId;
    fn now(&self) -> SimTime {
        HeapEventQueue::now(self)
    }
    fn schedule(&mut self, time: SimTime, payload: u64) -> Self::Id {
        HeapEventQueue::schedule(self, time, payload)
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        HeapEventQueue::pop(self)
    }
    fn cancel(&mut self, id: Self::Id) -> bool {
        HeapEventQueue::cancel(self, id)
    }
}

/// Deterministic 64-bit LCG: enough entropy to spread event times, no
/// external crate, identical streams across queue implementations.
struct Lcg(u64);

impl Lcg {
    fn next_offset_ns(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % 1_000_000 + 1
    }
}

/// Steady-state queue-op costs at a fixed pending population: each
/// measured iteration pops the earliest event and schedules a
/// replacement (`pop+schedule`), or schedules an event and immediately
/// cancels it (`schedule+cancel`), so the queue holds `pending` events
/// throughout and the numbers reflect the op cost *at that depth* rather
/// than the cost of filling or draining.
fn bench_queue_ops_at<Q: QueueOps>(label: &str, pending: usize, iters: usize) {
    let mut rng = Lcg(0x9E37_79B9_7F4A_7C15);
    let mut q = Q::default();
    for i in 0..pending {
        let t = q.now() + SimDuration::from_nanos(rng.next_offset_ns());
        q.schedule(t, i as u64);
    }
    bench_function(
        &format!("{label}_pop+schedule_{pending}"),
        10,
        iters,
        || {
            let (_, payload) = q.pop().expect("steady-state queue never drains");
            let t = q.now() + SimDuration::from_nanos(rng.next_offset_ns());
            q.schedule(t, payload)
        },
    );
    bench_function(
        &format!("{label}_schedule+cancel_{pending}"),
        10,
        iters,
        || {
            let t = q.now() + SimDuration::from_nanos(rng.next_offset_ns());
            let id = q.schedule(t, u64::MAX);
            q.cancel(id)
        },
    );
}

/// Old queue vs new queue across pending depths 10^3..10^6. The depth
/// ladder is capped by `PASCAL_BENCH_COUNT` so the CI smoke run touches
/// one tiny depth instead of holding a million events.
fn bench_queue_ops() {
    let cap = pascal_bench::smoke_count(1_000_000);
    let ladder = [1_000usize, 10_000, 100_000, 1_000_000];
    let depths: Vec<usize> = if ladder.iter().any(|&n| n <= cap) {
        ladder.iter().copied().filter(|&n| n <= cap).collect()
    } else {
        vec![cap]
    };
    for &pending in &depths {
        // Enough iterations to cycle a meaningful fraction of the queue,
        // bounded so the 10^6 depth still finishes promptly.
        let iters = (pending * 4).clamp(1_000, 200_000);
        bench_queue_ops_at::<EventQueue<u64>>("calendar", pending, iters);
        bench_queue_ops_at::<HeapEventQueue<u64>>("binary_heap", pending, iters);
    }
}

fn stats_pool(n: u32) -> Vec<InstanceStats> {
    (0..n)
        .map(|i| InstanceStats {
            instance: i,
            slo_ok: i % 3 != 0,
            kv_footprint_bytes: u64::from((i * 7919) % 1000) * 1_000_000,
            reasoning_count: (i * 31) % 40,
            fresh_answering_count: (i * 17) % 10,
            gpu_free_blocks: Some(u64::from((i * 13) % 2000)),
            predicted_future_kv_bytes: 0,
        })
        .collect()
}

fn bench_placement() {
    let policy = SchedPolicy::pascal(PascalConfig::default());
    let stats = stats_pool(64);
    bench_function("algorithm1_place_64_instances", 20, 10_000, || {
        black_box(policy.place_new_request(black_box(&stats)))
    });
    bench_function("algorithm2_migrate_64_instances", 20, 10_000, || {
        black_box(policy.migration_decision(0, 100, black_box(&stats)))
    });
}

fn bench_perf_model() {
    let perf = PerfModel::new(
        LlmSpec::deepseek_r1_distill_qwen_32b(),
        GpuSpec::h100_96gb(),
    );
    bench_function("decode_step_time", 20, 10_000, || {
        black_box(perf.decode_step_time(black_box(DecodeBatch {
            num_seqs: 128,
            total_context_tokens: 128 * 900,
        })))
    });
}

/// The incremental stats cache vs the from-scratch member sweep it
/// replaced, priced on a real 4-shard, 32-instance PASCAL cluster frozen
/// mid-run (so rows have resident members, live pacer deadlines and
/// predictor history). Three costs: the all-hit sweep (pure cache-serve),
/// the advertised steady state (one dirty row per sweep — what a
/// single-instance event leaves behind), and the full recompute the hot
/// path paid before the cache existed.
fn bench_monitor_sweep() {
    let count = pascal_bench::smoke_count(4_000);
    let trace = TraceBuilder::new(DatasetMix::single(DatasetProfile::arena_hard()))
        .arrivals(ArrivalProcess::poisson(16.0))
        .count(count)
        .seed(42)
        .build();
    let mut config = SimConfig::evaluation_cluster(SchedPolicy::pascal(PascalConfig::default()))
        .with_shards(4, RouterPolicy::Predictive);
    config.num_instances = 32;
    config.predictor = Some(PredictorKind::Quantile);
    // Freeze a quarter of the way into the event stream: deep enough that
    // every instance carries members, early enough that nothing drained.
    let mut fixture = MonitorSweepFixture::new(&trace, &config, count.saturating_mul(8));
    println!(
        "monitor sweep fixture: {} resident requests across {} instances",
        fixture.resident_requests(),
        fixture.instances()
    );
    let mut buf: Vec<InstanceStats> = Vec::new();
    bench_function("monitor_sweep_cached_32inst", 20, 2_000, || {
        fixture.sweep_incremental(&mut buf);
        buf.len()
    });
    bench_function("monitor_sweep_one_dirty_32inst", 20, 2_000, || {
        fixture.sweep_one_dirty(&mut buf);
        buf.len()
    });
    bench_function("monitor_sweep_full_32inst", 20, 2_000, || {
        fixture.sweep_full(&mut buf);
        buf.len()
    });
}

/// Prices the latency-anatomy blame pass: replaying a busy federated
/// trace into per-request timelines. Reported both per-iteration and as
/// reconstruction throughput (trace events consumed per second), since
/// the pass is linear in trace length.
fn bench_blame_reconstruction() {
    let count = pascal_bench::smoke_count(2_000);
    let trace = TraceBuilder::new(DatasetMix::single(DatasetProfile::arena_hard()))
        .arrivals(ArrivalProcess::poisson(16.0))
        .count(count)
        .seed(21)
        .build();
    let mut config = SimConfig::evaluation_cluster(SchedPolicy::pascal(PascalConfig::default()))
        .with_shards(2, RouterPolicy::LeastLoaded)
        .with_regions(2, FederationPolicy::Nearest);
    config.telemetry = TelemetryConfig {
        trace: true,
        ..TelemetryConfig::default()
    };
    let out = run_simulation(&trace, &config);
    let events = out.telemetry.expect("trace enabled").events;
    println!(
        "blame fixture: {} trace events from {} requests",
        events.len(),
        count
    );
    bench_function("blame_reconstruct_trace", 10, 20, || {
        reconstruct(black_box(&events)).requests.len()
    });
    let reps = 50usize;
    let start = Instant::now();
    for _ in 0..reps {
        black_box(reconstruct(black_box(&events)));
    }
    let per_pass = start.elapsed().as_secs_f64() / reps as f64;
    println!(
        "blame_reconstruct_throughput                 {:>12.0} events/sec",
        events.len() as f64 / per_pass
    );
}

fn bench_small_simulation() {
    let count = pascal_bench::smoke_count(100);
    let trace = TraceBuilder::new(DatasetMix::single(DatasetProfile::alpaca_eval2()))
        .arrivals(ArrivalProcess::poisson(8.0))
        .count(count)
        .seed(99)
        .build();
    let config = SimConfig::evaluation_cluster(SchedPolicy::pascal(PascalConfig::default()));
    bench_function(&format!("simulate_{count}_requests_pascal"), 10, 3, || {
        black_box(run_simulation(black_box(&trace), black_box(&config)))
    });
}

fn main() {
    println!("=== micro_scheduler_overhead — hot-path microbenchmarks ===");
    bench_event_queue();
    bench_queue_ops();
    bench_monitor_sweep();
    bench_placement();
    bench_perf_model();
    bench_blame_reconstruction();
    bench_small_simulation();
}
