//! Regenerates Fig. 10: tail TTFT by 256-token reasoning bins at the high
//! arrival rate, with the paper's adaptive percentile rule.

use pascal_bench::{figure_header, smoke_count};
use pascal_core::experiments::fig10::{max_tail_reduction, run, Fig10Params};
use pascal_core::report::render_table;

fn main() {
    figure_header("Figure 10", "tail TTFT by reasoning-token bin (high rate)");
    let series = run(Fig10Params {
        count: smoke_count(Fig10Params::default().count),
        ..Fig10Params::default()
    });

    for dataset in ["AlpacaEval2.0", "Arena-Hard"] {
        println!("--- {dataset} ---");
        let mut rows: Vec<Vec<String>> = Vec::new();
        let of = |policy: &str| {
            series
                .iter()
                .find(|s| s.dataset == dataset && s.policy == policy)
                .expect("series exists")
        };
        let (fcfs, rr, pascal) = (of("FCFS"), of("RR"), of("PASCAL"));
        for bin in &fcfs.bins {
            let find = |s: &pascal_core::experiments::fig10::Fig10Series| {
                s.bins.iter().find(|b| b.bin_lo == bin.bin_lo).map_or_else(
                    || "-".to_owned(),
                    |b| format!("{:.1} ({})", b.value, b.stat),
                )
            };
            rows.push(vec![
                format!("{}-{}", bin.bin_lo, bin.bin_hi),
                bin.count.to_string(),
                format!("{:.1} ({})", bin.value, bin.stat),
                find(rr),
                find(pascal),
            ]);
        }
        println!(
            "{}",
            render_table(
                &["reasoning_bin", "n(FCFS)", "FCFS_s", "RR_s", "PASCAL_s"],
                &rows,
            )
        );
        let vs_fcfs = max_tail_reduction(fcfs, pascal).unwrap_or(0.0);
        let vs_rr = max_tail_reduction(rr, pascal).unwrap_or(0.0);
        println!(
            "max tail-TTFT reduction: {:.0}% vs FCFS, {:.0}% vs RR (paper: up to 61-72% vs FCFS, 29-33% vs RR)",
            vs_fcfs * 100.0,
            vs_rr * 100.0
        );
        println!();
    }
}
