//! Regenerates Fig. 13: the importance of phase-boundary migration
//! (PASCAL vs PASCAL(NoMigration)): TTFT, reasoning latency, P99 blocking
//! latency and SLO violations.

use pascal_bench::{figure_header, smoke_count};
use pascal_core::experiments::fig13::{run, Fig13Params};
use pascal_core::report::{pct, render_table};

fn main() {
    figure_header(
        "Figure 13",
        "PASCAL vs PASCAL(NoMigration): migration at phase boundaries",
    );
    let rows = run(Fig13Params {
        count: smoke_count(Fig13Params::default().count),
        ..Fig13Params::default()
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.level.to_string(),
                r.policy.clone(),
                format!("{:.2}", r.mean_ttft_s),
                format!("{:.2}", r.mean_reasoning_s),
                format!("{:.2}", r.p99_blocking_s),
                pct(r.slo_violation),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "rate",
                "variant",
                "mean_ttft_s",
                "mean_reasoning_s",
                "p99_blocking_s",
                "slo_violation",
            ],
            &table,
        )
    );
    println!(
        "paper: blocking latency reaches 27.39s without migration vs near zero with it,\n\
         while reasoning latency stays almost unchanged. In this reproduction the\n\
         blocking effect appears on the reasoning-heavy trace (see EXPERIMENTS.md)."
    );
}
