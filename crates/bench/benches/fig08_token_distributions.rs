//! Regenerates Fig. 8: reasoning/answering token-count distributions of the
//! chat traces (AlpacaEval2.0, Arena-Hard), with density histograms.

use pascal_bench::{figure_header, smoke_count};
use pascal_core::experiments::fig08::{fig08_profiles, run};
use pascal_core::report::render_table;

fn main() {
    figure_header(
        "Figure 8",
        "token-count distributions of AlpacaEval2.0 and Arena-Hard",
    );
    let rows = run(&fig08_profiles(), smoke_count(10_000), 8);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.phase.clone(),
                format!("{:.2}", r.paper_mean),
                format!("{:.2}", r.sampled_mean),
                format!("{:.2}", r.sampled_std),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "phase",
                "paper_mean",
                "sampled_mean",
                "sampled_std"
            ],
            &table,
        )
    );
    for r in &rows {
        println!("{} / {} (density, 250-token bins):", r.dataset, r.phase);
        println!("{}", r.histogram.render_ascii(48, 16));
    }
}
