//! Regenerates Fig. 9: absolute TTFT across arrival rates and schedulers
//! (summarized per cell; the paper plots the raw scatter).

use pascal_bench::{figure_header, smoke_count};
use pascal_core::experiments::fig09::{run, Fig09Params};
use pascal_core::report::render_table;

fn main() {
    figure_header(
        "Figure 9",
        "absolute TTFT vs reasoning length across rates and schedulers",
    );
    let rows = run(Fig09Params {
        count: smoke_count(Fig09Params::default().count),
        ..Fig09Params::default()
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.level.to_string(),
                r.policy.clone(),
                format!("{:.2}", r.ttft.mean),
                format!("{:.2}", r.ttft.p50),
                format!("{:.2}", r.ttft.p99),
                format!("{:.2}", r.ttft.max),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "rate",
                "policy",
                "mean_ttft_s",
                "p50_ttft_s",
                "p99_ttft_s",
                "max_ttft_s",
            ],
            &table,
        )
    );
    println!("paper: TTFT grows with rate; PASCAL keeps the distribution lowest, FCFS worst");
}
