//! Regenerates the federation comparison: 1/2/4 regions at fixed
//! aggregate capacity (eight instances) × the three federation routers,
//! on geo-skewed reasoning-heavy traffic at high load.
//!
//! `PASCAL_BENCH_COUNT` overrides the trace size (the CI smoke step runs a
//! tiny trace so the experiment wiring cannot rot).

use pascal_bench::{figure_header, trace_count_override};
use pascal_core::experiments::federated_scaling::{run, FederatedScalingParams};
use pascal_core::report::render_table;

fn main() {
    figure_header(
        "Federated scaling",
        "cross-cluster federation at fixed aggregate capacity (region router × region count)",
    );
    let mut params = FederatedScalingParams::default();
    if let Some(count) = trace_count_override() {
        params.count = count;
    }
    let rows = run(params);

    let opt = |x: Option<f64>| x.map_or_else(|| "-".to_owned(), |v| format!("{v:.2}"));
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let m = &row.metrics;
            vec![
                row.predictor.clone(),
                row.regions.to_string(),
                if row.regions == 1 {
                    "-".to_owned()
                } else {
                    row.fed_router.to_string()
                },
                opt(m.ttft_p50_s),
                opt(m.ttft_p99_s),
                format!("{:.1}%", 100.0 * m.slo_violation_rate),
                format!("{:.0}", m.throughput_tokens_per_s),
                m.migrations_launched.to_string(),
                m.migrations_cross_region.to_string(),
                row.nonlocal_arrivals.to_string(),
                row.spills.to_string(),
                format!("{}..{}", row.routed_min, row.routed_max),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "predictor",
                "regions",
                "fed router",
                "TTFT p50 (s)",
                "p99 (s)",
                "SLO viol",
                "tok/s",
                "migr",
                "cross-region",
                "nonlocal",
                "spills",
                "routed min..max",
            ],
            &table
        )
    );
    println!(
        "Origins follow the harmonic hot-region skew; `static` pins arrivals home, so its\n\
         hot region saturates while `nearest`/`predictive` spread the same request bodies.\n\
         Cross-region moves ride the WAN tier and are priced by the cost/benefit veto."
    );
}
