//! Regenerates Fig. 15: effectiveness of adaptive migration
//! (PASCAL vs PASCAL(NonAdaptive)): TTFT distributions, SLO violations per
//! rate, and end-to-end latency at the high rate.

use pascal_bench::{figure_header, smoke_count};
use pascal_core::experiments::fig15::{run, Fig15Params};
use pascal_core::report::{pct, render_table};

fn main() {
    figure_header(
        "Figure 15",
        "PASCAL vs PASCAL(NonAdaptive): adaptive migration",
    );
    let out = run(Fig15Params {
        count: smoke_count(Fig15Params::default().count),
        ..Fig15Params::default()
    });

    println!("(a)+(b) TTFT distribution and SLO violations per rate:");
    let table: Vec<Vec<String>> = out
        .by_rate
        .iter()
        .map(|r| {
            vec![
                r.level.to_string(),
                r.policy.clone(),
                format!("{:.2}", r.ttft.mean),
                format!("{:.2}", r.ttft.p50),
                format!("{:.2}", r.ttft.p99),
                pct(r.slo_violation),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "rate",
                "variant",
                "mean_ttft_s",
                "p50_ttft_s",
                "p99_ttft_s",
                "slo_violation"
            ],
            &table,
        )
    );

    println!("(c) end-to-end latency at the high rate:");
    let table: Vec<Vec<String>> = out
        .e2e
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                format!("{:.2}", r.e2e.mean),
                format!("{:.2}", r.e2e.p50),
                format!("{:.2}", r.e2e.p99),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["policy", "mean_e2e_s", "p50_e2e_s", "p99_e2e_s"], &table)
    );
    println!(
        "paper: similar TTFT distributions, but NonAdaptive's SLO violations climb to 7.45%\n\
         vs 0.69% at the high rate, with 20.1% worse median and 9.7% worse tail e2e latency"
    );
}
