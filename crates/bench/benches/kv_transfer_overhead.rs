//! Regenerates §V-C: KV-cache transfer overhead of phase-boundary
//! migrations under PASCAL at the high arrival rate.

use pascal_bench::{figure_header, smoke_count};
use pascal_core::experiments::kv_overhead::{run, KvOverheadParams};
use pascal_core::report::render_table;

fn main() {
    figure_header("Section V-C", "KV-cache transfer overhead of migrations");
    let rows = run(KvOverheadParams {
        count: smoke_count(KvOverheadParams::default().count),
        ..KvOverheadParams::default()
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.migrations.to_string(),
                format!("{:.1}%", r.migrated_fraction * 100.0),
                format!("{:.3}", r.mean_transfer_s),
                format!("{:.3}", r.p99_transfer_s),
                format!("{:.2}", r.mean_ttft_s),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "migrations",
                "migrated",
                "mean_transfer_s",
                "p99_transfer_s",
                "mean_ttft_s",
            ],
            &table,
        )
    );
    println!(
        "paper: P99 transfer latency 0.14s (AlpacaEval2.0) / 0.25s (Arena-Hard),\n\
         negligible against TTFTs of seconds to hundreds of seconds"
    );
}
