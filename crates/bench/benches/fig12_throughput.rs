//! Regenerates Fig. 12: serving throughput (all generated tokens over the
//! makespan) across arrival rates and schedulers.

use pascal_bench::{figure_header, smoke_count};
use pascal_core::experiments::fig12::{max_pascal_throughput_gap, run, Fig12Params};
use pascal_core::report::render_table;

fn main() {
    figure_header("Figure 12", "serving throughput across arrival rates");
    let rows = run(Fig12Params {
        count: smoke_count(Fig12Params::default().count),
        ..Fig12Params::default()
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.clone(),
                r.level.to_string(),
                r.policy.clone(),
                format!("{:.0}", r.throughput),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["dataset", "rate", "policy", "tokens_per_s"], &table)
    );
    println!(
        "max PASCAL throughput gap vs best baseline: {:.1}% (paper: no more than 3%)",
        max_pascal_throughput_gap(&rows) * 100.0
    );
}
