//! Regenerates Fig. 4: reasoning-phase latency breakdown (oracle / FCFS /
//! RR) on a single instance capped at 50% of oracle peak KV memory.

use pascal_bench::{figure_header, smoke_count};
use pascal_core::experiments::fig04::{run, Fig04Params};
use pascal_core::report::render_table;

fn main() {
    figure_header(
        "Figure 4",
        "reasoning-phase latency breakdown under 50% KV memory",
    );
    let rows = run(Fig04Params {
        count: smoke_count(Fig04Params::default().count),
        ..Fig04Params::default()
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.reasoning_tokens.to_string(),
                r.policy.clone(),
                format!("{:.2}", r.executed_s),
                format!("{:.2}", r.blocked_s),
                format!("{:.2}", r.preempted_s),
                format!("{:.2}", r.total_s),
                format!("{:.2}x", r.normalized),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "reasoning_tokens",
                "policy",
                "executed_s",
                "blocked_s",
                "preempted_s",
                "total_s",
                "vs_oracle",
            ],
            &table,
        )
    );

    let worst = |policy: &str| {
        rows.iter()
            .filter(|r| r.policy == policy)
            .map(|r| (r.reasoning_tokens, r.normalized))
            .fold(
                (0, 0.0f64),
                |acc, (t, n)| if n > acc.1 { (t, n) } else { acc },
            )
    };
    let (fcfs_at, fcfs_worst) = worst("FCFS");
    let (rr_at, rr_worst) = worst("RR");
    println!("paper: FCFS worst 5.14x at short reasoning; RR worst 1.75x at 2048 tokens");
    println!("ours : FCFS worst {fcfs_worst:.2}x at {fcfs_at} tokens; RR worst {rr_worst:.2}x at {rr_at} tokens");
}
