//! Regenerates the predictive-scheduling comparison: reactive PASCAL vs
//! PASCAL(Predictive-Oracle/EMA/Rank) on the chat and reasoning-heavy
//! mixes, with per-predictor calibration reports.

use pascal_bench::{figure_header, trace_count_override};
use pascal_core::experiments::predictive::{run, PredictiveParams};
use pascal_core::report::render_table;

fn main() {
    figure_header(
        "Predictive scheduling",
        "speculative demotion + predicted-footprint placement (high rate)",
    );
    let mut params = PredictiveParams::default();
    if let Some(count) = trace_count_override() {
        params.count = count;
    }
    let rows = run(params);

    for dataset in ["Arena-Hard", "Reasoning-Heavy"] {
        println!("--- {dataset} ---");
        let mut table: Vec<Vec<String>> = Vec::new();
        for row in rows.iter().filter(|r| r.dataset == dataset) {
            let (mean, p50, p99) = row
                .ttft
                .as_ref()
                .map_or((f64::NAN, f64::NAN, f64::NAN), |t| (t.mean, t.p50, t.p99));
            table.push(vec![
                row.policy.clone(),
                format!("{mean:.2}"),
                format!("{p50:.2}"),
                format!("{p99:.2}"),
                format!("{:.3}", row.mean_qoe),
                format!("{:.1}%", 100.0 * row.slo_violations),
                row.migrations.to_string(),
            ]);
        }
        println!(
            "{}",
            render_table(
                &[
                    "policy",
                    "TTFT mean (s)",
                    "p50 (s)",
                    "p99 (s)",
                    "mean QoE",
                    "SLO viol",
                    "migrations",
                ],
                &table
            )
        );
        for row in rows.iter().filter(|r| r.dataset == dataset) {
            if let Some(cal) = &row.calibration {
                println!("calibration {}: {cal}", row.policy);
            }
        }
        println!();
    }
}
