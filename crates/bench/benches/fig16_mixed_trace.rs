//! Regenerates Fig. 16: the reasoning-heavy mixed trace (50% Arena-Hard,
//! 50% MATH-500/GPQA/LiveCodeBench) at the high arrival rate.

use pascal_bench::{figure_header, smoke_count};
use pascal_core::experiments::fig16::{run, Fig16Params};
use pascal_core::report::{pct, render_table};

fn main() {
    figure_header(
        "Figure 16",
        "mixed reasoning-heavy trace: TTFT distribution and tails",
    );
    let rows = run(Fig16Params {
        count: smoke_count(Fig16Params::default().count),
        ..Fig16Params::default()
    });

    println!("(a) TTFT distribution and SLO violations:");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                format!("{:.2}", r.ttft.mean),
                format!("{:.2}", r.ttft.p50),
                format!("{:.2}", r.ttft.p99),
                pct(r.slo_violation),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "policy",
                "mean_ttft_s",
                "p50_ttft_s",
                "p99_ttft_s",
                "slo_violation"
            ],
            &table,
        )
    );

    println!("(b) tail TTFT by reasoning bin:");
    let fcfs = &rows[0];
    for bin in fcfs.tail_bins.iter().take(24) {
        let find = |r: &pascal_core::experiments::fig16::Fig16Row| {
            r.tail_bins
                .iter()
                .find(|b| b.bin_lo == bin.bin_lo)
                .map_or_else(|| "-".to_owned(), |b| format!("{:.1}", b.value))
        };
        println!(
            "  [{:>5}-{:<5}) FCFS={:>8.1} RR={:>8} PASCAL={:>8}",
            bin.bin_lo,
            bin.bin_hi,
            bin.value,
            find(&rows[1]),
            find(&rows[2]),
        );
    }
    println!(
        "paper: PASCAL cuts tail TTFT up to 70% vs FCFS for short reasoning; gains vs RR\n\
         shrink because short answering phases create little contention"
    );
}
