//! Intra-run parallel scaling: the stress-preset capacity cell (64 shards,
//! 128 instances, mixed trace at high load under PASCAL) executed at 1, 2
//! and 4 intra-run worker threads, reporting wall-clock speedup and
//! verifying the outputs are identical at every width.
//!
//! On a host with at least four cores the bench asserts the 4-thread
//! speedup reaches 1.8x — the windowed executor's reason to exist. Smaller
//! hosts print the table and skip the assert (there is nothing to win
//! without cores), as does any `PASCAL_BENCH_COUNT` below the full-size
//! floor (tiny traces spend their time in windows too short to amortize a
//! barrier).
//!
//! `PASCAL_BENCH_COUNT` overrides the trace size (the CI smoke step runs a
//! tiny trace so the wiring cannot rot).

use std::time::Instant;

use pascal_bench::{figure_header, smoke_count};
use pascal_core::report::render_table;
use pascal_core::run_simulation;
use pascal_core::sweep::SweepGrid;

/// Trace sizes below this skip the speedup assert: the run is too short to
/// amortize window setup, so the ratio is noise, not signal.
const ASSERT_FLOOR: usize = 20_000;

/// The 4-thread wall-clock speedup the windowed executor must deliver on
/// the stress cell when the host has the cores for it.
const MIN_SPEEDUP_AT_4: f64 = 1.8;

fn main() {
    figure_header(
        "Intra-run parallel scaling",
        "stress-preset cell at 1/2/4 intra-run worker threads (byte-identical outputs)",
    );
    let grid = SweepGrid::preset("stress").expect("stress preset exists");
    let mut spec = grid.expand().pop().expect("stress grid has one cell");
    spec.count = smoke_count(50_000);
    let trace = spec.trace();

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut baseline: Option<(String, f64)> = None;
    let mut speedup_at_4 = None;
    for threads in [1usize, 2, 4] {
        let mut config = spec.config();
        config.run_threads = threads;
        let started = Instant::now();
        let out = run_simulation(&trace, &config);
        let wall_s = started.elapsed().as_secs_f64();
        // The full deterministic output, not a summary: any divergence
        // between thread counts is a correctness bug, caught here byte
        // by byte.
        let digest = format!("{out:?}");
        let speedup = match &baseline {
            None => {
                baseline = Some((digest, wall_s));
                1.0
            }
            Some((reference, base_s)) => {
                assert_eq!(
                    reference, &digest,
                    "run_threads={threads} diverged from the sequential output"
                );
                base_s / wall_s
            }
        };
        if threads == 4 {
            speedup_at_4 = Some(speedup);
        }
        rows.push(vec![
            threads.to_string(),
            format!("{wall_s:.2}"),
            format!("{:.0}", out.records.len() as f64 / wall_s),
            format!("{speedup:.2}x"),
        ]);
    }
    println!(
        "{}",
        render_table(&["threads", "wall (s)", "req/s", "speedup"], &rows)
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = speedup_at_4.expect("the 4-thread leg always runs");
    if cores < 4 {
        println!("speedup assert skipped: host has {cores} cores (need 4)");
    } else if spec.count < ASSERT_FLOOR {
        println!(
            "speedup assert skipped: {} requests is below the {ASSERT_FLOOR} floor",
            spec.count
        );
    } else {
        assert!(
            speedup >= MIN_SPEEDUP_AT_4,
            "4-thread speedup {speedup:.2}x is below the {MIN_SPEEDUP_AT_4}x floor \
             on a {cores}-core host"
        );
        println!("4-thread speedup {speedup:.2}x (floor {MIN_SPEEDUP_AT_4}x) — ok");
    }
}
