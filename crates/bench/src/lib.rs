//! # pascal-bench — figure-regeneration harness
//!
//! Every bench target in `benches/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §5 for the index) by calling the corresponding
//! `pascal_core::experiments` module and rendering its rows. Run them all
//! with `cargo bench --workspace`, or one with e.g.
//! `cargo bench -p pascal-bench --bench fig10_tail_ttft`.
//!
//! This library only hosts the small shared helpers the bench mains use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints the standard header for a figure-regeneration bench.
pub fn figure_header(figure: &str, description: &str) {
    println!();
    println!("=== {figure} — {description} ===");
    println!();
}

/// Formats an optional seconds value.
#[must_use]
pub fn opt_secs(x: Option<f64>) -> String {
    x.map_or_else(|| "-".to_owned(), |v| format!("{v:.2}s"))
}

/// Trace-size override for smoke runs: the `PASCAL_BENCH_COUNT` environment
/// variable, when set. The CI smoke step uses it to run the experiment
/// wiring end-to-end on a tiny trace.
///
/// # Panics
///
/// Panics when the variable is set but not a positive integer — a silently
/// ignored typo would quietly turn the smoke run back into the full sweep.
#[must_use]
pub fn trace_count_override() -> Option<usize> {
    let raw = std::env::var("PASCAL_BENCH_COUNT").ok()?;
    match raw.parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => panic!("PASCAL_BENCH_COUNT must be a positive integer, got '{raw}'"),
    }
}

/// The trace size a bench should use: the `PASCAL_BENCH_COUNT` override
/// when set, otherwise the bench's own full-size default. Every bench
/// target routes its request count through this, so the CI smoke step can
/// shrink the entire suite uniformly.
#[must_use]
pub fn smoke_count(default: usize) -> usize {
    trace_count_override().unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_secs_formats() {
        assert_eq!(opt_secs(None), "-");
        assert_eq!(opt_secs(Some(1.25)), "1.25s");
    }

    #[test]
    fn smoke_count_falls_back_to_default() {
        // The test environment does not set PASCAL_BENCH_COUNT.
        if std::env::var("PASCAL_BENCH_COUNT").is_err() {
            assert_eq!(smoke_count(1234), 1234);
        }
    }
}
