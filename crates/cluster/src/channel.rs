//! Serialized bandwidth channels and the inter-node fabric.
//!
//! Transfers on a link are FIFO-serialized: a new transfer starts when the
//! link drains. The fabric gives every instance a full-duplex NIC; a KV
//! migration occupies the source's egress and the destination's ingress
//! simultaneously, so concurrent migrations into one target queue up behind
//! each other — the contention effect §V-C measures.

use pascal_model::LinkSpec;
use pascal_sim::SimTime;

/// A FIFO bandwidth channel (one direction of a link).
///
/// # Examples
///
/// ```
/// use pascal_cluster::BandwidthChannel;
/// use pascal_model::LinkSpec;
/// use pascal_sim::SimTime;
///
/// let mut ch = BandwidthChannel::new(LinkSpec::new(1e9, 0.0));
/// let (s1, f1) = ch.enqueue(SimTime::ZERO, 500_000_000); // 0.5 s
/// let (s2, _) = ch.enqueue(SimTime::ZERO, 1);            // queues behind
/// assert_eq!(s1, SimTime::ZERO);
/// assert_eq!(s2, f1);
/// ```
#[derive(Clone, Debug)]
pub struct BandwidthChannel {
    link: LinkSpec,
    busy_until: SimTime,
}

impl BandwidthChannel {
    /// A channel over `link`, idle at time zero.
    #[must_use]
    pub fn new(link: LinkSpec) -> Self {
        BandwidthChannel {
            link,
            busy_until: SimTime::ZERO,
        }
    }

    /// The underlying link.
    #[must_use]
    pub fn link(&self) -> LinkSpec {
        self.link
    }

    /// When the channel next becomes idle.
    #[must_use]
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Enqueues a `bytes`-sized transfer submitted at `now`; returns its
    /// `(start, finish)` times and occupies the channel until `finish`.
    pub fn enqueue(&mut self, now: SimTime, bytes: u64) -> (SimTime, SimTime) {
        let start = self.busy_until.max(now);
        let finish = start + self.link.transfer_time(bytes);
        self.busy_until = finish;
        (start, finish)
    }
}

/// Per-instance full-duplex NICs over a shared switch fabric.
#[derive(Clone, Debug)]
pub struct Fabric {
    link: LinkSpec,
    egress_busy: Vec<SimTime>,
    ingress_busy: Vec<SimTime>,
}

impl Fabric {
    /// A fabric connecting `instances` nodes with identical NICs.
    #[must_use]
    pub fn new(instances: usize, link: LinkSpec) -> Self {
        Fabric {
            link,
            egress_busy: vec![SimTime::ZERO; instances],
            ingress_busy: vec![SimTime::ZERO; instances],
        }
    }

    /// Number of attached instances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.egress_busy.len()
    }

    /// Whether the fabric connects no instances.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.egress_busy.is_empty()
    }

    /// The NIC link of every instance.
    #[must_use]
    pub fn link(&self) -> LinkSpec {
        self.link
    }

    /// When node `i`'s port next goes fully idle — the later of its egress
    /// and ingress horizons. Purely observational (telemetry gauge).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn busy_until(&self, i: usize) -> SimTime {
        self.egress_busy[i].max(self.ingress_busy[i])
    }

    /// Schedules a KV migration of `bytes` from `from` to `to` submitted at
    /// `now`. The transfer holds the source egress **and** destination
    /// ingress; it starts when both are free.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` or either index is out of range.
    pub fn migrate(
        &mut self,
        now: SimTime,
        from: usize,
        to: usize,
        bytes: u64,
    ) -> (SimTime, SimTime) {
        assert_ne!(from, to, "migration must change instance");
        let start = self.egress_busy[from].max(self.ingress_busy[to]).max(now);
        let finish = start + self.link.transfer_time(bytes);
        self.egress_busy[from] = finish;
        self.ingress_busy[to] = finish;
        (start, finish)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn serialized_transfers_queue() {
        let mut ch = BandwidthChannel::new(LinkSpec::new(100.0, 0.0));
        let (s1, f1) = ch.enqueue(SimTime::ZERO, 100); // 1 s
        let (s2, f2) = ch.enqueue(secs(0.5), 100); // queues
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(f1, secs(1.0));
        assert_eq!(s2, secs(1.0));
        assert_eq!(f2, secs(2.0));
    }

    #[test]
    fn idle_channel_starts_immediately() {
        let mut ch = BandwidthChannel::new(LinkSpec::new(100.0, 0.0));
        let (s, f) = ch.enqueue(secs(5.0), 100);
        assert_eq!(s, secs(5.0));
        assert_eq!(f, secs(6.0));
    }

    #[test]
    fn fabric_contends_on_shared_target() {
        // Two sources migrating into instance 2 at once must serialize on
        // its ingress — the §V-C contention scenario.
        let mut fabric = Fabric::new(3, LinkSpec::new(100.0, 0.0));
        let (s1, f1) = fabric.migrate(SimTime::ZERO, 0, 2, 100);
        let (s2, f2) = fabric.migrate(SimTime::ZERO, 1, 2, 100);
        assert_eq!((s1, f1), (SimTime::ZERO, secs(1.0)));
        assert_eq!((s2, f2), (secs(1.0), secs(2.0)));
    }

    #[test]
    fn fabric_disjoint_pairs_run_concurrently() {
        let mut fabric = Fabric::new(4, LinkSpec::new(100.0, 0.0));
        let (_, f1) = fabric.migrate(SimTime::ZERO, 0, 1, 100);
        let (s2, f2) = fabric.migrate(SimTime::ZERO, 2, 3, 100);
        assert_eq!(f1, secs(1.0));
        assert_eq!(s2, SimTime::ZERO);
        assert_eq!(f2, secs(1.0));
    }

    #[test]
    fn source_egress_also_serializes() {
        let mut fabric = Fabric::new(3, LinkSpec::new(100.0, 0.0));
        let (_, _) = fabric.migrate(SimTime::ZERO, 0, 1, 100);
        let (s2, _) = fabric.migrate(SimTime::ZERO, 0, 2, 100);
        assert_eq!(s2, secs(1.0), "second egress from node 0 must wait");
    }

    #[test]
    fn busy_until_reports_port_horizon() {
        let mut fabric = Fabric::new(3, LinkSpec::new(100.0, 0.0));
        assert_eq!(fabric.busy_until(2), SimTime::ZERO);
        let _ = fabric.migrate(SimTime::ZERO, 0, 2, 100);
        assert_eq!(fabric.busy_until(0), secs(1.0), "egress horizon");
        assert_eq!(fabric.busy_until(2), secs(1.0), "ingress horizon");
        assert_eq!(fabric.busy_until(1), SimTime::ZERO, "uninvolved port idle");
    }

    #[test]
    #[should_panic(expected = "must change instance")]
    fn self_migration_rejected() {
        let mut fabric = Fabric::new(2, LinkSpec::new(100.0, 0.0));
        let _ = fabric.migrate(SimTime::ZERO, 1, 1, 10);
    }
}
