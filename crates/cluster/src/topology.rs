//! The two-tier cluster topology: intra-shard fabric, inter-shard
//! interconnect.
//!
//! A *shard* is one scheduling domain — a pool of instances under one
//! scheduler, connected by the full-bandwidth migration [`Fabric`] of
//! §V-A. Above the shards sits a second, slower tier: the inter-shard
//! interconnect that cross-shard migrations ride. [`Topology`] owns that
//! tier's contention state (one full-duplex port per shard, exactly like
//! the per-instance NICs of the intra-shard fabric) and exposes the link
//! specs of both tiers, so the migration controller's cost/benefit test
//! naturally prices a cross-shard move higher than an intra-shard one:
//! same bytes, lower bandwidth, higher setup latency.

use pascal_model::LinkSpec;
use pascal_sim::{SimDuration, SimTime};

use crate::channel::Fabric;

/// The cluster's two-tier interconnect description and the inter-shard
/// tier's contention state.
///
/// # Examples
///
/// ```
/// use pascal_cluster::Topology;
/// use pascal_model::LinkSpec;
///
/// let topo = Topology::two_tier(2, LinkSpec::fabric_100gbps(), LinkSpec::interconnect_25gbps());
/// let bytes = 512 * 1024 * 1024;
/// // The slower tier makes the identical transfer strictly more expensive.
/// assert!(topo.cross_transfer_time(bytes) > topo.intra_link().transfer_time(bytes));
/// ```
#[derive(Clone, Debug)]
pub struct Topology {
    intra: LinkSpec,
    /// One full-duplex interconnect port per shard; cross-shard transfers
    /// hold the source shard's egress and the destination shard's ingress.
    inter: Fabric,
}

impl Topology {
    /// A topology of `shards` scheduling domains whose instances migrate
    /// over `intra` within a shard and over `inter` across shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn two_tier(shards: usize, intra: LinkSpec, inter: LinkSpec) -> Self {
        assert!(shards > 0, "topology needs at least one shard");
        Topology {
            intra,
            inter: Fabric::new(shards, inter),
        }
    }

    /// Number of shards connected by the interconnect tier.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.inter.len()
    }

    /// The intra-shard migration fabric link.
    #[must_use]
    pub fn intra_link(&self) -> LinkSpec {
        self.intra
    }

    /// The inter-shard interconnect link.
    #[must_use]
    pub fn inter_link(&self) -> LinkSpec {
        self.inter.link()
    }

    /// Builds one shard's intra-tier fabric over `instances` NICs.
    #[must_use]
    pub fn shard_fabric(&self, instances: usize) -> Fabric {
        Fabric::new(instances, self.intra)
    }

    /// Queueing-free service time of a cross-shard transfer — the figure
    /// the migration cost/benefit test prices a candidate move at.
    #[must_use]
    pub fn cross_transfer_time(&self, bytes: u64) -> SimDuration {
        self.inter.link().transfer_time(bytes)
    }

    /// Schedules a cross-shard KV migration of `bytes` from `from_shard`
    /// to `to_shard` submitted at `now`, holding the source's interconnect
    /// egress and the destination's ingress; returns `(start, finish)`.
    ///
    /// # Panics
    ///
    /// Panics if `from_shard == to_shard` or either index is out of range.
    pub fn cross_migrate(
        &mut self,
        now: SimTime,
        from_shard: usize,
        to_shard: usize,
        bytes: u64,
    ) -> (SimTime, SimTime) {
        self.inter.migrate(now, from_shard, to_shard, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn topo() -> Topology {
        Topology::two_tier(3, LinkSpec::new(100.0, 0.0), LinkSpec::new(25.0, 0.0))
    }

    #[test]
    fn cross_tier_is_slower_than_intra() {
        let t = Topology::two_tier(
            2,
            LinkSpec::fabric_100gbps(),
            LinkSpec::interconnect_25gbps(),
        );
        for bytes in [0, 1 << 20, 1 << 30] {
            assert!(t.cross_transfer_time(bytes) > t.intra_link().transfer_time(bytes));
        }
    }

    #[test]
    fn interconnect_contends_on_shared_destination() {
        let mut t = topo();
        let (s1, f1) = t.cross_migrate(SimTime::ZERO, 0, 2, 25);
        let (s2, f2) = t.cross_migrate(SimTime::ZERO, 1, 2, 25);
        assert_eq!((s1, f1), (SimTime::ZERO, secs(1.0)));
        assert_eq!((s2, f2), (secs(1.0), secs(2.0)), "ingress serializes");
    }

    #[test]
    fn disjoint_shard_pairs_transfer_concurrently() {
        let mut t = Topology::two_tier(4, LinkSpec::new(100.0, 0.0), LinkSpec::new(25.0, 0.0));
        let (_, f1) = t.cross_migrate(SimTime::ZERO, 0, 1, 25);
        let (s2, _) = t.cross_migrate(SimTime::ZERO, 2, 3, 25);
        assert_eq!(f1, secs(1.0));
        assert_eq!(s2, SimTime::ZERO);
    }

    #[test]
    fn shard_fabric_uses_the_intra_link() {
        let t = topo();
        let fabric = t.shard_fabric(4);
        assert_eq!(fabric.len(), 4);
        assert_eq!(fabric.link(), t.intra_link());
        assert_eq!(t.num_shards(), 3);
    }

    #[test]
    #[should_panic(expected = "must change instance")]
    fn same_shard_cross_migration_rejected() {
        let mut t = topo();
        let _ = t.cross_migrate(SimTime::ZERO, 1, 1, 10);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = Topology::two_tier(0, LinkSpec::new(1.0, 0.0), LinkSpec::new(1.0, 0.0));
    }
}
