//! Serving instances and the monitor snapshot the instance-level scheduler
//! consumes.
//!
//! An *instance* is "the unit of execution [that] manages a replica of the
//! model weights" (§IV): one GPU with its KV pool, a PCIe channel for
//! offload/reload, and a membership set of requests. The [`InstanceStats`]
//! snapshot carries exactly the quantities Algorithms 1 and 2 read:
//! `t_i` (answering SLO health), `m_i` (GPU+CPU KV footprint), `r_i`
//! (reasoning requests in the high-priority queue) and `a_i` (answering
//! requests still in their first quantum).

use pascal_model::{KvGeometry, LinkSpec};

use crate::channel::BandwidthChannel;
use crate::kv::KvPool;
use crate::slab::Members;

/// One GPU serving instance.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Cluster-wide index.
    pub id: u32,
    /// GPU-resident KV pool (bounded except in oracle mode).
    pub gpu: KvPool,
    /// CPU backing store for offloaded KV caches (unbounded accounting).
    pub cpu: KvPool,
    /// Host link used by offloads and reloads (FIFO-serialized).
    pub pcie: BandwidthChannel,
    /// Requests currently assigned to this instance (deterministic
    /// ascending-id order, each carrying its state-slab handle).
    pub members: Members,
    /// Whether a compute iteration is in flight.
    pub compute_busy: bool,
}

impl Instance {
    /// Creates an idle instance.
    ///
    /// `gpu_kv_capacity_bytes = None` gives the oracle's unbounded memory.
    #[must_use]
    pub fn new(
        id: u32,
        geometry: KvGeometry,
        gpu_kv_capacity_bytes: Option<u64>,
        pcie: LinkSpec,
    ) -> Self {
        let gpu = match gpu_kv_capacity_bytes {
            Some(bytes) => KvPool::bounded(geometry, bytes),
            None => KvPool::unbounded(geometry),
        };
        Instance {
            id,
            gpu,
            cpu: KvPool::unbounded(geometry),
            pcie: BandwidthChannel::new(pcie),
            members: Members::default(),
            compute_busy: false,
        }
    }

    /// Total KV bytes attributable to this instance across GPU and CPU —
    /// `m_i` in Algorithm 1.
    #[must_use]
    pub fn kv_footprint_bytes(&self) -> u64 {
        self.gpu.used_bytes() + self.cpu.used_bytes()
    }
}

/// Monitor snapshot of one instance, the input to the instance-level
/// scheduler (Fig. 6's "instance monitor").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InstanceStats {
    /// Instance index.
    pub instance: u32,
    /// `t_i`: whether every answering request currently meets its pacing
    /// SLO (token pacer not starved).
    pub slo_ok: bool,
    /// `m_i`: KV bytes held on GPU plus CPU.
    pub kv_footprint_bytes: u64,
    /// `r_i`: reasoning requests in the high-priority queue (demoted ones
    /// excluded — they live in the low-priority queue).
    pub reasoning_count: u32,
    /// `a_i`: answering requests that have not exhausted their first
    /// quantum.
    pub fresh_answering_count: u32,
    /// Free GPU KV blocks (`None` = unbounded oracle memory).
    pub gpu_free_blocks: Option<u64>,
    /// KV bytes the instance's in-flight requests are *predicted* to still
    /// grow by before completing (zero when no length predictor is active).
    /// Predictive placement ranks instances by current plus predicted
    /// footprint instead of the current footprint alone.
    pub predicted_future_kv_bytes: u64,
}

impl InstanceStats {
    /// Whether `blocks` more KV blocks would fit on the GPU right now.
    #[must_use]
    pub fn fits_blocks(&self, blocks: u64) -> bool {
        match self.gpu_free_blocks {
            None => true,
            Some(free) => free >= blocks,
        }
    }

    /// `m_i` extended with the predicted future growth: the ranking key of
    /// predictive Algorithm 1 placement. Without a predictor the second term
    /// is zero and this degenerates to the paper's plain KV footprint.
    #[must_use]
    pub fn predicted_total_kv_bytes(&self) -> u64 {
        self.kv_footprint_bytes
            .saturating_add(self.predicted_future_kv_bytes)
    }
}

/// Cluster-wide aggregate of a monitor sweep — the admission controller's
/// view of the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Number of instances in the pool.
    pub instances: usize,
    /// Instances whose answering requests are all on pace (`t_i` healthy).
    pub slo_healthy_instances: usize,
    /// Current KV bytes held across the pool (GPU + CPU).
    pub kv_bytes: u64,
    /// Current plus predicted-future KV bytes across the pool — the
    /// aggregate footprint predictive admission tests against the budget.
    pub predicted_kv_bytes: u64,
    /// Free GPU KV blocks across the pool (`None` = unbounded memory).
    pub free_gpu_blocks: Option<u64>,
    /// High-priority reasoning requests across the pool (`Σ r_i`) — the
    /// load term the cross-shard router ranks scheduling domains by.
    pub reasoning_count: u32,
}

impl PoolSnapshot {
    /// Aggregates per-instance monitor stats into the pool view.
    #[must_use]
    pub fn aggregate(stats: &[InstanceStats]) -> Self {
        let mut snap = PoolSnapshot {
            instances: stats.len(),
            slo_healthy_instances: 0,
            kv_bytes: 0,
            predicted_kv_bytes: 0,
            free_gpu_blocks: Some(0),
            reasoning_count: 0,
        };
        for s in stats {
            if s.slo_ok {
                snap.slo_healthy_instances += 1;
            }
            snap.reasoning_count += s.reasoning_count;
            snap.kv_bytes = snap.kv_bytes.saturating_add(s.kv_footprint_bytes);
            snap.predicted_kv_bytes = snap
                .predicted_kv_bytes
                .saturating_add(s.predicted_total_kv_bytes());
            snap.free_gpu_blocks = match (snap.free_gpu_blocks, s.gpu_free_blocks) {
                (Some(acc), Some(free)) => Some(acc + free),
                _ => None,
            };
        }
        snap
    }

    /// Whether every instance currently meets its answering SLO.
    #[must_use]
    pub fn all_slo_healthy(&self) -> bool {
        self.slo_healthy_instances == self.instances
    }

    /// Merges several pool views into one — how a federated deployment
    /// rolls a region's per-shard snapshots up into the region aggregate
    /// its cross-region router and escape ranking consume.
    #[must_use]
    pub fn merge<'a>(pools: impl IntoIterator<Item = &'a PoolSnapshot>) -> Self {
        let mut total = PoolSnapshot {
            instances: 0,
            slo_healthy_instances: 0,
            kv_bytes: 0,
            predicted_kv_bytes: 0,
            free_gpu_blocks: Some(0),
            reasoning_count: 0,
        };
        for p in pools {
            total.instances += p.instances;
            total.slo_healthy_instances += p.slo_healthy_instances;
            total.kv_bytes = total.kv_bytes.saturating_add(p.kv_bytes);
            total.predicted_kv_bytes = total
                .predicted_kv_bytes
                .saturating_add(p.predicted_kv_bytes);
            total.free_gpu_blocks = match (total.free_gpu_blocks, p.free_gpu_blocks) {
                (Some(acc), Some(free)) => Some(acc + free),
                _ => None,
            };
            total.reasoning_count += p.reasoning_count;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pascal_sim::SimTime;

    fn geo() -> KvGeometry {
        KvGeometry::new(16, 262_144)
    }

    #[test]
    fn bounded_instance_reports_footprint() {
        let mut inst = Instance::new(
            0,
            geo(),
            Some(geo().block_bytes() * 100),
            LinkSpec::pcie5_x16(),
        );
        inst.gpu.alloc(10);
        inst.cpu.alloc(5);
        assert_eq!(inst.kv_footprint_bytes(), 15 * geo().block_bytes());
    }

    #[test]
    fn oracle_instance_has_unbounded_gpu() {
        let inst = Instance::new(0, geo(), None, LinkSpec::pcie5_x16());
        assert_eq!(inst.gpu.capacity_blocks(), None);
    }

    #[test]
    fn stats_fits_handles_bounded_and_unbounded() {
        let bounded = InstanceStats {
            instance: 0,
            slo_ok: true,
            kv_footprint_bytes: 0,
            reasoning_count: 0,
            fresh_answering_count: 0,
            gpu_free_blocks: Some(5),
            predicted_future_kv_bytes: 0,
        };
        assert!(bounded.fits_blocks(5));
        assert!(!bounded.fits_blocks(6));
        let oracle = InstanceStats {
            gpu_free_blocks: None,
            ..bounded
        };
        assert!(oracle.fits_blocks(u64::MAX));
    }

    #[test]
    fn pool_snapshot_aggregates_and_handles_unbounded() {
        let s = |slo, kv, pred, free| InstanceStats {
            instance: 0,
            slo_ok: slo,
            kv_footprint_bytes: kv,
            reasoning_count: 2,
            fresh_answering_count: 0,
            gpu_free_blocks: free,
            predicted_future_kv_bytes: pred,
        };
        let snap =
            PoolSnapshot::aggregate(&[s(true, 100, 50, Some(10)), s(false, 200, 0, Some(5))]);
        assert_eq!(snap.instances, 2);
        assert_eq!(snap.slo_healthy_instances, 1);
        assert!(!snap.all_slo_healthy());
        assert_eq!(snap.kv_bytes, 300);
        assert_eq!(snap.predicted_kv_bytes, 350);
        assert_eq!(snap.free_gpu_blocks, Some(15));
        assert_eq!(snap.reasoning_count, 4);
        // One unbounded instance makes the pool unbounded.
        let oracle = PoolSnapshot::aggregate(&[s(true, 0, 0, Some(3)), s(true, 0, 0, None)]);
        assert_eq!(oracle.free_gpu_blocks, None);
        // Empty pool aggregates to an empty snapshot.
        assert_eq!(PoolSnapshot::aggregate(&[]).instances, 0);
    }

    #[test]
    fn pool_snapshot_merge_rolls_shards_into_a_region() {
        let s = |slo, kv, pred, free| InstanceStats {
            instance: 0,
            slo_ok: slo,
            kv_footprint_bytes: kv,
            reasoning_count: 2,
            fresh_answering_count: 0,
            gpu_free_blocks: free,
            predicted_future_kv_bytes: pred,
        };
        let a = PoolSnapshot::aggregate(&[s(true, 100, 50, Some(10))]);
        let b = PoolSnapshot::aggregate(&[s(false, 200, 0, Some(5)), s(true, 50, 25, Some(1))]);
        let region = PoolSnapshot::merge([&a, &b]);
        assert_eq!(region.instances, 3);
        assert_eq!(region.slo_healthy_instances, 2);
        assert_eq!(region.kv_bytes, 350);
        assert_eq!(region.predicted_kv_bytes, 425);
        assert_eq!(region.free_gpu_blocks, Some(16));
        assert_eq!(region.reasoning_count, 6);
        // One unbounded shard makes the region unbounded; empty merge is
        // the empty snapshot.
        let oracle = PoolSnapshot::aggregate(&[s(true, 0, 0, None)]);
        assert_eq!(PoolSnapshot::merge([&a, &oracle]).free_gpu_blocks, None);
        assert_eq!(PoolSnapshot::merge([]).instances, 0);
    }

    #[test]
    fn pcie_channel_serializes_per_instance() {
        let mut inst = Instance::new(0, geo(), None, LinkSpec::new(100.0, 0.0));
        let (_, f1) = inst.pcie.enqueue(SimTime::ZERO, 100);
        let (s2, _) = inst.pcie.enqueue(SimTime::ZERO, 100);
        assert_eq!(s2, f1);
    }
}
