//! # pascal-cluster — the serving-instance substrate
//!
//! The stateful building blocks underneath the schedulers:
//!
//! * [`KvPool`] — block-granular paged KV memory (GPU bounded, CPU backing
//!   store), with the peak-usage tracking the "50% of oracle capacity"
//!   characterization configuration needs (§III-A);
//! * [`BandwidthChannel`] / [`Fabric`] — FIFO-serialized PCIe host links and
//!   the 100 Gbps inter-node migration fabric with ingress/egress contention
//!   (§V-C);
//! * [`TokenPacer`] — the §II-C pacer whose starvation state defines `t_i`
//!   in Algorithms 1 and 2;
//! * [`RequestState`] / [`KvLocation`] — per-request runtime state with the
//!   executed / blocked / preempted wall-time decomposition of Fig. 4/5;
//! * [`Instance`] / [`InstanceStats`] — the unit of execution and the
//!   monitor snapshot consumed by the instance-level scheduler (Fig. 6);
//! * [`Topology`] — the two-tier cluster interconnect: full-bandwidth
//!   migration fabric within a shard (scheduling domain), a slower
//!   contended interconnect between shards.
//!
//! # Examples
//!
//! ```
//! use pascal_cluster::{Instance, InstanceStats};
//! use pascal_model::{KvGeometry, LinkSpec};
//!
//! let geo = KvGeometry::new(16, 262_144);
//! let inst = Instance::new(0, geo, Some(geo.block_bytes() * 1000), LinkSpec::pcie5_x16());
//! assert_eq!(inst.gpu.capacity_blocks(), Some(1000));
//! assert_eq!(inst.kv_footprint_bytes(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod instance;
mod kv;
mod pacer;
mod slab;
mod state;
mod topology;

pub use channel::{BandwidthChannel, Fabric};
pub use instance::{Instance, InstanceStats, PoolSnapshot};
pub use kv::KvPool;
pub use pacer::TokenPacer;
pub use slab::{Members, ReqHandle, RequestSlab};
pub use state::{KvLocation, RequestState};
pub use topology::Topology;
