//! Mutable engine-side state of an in-flight request.
//!
//! [`RequestState`] tracks where the request's KV cache lives, its phase and
//! scheduling counters (round-robin quanta, demotion), and accumulates the
//! executed / blocked / preempted wall-time decomposition that Fig. 4 and
//! Fig. 5 report. When the request completes it collapses into a
//! [`pascal_metrics::RequestRecord`].

use pascal_metrics::{MigrationRecord, RequestRecord};
use pascal_sim::{SimDuration, SimTime};
use pascal_workload::{Phase, RequestSpec};

use crate::pacer::TokenPacer;

/// Where a request's KV cache currently lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KvLocation {
    /// No KV anywhere yet (waiting for admission / prefill).
    None,
    /// Resident in GPU HBM — the request can decode.
    Gpu,
    /// Offloaded to CPU memory — must be reloaded before decoding (§II-B).
    Cpu,
    /// In flight over PCIe towards CPU memory (preemption in progress).
    OffloadingToCpu,
    /// In flight over PCIe back to HBM.
    ReloadingToGpu,
    /// In flight over the fabric to another instance (§IV-B migration).
    Migrating,
}

/// Full runtime state of one request inside the serving engine.
///
/// Fields are public because the engine (in `pascal-core`) drives every
/// transition; the struct itself only owns the time-accounting invariants,
/// via [`RequestState::begin_running`] / [`RequestState::end_running`].
#[derive(Clone, Debug)]
pub struct RequestState {
    /// The immutable request description.
    pub spec: RequestSpec,
    /// Current phase (reasoning until the boundary token is produced).
    pub phase: Phase,
    /// Output tokens generated so far (reasoning + answering).
    pub tokens_generated: u32,
    /// Whether the prompt has been prefetched into KV (prefill done or warm).
    pub prefilled: bool,
    /// Where the KV cache lives.
    pub kv_location: KvLocation,
    /// Blocks currently held in the owning instance's GPU pool.
    pub held_gpu_blocks: u64,
    /// Blocks currently held in the owning instance's CPU pool.
    pub held_cpu_blocks: u64,
    /// Completed round-robin quanta (the RR priority key, §II-C).
    pub quanta_used: u32,
    /// Tokens generated inside the current quantum.
    pub tokens_in_quantum: u32,
    /// PASCAL's conditional demotion flag (§IV-C): a reasoning request whose
    /// KV exceeded the threshold is treated as low priority.
    pub demoted: bool,
    /// Token pacer for the answering stream (drives `t_i`).
    pub pacer: TokenPacer,
    /// Owning instance index.
    pub instance: u32,
    /// Generation timestamps of every output token.
    pub token_times: Vec<SimTime>,
    /// Accumulated in-iteration time.
    pub executed: SimDuration,
    /// Accumulated wait before first execution.
    pub blocked: SimDuration,
    /// Accumulated wait after first execution.
    pub preempted: SimDuration,
    /// Number of evictions suffered.
    pub num_preemptions: u32,
    /// First running time after the phase transition (Fig. 13(c)).
    pub answer_resume_time: Option<SimTime>,
    /// The phase-boundary migration, if one happened.
    pub migration: Option<MigrationRecord>,
    /// Instances executed on, in visit order.
    pub instances_visited: Vec<u32>,
    /// Whether the request is inside the currently running iteration.
    pub running: bool,
    /// Whether the request has ever run (blocked vs. preempted accounting).
    pub has_run: bool,
    /// Since when the KV cache has been continuously GPU-resident (`None`
    /// while not resident). Waits fully covered by residency are batching
    /// micro-gaps (e.g. another request's prefill iteration), which the
    /// paper's breakdown counts as executed time, not preemption.
    pub resident_since: Option<SimTime>,
    /// Start of the current accounting segment.
    segment_start: SimTime,
}

impl RequestState {
    /// Creates the state for a newly arrived request placed on `instance`.
    #[must_use]
    pub fn new(spec: RequestSpec, instance: u32, target_tpot: SimDuration) -> Self {
        let arrival = spec.arrival;
        let phase = spec.initial_phase();
        RequestState {
            prefilled: false,
            phase,
            tokens_generated: 0,
            kv_location: KvLocation::None,
            held_gpu_blocks: 0,
            held_cpu_blocks: 0,
            quanta_used: 0,
            tokens_in_quantum: 0,
            demoted: false,
            pacer: TokenPacer::new(target_tpot),
            instance,
            token_times: Vec::with_capacity(spec.output_tokens() as usize),
            executed: SimDuration::ZERO,
            blocked: SimDuration::ZERO,
            preempted: SimDuration::ZERO,
            num_preemptions: 0,
            answer_resume_time: None,
            migration: None,
            instances_visited: vec![instance],
            running: false,
            has_run: false,
            resident_since: None,
            segment_start: arrival,
            spec,
        }
    }

    /// KV tokens present once the request is prefilled: prompt plus
    /// generated output.
    #[must_use]
    pub fn context_tokens(&self) -> u64 {
        u64::from(self.spec.prompt_tokens) + u64::from(self.tokens_generated)
    }

    /// KV tokens the request needs resident to run its *next* iteration:
    /// context plus one token of growth headroom.
    #[must_use]
    pub fn tokens_needed_next(&self) -> u64 {
        self.context_tokens() + 1
    }

    /// Whether every output token has been generated.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.tokens_generated >= self.spec.output_tokens()
    }

    /// Whether the request still needs a prefill pass (cold requests only).
    #[must_use]
    pub fn needs_prefill(&self) -> bool {
        !self.prefilled && !self.spec.warm_start
    }

    /// Closes the current waiting segment and marks the request as running
    /// inside an iteration starting at `now`.
    ///
    /// The closed wait is classified as *blocked* (never ran), *executed*
    /// (ran before and stayed GPU-resident for the whole gap — a batching
    /// micro-gap, per Fig. 4's definition of executed time) or *preempted*
    /// (ran before but lost residency at some point).
    ///
    /// # Panics
    ///
    /// Panics if already running.
    pub fn begin_running(&mut self, now: SimTime) {
        assert!(!self.running, "{} began running twice", self.spec.id);
        let waited = now.saturating_since(self.segment_start);
        if !self.has_run {
            self.blocked += waited;
        } else if self.resident_since.is_some_and(|t| t <= self.segment_start) {
            self.executed += waited;
        } else {
            self.preempted += waited;
        }
        self.running = true;
        self.has_run = true;
        self.segment_start = now;
        if self.phase == Phase::Answering && self.answer_resume_time.is_none() {
            self.answer_resume_time = Some(now);
        }
    }

    /// Closes the running segment at `now` (iteration finished) and starts a
    /// waiting segment.
    ///
    /// # Panics
    ///
    /// Panics if not running.
    pub fn end_running(&mut self, now: SimTime) {
        assert!(self.running, "{} ended running while idle", self.spec.id);
        self.executed += now.saturating_since(self.segment_start);
        self.running = false;
        self.segment_start = now;
    }

    /// Finalizes accounting and produces the immutable record.
    ///
    /// # Panics
    ///
    /// Panics if the request is not finished or still running.
    #[must_use]
    pub fn into_record(self, completion: SimTime) -> RequestRecord {
        assert!(self.is_done(), "{} not finished", self.spec.id);
        assert!(!self.running, "{} still running", self.spec.id);
        let record = RequestRecord {
            spec: self.spec,
            token_times: self.token_times,
            completion,
            executed: self.executed,
            blocked: self.blocked,
            preempted: self.preempted,
            num_preemptions: self.num_preemptions,
            answer_resume_time: self.answer_resume_time,
            migration: self.migration,
            instances_visited: self.instances_visited,
        };
        record.assert_consistent();
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pascal_workload::RequestId;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn state() -> RequestState {
        let spec = RequestSpec::new(RequestId(0), secs(1.0), 128, 2, 2);
        RequestState::new(spec, 0, SimDuration::from_millis(100))
    }

    #[test]
    fn accounting_splits_blocked_and_preempted() {
        let mut st = state();
        // Waits 2 s before first run -> blocked.
        st.begin_running(secs(3.0));
        st.end_running(secs(3.5));
        // Waits 1 s mid-flight -> preempted.
        st.begin_running(secs(4.5));
        st.end_running(secs(5.0));
        assert!((st.blocked.as_secs_f64() - 2.0).abs() < 1e-9);
        assert!((st.preempted.as_secs_f64() - 1.0).abs() < 1e-9);
        assert!((st.executed.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn answer_resume_records_first_answering_run() {
        let mut st = state();
        st.begin_running(secs(2.0));
        st.end_running(secs(2.5));
        assert_eq!(st.answer_resume_time, None);
        st.phase = Phase::Answering;
        st.begin_running(secs(3.0));
        st.end_running(secs(3.5));
        assert_eq!(st.answer_resume_time, Some(secs(3.0)));
        // Not overwritten by later runs.
        st.begin_running(secs(4.0));
        st.end_running(secs(4.5));
        assert_eq!(st.answer_resume_time, Some(secs(3.0)));
    }

    #[test]
    fn tokens_needed_includes_growth_headroom() {
        let mut st = state();
        assert_eq!(st.tokens_needed_next(), 129);
        st.tokens_generated = 3;
        assert_eq!(st.tokens_needed_next(), 132);
    }

    #[test]
    fn record_roundtrip() {
        let mut st = state();
        st.begin_running(secs(2.0));
        st.prefilled = true;
        for i in 0..4 {
            st.tokens_generated += 1;
            st.token_times.push(secs(2.1 + 0.1 * f64::from(i)));
        }
        st.end_running(secs(2.5));
        let record = st.into_record(secs(2.5));
        assert_eq!(record.token_times.len(), 4);
        assert!((record.e2e_latency().as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "began running twice")]
    fn double_begin_rejected() {
        let mut st = state();
        st.begin_running(secs(2.0));
        st.begin_running(secs(3.0));
    }

    #[test]
    #[should_panic(expected = "not finished")]
    fn incomplete_record_rejected() {
        let st = state();
        let _ = st.into_record(secs(9.0));
    }

    #[test]
    fn warm_request_starts_in_answering() {
        let spec = RequestSpec::warm(RequestId(5), secs(0.0), 128, 4);
        let st = RequestState::new(spec, 2, SimDuration::from_millis(100));
        assert_eq!(st.phase, Phase::Answering);
        assert!(!st.needs_prefill());
    }
}
