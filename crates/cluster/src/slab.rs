//! Slab storage for in-flight request state, indexed by dense handles.
//!
//! The engine's hot path touches per-request state on every event; hashing
//! a `RequestId` into a `HashMap` on each touch (and re-hashing on every
//! lifecycle edge) was the dominant per-event cost. [`RequestSlab`] stores
//! the states in a plain vector with a free list; a [`ReqHandle`] is the
//! slot index, so every access is one bounds-checked array index.
//!
//! Handles are *shard-local and lifetime-scoped*: a handle is valid from
//! [`RequestSlab::insert`] until the matching [`RequestSlab::remove`], and
//! slots are reused afterwards. The engine only stores handles in places
//! whose lifetime is covered by the request's residency on the shard
//! (queued events, the current batch, membership lists); the one
//! deliberately defensive consumer — cross-shard escape candidates — pairs
//! the handle with the [`RequestId`] and re-checks identity before acting.
//!
//! [`Members`] is the companion membership list: the set of requests
//! assigned to an instance, kept sorted by request id so iteration yields
//! the same deterministic ascending-id order the previous
//! `BTreeSet<RequestId>` did, while carrying each request's handle so
//! membership walks skip the id→state lookup entirely.

use pascal_workload::RequestId;

use crate::state::RequestState;

/// Dense handle to a request state stored in a [`RequestSlab`].
///
/// Valid from insertion until the matching removal; slots are reused, so a
/// handle held across a removal may alias a different request (see the
/// module docs for the engine's validity discipline).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ReqHandle(u32);

impl ReqHandle {
    /// The raw slot index — for engine-side scratch tables indexed by slot.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Arena of [`RequestState`]s with free-list slot reuse.
#[derive(Default, Debug)]
pub struct RequestSlab {
    entries: Vec<Option<RequestState>>,
    free: Vec<u32>,
    len: usize,
}

impl RequestSlab {
    /// Creates an empty slab.
    #[must_use]
    pub fn new() -> Self {
        RequestSlab::default()
    }

    /// Stores `state` and returns its handle.
    pub fn insert(&mut self, state: RequestState) -> ReqHandle {
        self.len += 1;
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.entries[slot as usize].is_none());
                self.entries[slot as usize] = Some(state);
                ReqHandle(slot)
            }
            None => {
                let slot = u32::try_from(self.entries.len()).expect("slab slot overflow");
                self.entries.push(Some(state));
                ReqHandle(slot)
            }
        }
    }

    /// Removes and returns the state at `handle`, freeing the slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant (double remove / stale handle).
    pub fn remove(&mut self, handle: ReqHandle) -> RequestState {
        let state = self.entries[handle.index()]
            .take()
            .expect("removed a vacant slab slot");
        self.free.push(handle.0);
        self.len -= 1;
        state
    }

    /// The state at `handle`, or `None` if the slot is vacant.
    #[must_use]
    pub fn get(&self, handle: ReqHandle) -> Option<&RequestState> {
        self.entries.get(handle.index()).and_then(Option::as_ref)
    }

    /// Mutable access to the state at `handle`, or `None` if vacant.
    pub fn get_mut(&mut self, handle: ReqHandle) -> Option<&mut RequestState> {
        self.entries
            .get_mut(handle.index())
            .and_then(Option::as_mut)
    }

    /// Number of live states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no live states remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots ever allocated (live + free) — the sizing bound for
    /// slot-indexed scratch tables.
    #[must_use]
    pub fn slot_capacity(&self) -> usize {
        self.entries.len()
    }

    /// Iterates the live states in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (ReqHandle, &RequestState)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|st| (ReqHandle(i as u32), st)))
    }
}

impl std::ops::Index<ReqHandle> for RequestSlab {
    type Output = RequestState;

    fn index(&self, handle: ReqHandle) -> &RequestState {
        self.entries[handle.index()]
            .as_ref()
            .expect("indexed a vacant slab slot")
    }
}

impl std::ops::IndexMut<ReqHandle> for RequestSlab {
    fn index_mut(&mut self, handle: ReqHandle) -> &mut RequestState {
        self.entries[handle.index()]
            .as_mut()
            .expect("indexed a vacant slab slot")
    }
}

/// An instance's membership list: `(id, handle)` pairs kept sorted by
/// request id, so iteration is deterministic ascending-id order and each
/// entry already carries the slab handle.
#[derive(Clone, Debug, Default)]
pub struct Members {
    entries: Vec<(RequestId, ReqHandle)>,
}

impl Members {
    /// Adds a request.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `id` is already a member.
    pub fn insert(&mut self, id: RequestId, handle: ReqHandle) {
        let at = self.entries.partition_point(|&(m, _)| m < id);
        debug_assert!(
            self.entries.get(at).is_none_or(|&(m, _)| m != id),
            "{id} inserted twice"
        );
        self.entries.insert(at, (id, handle));
    }

    /// Removes a request, returning its handle (`None` if absent).
    pub fn remove(&mut self, id: RequestId) -> Option<ReqHandle> {
        let at = self.entries.binary_search_by_key(&id, |&(m, _)| m).ok()?;
        Some(self.entries.remove(at).1)
    }

    /// Iterates `(id, handle)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (RequestId, ReqHandle)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the instance has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pascal_sim::{SimDuration, SimTime};
    use pascal_workload::RequestSpec;

    fn state(id: u64) -> RequestState {
        let spec = RequestSpec::new(RequestId(id), SimTime::ZERO, 16, 2, 2);
        RequestState::new(spec, 0, SimDuration::from_millis(100))
    }

    #[test]
    fn slab_reuses_slots_and_tracks_len() {
        let mut slab = RequestSlab::new();
        let a = slab.insert(state(1));
        let b = slab.insert(state(2));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab[a].spec.id, RequestId(1));
        let removed = slab.remove(a);
        assert_eq!(removed.spec.id, RequestId(1));
        assert_eq!(slab.len(), 1);
        assert!(slab.get(a).is_none());
        // The freed slot is reused; capacity does not grow.
        let c = slab.insert(state(3));
        assert_eq!(c.index(), a.index());
        assert_eq!(slab.slot_capacity(), 2);
        assert_eq!(slab[b].spec.id, RequestId(2));
        assert_eq!(slab[c].spec.id, RequestId(3));
    }

    #[test]
    #[should_panic(expected = "vacant slab slot")]
    fn slab_double_remove_panics() {
        let mut slab = RequestSlab::new();
        let a = slab.insert(state(1));
        let _ = slab.remove(a);
        let _ = slab.remove(a);
    }

    #[test]
    fn members_iterate_in_ascending_id_order() {
        let mut slab = RequestSlab::new();
        let mut members = Members::default();
        for id in [5u64, 1, 9, 3] {
            let h = slab.insert(state(id));
            members.insert(RequestId(id), h);
        }
        let ids: Vec<u64> = members.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
        assert_eq!(members.len(), 4);
        let h3 = members.remove(RequestId(3)).expect("member exists");
        assert_eq!(slab[h3].spec.id, RequestId(3));
        assert_eq!(members.remove(RequestId(3)), None);
        let ids: Vec<u64> = members.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![1, 5, 9]);
    }
}
