//! Paged KV-cache pools.
//!
//! Each serving instance owns one GPU pool (bounded by HBM left over after
//! weights) and one CPU pool (effectively unbounded backing store for
//! offloaded requests, §II-B). Accounting is in whole blocks
//! ([`pascal_model::KvGeometry`]).

use pascal_model::KvGeometry;

/// A block-granular KV memory pool.
///
/// # Examples
///
/// ```
/// use pascal_cluster::KvPool;
/// use pascal_model::KvGeometry;
///
/// let geo = KvGeometry::new(16, 262_144);
/// let mut pool = KvPool::bounded(geo, geo.block_bytes() * 10);
/// assert_eq!(pool.capacity_blocks(), Some(10));
/// assert!(pool.try_alloc(4));
/// assert_eq!(pool.free_blocks(), Some(6));
/// pool.free(4);
/// assert_eq!(pool.used_blocks(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct KvPool {
    geometry: KvGeometry,
    capacity_blocks: Option<u64>,
    used_blocks: u64,
    peak_used_blocks: u64,
}

impl KvPool {
    /// A pool bounded by `capacity_bytes` (quantized down to whole blocks).
    #[must_use]
    pub fn bounded(geometry: KvGeometry, capacity_bytes: u64) -> Self {
        KvPool {
            geometry,
            capacity_blocks: Some(geometry.blocks_in(capacity_bytes)),
            used_blocks: 0,
            peak_used_blocks: 0,
        }
    }

    /// An unbounded pool — the oracle configuration of Fig. 2(a)/Fig. 4, or
    /// a CPU backing store.
    #[must_use]
    pub fn unbounded(geometry: KvGeometry) -> Self {
        KvPool {
            geometry,
            capacity_blocks: None,
            used_blocks: 0,
            peak_used_blocks: 0,
        }
    }

    /// The pool's block geometry.
    #[must_use]
    pub fn geometry(&self) -> KvGeometry {
        self.geometry
    }

    /// Capacity in blocks (`None` = unbounded).
    #[must_use]
    pub fn capacity_blocks(&self) -> Option<u64> {
        self.capacity_blocks
    }

    /// Blocks currently allocated.
    #[must_use]
    pub fn used_blocks(&self) -> u64 {
        self.used_blocks
    }

    /// High-water mark of allocated blocks — used to derive the paper's
    /// "50% of oracle capacity" configuration (§III-A).
    #[must_use]
    pub fn peak_used_blocks(&self) -> u64 {
        self.peak_used_blocks
    }

    /// Bytes currently allocated.
    #[must_use]
    pub fn used_bytes(&self) -> u64 {
        self.used_blocks * self.geometry.block_bytes()
    }

    /// Free blocks (`None` = unbounded).
    #[must_use]
    pub fn free_blocks(&self) -> Option<u64> {
        self.capacity_blocks.map(|c| c - self.used_blocks)
    }

    /// Whether `blocks` more blocks would fit right now.
    #[must_use]
    pub fn fits(&self, blocks: u64) -> bool {
        match self.capacity_blocks {
            None => true,
            Some(cap) => self.used_blocks + blocks <= cap,
        }
    }

    /// Allocates `blocks` if they fit; returns whether it did.
    pub fn try_alloc(&mut self, blocks: u64) -> bool {
        if self.fits(blocks) {
            self.used_blocks += blocks;
            self.peak_used_blocks = self.peak_used_blocks.max(self.used_blocks);
            true
        } else {
            false
        }
    }

    /// Allocates unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if the allocation exceeds capacity — callers must check first.
    pub fn alloc(&mut self, blocks: u64) {
        assert!(
            self.try_alloc(blocks),
            "KV pool overflow: used {} + {blocks} > cap {:?}",
            self.used_blocks,
            self.capacity_blocks
        );
    }

    /// Releases `blocks`.
    ///
    /// # Panics
    ///
    /// Panics if more blocks are freed than are allocated.
    pub fn free(&mut self, blocks: u64) {
        assert!(
            blocks <= self.used_blocks,
            "KV pool underflow: freeing {blocks} of {}",
            self.used_blocks
        );
        self.used_blocks -= blocks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn geo() -> KvGeometry {
        KvGeometry::new(16, 262_144)
    }

    #[test]
    fn bounded_pool_enforces_capacity() {
        let mut pool = KvPool::bounded(geo(), geo().block_bytes() * 4);
        assert!(pool.try_alloc(3));
        assert!(!pool.try_alloc(2));
        assert!(pool.try_alloc(1));
        assert_eq!(pool.free_blocks(), Some(0));
    }

    #[test]
    fn unbounded_pool_never_refuses() {
        let mut pool = KvPool::unbounded(geo());
        assert!(pool.try_alloc(1_000_000));
        assert_eq!(pool.free_blocks(), None);
        assert!(pool.fits(u64::MAX / 2));
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut pool = KvPool::unbounded(geo());
        pool.alloc(10);
        pool.free(8);
        pool.alloc(3);
        assert_eq!(pool.used_blocks(), 5);
        assert_eq!(pool.peak_used_blocks(), 10);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn overfree_panics() {
        let mut pool = KvPool::unbounded(geo());
        pool.alloc(1);
        pool.free(2);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overalloc_panics() {
        let mut pool = KvPool::bounded(geo(), geo().block_bytes());
        pool.alloc(2);
    }

    proptest! {
        /// Alloc/free sequences keep used within [0, capacity].
        #[test]
        fn prop_pool_invariants(ops in proptest::collection::vec((any::<bool>(), 1u64..50), 1..200)) {
            let mut pool = KvPool::bounded(geo(), geo().block_bytes() * 100);
            let mut shadow: u64 = 0;
            for (is_alloc, n) in ops {
                if is_alloc {
                    if pool.try_alloc(n) {
                        shadow += n;
                    }
                } else if shadow >= n {
                    pool.free(n);
                    shadow -= n;
                }
                prop_assert_eq!(pool.used_blocks(), shadow);
                prop_assert!(shadow <= 100);
            }
        }
    }
}
