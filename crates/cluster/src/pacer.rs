//! The token pacer (§II-C, Fig. 3).
//!
//! The pacer sits between generation and the user: bursts are buffered and
//! released at the target TPOT so preemption gaps are invisible as long as
//! the buffer holds out. Its online state answers the question PASCAL's
//! instance-level scheduler asks (Algorithm 1/2, `t_i`): *is every answering
//! request on this instance still generating fast enough to keep the user's
//! reading pace fed?*

use pascal_sim::{SimDuration, SimTime};

/// Online pacing state of one request's answering stream.
///
/// # Examples
///
/// ```
/// use pascal_cluster::TokenPacer;
/// use pascal_sim::{SimDuration, SimTime};
///
/// let mut pacer = TokenPacer::new(SimDuration::from_millis(100));
/// pacer.on_token(SimTime::ZERO);
/// pacer.on_token(SimTime::from_secs_f64(0.03)); // burst, gets buffered
/// assert!(pacer.is_on_pace(SimTime::from_secs_f64(0.1)));
/// // After 1 s the user expects 11 tokens but only 2 were generated.
/// assert!(!pacer.is_on_pace(SimTime::from_secs_f64(1.0)));
/// ```
#[derive(Clone, Debug)]
pub struct TokenPacer {
    target_tpot: SimDuration,
    stream_start: Option<SimTime>,
    generated: u64,
}

impl TokenPacer {
    /// A pacer releasing one token per `target_tpot`.
    ///
    /// # Panics
    ///
    /// Panics if `target_tpot` is zero.
    #[must_use]
    pub fn new(target_tpot: SimDuration) -> Self {
        assert!(
            target_tpot > SimDuration::ZERO,
            "target TPOT must be positive"
        );
        TokenPacer {
            target_tpot,
            stream_start: None,
            generated: 0,
        }
    }

    /// The pacing target.
    #[must_use]
    pub fn target_tpot(&self) -> SimDuration {
        self.target_tpot
    }

    /// Records a generated answering token. The first token starts the
    /// release schedule.
    ///
    /// # Panics
    ///
    /// Panics if tokens arrive out of order relative to the stream start.
    pub fn on_token(&mut self, now: SimTime) {
        match self.stream_start {
            None => self.stream_start = Some(now),
            Some(start) => assert!(now >= start, "pacer saw time move backwards"),
        }
        self.generated += 1;
    }

    /// Tokens generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Tokens the user expects to have consumed by `now` (one immediately at
    /// stream start, then one per TPOT). Zero before the stream starts.
    #[must_use]
    pub fn expected_by(&self, now: SimTime) -> u64 {
        match self.stream_start {
            None => 0,
            Some(start) => {
                if now < start {
                    0
                } else {
                    let elapsed = now.saturating_since(start).as_nanos();
                    1 + elapsed / self.target_tpot.as_nanos()
                }
            }
        }
    }

    /// Buffered surplus (positive) or starvation deficit (negative) in
    /// tokens at `now`.
    #[must_use]
    pub fn buffer_balance(&self, now: SimTime) -> i64 {
        let expected = self.expected_by(now).min(i64::MAX as u64) as i64;
        let generated = self.generated.min(i64::MAX as u64) as i64;
        generated - expected
    }

    /// Whether generation is keeping up with the user's expected pace —
    /// the per-request component of `t_i` in Algorithms 1 and 2.
    ///
    /// A stream that has not started yet (or has already generated every
    /// token it will need) is on pace by definition.
    #[must_use]
    pub fn is_on_pace(&self, now: SimTime) -> bool {
        self.buffer_balance(now) >= 0
    }

    /// The instant this stream falls behind if no further token arrives:
    /// `start + generated × TPOT`. For a started stream,
    /// [`is_on_pace`](TokenPacer::is_on_pace)`(now)` is exactly
    /// `now < on_pace_until()` — at any `now`, past or future. An
    /// unstarted stream returns `None`: on pace at every instant. This is
    /// what lets a cached SLO-health reading carry an exact expiry instead
    /// of being recomputed per query.
    #[must_use]
    pub fn on_pace_until(&self) -> Option<SimTime> {
        self.stream_start.map(|start| {
            start + SimDuration::from_nanos(self.generated * self.target_tpot.as_nanos())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn pacer_100ms() -> TokenPacer {
        TokenPacer::new(SimDuration::from_millis(100))
    }

    #[test]
    fn idle_pacer_is_on_pace() {
        let pacer = pacer_100ms();
        assert_eq!(pacer.expected_by(secs(100.0)), 0);
        assert!(pacer.is_on_pace(secs(100.0)));
    }

    #[test]
    fn expected_counts_from_stream_start() {
        let mut pacer = pacer_100ms();
        pacer.on_token(secs(2.0));
        assert_eq!(pacer.expected_by(secs(2.0)), 1);
        assert_eq!(pacer.expected_by(secs(2.05)), 1);
        assert_eq!(pacer.expected_by(secs(2.1)), 2);
        assert_eq!(pacer.expected_by(secs(2.95)), 10);
    }

    #[test]
    fn burst_builds_buffer_then_drains() {
        let mut pacer = pacer_100ms();
        for i in 0..10 {
            pacer.on_token(secs(1.0 + 0.01 * f64::from(i)));
        }
        // At t=1.1 user consumed 2, generated 10 => buffer 8.
        assert_eq!(pacer.buffer_balance(secs(1.1)), 8);
        assert!(pacer.is_on_pace(secs(1.85)));
        // At t=1.0 + 10*0.1 = 2.0 the user wants the 11th token: starved.
        assert!(!pacer.is_on_pace(secs(2.0)));
        assert_eq!(pacer.buffer_balance(secs(2.0)), -1);
    }

    #[test]
    fn exact_pace_stays_on_pace() {
        let mut pacer = pacer_100ms();
        for i in 0..50 {
            let t = secs(0.1 * f64::from(i));
            pacer.on_token(t);
            assert!(pacer.is_on_pace(t), "fell behind at token {i}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tpot_rejected() {
        let _ = TokenPacer::new(SimDuration::ZERO);
    }

    proptest! {
        /// Generating faster never makes the pacer fall off pace earlier.
        #[test]
        fn prop_more_tokens_never_hurt(
            gaps in proptest::collection::vec(0.0f64..0.5, 1..50),
            probe in 0.0f64..30.0,
        ) {
            let mut slow = pacer_100ms();
            let mut fast = pacer_100ms();
            let mut t = 1.0;
            for g in &gaps {
                t += g;
                slow.on_token(secs(t));
                fast.on_token(secs(t));
            }
            // `fast` gets one bonus token at the same final time.
            fast.on_token(secs(t));
            let at = secs(t + probe);
            prop_assert!(fast.buffer_balance(at) == slow.buffer_balance(at) + 1);
        }

        /// `on_pace_until` exactly characterizes `is_on_pace` at every
        /// probe time — the contract the engine's monitor-row cache
        /// expires against.
        #[test]
        fn prop_on_pace_until_matches_is_on_pace(
            gaps in proptest::collection::vec(0.0f64..0.5, 0..50),
            probe in 0.0f64..30.0,
        ) {
            let mut pacer = pacer_100ms();
            let mut t = 1.0;
            for g in &gaps {
                t += g;
                pacer.on_token(secs(t));
            }
            let at = secs(probe);
            let expected = match pacer.on_pace_until() {
                None => true,
                Some(flip) => at < flip,
            };
            prop_assert_eq!(pacer.is_on_pace(at), expected);
        }
    }
}
