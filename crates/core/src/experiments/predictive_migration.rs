//! Predictive migration — reactive Algorithm 2 vs the cost/benefit test.
//!
//! The paper migrates at every phase transition where Algorithm 2 finds a
//! better-loaded instance, regardless of whether the request has enough
//! remaining service to amortize the KV transfer. The predictive migration
//! controller vetoes transfers whose predicted remaining service (remaining
//! tokens × pacing target, from `pascal-predict`) is below a configurable
//! multiple of the transfer cost (from `pascal-model`'s link model). This
//! experiment sweeps that benefit ratio against the reactive baseline on a
//! shared trace and reports the divergence (vetoed decisions), migration
//! volume, post-transfer stalls, tail TTFT, SLO violations and the
//! calibration of the remaining-service predictions recorded at decision
//! time.

use pascal_metrics::{slo_violation_rate, LatencySummary, QoeParams, SLO_QOE_THRESHOLD};
use pascal_predict::PredictorKind;
use pascal_sched::{PascalConfig, PolicyKind, SchedPolicy};
use pascal_workload::{DatasetMix, MixPreset, Trace};

use crate::config::{RateLevel, SimConfig};
use crate::engine::{run_simulation, SimOutput};
use crate::sweep::{ScenarioSpec, SweepRunner};

/// One scheduler-variant row of the comparison.
#[derive(Clone, Debug)]
pub struct PredictiveMigrationRow {
    /// Scheduler variant name.
    pub policy: String,
    /// The benefit ratio the variant ran with (`None` = reactive).
    pub benefit_ratio: Option<f64>,
    /// Migrations launched onto the fabric.
    pub migrations: u64,
    /// Algorithm 2 decisions vetoed by the cost/benefit test.
    pub vetoed: u64,
    /// Transfers that landed in destination CPU memory.
    pub landed_in_cpu: u64,
    /// Mean post-transfer stall in seconds (landing → next execution).
    pub mean_stall_s: f64,
    /// TTFT summary (absent if nothing answered).
    pub ttft: Option<LatencySummary>,
    /// Fraction of requests below the QoE SLO threshold.
    pub slo_violations: f64,
    /// Mean absolute error of the remaining-service prediction at decision
    /// time, in tokens (`None` without predictions or migrations).
    pub remaining_error_tokens: Option<f64>,
}

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct PredictiveMigrationParams {
    /// Requests per trace.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
    /// Arrival-rate level (migrations abound at High).
    pub level: RateLevel,
    /// The aggressive benefit ratio of the sweep — large enough that some
    /// short-answer migrations stop paying for themselves.
    pub aggressive_ratio: f64,
}

impl Default for PredictiveMigrationParams {
    fn default() -> Self {
        PredictiveMigrationParams {
            count: 2000,
            seed: 2026,
            level: RateLevel::High,
            aggressive_ratio: 1000.0,
        }
    }
}

/// The chat mix whose phase-boundary migrations the paper's §V-C measures.
/// Alias for [`MixPreset::Arena`].
#[must_use]
pub fn migration_mix() -> DatasetMix {
    MixPreset::Arena.mix()
}

/// Runs one variant on the evaluation cluster: reactive PASCAL when
/// `benefit_ratio` is `None`, otherwise cost/benefit migration at that
/// ratio with `predictor` supplying remaining-service estimates.
#[must_use]
pub fn run_variant(
    trace: &Trace,
    predictor: Option<PredictorKind>,
    benefit_ratio: Option<f64>,
) -> SimOutput {
    let mut config = SimConfig::evaluation_cluster(SchedPolicy::pascal(PascalConfig::default()));
    config.predictor = predictor;
    if let Some(ratio) = benefit_ratio {
        config = config.with_predictive_migration(ratio);
    }
    run_simulation(trace, &config)
}

fn row(out: &SimOutput, benefit_ratio: Option<f64>) -> PredictiveMigrationRow {
    let qoe = QoeParams::paper_eval();
    let outcomes = out.migration_outcomes;
    let errors: Vec<f64> = out
        .migrations()
        .filter_map(|m| m.remaining_tokens_error())
        .collect();
    PredictiveMigrationRow {
        policy: out.policy_name.clone(),
        benefit_ratio,
        migrations: outcomes.launched,
        vetoed: outcomes.vetoed_by_cost,
        landed_in_cpu: outcomes.landed_in_cpu,
        mean_stall_s: if outcomes.launched == 0 {
            0.0
        } else {
            outcomes.total_stall.as_secs_f64() / outcomes.launched as f64
        },
        ttft: LatencySummary::from_values(
            out.records
                .iter()
                .filter_map(|r| r.ttft().map(|d| d.as_secs_f64())),
        ),
        slo_violations: slo_violation_rate(&out.records, &qoe, SLO_QOE_THRESHOLD),
        remaining_error_tokens: if errors.is_empty() {
            None
        } else {
            Some(errors.iter().sum::<f64>() / errors.len() as f64)
        },
    }
}

/// Runs the sweep: reactive baseline, an Oracle-informed run with the cost
/// test at break-even (ratio 1), the aggressive ratio under Oracle and
/// under the learned EMA predictor. All cells carry the same trace seed —
/// one shared trace — so the comparison is paired, and the cells execute
/// in parallel on the sweep runner.
#[must_use]
pub fn run(params: PredictiveMigrationParams) -> Vec<PredictiveMigrationRow> {
    let variants: Vec<(Option<PredictorKind>, Option<f64>)> = vec![
        (None, None),
        (Some(PredictorKind::Oracle), Some(1.0)),
        (Some(PredictorKind::Oracle), Some(params.aggressive_ratio)),
        (
            Some(PredictorKind::ProfileEma),
            Some(params.aggressive_ratio),
        ),
    ];
    let specs: Vec<ScenarioSpec> = variants
        .into_iter()
        .map(|(predictor, ratio)| {
            let mut spec = ScenarioSpec::new(
                MixPreset::Arena,
                params.level,
                PolicyKind::Pascal,
                params.count,
                params.seed,
            );
            spec.predictor = predictor;
            spec.migration_benefit = ratio;
            spec
        })
        .collect();
    SweepRunner::default().run_map(&specs, |spec, out| row(&out, spec.migration_benefit))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> PredictiveMigrationParams {
        PredictiveMigrationParams {
            count: 250,
            seed: 7,
            level: RateLevel::High,
            aggressive_ratio: 1000.0,
        }
    }

    #[test]
    fn sweep_diverges_from_reactive_without_slo_regression() {
        // One sweep, all assertions — the four-variant simulation is the
        // expensive part, so every property checks the same rows.
        let rows = run(small_params());
        assert_eq!(rows.len(), 4);

        // The acceptance bar: the predictive controller must actually
        // change decisions (≥ 1 veto) and must not trade them for SLO
        // violations.
        let reactive = &rows[0];
        assert_eq!(reactive.vetoed, 0, "reactive never vetoes");
        assert!(reactive.migrations > 0, "baseline must migrate");
        let aggressive = &rows[2];
        assert!(
            aggressive.vetoed >= 1,
            "cost test must diverge from the reactive baseline"
        );
        assert!(
            aggressive.migrations < reactive.migrations,
            "vetoes must reduce fabric traffic"
        );
        assert!(
            aggressive.slo_violations <= reactive.slo_violations,
            "SLO regression: predictive {} vs reactive {}",
            aggressive.slo_violations,
            reactive.slo_violations
        );
        assert_eq!(
            aggressive.remaining_error_tokens.unwrap_or(0.0),
            0.0,
            "oracle remaining-service predictions are exact"
        );

        // At ratio 1 a migration only needs to outlast one transfer-time
        // (~tens of ms vs seconds of answering): the cost test should stay
        // close to the reactive answer.
        let break_even = &rows[1];
        assert!(
            break_even.migrations >= reactive.migrations - reactive.migrations / 4,
            "break-even cost test should veto at most a small fraction"
        );

        // The learned predictor rides the same controller.
        let ema = &rows[3];
        assert!(ema.policy.contains("EMA"));
        assert!(ema.policy.contains("CostAwareMigration"));
        // The EMA's remaining-service error is measurable (nonzero, finite).
        if let Some(err) = ema.remaining_error_tokens {
            assert!(err.is_finite());
        }
    }
}
