//! Fig. 16 — reasoning-heavy mixed trace.
//!
//! 50% of the Arena-Hard trace is replaced by requests sampled uniformly
//! from MATH-500, GPQA and LiveCodeBench (long reasoning, short answers —
//! Fig. 14). With little answering-phase contention, PASCAL's advantage
//! over RR shrinks (RR's implicit hierarchy already favours reasoning), but
//! it still cuts tail TTFT sharply versus FCFS and stays competitive
//! elsewhere.

use pascal_metrics::{
    slo_violation_rate, tail_by_token_bins, BinTail, LatencySummary, QoeParams, SLO_QOE_THRESHOLD,
};
use pascal_sched::PolicyKind;
use pascal_workload::MixPreset;

use crate::config::RateLevel;
use crate::experiments::common::run_matrix;
use crate::experiments::fig09::scatter;

/// One policy's results on the mixed trace at high rate.
#[derive(Clone, Debug)]
pub struct Fig16Row {
    /// Scheduler name.
    pub policy: String,
    /// TTFT summary in seconds (Fig. 16(a)).
    pub ttft: LatencySummary,
    /// SLO violation rate (§V-D text).
    pub slo_violation: f64,
    /// Tail TTFT per 256-token reasoning bin (Fig. 16(b)).
    pub tail_bins: Vec<BinTail>,
}

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Fig16Params {
    /// Requests per trace.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig16Params {
    fn default() -> Self {
        Fig16Params {
            count: 2500,
            seed: 2026,
        }
    }
}

/// Runs the mixed trace under the high arrival rate for all schedulers.
#[must_use]
pub fn run(params: Fig16Params) -> Vec<Fig16Row> {
    let qoe = QoeParams::paper_eval();
    run_matrix(
        &[MixPreset::Mixed],
        &[RateLevel::High],
        &PolicyKind::MAIN,
        params.count,
        params.seed,
    )
    .into_iter()
    .map(|run| {
        let points = scatter(&run);
        Fig16Row {
            ttft: LatencySummary::from_values(points.iter().map(|(_, t)| *t))
                .expect("non-empty run"),
            slo_violation: slo_violation_rate(&run.output.records, &qoe, SLO_QOE_THRESHOLD),
            tail_bins: tail_by_token_bins(points, 256),
            policy: run.policy_name,
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_policies_present() {
        let rows = run(Fig16Params {
            count: 150,
            seed: 51,
        });
        let names: Vec<&str> = rows.iter().map(|r| r.policy.as_str()).collect();
        assert_eq!(names, vec!["FCFS", "RR", "PASCAL"]);
        for r in &rows {
            assert!(!r.tail_bins.is_empty());
            assert!((0.0..=1.0).contains(&r.slo_violation));
        }
    }
}
