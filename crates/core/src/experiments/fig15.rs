//! Fig. 15 — effectiveness of adaptive migration.
//!
//! PASCAL(NonAdaptive) always migrates at phase transitions, even into
//! memory-starved targets. The paper shows TTFT distributions stay similar
//! (a), but SLO violations climb steeply with load (b) — 7.45% vs 0.69% at
//! the high rate — and end-to-end latency suffers at the median and tail
//! (c, compared across FCFS / RR / NonAdaptive / PASCAL).

use pascal_metrics::{slo_violation_rate, LatencySummary, QoeParams, SLO_QOE_THRESHOLD};
use pascal_sched::PolicyKind;
use pascal_workload::MixPreset;

use crate::config::RateLevel;
use crate::experiments::common::run_matrix;

/// SLO violation rates of the two variants at one rate (Fig. 15(b)), plus
/// their TTFT summaries (Fig. 15(a)).
#[derive(Clone, Debug)]
pub struct Fig15RateRow {
    /// Arrival-rate level.
    pub level: RateLevel,
    /// Variant name.
    pub policy: String,
    /// TTFT summary (seconds).
    pub ttft: LatencySummary,
    /// SLO violation rate.
    pub slo_violation: f64,
}

/// End-to-end latency comparison at the high rate (Fig. 15(c)).
#[derive(Clone, Debug)]
pub struct Fig15E2eRow {
    /// Scheduler name (FCFS / RR / PASCAL(NonAdaptive) / PASCAL).
    pub policy: String,
    /// End-to-end latency summary (seconds).
    pub e2e: LatencySummary,
}

/// Combined Fig. 15 output.
#[derive(Clone, Debug)]
pub struct Fig15Output {
    /// Per-rate variant comparison ((a) and (b)).
    pub by_rate: Vec<Fig15RateRow>,
    /// High-rate end-to-end latency comparison (c).
    pub e2e: Vec<Fig15E2eRow>,
}

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Fig15Params {
    /// Requests per trace.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig15Params {
    fn default() -> Self {
        Fig15Params {
            count: 2500,
            seed: 2026,
        }
    }
}

/// Runs the adaptive-migration ablation on AlpacaEval2.0. Both panels are
/// grids over the sweep runner: the per-rate variant comparison (a)/(b)
/// and the four-scheduler end-to-end comparison at high rate (c), all on
/// shared traces per rate so the comparisons stay paired.
#[must_use]
pub fn run(params: Fig15Params) -> Fig15Output {
    let qoe = QoeParams::paper_eval();

    let by_rate = run_matrix(
        &[MixPreset::Alpaca],
        &RateLevel::ALL,
        &[PolicyKind::PascalNonAdaptive, PolicyKind::Pascal],
        params.count,
        params.seed,
    )
    .into_iter()
    .map(|run| {
        let ttft = LatencySummary::from_values(
            run.output
                .records
                .iter()
                .filter_map(|r| r.ttft().map(|d| d.as_secs_f64())),
        )
        .expect("non-empty run");
        Fig15RateRow {
            level: run.level,
            policy: run.policy_name,
            ttft,
            slo_violation: slo_violation_rate(&run.output.records, &qoe, SLO_QOE_THRESHOLD),
        }
    })
    .collect();

    let e2e = run_matrix(
        &[MixPreset::Alpaca],
        &[RateLevel::High],
        &[
            PolicyKind::Fcfs,
            PolicyKind::RoundRobin,
            PolicyKind::PascalNonAdaptive,
            PolicyKind::Pascal,
        ],
        params.count,
        params.seed,
    )
    .into_iter()
    .map(|run| Fig15E2eRow {
        policy: run.policy_name,
        e2e: LatencySummary::from_values(
            run.output
                .records
                .iter()
                .map(|r| r.e2e_latency().as_secs_f64()),
        )
        .expect("non-empty run"),
    })
    .collect();

    Fig15Output { by_rate, e2e }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_covers_both_panels() {
        let out = run(Fig15Params {
            count: 150,
            seed: 41,
        });
        assert_eq!(out.by_rate.len(), 6);
        assert_eq!(out.e2e.len(), 4);
        let names: Vec<&str> = out.e2e.iter().map(|r| r.policy.as_str()).collect();
        assert_eq!(names, vec!["FCFS", "RR", "PASCAL(NonAdaptive)", "PASCAL"]);
    }

    #[test]
    fn ttft_distributions_stay_comparable() {
        // Fig. 15(a): the distributions look similar; the harm shows up in
        // SLO violations, not TTFT means.
        let out = run(Fig15Params {
            count: 250,
            seed: 42,
        });
        for level in RateLevel::ALL {
            let get = |name: &str| {
                out.by_rate
                    .iter()
                    .find(|r| r.level == level && r.policy == name)
                    .expect("row")
                    .ttft
                    .mean
            };
            let (adaptive, non) = (get("PASCAL"), get("PASCAL(NonAdaptive)"));
            assert!(
                (adaptive - non).abs() / adaptive.max(non) < 0.5,
                "{level}: TTFT means diverged wildly ({adaptive:.2} vs {non:.2})"
            );
        }
    }
}
