//! One module per table/figure of the paper's evaluation.
//!
//! Every module exposes a `run(...)` entry point returning printable row
//! structs, and the corresponding bench target in `pascal-bench` renders
//! them with [`crate::report::render_table`]. The mapping from paper figure
//! to module is the per-experiment index in `DESIGN.md` §5.

pub mod ablations;
pub mod common;
pub mod elasticity;
pub mod federated_scaling;
pub mod fig04;
pub mod fig05;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig15;
pub mod fig16;
pub mod kv_overhead;
pub mod predictive;
pub mod predictive_migration;
pub mod sharded_scaling;
