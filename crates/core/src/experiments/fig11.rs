//! Fig. 11 — answering-phase SLO violation rates across arrival rates.
//!
//! A request violates its SLO when the evaluation QoE (computed from TPOT
//! only, starting at the first answering token — §V-A "Metric") falls below
//! 0.95.

use pascal_metrics::{slo_violation_rate, QoeParams, SLO_QOE_THRESHOLD};
use pascal_sched::PolicyKind;
use pascal_workload::MixPreset;

use crate::config::RateLevel;
use crate::experiments::common::run_matrix;

/// One bar of Fig. 11.
#[derive(Clone, Debug)]
pub struct Fig11Row {
    /// Dataset name.
    pub dataset: String,
    /// Arrival-rate level.
    pub level: RateLevel,
    /// Scheduler name.
    pub policy: String,
    /// Fraction of requests with QoE below 0.95.
    pub violation_rate: f64,
}

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Fig11Params {
    /// Requests per trace.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig11Params {
    fn default() -> Self {
        Fig11Params {
            count: 2500,
            seed: 2026,
        }
    }
}

/// Runs the 2 × 3 × 3 violation-rate matrix.
#[must_use]
pub fn run(params: Fig11Params) -> Vec<Fig11Row> {
    let qoe = QoeParams::paper_eval();
    run_matrix(
        &[MixPreset::Alpaca, MixPreset::Arena],
        &RateLevel::ALL,
        &PolicyKind::MAIN,
        params.count,
        params.seed,
    )
    .into_iter()
    .map(|run| Fig11Row {
        violation_rate: slo_violation_rate(&run.output.records, &qoe, SLO_QOE_THRESHOLD),
        dataset: run.dataset,
        level: run.level,
        policy: run.policy_name,
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_probabilities_and_grow_with_load() {
        let rows = run(Fig11Params {
            count: 150,
            seed: 21,
        });
        assert_eq!(rows.len(), 18);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.violation_rate));
        }
        // Averaged over datasets and policies, high load violates at least
        // as much as low load.
        let mean_at = |level: RateLevel| {
            let xs: Vec<f64> = rows
                .iter()
                .filter(|r| r.level == level)
                .map(|r| r.violation_rate)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(mean_at(RateLevel::High) >= mean_at(RateLevel::Low));
    }
}
