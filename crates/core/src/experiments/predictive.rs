//! Predictive scheduling — PASCAL vs PASCAL with a length predictor.
//!
//! The paper's scheduler is reactive: demotion waits for generated tokens
//! to cross the §IV-C threshold, and Algorithm 1 ranks instances by their
//! *current* KV footprint. This experiment attaches the `pascal-predict`
//! subsystem — speculative demotion plus predicted-footprint placement —
//! and compares reactive PASCAL against the three predictors (Oracle, EMA,
//! pairwise Rank) on a chat mix and a reasoning-heavy mix, reporting p99
//! TTFT, mean QoE, SLO violations and each predictor's calibration.

use pascal_metrics::{
    answering_qoe, slo_violation_rate, CalibrationReport, LatencySummary, QoeParams,
    SLO_QOE_THRESHOLD,
};
use pascal_predict::PredictorKind;
use pascal_sched::{PascalConfig, PolicyKind, SchedPolicy};
use pascal_workload::{DatasetMix, MixPreset, Trace};

use crate::config::{RateLevel, SimConfig};
use crate::engine::{run_simulation, SimOutput};
use crate::sweep::{ScenarioSpec, SweepRunner};

/// One dataset × scheduler-variant cell.
#[derive(Clone, Debug)]
pub struct PredictiveRow {
    /// Dataset (mix) name.
    pub dataset: String,
    /// Scheduler variant name (`PASCAL`, `PASCAL(Predictive-Oracle)`, …).
    pub policy: String,
    /// TTFT summary over the run (absent if nothing answered).
    pub ttft: Option<LatencySummary>,
    /// Mean answering QoE (paper-eval parameters).
    pub mean_qoe: f64,
    /// Fraction of requests below the QoE SLO threshold.
    pub slo_violations: f64,
    /// Phase-boundary migrations performed.
    pub migrations: usize,
    /// Predictor calibration (absent for reactive PASCAL and rank-only
    /// predictors, which produce no absolute estimates).
    pub calibration: Option<CalibrationReport>,
}

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct PredictiveParams {
    /// Requests per trace.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
    /// Arrival-rate level (the regime where demotion matters is High).
    pub level: RateLevel,
}

impl Default for PredictiveParams {
    fn default() -> Self {
        PredictiveParams {
            count: 2000,
            seed: 2026,
            level: RateLevel::High,
        }
    }
}

/// The reasoning-heavy mixture: MATH-500, GPQA and LiveCodeBench in equal
/// parts — the workload whose oversized reasoning tails make speculative
/// demotion bite. Alias for [`MixPreset::ReasoningHeavy`].
#[must_use]
pub fn reasoning_heavy_mix() -> DatasetMix {
    MixPreset::ReasoningHeavy.mix()
}

/// The scheduler variants under comparison: reactive PASCAL plus one
/// predictive PASCAL per predictor kind.
#[must_use]
pub fn variants() -> Vec<Option<PredictorKind>> {
    let mut v = vec![None];
    v.extend(PredictorKind::ALL.map(Some));
    v
}

/// Runs one `(trace, predictor)` cell on the evaluation cluster.
#[must_use]
pub fn run_variant(trace: &Trace, predictor: Option<PredictorKind>) -> SimOutput {
    let mut config = SimConfig::evaluation_cluster(SchedPolicy::pascal(PascalConfig::default()));
    config.predictor = predictor;
    run_simulation(trace, &config)
}

fn row(dataset: &str, out: &SimOutput) -> PredictiveRow {
    let qoe = QoeParams::paper_eval();
    let qoes: Vec<f64> = out
        .records
        .iter()
        .filter_map(|r| answering_qoe(r, &qoe))
        .collect();
    let mean_qoe = if qoes.is_empty() {
        0.0
    } else {
        qoes.iter().sum::<f64>() / qoes.len() as f64
    };
    PredictiveRow {
        dataset: dataset.to_owned(),
        policy: out.policy_name.clone(),
        ttft: LatencySummary::from_values(
            out.records
                .iter()
                .filter_map(|r| r.ttft().map(|d| d.as_secs_f64())),
        ),
        mean_qoe,
        slo_violations: slo_violation_rate(&out.records, &qoe, SLO_QOE_THRESHOLD),
        migrations: out.migrations().count(),
        calibration: out.calibration(),
    }
}

/// Runs the full comparison: both mixes, all variants, executed in
/// parallel on the sweep runner. Every variant of a mix shares the mix's
/// trace seed so the comparison is paired.
#[must_use]
pub fn run(params: PredictiveParams) -> Vec<PredictiveRow> {
    let specs: Vec<ScenarioSpec> = [MixPreset::Arena, MixPreset::ReasoningHeavy]
        .into_iter()
        .flat_map(|mix| {
            variants().into_iter().map(move |predictor| {
                let mut spec = ScenarioSpec::new(
                    mix,
                    params.level,
                    PolicyKind::Pascal,
                    params.count,
                    params.seed,
                );
                spec.predictor = predictor;
                spec
            })
        })
        .collect();
    SweepRunner::default().run_map(&specs, |spec, out| row(spec.mix.display_name(), &out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::common::evaluation_trace;

    fn p99(row: &PredictiveRow) -> f64 {
        row.ttft.as_ref().expect("ttft present").p99
    }

    #[test]
    fn rows_cover_both_mixes_and_all_variants() {
        let rows = run(PredictiveParams {
            count: 150,
            seed: 5,
            level: RateLevel::Medium,
        });
        assert_eq!(rows.len(), 10);
        let names: Vec<&str> = rows.iter().map(|r| r.policy.as_str()).collect();
        assert!(names.contains(&"PASCAL"));
        assert!(names.contains(&"PASCAL(Predictive-Oracle)"));
        assert!(names.contains(&"PASCAL(Predictive-EMA)"));
        assert!(names.contains(&"PASCAL(Predictive-Rank)"));
        assert!(names.contains(&"PASCAL(Predictive-Quantile)"));
    }

    #[test]
    fn quantile_calibration_is_comparable_against_ema() {
        // The ROADMAP item: a quantile predictor whose calibration report
        // sits next to the EMA's. Both must produce absolute estimates
        // (unlike rank) so the report exists for both.
        let trace = evaluation_trace(&reasoning_heavy_mix(), RateLevel::Medium, 200, 9);
        let quantile = run_variant(&trace, Some(PredictorKind::Quantile));
        let q_cal = quantile
            .calibration()
            .expect("quantile estimates after warmup");
        let ema = run_variant(&trace, Some(PredictorKind::ProfileEma));
        let e_cal = ema.calibration().expect("ema estimates after warmup");
        assert!(q_cal.covered > 0, "quantile covers warmed-up arrivals");
        assert!(q_cal.mean_abs_error > 0.0, "quantile is not an oracle");
        // Same trace, same coverage rules — the comparison is paired.
        assert_eq!(q_cal.samples, e_cal.samples);
    }

    #[test]
    fn oracle_calibration_is_exact_and_rank_has_none() {
        let trace = evaluation_trace(&reasoning_heavy_mix(), RateLevel::Medium, 120, 9);
        let oracle = run_variant(&trace, Some(PredictorKind::Oracle));
        let cal = oracle.calibration().expect("oracle always estimates");
        assert_eq!(cal.covered, 120);
        assert_eq!(cal.mean_abs_error, 0.0, "oracle has zero calibration error");
        assert_eq!(cal.abs_error_p99, 0.0);

        let rank = run_variant(&trace, Some(PredictorKind::PairwiseRank));
        assert!(rank.calibration().is_none(), "rank never estimates lengths");
        assert_eq!(rank.predictions.len(), 120, "samples still logged");

        let ema = run_variant(&trace, Some(PredictorKind::ProfileEma));
        let ema_cal = ema.calibration().expect("ema estimates after warmup");
        assert!(ema_cal.covered < ema_cal.samples, "cold start is uncovered");
        assert!(ema_cal.mean_abs_error > 0.0, "ema is not an oracle");
    }

    #[test]
    fn oracle_matches_or_beats_reactive_pascal_on_tail_ttft() {
        // The acceptance bar: on the reasoning-heavy mix, perfect length
        // information must not lose on p99 TTFT — speculatively demoting
        // known giants clears the high-priority queue for everyone else.
        let trace = evaluation_trace(&reasoning_heavy_mix(), RateLevel::High, 800, 2026);
        let baseline = row("rh", &run_variant(&trace, None));
        let oracle = row("rh", &run_variant(&trace, Some(PredictorKind::Oracle)));
        assert!(
            p99(&oracle) <= p99(&baseline),
            "Oracle p99 TTFT {:.2}s must be <= reactive PASCAL {:.2}s",
            p99(&oracle),
            p99(&baseline)
        );
    }
}
