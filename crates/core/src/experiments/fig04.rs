//! Fig. 4 — reasoning-phase latency breakdown under oracle / FCFS / RR.
//!
//! 300 requests with 128-token prompts and reasoning lengths drawn from
//! `{128, 256, 512, 1024, 2048}` hit a single instance whose KV memory is
//! capped at 50% of the oracle's peak demand (§III-A). For each reasoning
//! length the figure reports the mean latency split into executed /
//! blocked / preempted time, normalized to the oracle.

use pascal_metrics::breakdown_by;
use pascal_sched::SchedPolicy;
use pascal_workload::fig04_reasoning_trace;

use crate::experiments::common::{characterization_capacity, run_characterization};

/// One bar of Fig. 4.
#[derive(Clone, Debug)]
pub struct Fig04Row {
    /// Scheduler name ("Oracle" / "FCFS" / "RR").
    pub policy: String,
    /// Reasoning token count of the group (x-axis).
    pub reasoning_tokens: u32,
    /// Mean seconds actively executing.
    pub executed_s: f64,
    /// Mean seconds blocked before first execution.
    pub blocked_s: f64,
    /// Mean seconds suspended after first execution.
    pub preempted_s: f64,
    /// Mean total reasoning-phase latency.
    pub total_s: f64,
    /// Total latency normalized to the oracle at the same token count.
    pub normalized: f64,
}

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Fig04Params {
    /// Number of requests (paper: 300).
    pub count: usize,
    /// Poisson arrival rate in req/s.
    pub rate: f64,
    /// Memory cap as a fraction of oracle peak (paper: 0.5).
    pub memory_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig04Params {
    fn default() -> Self {
        Fig04Params {
            count: 300,
            rate: 3.0,
            memory_fraction: 0.5,
            seed: 42,
        }
    }
}

/// Runs the experiment; rows are ordered by token count then policy
/// (Oracle, FCFS, RR), matching the figure's x-axis groups.
#[must_use]
pub fn run(params: Fig04Params) -> Vec<Fig04Row> {
    let trace = fig04_reasoning_trace(params.count, params.rate, params.seed);
    let (oracle_out, capacity) = characterization_capacity(&trace, params.memory_fraction);
    let fcfs_out = run_characterization(&trace, SchedPolicy::Fcfs, capacity);
    let rr_out = run_characterization(&trace, SchedPolicy::round_robin_default(), capacity);

    let group =
        |out: &crate::engine::SimOutput| breakdown_by(&out.records, |r| r.spec.reasoning_tokens);
    let oracle = group(&oracle_out);
    let runs = [
        ("Oracle", oracle.clone()),
        ("FCFS", group(&fcfs_out)),
        ("RR", group(&rr_out)),
    ];

    let mut rows = Vec::new();
    for (&tokens, oracle_b) in &oracle {
        for (name, groups) in &runs {
            let b = groups
                .get(&tokens)
                .expect("every policy served every group");
            rows.push(Fig04Row {
                policy: (*name).to_owned(),
                reasoning_tokens: tokens,
                executed_s: b.executed_s,
                blocked_s: b.blocked_s,
                preempted_s: b.preempted_s,
                total_s: b.total_s(),
                normalized: b.total_s() / oracle_b.total_s(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> Fig04Params {
        Fig04Params {
            count: 120,
            rate: 3.0,
            memory_fraction: 0.5,
            seed: 7,
        }
    }

    #[test]
    fn oracle_is_the_baseline_and_never_waits() {
        let rows = run(small_params());
        for row in rows.iter().filter(|r| r.policy == "Oracle") {
            assert!(
                (row.normalized - 1.0).abs() < 1e-9,
                "oracle normalizes to itself"
            );
            assert!(
                row.preempted_s < 1e-9,
                "oracle never preempts: {}",
                row.preempted_s
            );
            // Arrivals land mid-iteration, so even the oracle waits a
            // sub-iteration sliver for admission — but no more.
            assert!(
                row.blocked_s < 0.2,
                "oracle admission wait should be sub-iteration: {}",
                row.blocked_s
            );
        }
    }

    #[test]
    fn constrained_policies_wait_under_memory_pressure() {
        let rows = run(small_params());
        let fcfs_norm_mean: f64 = {
            let xs: Vec<f64> = rows
                .iter()
                .filter(|r| r.policy == "FCFS")
                .map(|r| r.normalized)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(
            fcfs_norm_mean > 1.05,
            "FCFS under 50% memory must degrade vs oracle, got {fcfs_norm_mean:.3}x"
        );
    }

    #[test]
    fn groups_cover_all_five_lengths() {
        let rows = run(small_params());
        let mut lengths: Vec<u32> = rows.iter().map(|r| r.reasoning_tokens).collect();
        lengths.sort_unstable();
        lengths.dedup();
        assert_eq!(lengths, vec![128, 256, 512, 1024, 2048]);
        assert_eq!(rows.len(), 15, "5 groups x 3 policies");
    }
}
