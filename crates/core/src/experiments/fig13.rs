//! Fig. 13 — the importance of migrating requests at phase boundaries.
//!
//! PASCAL(NoMigration) keeps the hierarchical queues but pins every request
//! to its Algorithm-1 instance. The paper shows: (a) worse tail TTFT at
//! high rates, (b) nearly unchanged reasoning latency, (c) P99 *blocking
//! latency* (phase transition → first scheduled) up to 27.39 s vs. near
//! zero for PASCAL, and (d) markedly higher SLO violation rates.

use pascal_metrics::{
    percentile, slo_violation_rate, tail_by_token_bins, BinTail, QoeParams, SLO_QOE_THRESHOLD,
};
use pascal_sched::PolicyKind;
use pascal_workload::MixPreset;

use crate::config::RateLevel;
use crate::engine::SimOutput;
use crate::experiments::common::run_matrix;

/// Per-variant metrics at one arrival rate.
#[derive(Clone, Debug)]
pub struct Fig13Row {
    /// Trace the row was measured on.
    pub dataset: String,
    /// Variant name ("PASCAL" / "PASCAL(NoMigration)").
    pub policy: String,
    /// Arrival-rate level.
    pub level: RateLevel,
    /// Mean TTFT in seconds (Fig. 13(a) summary).
    pub mean_ttft_s: f64,
    /// Mean reasoning-phase latency in seconds (Fig. 13(b)).
    pub mean_reasoning_s: f64,
    /// P99 blocking latency in seconds (Fig. 13(c)).
    pub p99_blocking_s: f64,
    /// SLO violation rate (Fig. 13(d)).
    pub slo_violation: f64,
    /// Tail TTFT per 256-token reasoning bin at this rate (Fig. 13(a)).
    pub tail_bins: Vec<BinTail>,
}

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Fig13Params {
    /// Requests per trace.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig13Params {
    fn default() -> Self {
        Fig13Params {
            count: 2500,
            seed: 2026,
        }
    }
}

fn summarize(dataset: &str, policy_name: &str, level: RateLevel, output: &SimOutput) -> Fig13Row {
    let records = &output.records;
    let mean = |xs: Vec<f64>| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let mut blocking: Vec<f64> = records
        .iter()
        .filter_map(|r| r.blocking_latency().map(|d| d.as_secs_f64()))
        .collect();
    blocking.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    Fig13Row {
        dataset: dataset.to_owned(),
        policy: policy_name.to_owned(),
        level,
        mean_ttft_s: mean(
            records
                .iter()
                .filter_map(|r| r.ttft().map(|d| d.as_secs_f64()))
                .collect(),
        ),
        mean_reasoning_s: mean(
            records
                .iter()
                .filter_map(|r| r.reasoning_latency().map(|d| d.as_secs_f64()))
                .collect(),
        ),
        p99_blocking_s: if blocking.is_empty() {
            0.0
        } else {
            percentile(&blocking, 99.0)
        },
        slo_violation: slo_violation_rate(records, &QoeParams::paper_eval(), SLO_QOE_THRESHOLD),
        tail_bins: tail_by_token_bins(
            records
                .iter()
                .filter_map(|r| r.ttft().map(|t| (r.spec.reasoning_tokens, t.as_secs_f64()))),
            256,
        ),
    }
}

/// Runs PASCAL and PASCAL(NoMigration) across all rates.
///
/// The paper evaluates this ablation on AlpacaEval2.0. Under our
/// memory:compute calibration, Alpaca's reasoning demand alone does not
/// saturate per-instance KV memory, so transitioning requests survive in
/// place and the blocking-latency pathology (Fig. 13(c)) only manifests on
/// reasoning-heavier traces. We therefore report both the paper's dataset
/// and the Fig. 16 mixed trace (see `EXPERIMENTS.md`).
#[must_use]
pub fn run(params: Fig13Params) -> Vec<Fig13Row> {
    run_matrix(
        &[MixPreset::Alpaca, MixPreset::Mixed],
        &RateLevel::ALL,
        &[PolicyKind::Pascal, PolicyKind::PascalNoMigration],
        params.count,
        params.seed,
    )
    .into_iter()
    .map(|run| summarize(&run.dataset, &run.policy_name, run.level, &run.output))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_reported_at_every_rate() {
        let rows = run(Fig13Params {
            count: 150,
            seed: 31,
        });
        assert_eq!(rows.len(), 12, "2 datasets x 3 rates x 2 variants");
        assert_eq!(rows.iter().filter(|r| r.policy == "PASCAL").count(), 6);
        assert_eq!(
            rows.iter()
                .filter(|r| r.policy == "PASCAL(NoMigration)")
                .count(),
            6
        );
    }

    #[test]
    fn reasoning_latency_is_similar_across_variants() {
        // Fig. 13(b): migration does not change reasoning latency much —
        // both variants place reasoning requests identically.
        let rows = run(Fig13Params {
            count: 200,
            seed: 32,
        });
        for level in RateLevel::ALL {
            let get = |name: &str| {
                rows.iter()
                    .find(|r| r.policy == name && r.level == level && r.dataset == "AlpacaEval2.0")
                    .expect("row exists")
                    .mean_reasoning_s
            };
            let (with, without) = (get("PASCAL"), get("PASCAL(NoMigration)"));
            let rel = (with - without).abs() / with.max(without).max(1e-9);
            assert!(
                rel < 0.30,
                "{level}: reasoning latency diverged {rel:.2} ({with:.2}s vs {without:.2}s)"
            );
        }
    }
}
