//! Shard-scaling study: 1/2/4 scheduling domains at fixed aggregate
//! capacity.
//!
//! The north-star deployment serves one region from several scheduling
//! domains behind a cluster router. This experiment holds the hardware
//! constant (eight instances, the §V-A cluster) and sweeps how it is
//! partitioned — one pool, two shards, four shards — crossed with the
//! three router disciplines, on the mixed chat+reasoning trace at medium
//! and high load. Because the trace seed is derived only from the
//! trace-defining axes, every partitioning serves the *identical* arrival
//! stream: differences are pure scheduling-domain effects (router skew,
//! lost work-stealing within a shard, cross-shard escape traffic over the
//! slower interconnect).

use pascal_metrics::SweepCellMetrics;
use pascal_sched::RouterPolicy;

use crate::sweep::{SweepCell, SweepGrid, SweepRunner};

/// One row of the shard-scaling comparison.
#[derive(Clone, Debug)]
pub struct ShardedScalingRow {
    /// Arrival-rate level key (`medium` / `high`).
    pub level: String,
    /// Length predictor key (`-` = reactive).
    pub predictor: String,
    /// Number of scheduling domains.
    pub shards: usize,
    /// Router discipline (only meaningful when `shards > 1`).
    pub router: RouterPolicy,
    /// The cell's aggregate metrics.
    pub metrics: SweepCellMetrics,
    /// Requests per shard routed, min..max — the router's balance.
    pub routed_min: u64,
    /// See [`ShardedScalingRow::routed_min`].
    pub routed_max: u64,
}

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct ShardedScalingParams {
    /// Requests per trace.
    pub count: usize,
    /// Base seed (per-cell trace seeds derive from it).
    pub seed: u64,
    /// Worker threads (0 = default pool width).
    pub threads: usize,
}

impl Default for ShardedScalingParams {
    fn default() -> Self {
        ShardedScalingParams {
            count: 2000,
            seed: 2026,
            threads: 0,
        }
    }
}

/// Runs the `sharded` grid and annotates each cell with its router-balance
/// spread.
#[must_use]
pub fn run(params: ShardedScalingParams) -> Vec<ShardedScalingRow> {
    let mut grid = SweepGrid::preset("sharded").expect("sharded preset exists");
    grid.count = params.count;
    grid.base_seed = params.seed;
    let specs = grid.expand();
    SweepRunner::new(params.threads).run_map(&specs, |spec, out| {
        let routed: Vec<u64> = out.shard_stats.iter().map(|s| s.routed_arrivals).collect();
        let cell = SweepCell::from_output(*spec, spec.rate_rps(), &out);
        ShardedScalingRow {
            level: spec.level.key().to_owned(),
            predictor: spec
                .predictor
                .map_or_else(|| "-".to_owned(), |p| p.key().to_owned()),
            shards: spec.shards,
            router: spec.router,
            metrics: cell.metrics,
            routed_min: routed.iter().copied().min().unwrap_or(0),
            routed_max: routed.iter().copied().max().unwrap_or(0),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_the_shard_router_cross_product() {
        let rows = run(ShardedScalingParams {
            count: 60,
            seed: 11,
            threads: 2,
        });
        assert_eq!(rows.len(), 28);
        // Per (level, predictor): one 1-shard anchor plus 2/4 shards × 3
        // routers.
        for level in ["medium", "high"] {
            let of_level: Vec<&ShardedScalingRow> =
                rows.iter().filter(|r| r.level == level).collect();
            assert_eq!(of_level.len(), 14);
            assert_eq!(of_level.iter().filter(|r| r.shards == 1).count(), 2);
        }
        for row in &rows {
            assert_eq!(row.metrics.requests, 60, "everything completes");
            assert!(row.routed_min <= row.routed_max);
            if row.shards == 1 {
                assert_eq!(row.metrics.migrations_cross_shard, 0);
                assert_eq!(row.routed_min, 60);
            }
            // Round-robin spreads the trace evenly across shards.
            if row.shards > 1 && row.router == RouterPolicy::RoundRobin {
                assert!(row.routed_max - row.routed_min <= 1);
            }
        }
    }
}
