//! §V-C — KV-cache transfer overhead.
//!
//! PASCAL's phase-boundary migrations contend on the fabric when several
//! instances target the same destination. The paper reports P99 transfer
//! latencies of 0.14 s (AlpacaEval2.0) and 0.25 s (Arena-Hard) at high
//! rates — negligible against TTFTs of seconds to hundreds of seconds.

use pascal_metrics::percentile;
use pascal_sched::PolicyKind;
use pascal_workload::MixPreset;

use crate::config::RateLevel;
use crate::sweep::{ScenarioSpec, SweepRunner};

/// Migration-overhead statistics for one dataset.
#[derive(Clone, Debug)]
pub struct KvOverheadRow {
    /// Dataset name.
    pub dataset: String,
    /// Number of migrations performed.
    pub migrations: usize,
    /// Fraction of requests that migrated at their phase boundary.
    pub migrated_fraction: f64,
    /// Mean transfer latency in seconds (queueing included).
    pub mean_transfer_s: f64,
    /// P99 transfer latency in seconds.
    pub p99_transfer_s: f64,
    /// Mean TTFT in seconds, for scale.
    pub mean_ttft_s: f64,
}

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct KvOverheadParams {
    /// Requests per trace.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KvOverheadParams {
    fn default() -> Self {
        KvOverheadParams {
            count: 2500,
            seed: 2026,
        }
    }
}

/// Measures migration overhead under PASCAL at the high arrival rate.
#[must_use]
pub fn run(params: KvOverheadParams) -> Vec<KvOverheadRow> {
    let specs: Vec<ScenarioSpec> = [MixPreset::Alpaca, MixPreset::Arena]
        .into_iter()
        .map(|mix| {
            ScenarioSpec::new(
                mix,
                RateLevel::High,
                PolicyKind::Pascal,
                params.count,
                params.seed,
            )
        })
        .collect();
    SweepRunner::default().run_map(&specs, |spec, output| {
        let mut latencies: Vec<f64> = output
            .migrations()
            .map(|m| m.latency().as_secs_f64())
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let ttfts: Vec<f64> = output
            .records
            .iter()
            .filter_map(|r| r.ttft().map(|d| d.as_secs_f64()))
            .collect();
        KvOverheadRow {
            dataset: spec.mix.display_name().to_owned(),
            migrations: latencies.len(),
            migrated_fraction: latencies.len() as f64 / output.records.len() as f64,
            mean_transfer_s: if latencies.is_empty() {
                0.0
            } else {
                latencies.iter().sum::<f64>() / latencies.len() as f64
            },
            p99_transfer_s: if latencies.is_empty() {
                0.0
            } else {
                percentile(&latencies, 99.0)
            },
            mean_ttft_s: ttfts.iter().sum::<f64>() / ttfts.len().max(1) as f64,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migrations_happen_and_are_cheap_relative_to_ttft() {
        let rows = run(KvOverheadParams {
            count: 250,
            seed: 61,
        });
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(
                row.migrations > 0,
                "{}: no migrations at high rate",
                row.dataset
            );
            assert!(
                row.p99_transfer_s < row.mean_ttft_s,
                "{}: transfers ({}s) should be small vs TTFT ({}s)",
                row.dataset,
                row.p99_transfer_s,
                row.mean_ttft_s
            );
        }
    }
}
