//! Fig. 10 — tail TTFT by reasoning-token bins under high arrival rates.
//!
//! Requests are grouped into 256-token bins of reasoning length; each bin
//! reports the adaptive tail statistic of its TTFT population (max / P90 /
//! P95 / P99 depending on sample count — the rule in the figure caption).
//! The headline result lives here: PASCAL cuts tail TTFT by up to 61%
//! (AlpacaEval2.0) / 72% (Arena-Hard) versus FCFS.

use pascal_metrics::{tail_by_token_bins, BinTail};
use pascal_sched::PolicyKind;
use pascal_workload::MixPreset;

use crate::config::RateLevel;
use crate::experiments::common::run_matrix;
use crate::experiments::fig09::scatter;

/// Tail-TTFT series of one dataset × policy at the high arrival rate.
#[derive(Clone, Debug)]
pub struct Fig10Series {
    /// Dataset name.
    pub dataset: String,
    /// Scheduler name.
    pub policy: String,
    /// Tail TTFT (seconds) per 256-token reasoning bin.
    pub bins: Vec<BinTail>,
}

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Fig10Params {
    /// Requests per trace.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
    /// Bin width in reasoning tokens (paper: 256).
    pub bin_width: u32,
}

impl Default for Fig10Params {
    fn default() -> Self {
        Fig10Params {
            count: 3000,
            seed: 2026,
            bin_width: 256,
        }
    }
}

/// Runs both datasets under the high rate for all three schedulers.
#[must_use]
pub fn run(params: Fig10Params) -> Vec<Fig10Series> {
    run_matrix(
        &[MixPreset::Alpaca, MixPreset::Arena],
        &[RateLevel::High],
        &PolicyKind::MAIN,
        params.count,
        params.seed,
    )
    .into_iter()
    .map(|run| Fig10Series {
        bins: tail_by_token_bins(scatter(&run), params.bin_width),
        dataset: run.dataset,
        policy: run.policy_name,
    })
    .collect()
}

/// Largest relative tail-TTFT reduction of `candidate` vs `baseline`
/// across bins present in both series (the paper's "up to X%" number).
#[must_use]
pub fn max_tail_reduction(baseline: &Fig10Series, candidate: &Fig10Series) -> Option<f64> {
    let mut best: Option<f64> = None;
    for b in &baseline.bins {
        if let Some(c) = candidate.bins.iter().find(|c| c.bin_lo == b.bin_lo) {
            if b.value > 0.0 {
                let reduction = 1.0 - c.value / b.value;
                best = Some(best.map_or(reduction, |x: f64| x.max(reduction)));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_cover_all_policies_and_have_bins() {
        let series = run(Fig10Params {
            count: 250,
            seed: 11,
            bin_width: 256,
        });
        assert_eq!(series.len(), 6);
        for s in &series {
            assert!(
                !s.bins.is_empty(),
                "{} {} produced no bins",
                s.dataset,
                s.policy
            );
            // Bins are sorted and non-overlapping.
            assert!(s.bins.windows(2).all(|w| w[0].bin_hi <= w[1].bin_lo));
        }
    }

    #[test]
    fn pascal_beats_fcfs_somewhere_in_the_tail() {
        // Head-of-line blocking needs sustained memory pressure to show up,
        // which takes a few thousand requests at the high rate.
        let series = run(Fig10Params {
            count: 3000,
            seed: 12,
            bin_width: 256,
        });
        let get = |dataset: &str, policy: &str| {
            series
                .iter()
                .find(|s| s.dataset == dataset && s.policy == policy)
                .expect("series exists")
        };
        let fcfs = get("Arena-Hard", "FCFS");
        let pascal = get("Arena-Hard", "PASCAL");
        let reduction = max_tail_reduction(fcfs, pascal).expect("overlapping bins");
        assert!(
            reduction > 0.2,
            "PASCAL should cut tail TTFT vs FCFS somewhere, got {reduction:.2}"
        );
    }
}
