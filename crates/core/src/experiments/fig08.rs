//! Fig. 8 / Fig. 14 — reasoning and answering token-count distributions.
//!
//! Fig. 8 shows the two chat traces (AlpacaEval2.0, Arena-Hard), Fig. 14
//! the three reasoning-heavy benchmarks (MATH-500, GPQA, LiveCodeBench).
//! Both are density histograms annotated with the distribution means; this
//! module samples the fitted profiles and reports the same statistics.

use pascal_metrics::Histogram;
use pascal_sim::SimRng;
use pascal_workload::DatasetProfile;

/// Distribution statistics of one dataset × phase.
#[derive(Clone, Debug)]
pub struct DistRow {
    /// Dataset name.
    pub dataset: String,
    /// "reasoning" or "answering".
    pub phase: String,
    /// Mean the paper publishes for this distribution.
    pub paper_mean: f64,
    /// Empirical mean of the sampled histogram.
    pub sampled_mean: f64,
    /// Empirical standard deviation.
    pub sampled_std: f64,
    /// Density histogram (paper bin width: ~250 tokens).
    pub histogram: Histogram,
}

/// Samples `count` requests from each profile and builds both phase
/// histograms per dataset.
#[must_use]
pub fn run(profiles: &[DatasetProfile], count: usize, seed: u64) -> Vec<DistRow> {
    let mut rng = SimRng::seed_from(seed);
    let mut rows = Vec::new();
    for profile in profiles {
        let mut dataset_rng = rng.split(profile.name.len() as u64);
        let mut reasoning = Vec::with_capacity(count);
        let mut answering = Vec::with_capacity(count);
        for _ in 0..count {
            reasoning.push(f64::from(profile.reasoning.sample(&mut dataset_rng)));
            answering.push(f64::from(profile.answering.sample(&mut dataset_rng)));
        }
        for (phase, samples, paper_mean) in [
            ("reasoning", reasoning, profile.reasoning.mean()),
            ("answering", answering, profile.answering.mean()),
        ] {
            let histogram = Histogram::from_samples(&samples, 250.0);
            rows.push(DistRow {
                dataset: profile.name.clone(),
                phase: phase.to_owned(),
                paper_mean,
                sampled_mean: histogram.mean(),
                sampled_std: histogram.std_dev(),
                histogram,
            });
        }
    }
    rows
}

/// The Fig. 8 datasets.
#[must_use]
pub fn fig08_profiles() -> Vec<DatasetProfile> {
    vec![DatasetProfile::alpaca_eval2(), DatasetProfile::arena_hard()]
}

/// The Fig. 14 datasets.
#[must_use]
pub fn fig14_profiles() -> Vec<DatasetProfile> {
    DatasetProfile::reasoning_heavy_suite()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_means_track_paper_means() {
        let rows = run(&fig08_profiles(), 50_000, 3);
        for row in &rows {
            let rel = (row.sampled_mean - row.paper_mean).abs() / row.paper_mean;
            assert!(
                rel < 0.05,
                "{} {}: sampled {} vs paper {}",
                row.dataset,
                row.phase,
                row.sampled_mean,
                row.paper_mean
            );
        }
    }

    #[test]
    fn reasoning_heavy_suite_is_reasoning_dominated() {
        let rows = run(&fig14_profiles(), 20_000, 4);
        for pair in rows.chunks(2) {
            let (reasoning, answering) = (&pair[0], &pair[1]);
            assert!(
                reasoning.sampled_mean > 2.0 * answering.sampled_mean,
                "{}: reasoning {} not >> answering {}",
                reasoning.dataset,
                reasoning.sampled_mean,
                answering.sampled_mean
            );
        }
    }

    #[test]
    fn two_rows_per_dataset() {
        let rows = run(&fig08_profiles(), 100, 5);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.histogram.count() == 100));
    }
}
