//! Fig. 12 — serving throughput across arrival rates.
//!
//! Throughput counts *all* generated tokens (reasoning + answering) over
//! the makespan. The paper's claim: PASCAL stays within ~3% of both
//! baselines — phase-aware scheduling buys its latency wins without
//! sacrificing throughput.

use pascal_metrics::throughput_tokens_per_s;
use pascal_sched::PolicyKind;
use pascal_workload::MixPreset;

use crate::config::RateLevel;
use crate::experiments::common::run_matrix;

/// One bar of Fig. 12.
#[derive(Clone, Debug)]
pub struct Fig12Row {
    /// Dataset name.
    pub dataset: String,
    /// Arrival-rate level.
    pub level: RateLevel,
    /// Scheduler name.
    pub policy: String,
    /// Serving throughput in tokens/second.
    pub throughput: f64,
}

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Fig12Params {
    /// Requests per trace.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig12Params {
    fn default() -> Self {
        Fig12Params {
            count: 2500,
            seed: 2026,
        }
    }
}

/// Runs the 2 × 3 × 3 throughput matrix.
#[must_use]
pub fn run(params: Fig12Params) -> Vec<Fig12Row> {
    run_matrix(
        &[MixPreset::Alpaca, MixPreset::Arena],
        &RateLevel::ALL,
        &PolicyKind::MAIN,
        params.count,
        params.seed,
    )
    .into_iter()
    .map(|run| Fig12Row {
        throughput: throughput_tokens_per_s(&run.output.records),
        dataset: run.dataset,
        level: run.level,
        policy: run.policy_name,
    })
    .collect()
}

/// Maximum relative throughput gap of PASCAL versus the best baseline in
/// each (dataset, level) cell — the paper's "within 3%" check.
#[must_use]
pub fn max_pascal_throughput_gap(rows: &[Fig12Row]) -> f64 {
    let mut worst: f64 = 0.0;
    for r in rows.iter().filter(|r| r.policy == "PASCAL") {
        let best_baseline = rows
            .iter()
            .filter(|b| b.dataset == r.dataset && b.level == r.level && b.policy != "PASCAL")
            .map(|b| b.throughput)
            .fold(0.0f64, f64::max);
        if best_baseline > 0.0 {
            worst = worst.max(1.0 - r.throughput / best_baseline);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_grows_with_offered_load() {
        let rows = run(Fig12Params {
            count: 150,
            seed: 22,
        });
        assert_eq!(rows.len(), 18);
        for dataset in ["AlpacaEval2.0", "Arena-Hard"] {
            let mean_at = |level: RateLevel| {
                let xs: Vec<f64> = rows
                    .iter()
                    .filter(|r| r.dataset == dataset && r.level == level)
                    .map(|r| r.throughput)
                    .collect();
                xs.iter().sum::<f64>() / xs.len() as f64
            };
            assert!(
                mean_at(RateLevel::High) > mean_at(RateLevel::Low),
                "{dataset}: more offered load should raise throughput"
            );
        }
    }

    #[test]
    fn pascal_throughput_is_competitive() {
        let rows = run(Fig12Params {
            count: 200,
            seed: 23,
        });
        let gap = max_pascal_throughput_gap(&rows);
        assert!(
            gap < 0.15,
            "PASCAL throughput gap vs baselines too large: {:.1}%",
            gap * 100.0
        );
    }
}
