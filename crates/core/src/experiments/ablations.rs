//! Design-choice ablations beyond the paper's figures.
//!
//! The paper fixes the token quantum at 500 and the demotion threshold at
//! 5000 tokens (§V-A) without sweeping them, and leaves heterogeneous
//! hardware to future work (§VII). These experiments quantify those
//! choices on the calibrated high-rate workloads.

use pascal_metrics::{
    percentile, slo_violation_rate, LatencySummary, QoeParams, SLO_QOE_THRESHOLD,
};
use pascal_sched::{PascalConfig, SchedPolicy};
use pascal_workload::{DatasetMix, DatasetProfile};

use crate::config::{RateLevel, SimConfig};
use crate::engine::run_simulation;
use crate::experiments::common::evaluation_trace;

/// One configuration point of a sweep.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// The swept value (quantum tokens, threshold tokens, …).
    pub value: u64,
    /// Mean TTFT in seconds.
    pub mean_ttft_s: f64,
    /// P99 TTFT in seconds.
    pub p99_ttft_s: f64,
    /// SLO violation rate.
    pub slo_violation: f64,
    /// Mean preemptions per request.
    pub preemptions_per_request: f64,
}

/// Sweep parameters.
#[derive(Clone, Copy, Debug)]
pub struct SweepParams {
    /// Requests per trace.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SweepParams {
    fn default() -> Self {
        SweepParams {
            count: 1500,
            seed: 2026,
        }
    }
}

fn summarize(value: u64, output: &crate::engine::SimOutput) -> SweepRow {
    let ttft = LatencySummary::from_values(
        output
            .records
            .iter()
            .filter_map(|r| r.ttft().map(|d| d.as_secs_f64())),
    )
    .expect("non-empty run");
    let preemptions: u32 = output.records.iter().map(|r| r.num_preemptions).sum();
    SweepRow {
        value,
        mean_ttft_s: ttft.mean,
        p99_ttft_s: ttft.p99,
        slo_violation: slo_violation_rate(
            &output.records,
            &QoeParams::paper_eval(),
            SLO_QOE_THRESHOLD,
        ),
        preemptions_per_request: f64::from(preemptions) / output.records.len() as f64,
    }
}

/// Sweeps PASCAL's per-queue token quantum on the Arena-Hard high-rate
/// trace (paper default: 500).
#[must_use]
pub fn quantum_sweep(params: SweepParams) -> Vec<SweepRow> {
    let mix = DatasetMix::single(DatasetProfile::arena_hard());
    let trace = evaluation_trace(&mix, RateLevel::High, params.count, params.seed);
    [125u32, 250, 500, 1000, 2000]
        .into_iter()
        .map(|quantum| {
            let policy = SchedPolicy::pascal(PascalConfig {
                quantum,
                ..PascalConfig::default()
            });
            let config = SimConfig::evaluation_cluster(policy);
            summarize(u64::from(quantum), &run_simulation(&trace, &config))
        })
        .collect()
}

/// Sweeps PASCAL's conditional-demotion threshold on the mixed
/// reasoning-heavy trace, where multi-thousand-token reasoning requests
/// actually trip it (paper default: 5000).
#[must_use]
pub fn demotion_sweep(params: SweepParams) -> Vec<SweepRow> {
    let mix = DatasetMix::arena_with_reasoning_heavy();
    let trace = evaluation_trace(&mix, RateLevel::High, params.count, params.seed);
    [1_000u32, 2_500, 5_000, 10_000, u32::MAX]
        .into_iter()
        .map(|threshold| {
            let policy = SchedPolicy::pascal(PascalConfig {
                demotion_threshold_tokens: threshold,
                ..PascalConfig::default()
            });
            let config = SimConfig::evaluation_cluster(policy);
            summarize(u64::from(threshold), &run_simulation(&trace, &config))
        })
        .collect()
}

/// Hardware-sensitivity row: the same trace served by different GPUs.
#[derive(Clone, Debug)]
pub struct HardwareRow {
    /// GPU name.
    pub gpu: String,
    /// Mean TTFT in seconds.
    pub mean_ttft_s: f64,
    /// P99 TTFT in seconds.
    pub p99_ttft_s: f64,
    /// SLO violation rate.
    pub slo_violation: f64,
    /// Serving throughput (tokens/s).
    pub throughput: f64,
}

/// Serves the same AlpacaEval2.0 trace (rated for the H100 cluster) on
/// H100-96GB and A100-80GB clusters under PASCAL — a §VII-flavoured
/// sensitivity study: the weaker, smaller-memory GPU amplifies every
/// pressure effect.
#[must_use]
pub fn hardware_comparison(params: SweepParams) -> Vec<HardwareRow> {
    let mix = DatasetMix::single(DatasetProfile::alpaca_eval2());
    let trace = evaluation_trace(&mix, RateLevel::Medium, params.count, params.seed);
    [
        pascal_model::GpuSpec::h100_96gb(),
        pascal_model::GpuSpec::a100_80gb(),
    ]
    .into_iter()
    .map(|gpu| {
        let mut config =
            SimConfig::evaluation_cluster(SchedPolicy::pascal(PascalConfig::default()));
        config.gpu = gpu.clone();
        let output = run_simulation(&trace, &config);
        let ttft = LatencySummary::from_values(
            output
                .records
                .iter()
                .filter_map(|r| r.ttft().map(|d| d.as_secs_f64())),
        )
        .expect("non-empty run");
        HardwareRow {
            gpu: gpu.name,
            mean_ttft_s: ttft.mean,
            p99_ttft_s: ttft.p99,
            slo_violation: slo_violation_rate(
                &output.records,
                &QoeParams::paper_eval(),
                SLO_QOE_THRESHOLD,
            ),
            throughput: pascal_metrics::throughput_tokens_per_s(&output.records),
        }
    })
    .collect()
}

/// P99 blocking latency across quanta, exposing the trade-off between
/// fairness granularity and transfer churn.
#[must_use]
pub fn quantum_blocking_profile(params: SweepParams) -> Vec<(u32, f64)> {
    let mix = DatasetMix::arena_with_reasoning_heavy();
    let trace = evaluation_trace(&mix, RateLevel::High, params.count, params.seed);
    [250u32, 500, 1000]
        .into_iter()
        .map(|quantum| {
            let policy = SchedPolicy::pascal(PascalConfig {
                quantum,
                ..PascalConfig::default()
            });
            let config = SimConfig::evaluation_cluster(policy);
            let output = run_simulation(&trace, &config);
            let mut blocking: Vec<f64> = output
                .records
                .iter()
                .filter_map(|r| r.blocking_latency().map(|d| d.as_secs_f64()))
                .collect();
            blocking.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let p99 = if blocking.is_empty() {
                0.0
            } else {
                percentile(&blocking, 99.0)
            };
            (quantum, p99)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SweepParams {
        SweepParams {
            count: 150,
            seed: 71,
        }
    }

    #[test]
    fn quantum_sweep_covers_all_points() {
        let rows = quantum_sweep(small());
        assert_eq!(rows.len(), 5);
        assert!(rows.windows(2).all(|w| w[0].value < w[1].value));
        for r in &rows {
            assert!(r.mean_ttft_s > 0.0);
            assert!((0.0..=1.0).contains(&r.slo_violation));
        }
    }

    #[test]
    fn demotion_sweep_includes_disabled_point() {
        let rows = demotion_sweep(small());
        assert_eq!(rows.len(), 5);
        assert_eq!(rows.last().expect("rows").value, u64::from(u32::MAX));
    }

    #[test]
    fn weaker_gpu_serves_strictly_worse() {
        let rows = hardware_comparison(small());
        assert_eq!(rows.len(), 2);
        let (h100, a100) = (&rows[0], &rows[1]);
        assert!(
            a100.mean_ttft_s > h100.mean_ttft_s,
            "A100 ({:.1}s) should be slower than H100 ({:.1}s)",
            a100.mean_ttft_s,
            h100.mean_ttft_s
        );
    }
}
