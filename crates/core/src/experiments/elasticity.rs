//! Elasticity under failure: a region outage on a two-region federation,
//! static vs predictive routing, on the identical paired trace.
//!
//! The `outage` fleet preset drains the last region a quarter of the way
//! into the run, hard-fails it at 45%, and brings it back at 70%. Because
//! the trace seed is derived only from trace-defining axes, both cells
//! serve the *identical* request bodies with the identical origin tags —
//! the only difference is what the federation does about the hole:
//!
//! * `static` pins every arrival to its origin region, so requests born
//!   in the failed region queue against capacity that no longer exists
//!   and strand;
//! * `predictive` sees the failed region report zero healthy instances,
//!   routes its arrivals to the survivor, and the drain warning lets the
//!   cost/benefit controller migrate residents out before the failure
//!   lands.
//!
//! The acceptance bar (the in-module test): predictive routing plus
//! drain-and-migrate must beat static routing on stranded-request count
//! AND on the worst origin region's p99 TTFT.

use pascal_federation::FederationPolicy;
use pascal_metrics::{LatencySummary, SweepCellMetrics};
use pascal_predict::PredictorKind;
use pascal_sched::PolicyKind;
use pascal_sim::SimDuration;
use pascal_workload::MixPreset;

use crate::config::RateLevel;
use crate::engine::run_simulation;
use crate::fleet::FleetPreset;
use crate::sweep::{default_threads, parallel_map, ScenarioSpec, SweepCell, SweepRunner};

/// One row of the outage comparison.
#[derive(Clone, Debug)]
pub struct ElasticityRow {
    /// Federation router under test.
    pub fed_router: FederationPolicy,
    /// The cell's aggregate metrics (over completed requests).
    pub metrics: SweepCellMetrics,
    /// Requests lost to the outage (no healthy instance could take them).
    pub stranded: u64,
    /// Queued-work moves performed by the water-filling rebalancer.
    pub rebalanced: u64,
    /// Planned drains that emptied before the failure landed.
    pub drains_completed: u64,
    /// Worst per-origin-region p99 TTFT across completed requests —
    /// the failed region's users pay this bill under static routing.
    pub worst_region_p99_s: Option<f64>,
}

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct ElasticityParams {
    /// Requests per trace.
    pub count: usize,
    /// Trace seed (shared by both cells — the comparison is paired).
    pub seed: u64,
    /// Worker threads (0 = default pool width).
    pub threads: usize,
}

impl Default for ElasticityParams {
    fn default() -> Self {
        ElasticityParams {
            count: 1500,
            seed: 2026,
            threads: 0,
        }
    }
}

/// Runs the paired outage cells and annotates each with its stranding,
/// drain and per-origin-region tail figures.
#[must_use]
pub fn run(params: ElasticityParams) -> Vec<ElasticityRow> {
    let specs: Vec<ScenarioSpec> = [FederationPolicy::Static, FederationPolicy::Predictive]
        .into_iter()
        .map(|fed| {
            ScenarioSpec::new(
                MixPreset::Mixed,
                RateLevel::High,
                PolicyKind::Pascal,
                params.count,
                params.seed,
            )
            .with_predictor(PredictorKind::Quantile)
            .with_migration_benefit(1.0)
            .with_regions(2, fed)
            .with_fleet(FleetPreset::Outage)
        })
        .collect();
    SweepRunner::new(params.threads).run_map(&specs, |spec, out| {
        // p99 TTFT per *origin* region (the user-centric cut: where the
        // request came from, not where it was served), worst case across
        // regions. Stranded requests never produce a record, so this
        // understates static routing's damage — the stranded count is
        // the other half of the bill.
        let worst_region_p99_s = (0..spec.regions as u32)
            .filter_map(|region| {
                LatencySummary::from_values(
                    out.records
                        .iter()
                        .filter(|r| r.spec.origin_region == region)
                        .filter_map(|r| r.ttft().map(|d| d.as_secs_f64())),
                )
                .map(|s| s.p99)
            })
            .fold(None, |acc: Option<f64>, p| {
                Some(acc.map_or(p, |a| a.max(p)))
            });
        let cell = SweepCell::from_output(*spec, spec.rate_rps(), &out);
        ElasticityRow {
            fed_router: spec.fed_router,
            metrics: cell.metrics,
            stranded: out.fleet.stranded,
            rebalanced: out.fleet.rebalanced,
            drains_completed: out.fleet.drains_completed,
            worst_region_p99_s,
        }
    })
}

/// One row of the scale-up lead-time sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct LeadTimeRow {
    /// Provisioning lead time: how long a scale-up takes to deliver
    /// capacity after the autoscaler decides ([`AutoscalePolicy::lead`]
    /// (crate::fleet::AutoscalePolicy::lead)).
    pub lead_s: f64,
    /// The cell's aggregate metrics (over completed requests).
    pub metrics: SweepCellMetrics,
    /// Scale-up decisions the autoscaler made.
    pub autoscale_up: u64,
    /// Scale-down drains the autoscaler started.
    pub autoscale_down: u64,
}

/// Lead-time sweep parameters.
#[derive(Clone, Debug)]
pub struct LeadTimeParams {
    /// Requests per trace (shared across every row — the sweep is paired).
    pub count: usize,
    /// Trace seed.
    pub seed: u64,
    /// Worker threads (0 = default pool width).
    pub threads: usize,
    /// Lead times to sweep, as fractions of the run's arrival horizon
    /// (`count / rate`), so the axis scales with any `count` override.
    pub lead_fractions: Vec<f64>,
}

impl Default for LeadTimeParams {
    fn default() -> Self {
        LeadTimeParams {
            count: 1500,
            seed: 2026,
            threads: 0,
            lead_fractions: vec![0.0, 0.05, 0.10, 0.20, 0.40],
        }
    }
}

/// Sweeps the autoscaler's provisioning lead time on the flash-crowd
/// preset: the identical bursty trace against the identical scaler
/// thresholds, varying only how long a scale-up takes to deliver capacity.
/// The question the sweep answers is the elasticity follow-up to Fig. 11:
/// how fast must provisioning be before reactive scaling stops costing
/// SLO violations during a burst?
///
/// # Panics
///
/// Panics if `lead_fractions` is empty or contains a negative or
/// non-finite fraction.
#[must_use]
pub fn run_lead_time_sweep(params: &LeadTimeParams) -> Vec<LeadTimeRow> {
    assert!(
        !params.lead_fractions.is_empty(),
        "lead-time sweep needs at least one fraction"
    );
    assert!(
        params
            .lead_fractions
            .iter()
            .all(|f| f.is_finite() && *f >= 0.0),
        "lead fractions must be non-negative finite numbers"
    );
    let spec = ScenarioSpec::new(
        MixPreset::Mixed,
        RateLevel::High,
        PolicyKind::Pascal,
        params.count,
        params.seed,
    )
    .with_predictor(PredictorKind::Quantile)
    .with_fleet(FleetPreset::FlashCrowd);
    let horizon_s = spec.count as f64 / spec.rate_rps();
    // One trace for every row: the burst is identical, so the lead time is
    // the only thing that varies between rows.
    let trace = spec.trace();
    let leads: Vec<f64> = params
        .lead_fractions
        .iter()
        .map(|f| f * horizon_s)
        .collect();
    let threads = if params.threads == 0 {
        default_threads()
    } else {
        params.threads
    };
    parallel_map(leads.len(), threads, |i| {
        let mut config = spec.config();
        config
            .fleet
            .as_mut()
            .and_then(|f| f.autoscale.as_mut())
            .expect("the flash-crowd preset always arms the autoscaler")
            .lead = SimDuration::from_secs_f64(leads[i]);
        let out = run_simulation(&trace, &config);
        LeadTimeRow {
            lead_s: leads[i],
            autoscale_up: out.fleet.autoscale_up,
            autoscale_down: out.fleet.autoscale_down,
            metrics: SweepCell::from_output(spec, spec.rate_rps(), &out).metrics,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outage_conserves_every_request() {
        let rows = run(ElasticityParams {
            count: 300,
            seed: 7,
            threads: 2,
        });
        assert_eq!(rows.len(), 2);
        for row in &rows {
            // Nothing vanishes: every admitted request either completes
            // or is counted stranded.
            assert_eq!(
                row.metrics.requests as u64 + row.stranded,
                300,
                "{} must conserve requests",
                row.fed_router
            );
            assert!(row.worst_region_p99_s.is_some(), "someone answered");
        }
    }

    #[test]
    fn predictive_routing_degrades_gracefully_where_static_strands() {
        // The acceptance bar for the elasticity layer: on the same paired
        // trace through the same outage, load-aware routing plus
        // drain-and-migrate must strand strictly fewer requests AND hold
        // a strictly better worst-region p99 TTFT than geo-pinned static
        // routing.
        let rows = run(ElasticityParams::default());
        let pick = |fed: FederationPolicy| {
            rows.iter()
                .find(|r| r.fed_router == fed)
                .expect("cell exists")
        };
        let st = pick(FederationPolicy::Static);
        let pr = pick(FederationPolicy::Predictive);
        assert!(
            pr.stranded < st.stranded,
            "predictive must strand fewer requests: {} vs {}",
            pr.stranded,
            st.stranded
        );
        let st_p99 = st.worst_region_p99_s.expect("static answered someone");
        let pr_p99 = pr.worst_region_p99_s.expect("predictive answered someone");
        assert!(
            pr_p99 < st_p99,
            "predictive must hold a better worst-region p99: {pr_p99:.2}s vs {st_p99:.2}s"
        );
    }

    #[test]
    fn lead_time_sweep_is_deterministic_and_conserves_requests() {
        let params = LeadTimeParams {
            count: 300,
            seed: 7,
            threads: 2,
            lead_fractions: vec![0.0, 0.2],
        };
        let rows = run_lead_time_sweep(&params);
        assert_eq!(
            rows,
            run_lead_time_sweep(&params),
            "paired sweep must be deterministic"
        );
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(
                row.metrics.requests as u64 + row.metrics.requests_stranded,
                300,
                "lead {:.1}s must conserve requests",
                row.lead_s
            );
        }
    }

    #[test]
    fn slower_provisioning_pays_a_worse_tail() {
        // The axis's reason to exist: with the identical burst and
        // thresholds, capacity that arrives 40% of the horizon late must
        // pay a worse tail TTFT than capacity that arrives instantly —
        // the burst queues for the whole provisioning window. (SLO
        // violation rate is deliberately not asserted monotone: a shorter
        // lead also quickens scale-down oscillation, which can offset it
        // at mid-range leads.)
        let rows = run_lead_time_sweep(&LeadTimeParams::default());
        assert!(
            rows.iter().all(|r| r.autoscale_up > 0),
            "the flash crowd must trigger scale-ups at every lead time"
        );
        let instant = rows.first().expect("instant-lead row");
        let slowest = rows.last().expect("slowest-lead row");
        assert!(instant.lead_s < slowest.lead_s);
        let instant_p99 = instant
            .metrics
            .ttft_p99_s
            .expect("instant row completed requests");
        let slowest_p99 = slowest
            .metrics
            .ttft_p99_s
            .expect("slowest row completed requests");
        assert!(
            instant_p99 < slowest_p99,
            "instant capacity must hold a better p99 TTFT than late capacity: \
             {instant_p99:.2}s vs {slowest_p99:.2}s"
        );
    }
}
