//! Fig. 5 — answering-phase latency breakdown and SLO attainment.
//!
//! 300 *warm* requests (prefill + reasoning KV of 128 tokens already built)
//! generate answering lengths drawn from `{128, …, 2048}` on a single
//! memory-capped instance. Besides the latency breakdown, the figure
//! reports SLO attainment with the characterization QoE (target TTFAT
//! 0.25 s, target TPOT 100 ms, violation below 0.95).

use pascal_metrics::{answering_qoe, breakdown_by, QoeParams, SLO_QOE_THRESHOLD};
use pascal_sched::SchedPolicy;
use pascal_workload::fig05_answering_trace;

use crate::experiments::common::{characterization_capacity, run_characterization};

/// One group × policy cell of Fig. 5.
#[derive(Clone, Debug)]
pub struct Fig05Row {
    /// Scheduler name.
    pub policy: String,
    /// Answering token count of the group (x-axis).
    pub answering_tokens: u32,
    /// Mean seconds actively executing.
    pub executed_s: f64,
    /// Mean seconds blocked before first execution.
    pub blocked_s: f64,
    /// Mean seconds suspended after first execution.
    pub preempted_s: f64,
    /// Mean total answering-phase latency.
    pub total_s: f64,
    /// Fraction of requests meeting the QoE ≥ 0.95 SLO (Fig. 5(b)).
    pub slo_attainment: f64,
}

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Fig05Params {
    /// Number of requests (paper: 300).
    pub count: usize,
    /// Poisson arrival rate in req/s.
    pub rate: f64,
    /// Memory cap as a fraction of oracle peak (paper: 0.5).
    pub memory_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig05Params {
    fn default() -> Self {
        Fig05Params {
            count: 300,
            rate: 3.0,
            memory_fraction: 0.5,
            seed: 42,
        }
    }
}

/// Runs the experiment; rows ordered by token count then policy.
#[must_use]
pub fn run(params: Fig05Params) -> Vec<Fig05Row> {
    let trace = fig05_answering_trace(params.count, params.rate, params.seed);
    let (oracle_out, capacity) = characterization_capacity(&trace, params.memory_fraction);
    let fcfs_out = run_characterization(&trace, SchedPolicy::Fcfs, capacity);
    let rr_out = run_characterization(&trace, SchedPolicy::round_robin_default(), capacity);

    let qoe_params = QoeParams::characterization();
    let mut rows = Vec::new();
    for (name, out) in [
        ("Oracle", &oracle_out),
        ("FCFS", &fcfs_out),
        ("RR", &rr_out),
    ] {
        let groups = breakdown_by(&out.records, |r| r.spec.answering_tokens);
        for (&tokens, b) in &groups {
            let in_group: Vec<_> = out
                .records
                .iter()
                .filter(|r| r.spec.answering_tokens == tokens)
                .collect();
            let attained = in_group
                .iter()
                .filter(|r| answering_qoe(r, &qoe_params).is_some_and(|q| q >= SLO_QOE_THRESHOLD))
                .count();
            rows.push(Fig05Row {
                policy: name.to_owned(),
                answering_tokens: tokens,
                executed_s: b.executed_s,
                blocked_s: b.blocked_s,
                preempted_s: b.preempted_s,
                total_s: b.total_s(),
                slo_attainment: attained as f64 / in_group.len() as f64,
            });
        }
    }
    rows.sort_by_key(|r| r.answering_tokens);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> Fig05Params {
        Fig05Params {
            count: 120,
            rate: 3.0,
            memory_fraction: 0.5,
            seed: 9,
        }
    }

    #[test]
    fn oracle_attains_slo_everywhere() {
        let rows = run(small_params());
        for row in rows.iter().filter(|r| r.policy == "Oracle") {
            assert!(
                row.slo_attainment > 0.99,
                "oracle should attain SLO at {} tokens, got {:.2}",
                row.answering_tokens,
                row.slo_attainment
            );
        }
    }

    #[test]
    fn rr_attainment_at_least_matches_fcfs_on_average() {
        // §III-B: time-sharing preserves answering-phase SLOs; blocking
        // (FCFS) hurts them.
        let rows = run(small_params());
        let mean = |name: &str| {
            let xs: Vec<f64> = rows
                .iter()
                .filter(|r| r.policy == name)
                .map(|r| r.slo_attainment)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let (rr, fcfs) = (mean("RR"), mean("FCFS"));
        assert!(
            rr + 1e-9 >= fcfs,
            "RR ({rr:.3}) should not trail FCFS ({fcfs:.3}) on answering SLOs"
        );
    }

    #[test]
    fn five_groups_three_policies() {
        let rows = run(small_params());
        assert_eq!(rows.len(), 15);
    }
}
