//! Federation study: 1/2/4 regions at fixed aggregate capacity, three
//! region routers, on geo-skewed traffic.
//!
//! The north-star deployment serves one planet from several regions behind
//! a federation router. This experiment holds the hardware constant (eight
//! instances, the §V-A cluster) and sweeps how it is federated — one
//! region, two, four — crossed with the three federation routers, on the
//! reasoning-heavy mix at high load. Origins follow the trace builder's
//! harmonic skew (region 0 is the hottest, as real geo traffic always is),
//! so `static` routing genuinely overloads the hot region while
//! `predictive` — Algorithm 1 lifted to region granularity — routes
//! around it. Because the trace seed is derived only from trace-defining
//! axes and origin tags ride a separate RNG stream, every cell serves the
//! *identical* request bodies: differences are pure federation effects
//! (routing skew, WAN escape traffic, admission spills).

use pascal_federation::FederationPolicy;
use pascal_metrics::{RegionStats, SweepCellMetrics};

use crate::sweep::{SweepCell, SweepGrid, SweepRunner};

/// One row of the federation comparison.
#[derive(Clone, Debug)]
pub struct FederatedScalingRow {
    /// Length predictor key (`-` = reactive).
    pub predictor: String,
    /// Number of regions.
    pub regions: usize,
    /// Federation router (only meaningful when `regions > 1`).
    pub fed_router: FederationPolicy,
    /// The cell's aggregate metrics.
    pub metrics: SweepCellMetrics,
    /// Arrivals delivered per region, min..max — the router's balance.
    pub routed_min: u64,
    /// See [`FederatedScalingRow::routed_min`].
    pub routed_max: u64,
    /// Arrivals served outside their origin region (WAN detours).
    pub nonlocal_arrivals: u64,
    /// Admission spills absorbed across regions.
    pub spills: u64,
}

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct FederatedScalingParams {
    /// Requests per trace.
    pub count: usize,
    /// Base seed (per-cell trace seeds derive from it).
    pub seed: u64,
    /// Worker threads (0 = default pool width).
    pub threads: usize,
}

impl Default for FederatedScalingParams {
    fn default() -> Self {
        FederatedScalingParams {
            count: 2000,
            seed: 2026,
            threads: 0,
        }
    }
}

/// Runs the `federated` grid and annotates each cell with its
/// region-balance spread and federation-boundary counters.
#[must_use]
pub fn run(params: FederatedScalingParams) -> Vec<FederatedScalingRow> {
    let mut grid = SweepGrid::preset("federated").expect("federated preset exists");
    grid.count = params.count;
    grid.base_seed = params.seed;
    let specs = grid.expand();
    SweepRunner::new(params.threads).run_map(&specs, |spec, out| {
        let routed: Vec<u64> = out
            .region_stats
            .iter()
            .map(|r: &RegionStats| r.routed_arrivals)
            .collect();
        let cell = SweepCell::from_output(*spec, spec.rate_rps(), &out);
        FederatedScalingRow {
            predictor: spec
                .predictor
                .map_or_else(|| "-".to_owned(), |p| p.key().to_owned()),
            regions: spec.regions,
            fed_router: spec.fed_router,
            metrics: cell.metrics,
            routed_min: routed.iter().copied().min().unwrap_or(0),
            routed_max: routed.iter().copied().max().unwrap_or(0),
            nonlocal_arrivals: out.region_stats.iter().map(|r| r.nonlocal_arrivals).sum(),
            spills: out.region_stats.iter().map(|r| r.spill_in).sum(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_the_region_router_cross_product() {
        let rows = run(FederatedScalingParams {
            count: 60,
            seed: 11,
            threads: 2,
        });
        assert_eq!(rows.len(), 14);
        for row in &rows {
            assert_eq!(row.metrics.requests, 60, "everything completes");
            assert!(row.routed_min <= row.routed_max);
            if row.regions == 1 {
                assert_eq!(row.metrics.migrations_cross_region, 0);
                assert_eq!(row.nonlocal_arrivals, 0);
                assert_eq!(row.routed_min, 60);
            }
            // Static routing never serves off-origin and never detours.
            if row.regions > 1 && row.fed_router == FederationPolicy::Static {
                assert_eq!(row.nonlocal_arrivals, 0);
            }
        }
        // The harmonic origin skew shows up as routing imbalance under
        // static federation: the hot region gets strictly more than the
        // coldest.
        let skewed = rows
            .iter()
            .find(|r| r.regions == 4 && r.fed_router == FederationPolicy::Static)
            .expect("static 4-region cell exists");
        assert!(
            skewed.routed_max > skewed.routed_min,
            "static routing must mirror the origin skew: {}..{}",
            skewed.routed_min,
            skewed.routed_max
        );
    }

    #[test]
    fn predictive_federation_beats_static_on_the_hot_region() {
        // The acceptance bar: at equal aggregate capacity, load-aware
        // federation routing must beat geo-pinned static routing on tail
        // TTFT or cross-region migration traffic — the hot region's queue
        // is the whole reason the federation exists.
        let rows = run(FederatedScalingParams {
            count: 400,
            seed: 2026,
            threads: 0,
        });
        let pick = |regions: usize, router: FederationPolicy, predictor: &str| {
            rows.iter()
                .find(|r| {
                    r.regions == regions && r.fed_router == router && r.predictor == predictor
                })
                .expect("cell exists")
        };
        // Reactive rows: geo-pinning must cost static strictly — either a
        // worse p99 or more WAN escape traffic than load-aware routing.
        let static_4 = pick(4, FederationPolicy::Static, "-");
        let predictive_4 = pick(4, FederationPolicy::Predictive, "-");
        let s_p99 = static_4.metrics.ttft_p99_s.expect("answers");
        let p_p99 = predictive_4.metrics.ttft_p99_s.expect("answers");
        assert!(
            p_p99 < s_p99
                || predictive_4.metrics.migrations_cross_region
                    < static_4.metrics.migrations_cross_region,
            "predictive must strictly beat static on p99 TTFT ({p_p99:.2}s vs {s_p99:.2}s) \
             or cross-region traffic ({} vs {})",
            predictive_4.metrics.migrations_cross_region,
            static_4.metrics.migrations_cross_region,
        );
        // Oracle rows: predicted footprints must not make things worse on
        // both fronts at once.
        let static_o = pick(4, FederationPolicy::Static, "oracle");
        let predictive_o = pick(4, FederationPolicy::Predictive, "oracle");
        assert!(
            predictive_o.metrics.ttft_p99_s <= static_o.metrics.ttft_p99_s
                || predictive_o.metrics.migrations_cross_region
                    <= static_o.metrics.migrations_cross_region,
            "oracle-predictive must not lose on both fronts"
        );
        // The load-aware router actually moved traffic off the hot region.
        assert!(predictive_4.nonlocal_arrivals > 0);
        assert!(
            predictive_4.routed_max - predictive_4.routed_min
                < static_4.routed_max - static_4.routed_min,
            "predictive balances what static skews: {}..{} vs {}..{}",
            predictive_4.routed_min,
            predictive_4.routed_max,
            static_4.routed_min,
            static_4.routed_max,
        );
    }
}
