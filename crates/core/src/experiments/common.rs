//! Shared experiment plumbing: trace construction, policy matrices and the
//! characterization memory-capacity protocol.
//!
//! The matrix experiments (Figs. 9–13, 15, 16) are thin grid definitions:
//! they enumerate [`ScenarioSpec`] cells and hand them to the parallel
//! [`SweepRunner`], which executes the cells on a worker pool with
//! identical results at any thread count.

use pascal_sched::{PolicyKind, SchedPolicy};
use pascal_workload::{ArrivalProcess, DatasetMix, MixPreset, Trace, TraceBuilder};

use crate::config::{KvCapacityMode, RateLevel, SimConfig};
use crate::engine::{run_simulation, SimOutput};
use crate::sweep::{ScenarioSpec, SweepRunner};

/// The three schedulers of the main evaluation (§V-A).
#[must_use]
pub fn main_policies() -> Vec<SchedPolicy> {
    PolicyKind::MAIN.iter().map(|k| k.build()).collect()
}

/// PASCAL with migration disabled — Fig. 13's ablation.
#[must_use]
pub fn pascal_no_migration() -> SchedPolicy {
    PolicyKind::PascalNoMigration.build()
}

/// PASCAL with the adaptive override disabled — Fig. 15's ablation.
#[must_use]
pub fn pascal_non_adaptive() -> SchedPolicy {
    PolicyKind::PascalNonAdaptive.build()
}

/// Builds an evaluation trace for `mix` at a paper-style rate level on the
/// standard eight-instance cluster.
#[must_use]
pub fn evaluation_trace(mix: &DatasetMix, level: RateLevel, count: usize, seed: u64) -> Trace {
    let reference = SimConfig::evaluation_cluster(SchedPolicy::Fcfs);
    let rate = level.rate_rps(&reference, mix);
    TraceBuilder::new(mix.clone())
        .arrivals(ArrivalProcess::poisson(rate))
        .count(count)
        .seed(seed)
        .build()
}

/// Runs `trace` on the evaluation cluster under `policy`.
#[must_use]
pub fn run_cluster(trace: &Trace, policy: SchedPolicy) -> SimOutput {
    let config = SimConfig::evaluation_cluster(policy);
    run_simulation(trace, &config)
}

/// One cell of the main-evaluation matrix (dataset × arrival rate ×
/// scheduler).
#[derive(Clone, Debug)]
pub struct EvalRun {
    /// Dataset (mix) name.
    pub dataset: String,
    /// Arrival-rate level.
    pub level: RateLevel,
    /// Scheduler name.
    pub policy_name: String,
    /// The simulation result.
    pub output: SimOutput,
}

/// Runs every `(mix, level, policy)` combination on the evaluation
/// cluster, in parallel on the default [`SweepRunner`] pool. Cells are
/// returned mix-major (mix → level → policy), and every cell of a given
/// `(mix, level)` uses the same `seed` so the trace is shared across
/// policies and the comparison is paired, as in the paper.
#[must_use]
pub fn run_matrix(
    mixes: &[MixPreset],
    levels: &[RateLevel],
    policies: &[PolicyKind],
    count: usize,
    seed: u64,
) -> Vec<EvalRun> {
    let specs: Vec<ScenarioSpec> = mixes
        .iter()
        .flat_map(|&mix| {
            levels.iter().flat_map(move |&level| {
                policies
                    .iter()
                    .map(move |&policy| ScenarioSpec::new(mix, level, policy, count, seed))
            })
        })
        .collect();
    SweepRunner::default().run_map(&specs, |spec, output| EvalRun {
        dataset: spec.mix.display_name().to_owned(),
        level: spec.level,
        policy_name: output.policy_name.clone(),
        output,
    })
}

/// The §III-A characterization protocol: run the single-instance oracle
/// (unbounded memory) to find peak KV demand, then cap memory at
/// `fraction` of that peak for the constrained policies.
///
/// Returns `(oracle_output, constrained_capacity_bytes)`.
#[must_use]
pub fn characterization_capacity(trace: &Trace, fraction: f64) -> (SimOutput, u64) {
    let oracle = SimConfig::characterization(SchedPolicy::Fcfs, KvCapacityMode::Unlimited);
    let out = run_simulation(trace, &oracle);
    let peak = out
        .peak_gpu_kv_bytes
        .iter()
        .copied()
        .max()
        .expect("at least one instance");
    let capacity = ((peak as f64) * fraction) as u64;
    (out, capacity)
}

/// Runs `trace` on a single memory-capped instance under `policy`.
#[must_use]
pub fn run_characterization(trace: &Trace, policy: SchedPolicy, capacity_bytes: u64) -> SimOutput {
    let config = SimConfig::characterization(policy, KvCapacityMode::Bytes(capacity_bytes));
    run_simulation(trace, &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pascal_workload::fig04_reasoning_trace;

    #[test]
    fn policy_matrix_names() {
        let names: Vec<&str> = main_policies().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["FCFS", "RR", "PASCAL"]);
        assert_eq!(pascal_no_migration().name(), "PASCAL(NoMigration)");
        assert_eq!(pascal_non_adaptive().name(), "PASCAL(NonAdaptive)");
    }

    #[test]
    fn characterization_capacity_halves_peak() {
        let trace = fig04_reasoning_trace(20, 2.0, 7);
        let (oracle, cap) = characterization_capacity(&trace, 0.5);
        assert_eq!(oracle.records.len(), 20);
        let peak = *oracle.peak_gpu_kv_bytes.iter().max().unwrap();
        assert!(peak > 0);
        assert_eq!(cap, peak / 2);
    }
}
