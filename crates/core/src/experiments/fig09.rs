//! Fig. 9 — absolute TTFT versus reasoning-token length across arrival
//! rates and schedulers (AlpacaEval2.0 and Arena-Hard, 8-instance cluster).
//!
//! The paper plots the raw scatter; this module returns both the scatter
//! points and per-cell summaries (mean/P50/P95/P99/max TTFT seconds).

use pascal_metrics::LatencySummary;
use pascal_sched::PolicyKind;
use pascal_workload::MixPreset;

use crate::config::RateLevel;
use crate::experiments::common::{run_matrix, EvalRun};

/// Summary of one dataset × rate × policy cell.
#[derive(Clone, Debug)]
pub struct Fig09Row {
    /// Dataset name.
    pub dataset: String,
    /// Arrival-rate level.
    pub level: RateLevel,
    /// Scheduler name.
    pub policy: String,
    /// TTFT summary in seconds over all requests.
    pub ttft: LatencySummary,
    /// The raw `(reasoning_tokens, ttft_seconds)` scatter of the figure.
    pub points: Vec<(u32, f64)>,
}

/// Experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct Fig09Params {
    /// Requests per trace.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig09Params {
    fn default() -> Self {
        Fig09Params {
            count: 2500,
            seed: 2026,
        }
    }
}

/// Extracts the `(reasoning length, TTFT)` scatter from a run.
#[must_use]
pub fn scatter(run: &EvalRun) -> Vec<(u32, f64)> {
    run.output
        .records
        .iter()
        .filter_map(|r| r.ttft().map(|t| (r.spec.reasoning_tokens, t.as_secs_f64())))
        .collect()
}

/// Runs the full Fig. 9 matrix: 2 datasets × 3 rates × 3 schedulers.
#[must_use]
pub fn run(params: Fig09Params) -> Vec<Fig09Row> {
    run_matrix(
        &[MixPreset::Alpaca, MixPreset::Arena],
        &RateLevel::ALL,
        &PolicyKind::MAIN,
        params.count,
        params.seed,
    )
    .into_iter()
    .map(|run| {
        let points = scatter(&run);
        let ttft = LatencySummary::from_values(points.iter().map(|(_, t)| *t))
            .expect("every request answers");
        Fig09Row {
            dataset: run.dataset,
            level: run.level,
            policy: run.policy_name,
            ttft,
            points,
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_matrix_has_expected_cells_and_ordering() {
        let rows = run(Fig09Params { count: 60, seed: 5 });
        assert_eq!(rows.len(), 2 * 3 * 3);
        for row in &rows {
            assert_eq!(row.ttft.count, 60);
            assert!(row.ttft.mean > 0.0);
            assert!(!row.points.is_empty());
        }
    }
}
