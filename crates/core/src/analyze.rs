//! Offline trace analysis: JSONL loading and latency-anatomy rendering.
//!
//! The inverse of `pascal_telemetry::events_to_jsonl` plus the renderers
//! behind `pascal-cli analyze`: a serialized trace is parsed back into
//! typed [`TraceEvent`]s (with the same in-tree recursive-descent JSON
//! parser the sweep reports use), replayed through
//! [`pascal_telemetry::reconstruct`], and rendered as machine-readable
//! JSON/CSV or a human waterfall. Everything here is a pure function of
//! the trace text — deterministic output for a deterministic trace, no
//! engine state, no filesystem.

use pascal_telemetry::anatomy::{
    aggregate, worst_requests, AnatomyOutcome, AnatomyReport, Blame, RequestAnatomy,
    BLAME_COMPONENT_NAMES,
};
use pascal_telemetry::{EscapeTier, TraceEvent, TraceEventKind};

use crate::sweep::{json_f64, JsonValue};

/// Schema version of the `analyze` JSON output.
pub const ANATOMY_SCHEMA_VERSION: u64 = 1;

fn tier_from_key(key: &str, line: usize) -> Result<EscapeTier, String> {
    match key {
        "intra" => Ok(EscapeTier::Intra),
        "cross_shard" => Ok(EscapeTier::CrossShard),
        "cross_region" => Ok(EscapeTier::CrossRegion),
        other => Err(format!(
            "trace line {line}: unknown migration tier '{other}'"
        )),
    }
}

fn field_u64(obj: &JsonValue, key: &str, line: usize) -> Result<u64, String> {
    obj.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("trace line {line}: missing integer field '{key}'"))
}

fn field_u32(obj: &JsonValue, key: &str, line: usize) -> Result<u32, String> {
    u32::try_from(field_u64(obj, key, line)?)
        .map_err(|_| format!("trace line {line}: field '{key}' out of u32 range"))
}

fn field_str<'a>(obj: &'a JsonValue, key: &str, line: usize) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("trace line {line}: missing string field '{key}'"))
}

fn field_bool(obj: &JsonValue, key: &str, line: usize) -> Result<bool, String> {
    match obj.get(key) {
        Some(JsonValue::Bool(b)) => Ok(*b),
        _ => Err(format!("trace line {line}: missing bool field '{key}'")),
    }
}

fn field_tier(obj: &JsonValue, line: usize) -> Result<EscapeTier, String> {
    tier_from_key(field_str(obj, "tier", line)?, line)
}

/// Parses a JSONL trace (the `events_to_jsonl` format) back into typed
/// events. Blank lines are skipped, so concatenated captures load cleanly.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_trace_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let obj = JsonValue::parse(raw).map_err(|e| format!("trace line {line}: {e}"))?;
        let kind = match field_str(&obj, "event", line)? {
            "arrival" => TraceEventKind::Arrival,
            "admission_rejected" => TraceEventKind::AdmissionRejected {
                projected_kv_bytes: field_u64(&obj, "projected_kv_bytes", line)?,
                budget_bytes: field_u64(&obj, "budget_bytes", line)?,
            },
            "admission_spilled" => TraceEventKind::AdmissionSpilled {
                to_region: field_u32(&obj, "to_region", line)?,
            },
            "speculative_demotion" => TraceEventKind::SpeculativeDemotion,
            "demoted" => TraceEventKind::Demoted,
            "prefill_start" => TraceEventKind::PrefillStart {
                queued_ns: field_u64(&obj, "queued_ns", line)?,
            },
            "phase_transition" => TraceEventKind::PhaseTransition,
            "first_answer_token" => TraceEventKind::FirstAnswerToken,
            "preempted" => TraceEventKind::Preempted,
            "offload_done" => TraceEventKind::OffloadDone,
            "reload_done" => TraceEventKind::ReloadDone,
            "migration_considered" => TraceEventKind::MigrationConsidered {
                tier: field_tier(&obj, line)?,
            },
            "migration_vetoed" => TraceEventKind::MigrationVetoed {
                tier: field_tier(&obj, line)?,
            },
            "migration_aborted" => TraceEventKind::MigrationAborted {
                tier: field_tier(&obj, line)?,
            },
            "migration_launched" => TraceEventKind::MigrationLaunched {
                tier: field_tier(&obj, line)?,
                to_shard: field_u32(&obj, "to_shard", line)?,
                to_instance: field_u32(&obj, "to_instance", line)?,
                bytes: field_u64(&obj, "bytes", line)?,
            },
            "migration_landed" => TraceEventKind::MigrationLanded {
                in_cpu: field_bool(&obj, "in_cpu", line)?,
            },
            "escape_fallback" => TraceEventKind::EscapeFallback {
                after_veto: field_bool(&obj, "after_veto", line)?,
            },
            "completed" => TraceEventKind::Completed {
                tokens: field_u64(&obj, "tokens", line)?,
            },
            "instance_down" => TraceEventKind::InstanceDown,
            "instance_draining" => TraceEventKind::InstanceDraining,
            "instance_up" => TraceEventKind::InstanceUp,
            "drain_complete" => TraceEventKind::DrainComplete,
            "request_stranded" => TraceEventKind::RequestStranded,
            "request_rebalanced" => TraceEventKind::RequestRebalanced {
                to_instance: field_u32(&obj, "to_instance", line)?,
            },
            "autoscale_up" => TraceEventKind::AutoscaleUp,
            "autoscale_down" => TraceEventKind::AutoscaleDown,
            "slo_alert_fired" => TraceEventKind::SloAlertFired {
                rule: field_u32(&obj, "rule", line)?,
                burn_milli: field_u64(&obj, "burn_milli", line)?,
            },
            "slo_alert_resolved" => TraceEventKind::SloAlertResolved {
                rule: field_u32(&obj, "rule", line)?,
            },
            other => return Err(format!("trace line {line}: unknown event '{other}'")),
        };
        events.push(TraceEvent {
            at: pascal_sim::SimTime::from_nanos(field_u64(&obj, "t_ns", line)?),
            region: field_u32(&obj, "region", line)?,
            shard: field_u32(&obj, "shard", line)?,
            instance: match obj.get("instance") {
                Some(v) => Some(
                    u32::try_from(
                        v.as_u64()
                            .ok_or_else(|| format!("trace line {line}: bad 'instance' field"))?,
                    )
                    .map_err(|_| format!("trace line {line}: 'instance' out of u32 range"))?,
                ),
                None => None,
            },
            request: match obj.get("request") {
                Some(v) => Some(
                    v.as_u64()
                        .ok_or_else(|| format!("trace line {line}: bad 'request' field"))?,
                ),
                None => None,
            },
            kind,
        });
    }
    Ok(events)
}

fn outcome_key(outcome: AnatomyOutcome) -> &'static str {
    match outcome {
        AnatomyOutcome::Completed => "completed",
        AnatomyOutcome::Stranded => "stranded",
    }
}

fn blame_json(blame: &Blame) -> String {
    let parts: Vec<String> = BLAME_COMPONENT_NAMES
        .iter()
        .zip(blame.as_array())
        .map(|(name, ns)| format!("\"{name}_ns\": {ns}"))
        .collect();
    format!("{{{}}}", parts.join(", "))
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_owned(), |v| v.to_string())
}

/// Renders the full anatomy as canonical JSON (stable key order, exact
/// integer nanoseconds, shortest-round-trip floats): a run summary, the
/// aggregate blame profile, and one entry per terminated request whose
/// blame components sum exactly to the measured latencies.
#[must_use]
pub fn anatomy_to_json(report: &AnatomyReport) -> String {
    let profile = aggregate(&report.requests);
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": {ANATOMY_SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"requests\": {},\n", report.requests.len()));
    out.push_str(&format!("  \"rejected\": {},\n", report.rejected));
    out.push_str(&format!("  \"unterminated\": {},\n", report.unterminated));
    out.push_str("  \"profile\": {\n");
    out.push_str(&format!(
        "    \"mean_e2e_s\": {},\n",
        json_f64(profile.mean_e2e_s)
    ));
    out.push_str(&format!(
        "    \"p99_e2e_s\": {},\n",
        json_f64(profile.p99_e2e_s)
    ));
    out.push_str("    \"components\": [\n");
    for (i, (name, comp)) in BLAME_COMPONENT_NAMES
        .iter()
        .zip(profile.components.iter())
        .enumerate()
    {
        out.push_str(&format!(
            "      {{\"name\": \"{name}\", \"mean_share\": {}, \"p99_share\": {}, \"total_ns\": {}}}{}\n",
            json_f64(comp.mean_share),
            json_f64(comp.p99_share),
            comp.total_ns,
            if i + 1 < BLAME_COMPONENT_NAMES.len() { "," } else { "" },
        ));
    }
    out.push_str("    ]\n  },\n");
    out.push_str("  \"per_request\": [\n");
    for (i, r) in report.requests.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"request\": {}, \"region\": {}, \"shard\": {}, \"outcome\": \"{}\", \
\"spilled\": {}, \"arrival_ns\": {}, \"first_answer_ns\": {}, \"end_ns\": {}, \
\"e2e_ns\": {}, \"ttft_ns\": {}, \"e2e_blame\": {}, \"ttft_blame\": {}, \
\"preemptions\": {}, \"migrations\": {}, \"demotions\": {}, \"vetoes\": {}, \
\"fallbacks\": {}, \"rebalances\": {}}}{}\n",
            r.request,
            r.region,
            r.shard,
            outcome_key(r.outcome),
            r.spilled,
            r.arrival.as_nanos(),
            opt_u64(r.first_answer.map(pascal_sim::SimTime::as_nanos)),
            r.end.as_nanos(),
            r.e2e_ns(),
            opt_u64(r.ttft_ns()),
            blame_json(&r.e2e),
            r.ttft
                .as_ref()
                .map_or_else(|| "null".to_owned(), blame_json),
            r.preemptions,
            r.migrations,
            r.demotions,
            r.vetoes,
            r.fallbacks,
            r.rebalances,
            if i + 1 < report.requests.len() {
                ","
            } else {
                ""
            },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders one CSV row per terminated request: identity, outcome, the
/// measured latencies and the seven E2E blame components (which sum to
/// `e2e_ns` exactly).
#[must_use]
pub fn anatomy_to_csv(report: &AnatomyReport) -> String {
    let mut out = String::from(
        "request,region,shard,outcome,spilled,arrival_ns,first_answer_ns,end_ns,e2e_ns,ttft_ns,\
queue_ns,service_ns,offload_ns,parked_ns,migration_intra_ns,migration_cross_shard_ns,\
migration_cross_region_ns,preemptions,migrations,demotions,vetoes,fallbacks,rebalances\n",
    );
    for r in &report.requests {
        let blame = r.e2e.as_array();
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.request,
            r.region,
            r.shard,
            outcome_key(r.outcome),
            r.spilled,
            r.arrival.as_nanos(),
            r.first_answer
                .map(|t| t.as_nanos().to_string())
                .unwrap_or_default(),
            r.end.as_nanos(),
            r.e2e_ns(),
            r.ttft_ns().map(|v| v.to_string()).unwrap_or_default(),
            blame[0],
            blame[1],
            blame[2],
            blame[3],
            blame[4],
            blame[5],
            blame[6],
            r.preemptions,
            r.migrations,
            r.demotions,
            r.vetoes,
            r.fallbacks,
            r.rebalances,
        ));
    }
    out
}

/// One proportional bar of `share` (0..=1) over a fixed 24-cell width.
fn bar(share: f64) -> String {
    let cells = (share * 24.0).round() as usize;
    "#".repeat(cells.min(24))
}

/// Renders a human-readable waterfall: the aggregate blame table plus the
/// `top_k` worst requests by E2E latency, each with its per-component
/// breakdown drawn to scale.
#[must_use]
pub fn anatomy_waterfall(report: &AnatomyReport, top_k: usize) -> String {
    let profile = aggregate(&report.requests);
    let mut out = format!(
        "latency anatomy: {} requests ({} rejected, {} unterminated)\n",
        report.requests.len(),
        report.rejected,
        report.unterminated
    );
    out.push_str(&format!(
        "mean e2e {:.6}s, p99 e2e {:.6}s\n\n",
        profile.mean_e2e_s, profile.p99_e2e_s
    ));
    out.push_str(&format!(
        "{:<24} {:>8} {:>8} {:>12}\n",
        "component", "mean%", "p99%", "total_s"
    ));
    for (name, comp) in BLAME_COMPONENT_NAMES.iter().zip(profile.components.iter()) {
        out.push_str(&format!(
            "{:<24} {:>7.2}% {:>7.2}% {:>12.6}\n",
            name,
            comp.mean_share * 100.0,
            comp.p99_share * 100.0,
            comp.total_ns as f64 / 1e9
        ));
    }
    let worst = worst_requests(&report.requests, top_k);
    if !worst.is_empty() {
        out.push_str(&format!("\nworst {} requests by e2e:\n", worst.len()));
    }
    for r in worst {
        out.push_str(&render_waterfall_entry(r));
    }
    out
}

fn render_waterfall_entry(r: &RequestAnatomy) -> String {
    let total = r.e2e_ns().max(1);
    let ttft = r
        .ttft_ns()
        .map_or_else(|| "-".to_owned(), |v| format!("{:.6}s", v as f64 / 1e9));
    let mut out = format!(
        "\n#{} [{}] region {} shard {}  e2e {:.6}s  ttft {}  \
(preempt {}, migrate {}, rebalance {})\n",
        r.request,
        outcome_key(r.outcome),
        r.region,
        r.shard,
        r.e2e_ns() as f64 / 1e9,
        ttft,
        r.preemptions,
        r.migrations,
        r.rebalances,
    );
    for (name, ns) in BLAME_COMPONENT_NAMES.iter().zip(r.e2e.as_array()) {
        if ns == 0 {
            continue;
        }
        let share = ns as f64 / total as f64;
        out.push_str(&format!(
            "  {:<24} {:>12.6}s {:>7.2}% {}\n",
            name,
            ns as f64 / 1e9,
            share * 100.0,
            bar(share)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pascal_sim::SimTime;
    use pascal_telemetry::{events_to_jsonl, reconstruct};

    fn sample_events() -> Vec<TraceEvent> {
        let ev = |t_ns, request, kind| TraceEvent {
            at: SimTime::from_nanos(t_ns),
            region: 0,
            shard: 1,
            instance: Some(2),
            request: Some(request),
            kind,
        };
        vec![
            ev(100, 7, TraceEventKind::Arrival),
            ev(400, 7, TraceEventKind::PrefillStart { queued_ns: 300 }),
            ev(500, 7, TraceEventKind::Preempted),
            ev(550, 7, TraceEventKind::OffloadDone),
            ev(
                600,
                7,
                TraceEventKind::MigrationLaunched {
                    tier: EscapeTier::CrossRegion,
                    to_shard: 2,
                    to_instance: 9,
                    bytes: 4096,
                },
            ),
            ev(900, 7, TraceEventKind::MigrationLanded { in_cpu: false }),
            ev(950, 7, TraceEventKind::FirstAnswerToken),
            ev(1_000, 7, TraceEventKind::Completed { tokens: 3 }),
        ]
    }

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let events = sample_events();
        let text = events_to_jsonl(&events);
        let back = parse_trace_jsonl(&text).expect("parses");
        assert_eq!(back, events);
    }

    #[test]
    fn parse_errors_name_the_line() {
        let err = parse_trace_jsonl("{\"t_ns\":1}\nnot json\n").expect_err("bad line");
        assert!(err.contains("line 1"), "{err}");
        let err = parse_trace_jsonl("{\"t_ns\":1,\"event\":\"warp\",\"region\":0,\"shard\":0}\n")
            .expect_err("unknown event");
        assert!(err.contains("unknown event 'warp'"), "{err}");
        let err = parse_trace_jsonl(
            "{\"t_ns\":1,\"event\":\"migration_vetoed\",\"region\":0,\"shard\":0,\
\"request\":1,\"tier\":\"warp\"}\n",
        )
        .expect_err("unknown tier");
        assert!(err.contains("unknown migration tier 'warp'"), "{err}");
    }

    #[test]
    fn json_output_conserves_latency_and_reparses() {
        let report = reconstruct(&sample_events());
        let text = anatomy_to_json(&report);
        let doc = JsonValue::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("schema").unwrap().as_u64(), Some(1));
        let per_request = doc.get("per_request").unwrap().as_array().unwrap();
        assert_eq!(per_request.len(), 1);
        let r = &per_request[0];
        let e2e_ns = r.get("e2e_ns").unwrap().as_u64().unwrap();
        let blame = r.get("e2e_blame").unwrap();
        let sum: u64 = BLAME_COMPONENT_NAMES
            .iter()
            .map(|n| blame.get(&format!("{n}_ns")).unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(sum, e2e_ns, "blame components sum to measured e2e");
        let ttft_ns = r.get("ttft_ns").unwrap().as_u64().unwrap();
        let ttft_blame = r.get("ttft_blame").unwrap();
        let ttft_sum: u64 = BLAME_COMPONENT_NAMES
            .iter()
            .map(|n| {
                ttft_blame
                    .get(&format!("{n}_ns"))
                    .unwrap()
                    .as_u64()
                    .unwrap()
            })
            .sum();
        assert_eq!(ttft_sum, ttft_ns, "ttft blame sums to measured ttft");
    }

    #[test]
    fn csv_has_one_row_per_request_and_stable_width() {
        let report = reconstruct(&sample_events());
        let text = anatomy_to_csv(&report);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let columns = lines[0].split(',').count();
        assert_eq!(lines[1].split(',').count(), columns);
        assert!(lines[1].starts_with("7,0,1,completed,false,100,"));
    }

    #[test]
    fn waterfall_names_the_worst_request() {
        let report = reconstruct(&sample_events());
        let text = anatomy_waterfall(&report, 5);
        assert!(text.contains("latency anatomy: 1 requests"));
        assert!(text.contains("#7 [completed]"));
        // Every component appears once in the aggregate table; only the
        // non-zero ones appear again in the per-request breakdown.
        assert_eq!(text.matches("migration_cross_region").count(), 2);
        assert_eq!(
            text.matches("migration_intra").count(),
            1,
            "zero segments elided from the waterfall entry"
        );
    }
}
