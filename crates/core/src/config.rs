//! Simulation configuration.
//!
//! [`SimConfig`] describes one serving deployment: the model, the GPU, the
//! cluster size, the scheduling policy and the KV-memory regime. Presets
//! match the paper's two setups — the single-instance characterization
//! testbed (§III-A) and the eight-instance evaluation cluster (§V-A).

use pascal_federation::{FederationPolicy, WanLink};
use pascal_model::{GpuSpec, KvGeometry, LinkSpec, LlmSpec, PerfModel};
use pascal_predict::PredictorKind;
use pascal_sched::{RouterPolicy, SchedPolicy};
use pascal_sim::SimDuration;
use pascal_telemetry::TelemetryConfig;
use pascal_workload::DatasetMix;

use crate::engine::{AdmissionMode, PredictiveMigration};
use crate::fleet::FleetSpec;

/// How much HBM is available for KV cache on each instance.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum KvCapacityMode {
    /// Unbounded — the oracle configuration of Fig. 2(a)/Fig. 4.
    Unlimited,
    /// Whatever the GPU physically has left after weights and reserve.
    Physical,
    /// A fraction of the physical capacity (e.g. the paper's "50% of the
    /// oracle capacity" characterization setting, §III-A).
    FractionOfPhysical(f64),
    /// An explicit byte budget (used to set capacity to half the measured
    /// oracle peak).
    Bytes(u64),
}

/// Full description of one simulated deployment.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The served model.
    pub llm: LlmSpec,
    /// The per-instance GPU.
    pub gpu: GpuSpec,
    /// Number of serving instances (the paper's cluster has 8), summed
    /// over every shard of every region: the aggregate capacity stays
    /// fixed as the partitioning varies. Must divide evenly by
    /// [`SimConfig::regions`] × [`SimConfig::shards`].
    pub num_instances: usize,
    /// Number of scheduling domains the instances are partitioned into —
    /// *per region* when [`SimConfig::regions`] is above one. `1` (the
    /// default) reproduces the paper's single-pool engine byte-for-byte.
    pub shards: usize,
    /// Cross-shard routing discipline at the cluster boundary. Irrelevant
    /// (and never consulted) when `shards` is 1.
    pub router: RouterPolicy,
    /// Number of geographic regions the cluster federates across. `1` (the
    /// default) is the PR 4 cluster engine, byte-for-byte; above one, each
    /// region runs its own cluster-of-shards and arrivals are routed by
    /// [`SimConfig::fed_router`] from their `origin_region` tags.
    pub regions: usize,
    /// Cross-region routing discipline at the federation boundary.
    /// Irrelevant (and never consulted) when `regions` is 1.
    pub fed_router: FederationPolicy,
    /// WAN distance class connecting the regions — the tier cross-region
    /// migrations and spills ride, priced well above
    /// [`SimConfig::interconnect`] so the migration cost/benefit veto
    /// forbids frivolous cross-region moves.
    pub wan: WanLink,
    /// Scheduling policy under test.
    pub policy: SchedPolicy,
    /// KV memory regime.
    pub kv_capacity: KvCapacityMode,
    /// Paged-KV block size in tokens (vLLM default 16).
    pub block_tokens: u32,
    /// Maximum sequences per decode iteration (vLLM default 256).
    pub max_batch: u32,
    /// Maximum prompt tokens batched into one prefill iteration.
    pub prefill_token_budget: u32,
    /// Intra-shard inter-node migration fabric.
    pub fabric: LinkSpec,
    /// Inter-shard interconnect — the slower second tier of the cluster
    /// [`Topology`](pascal_cluster::Topology) that cross-shard migrations
    /// ride (and are cost-priced at).
    pub interconnect: LinkSpec,
    /// Host offload link.
    pub pcie: LinkSpec,
    /// Token pacer target (user reading pace, 100 ms in the paper).
    pub target_tpot: SimDuration,
    /// Online length predictor driving speculative demotion and
    /// predicted-footprint placement (`None` = the paper's reactive
    /// scheduler).
    pub predictor: Option<PredictorKind>,
    /// Predictive migration cost/benefit test (`None` = the paper's
    /// reactive Algorithm 2). Requires a `predictor` to have any effect.
    pub predictive_migration: Option<PredictiveMigration>,
    /// Admission-control mode (default [`AdmissionMode::Disabled`]: every
    /// arrival is admitted, as in the paper).
    pub admission: AdmissionMode,
    /// Observability streams (default: everything off — zero observer
    /// effect; see `pascal-telemetry`). Never consulted by any scheduling
    /// decision, so enabling telemetry cannot change a run's outputs.
    pub telemetry: TelemetryConfig,
    /// Fleet-elasticity schedule: timed join/drain/fail events, standby
    /// capacity and the reactive autoscaler (see [`crate::fleet`]).
    /// `None` (the default) keeps the fleet static for the run's lifetime
    /// and the engine byte-identical to a pre-elasticity build.
    pub fleet: Option<FleetSpec>,
    /// SLO burn-rate alert rules, evaluated per shard in sim-time (see
    /// `pascal_telemetry::alert`). Pure observation: the tracker consumes
    /// completion outcomes and never feeds back into scheduling, so
    /// `None` (the default) and `Some` runs produce byte-identical
    /// records, stats and series gauges other than the alert outputs
    /// themselves.
    pub alerts: Option<pascal_telemetry::SloAlertSpec>,
    /// Worker threads for the windowed parallel executor: `1` (the
    /// default) runs the exact sequential engine, `0` auto-sizes from the
    /// host's available parallelism, `N > 1` requests N threads. Always
    /// capped at the shard count — a one-shard run is sequential no matter
    /// what. Outputs are byte-identical at every setting: the executor
    /// advances shards in lockstep windows bounded by the next
    /// cross-boundary (barrier) event, so this knob only trades wall-clock
    /// time, never results.
    pub run_threads: usize,
}

impl SimConfig {
    /// The paper's single-instance characterization testbed (§III-A):
    /// one H100 96 GB serving DeepSeek-R1-Distill-Qwen-32B.
    #[must_use]
    pub fn characterization(policy: SchedPolicy, kv_capacity: KvCapacityMode) -> Self {
        SimConfig {
            llm: LlmSpec::deepseek_r1_distill_qwen_32b(),
            gpu: GpuSpec::h100_96gb(),
            num_instances: 1,
            shards: 1,
            router: RouterPolicy::RoundRobin,
            regions: 1,
            fed_router: FederationPolicy::Static,
            wan: WanLink::Continental,
            policy,
            kv_capacity,
            block_tokens: 16,
            max_batch: 256,
            prefill_token_budget: 8192,
            fabric: LinkSpec::fabric_100gbps(),
            interconnect: LinkSpec::interconnect_25gbps(),
            pcie: LinkSpec::pcie5_x16(),
            target_tpot: SimDuration::from_millis(100),
            predictor: None,
            predictive_migration: None,
            admission: AdmissionMode::Disabled,
            telemetry: TelemetryConfig::default(),
            fleet: None,
            alerts: None,
            run_threads: 1,
        }
    }

    /// The same deployment with SLO burn-rate alerting attached.
    #[must_use]
    pub fn with_alerts(mut self, alerts: pascal_telemetry::SloAlertSpec) -> Self {
        self.alerts = Some(alerts);
        self
    }

    /// The same deployment with a length predictor attached.
    #[must_use]
    pub fn with_predictor(mut self, predictor: PredictorKind) -> Self {
        self.predictor = Some(predictor);
        self
    }

    /// The same deployment with the predictive migration cost/benefit test
    /// enabled at the given benefit ratio.
    #[must_use]
    pub fn with_predictive_migration(mut self, min_benefit_ratio: f64) -> Self {
        self.predictive_migration = Some(PredictiveMigration { min_benefit_ratio });
        self
    }

    /// The same deployment with predictive admission control enabled.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionMode) -> Self {
        self.admission = admission;
        self
    }

    /// The same deployment partitioned into `shards` scheduling domains
    /// behind `router`. The instance count stays the aggregate; each shard
    /// gets `num_instances / shards` of it.
    #[must_use]
    pub fn with_shards(mut self, shards: usize, router: RouterPolicy) -> Self {
        self.shards = shards;
        self.router = router;
        self
    }

    /// The same deployment executed with `run_threads` worker threads (see
    /// [`SimConfig::run_threads`]; `0` = auto). Byte-identical outputs at
    /// every value.
    #[must_use]
    pub fn with_run_threads(mut self, run_threads: usize) -> Self {
        self.run_threads = run_threads;
        self
    }

    /// Whether phase-transition-capable iterations must be barrier events:
    /// only when a parallel executor may run (`run_threads != 1`) *and* a
    /// transition can reach beyond its shard (cross-shard escapes enabled
    /// and PASCAL migration on). The flag itself never changes outputs —
    /// barriers only bound the parallel executor's windows — so computing
    /// it from the *configured* thread count (not the host-resolved one)
    /// keeps window boundaries machine-independent.
    #[must_use]
    pub fn transition_barriers(&self) -> bool {
        self.run_threads != 1
            && (self.shards > 1 || self.regions > 1)
            && matches!(self.policy, SchedPolicy::Pascal(c) if c.migration_enabled)
    }

    /// The same deployment federated across `regions` regions behind
    /// `fed_router`. The instance count stays the aggregate; each region
    /// gets `num_instances / regions` of it, partitioned into
    /// [`SimConfig::shards`] scheduling domains per region.
    #[must_use]
    pub fn with_regions(mut self, regions: usize, fed_router: FederationPolicy) -> Self {
        self.regions = regions;
        self.fed_router = fed_router;
        self
    }

    /// The paper's evaluation cluster (§V-A): eight H100 instances on a
    /// 100 Gbps fabric, physical memory limits.
    #[must_use]
    pub fn evaluation_cluster(policy: SchedPolicy) -> Self {
        SimConfig {
            num_instances: 8,
            ..SimConfig::characterization(policy, KvCapacityMode::Physical)
        }
    }

    /// The performance model for this deployment.
    ///
    /// # Panics
    ///
    /// Panics if the model does not fit the GPU.
    #[must_use]
    pub fn perf_model(&self) -> PerfModel {
        PerfModel::new(self.llm.clone(), self.gpu.clone())
    }

    /// The paged-KV geometry for this deployment.
    #[must_use]
    pub fn geometry(&self) -> KvGeometry {
        KvGeometry::new(self.block_tokens, self.llm.kv_bytes_per_token())
    }

    /// Per-instance KV capacity in bytes (`None` = unbounded).
    ///
    /// # Panics
    ///
    /// Panics if a fractional mode is outside `(0, 1]`.
    #[must_use]
    pub fn kv_capacity_bytes(&self) -> Option<u64> {
        match self.kv_capacity {
            KvCapacityMode::Unlimited => None,
            KvCapacityMode::Physical => Some(self.perf_model().kv_capacity_bytes()),
            KvCapacityMode::FractionOfPhysical(f) => {
                assert!(
                    f > 0.0 && f <= 1.0,
                    "capacity fraction {f} must be in (0, 1]"
                );
                Some((self.perf_model().kv_capacity_bytes() as f64 * f) as u64)
            }
            KvCapacityMode::Bytes(b) => Some(b),
        }
    }

    /// Validates structural parameters.
    ///
    /// # Panics
    ///
    /// Panics on zero-sized fields.
    pub fn validate(&self) {
        assert!(self.num_instances > 0, "need at least one instance");
        assert!(self.shards > 0, "need at least one shard");
        assert!(self.regions > 0, "need at least one region");
        assert!(
            self.num_instances % self.shards == 0,
            "{} instances do not split evenly into {} shards",
            self.num_instances,
            self.shards
        );
        assert!(
            self.num_instances % (self.regions * self.shards) == 0,
            "{} instances do not split evenly into {} regions of {} shards",
            self.num_instances,
            self.regions,
            self.shards
        );
        assert!(self.max_batch > 0, "max_batch must be non-zero");
        assert!(self.block_tokens > 0, "block_tokens must be non-zero");
        assert!(
            self.prefill_token_budget > 0,
            "prefill budget must be non-zero"
        );
        if let Some(fleet) = &self.fleet {
            if let Err(e) = fleet.validate(self.regions, self.shards, self.num_instances) {
                panic!("{e}");
            }
        }
    }
}

/// Analytic estimate of the cluster's maximum sustainable request rate
/// (req/s) for a dataset mix — the reference from which the paper-style
/// "low / medium / high" arrival rates are derived as utilization fractions
/// (see `DESIGN.md` §2).
///
/// The estimate assumes steady state at the memory-limited batch size:
/// `B* = kv_tokens / mean_resident_context`, token throughput
/// `B* / decode_step(B*)`, divided by mean output tokens per request.
#[must_use]
pub fn estimate_capacity_rps(config: &SimConfig, mix: &DatasetMix) -> f64 {
    let perf = config.perf_model();
    let mean_out: f64 = mix.mean_output_tokens();
    let mean_prompt: f64 = mix
        .components()
        .iter()
        .map(|(p, w)| p.prompt.mean() * w)
        .sum::<f64>()
        / mix.components().iter().map(|(_, w)| w).sum::<f64>();
    // A request's resident context averages prompt + half its output.
    let mean_ctx = mean_prompt + mean_out / 2.0;
    let kv_tokens = match config.kv_capacity_bytes() {
        Some(bytes) => bytes as f64 / config.llm.kv_bytes_per_token() as f64,
        None => f64::from(config.max_batch) * mean_ctx,
    };
    let b_max = (kv_tokens / mean_ctx)
        .min(f64::from(config.max_batch))
        .max(1.0);
    let step = perf
        .decode_step_time(pascal_model::DecodeBatch {
            num_seqs: b_max as u32,
            total_context_tokens: (b_max * mean_ctx) as u64,
        })
        .as_secs_f64();
    let tokens_per_s = b_max / step;
    config.num_instances as f64 * tokens_per_s / mean_out
}

/// The three arrival-rate regimes of Fig. 9–12, as utilization fractions of
/// [`estimate_capacity_rps`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RateLevel {
    /// ~70% of estimated capacity: memory pressure is rare.
    Low,
    /// ~85%: intermittent pressure as bursts overlap.
    Medium,
    /// ~100%: sustained saturation — bursts exceed GPU compute and memory
    /// capacity, the regime Fig. 9's caption describes for its "high" rate
    /// and the one Fig. 10 focuses on.
    High,
}

impl RateLevel {
    /// All three levels in presentation order.
    pub const ALL: [RateLevel; 3] = [RateLevel::Low, RateLevel::Medium, RateLevel::High];

    /// The utilization fraction relative to [`estimate_capacity_rps`].
    ///
    /// The paper's "high" rate exceeds the cluster's compute and memory
    /// capacity (Fig. 9 caption); these fractions reproduce that regime.
    #[must_use]
    pub fn utilization(self) -> f64 {
        match self {
            RateLevel::Low => 0.70,
            RateLevel::Medium => 0.85,
            RateLevel::High => 1.00,
        }
    }

    /// Concrete request rate for a deployment and mix.
    #[must_use]
    pub fn rate_rps(self, config: &SimConfig, mix: &DatasetMix) -> f64 {
        self.utilization() * estimate_capacity_rps(config, mix)
    }

    /// The short CLI/JSON key (`low` / `medium` / `high`).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            RateLevel::Low => "low",
            RateLevel::Medium => "medium",
            RateLevel::High => "high",
        }
    }

    /// Parses a CLI-style key.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid keys.
    pub fn parse(s: &str) -> Result<RateLevel, String> {
        RateLevel::ALL
            .into_iter()
            .find(|l| l.key() == s)
            .ok_or_else(|| {
                let keys: Vec<&str> = RateLevel::ALL.iter().map(|l| l.key()).collect();
                format!("unknown rate level '{s}' (valid: {})", keys.join(", "))
            })
    }
}

impl std::fmt::Display for RateLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pascal_workload::DatasetProfile;

    #[test]
    fn characterization_config_is_single_instance() {
        let c = SimConfig::characterization(SchedPolicy::Fcfs, KvCapacityMode::Unlimited);
        c.validate();
        assert_eq!(c.num_instances, 1);
        assert_eq!(c.kv_capacity_bytes(), None);
    }

    #[test]
    fn evaluation_cluster_has_eight_instances() {
        let c = SimConfig::evaluation_cluster(SchedPolicy::Fcfs);
        c.validate();
        assert_eq!(c.num_instances, 8);
        assert!(c.kv_capacity_bytes().unwrap() > 10_000_000_000);
    }

    #[test]
    fn fraction_mode_scales_physical() {
        let full = SimConfig::characterization(SchedPolicy::Fcfs, KvCapacityMode::Physical);
        let half =
            SimConfig::characterization(SchedPolicy::Fcfs, KvCapacityMode::FractionOfPhysical(0.5));
        let f = full.kv_capacity_bytes().unwrap();
        let h = half.kv_capacity_bytes().unwrap();
        assert!((h as f64 / f as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn capacity_estimate_is_plausible() {
        let c = SimConfig::evaluation_cluster(SchedPolicy::Fcfs);
        let mix = DatasetMix::single(DatasetProfile::alpaca_eval2());
        let rps = estimate_capacity_rps(&c, &mix);
        // 8 H100s serving a 32B model: tens of requests per second.
        assert!(
            (5.0..100.0).contains(&rps),
            "capacity {rps} req/s out of band"
        );
    }

    #[test]
    fn rate_levels_are_ordered() {
        let c = SimConfig::evaluation_cluster(SchedPolicy::Fcfs);
        let mix = DatasetMix::single(DatasetProfile::arena_hard());
        let lo = RateLevel::Low.rate_rps(&c, &mix);
        let mid = RateLevel::Medium.rate_rps(&c, &mix);
        let hi = RateLevel::High.rate_rps(&c, &mix);
        assert!(lo < mid && mid < hi);
    }

    #[test]
    fn with_shards_partitions_the_cluster() {
        let c = SimConfig::evaluation_cluster(SchedPolicy::Fcfs)
            .with_shards(4, RouterPolicy::Predictive);
        c.validate();
        assert_eq!(c.shards, 4);
        assert_eq!(c.router, RouterPolicy::Predictive);
        assert_eq!(c.num_instances, 8, "aggregate capacity is unchanged");
    }

    #[test]
    #[should_panic(expected = "do not split evenly")]
    fn uneven_shard_partition_rejected() {
        SimConfig::evaluation_cluster(SchedPolicy::Fcfs)
            .with_shards(3, RouterPolicy::RoundRobin)
            .validate();
    }

    #[test]
    fn with_regions_federates_at_fixed_aggregate_capacity() {
        let c = SimConfig::evaluation_cluster(SchedPolicy::Fcfs)
            .with_shards(2, RouterPolicy::LeastLoaded)
            .with_regions(2, FederationPolicy::Predictive);
        c.validate();
        assert_eq!(c.regions, 2);
        assert_eq!(c.fed_router, FederationPolicy::Predictive);
        assert_eq!(c.wan, WanLink::Continental, "continental WAN by default");
        assert_eq!(c.num_instances, 8, "aggregate capacity is unchanged");
    }

    #[test]
    #[should_panic(expected = "regions of")]
    fn uneven_region_partition_rejected() {
        // 8 instances split into 4 shards fine, but not into 4 regions of
        // 4 shards each (16 scheduling domains).
        SimConfig::evaluation_cluster(SchedPolicy::Fcfs)
            .with_shards(4, RouterPolicy::RoundRobin)
            .with_regions(4, FederationPolicy::Static)
            .validate();
    }

    #[test]
    fn rate_level_parse_errors_list_valid_values() {
        let err = RateLevel::parse("turbo").expect_err("unknown level");
        assert!(
            err.contains("valid: low, medium, high"),
            "error must list the valid values, got: {err}"
        );
        for level in RateLevel::ALL {
            assert_eq!(RateLevel::parse(level.key()), Ok(level));
        }
    }

    #[test]
    fn run_threads_defaults_to_sequential() {
        let c = SimConfig::characterization(SchedPolicy::Fcfs, KvCapacityMode::Unlimited);
        assert_eq!(c.run_threads, 1);
        assert!(!c.transition_barriers());
        assert_eq!(c.with_run_threads(4).run_threads, 4);
    }

    #[test]
    fn transition_barriers_require_parallelism_and_cross_shard_migration() {
        let pascal = SchedPolicy::pascal(pascal_sched::PascalConfig::default());
        let sharded =
            SimConfig::evaluation_cluster(pascal).with_shards(4, RouterPolicy::RoundRobin);
        // Sequential runs never need barriers on iteration completions.
        assert!(!sharded.transition_barriers());
        assert!(sharded.clone().with_run_threads(4).transition_barriers());
        assert!(sharded.clone().with_run_threads(0).transition_barriers());
        // One shard, one region: a transition cannot leave its shard.
        assert!(!SimConfig::evaluation_cluster(pascal)
            .with_run_threads(4)
            .transition_barriers());
        // Non-migrating policies never escape either.
        assert!(!SimConfig::evaluation_cluster(SchedPolicy::Fcfs)
            .with_shards(4, RouterPolicy::RoundRobin)
            .with_run_threads(4)
            .transition_barriers());
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn bad_fraction_rejected() {
        let c =
            SimConfig::characterization(SchedPolicy::Fcfs, KvCapacityMode::FractionOfPhysical(1.5));
        let _ = c.kv_capacity_bytes();
    }
}
