//! The multi-instance serving engine.
//!
//! An iteration-level discrete-event simulation of vLLM-style continuous
//! batching (§II-B) across a pool of GPU instances, parameterized by a
//! [`SchedPolicy`]. The engine owns the single mechanism all three
//! schedulers share:
//!
//! 1. every time an instance is idle, sort its requests by the policy's
//!    priority key and grant GPU KV residency to the longest prefix that
//!    fits (the *desired set*);
//! 2. residents outside the desired set are preempted (KV offloaded to CPU
//!    over PCIe); non-residents inside it are admitted — prefilled,
//!    reloaded, or (for warm requests) materialized;
//! 3. run one iteration: a prefill pass over waiting prompts if any are
//!    admitted, otherwise one decode step for every runnable resident;
//! 4. at iteration end each decoded request gains one token; quantum
//!    counters advance, phase transitions fire (triggering Algorithm 2
//!    migration for PASCAL), completions free memory.
//!
//! Instance-level placement (Algorithm 1 / smallest-footprint) happens at
//! arrival events; KV migrations ride the fabric with ingress/egress
//! contention (§V-C).

use std::collections::HashMap;

use pascal_cluster::{Instance, InstanceStats, KvLocation, RequestState};
use pascal_metrics::{CalibrationReport, MigrationRecord, PredictionSample, RequestRecord};
use pascal_model::{DecodeBatch, KvGeometry, PerfModel};
use pascal_predict::{LengthPredictor, PredictorKind};
use pascal_sched::{MigrationDecision, SchedPolicy};
use pascal_sim::{EventQueue, SimTime};
use pascal_workload::{Phase, RequestId, Trace};

use crate::config::SimConfig;

/// Events driving the engine.
#[derive(Debug)]
enum Event {
    /// A request from the trace arrives (index into the trace).
    Arrival(usize),
    /// The in-flight iteration on an instance finished.
    IterationDone { instance: u32 },
    /// A preemption offload finished; KV now lives in CPU memory.
    OffloadDone { req: RequestId },
    /// A reload finished; KV is GPU-resident again.
    ReloadDone { req: RequestId },
    /// A phase-boundary migration landed on its destination.
    MigrationDone { req: RequestId, to: u32 },
}

/// What kind of iteration an instance is running.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum IterationKind {
    Prefill,
    Decode,
}

/// Result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// One record per completed request, ordered by request id.
    pub records: Vec<RequestRecord>,
    /// Peak GPU KV usage per instance, in bytes.
    pub peak_gpu_kv_bytes: Vec<u64>,
    /// Time of the last completion.
    pub makespan: SimTime,
    /// Name of the policy that produced this run.
    pub policy_name: String,
    /// One predicted-vs-actual sample per request, ordered by request id —
    /// empty when no length predictor was configured.
    pub predictions: Vec<PredictionSample>,
}

impl SimOutput {
    /// All phase-boundary migrations performed during the run.
    #[must_use]
    pub fn migrations(&self) -> Vec<MigrationRecord> {
        self.records.iter().filter_map(|r| r.migration).collect()
    }

    /// Calibration report of the run's length predictor, if it produced
    /// absolute estimates.
    #[must_use]
    pub fn calibration(&self) -> Option<CalibrationReport> {
        CalibrationReport::from_samples(&self.predictions)
    }
}

/// Runs `trace` through the deployment described by `config`.
///
/// Deterministic: identical `(trace, config)` inputs produce identical
/// outputs.
///
/// # Panics
///
/// Panics if the configuration is invalid, or if any single request's final
/// KV footprint exceeds one instance's KV capacity (such a request could
/// never be scheduled).
#[must_use]
pub fn run_simulation(trace: &Trace, config: &SimConfig) -> SimOutput {
    Engine::new(trace, config).run()
}

struct Engine<'a> {
    trace: &'a Trace,
    config: &'a SimConfig,
    policy: SchedPolicy,
    perf: PerfModel,
    geometry: KvGeometry,
    queue: EventQueue<Event>,
    instances: Vec<InstanceRt>,
    fabric: pascal_cluster::Fabric,
    states: HashMap<RequestId, RequestState>,
    /// GPU blocks pre-reserved on a migration destination, keyed by the
    /// migrating request.
    migration_reservations: HashMap<RequestId, u64>,
    records: Vec<RequestRecord>,
    /// Online length predictor (fresh state per run); fed every completion.
    predictor: Option<Box<dyn LengthPredictor>>,
    prediction_samples: Vec<PredictionSample>,
}

/// Engine-side per-instance runtime extension.
struct InstanceRt {
    inst: Instance,
    current_batch: Vec<RequestId>,
    current_kind: IterationKind,
}

impl<'a> Engine<'a> {
    fn new(trace: &'a Trace, config: &'a SimConfig) -> Self {
        config.validate();
        let perf = config.perf_model();
        let geometry = config.geometry();
        let capacity = config.kv_capacity_bytes();

        if let Some(cap) = capacity {
            let cap_blocks = geometry.blocks_in(cap);
            for r in trace.requests() {
                let worst = geometry.blocks_for_tokens(r.final_context_tokens() + 1);
                assert!(
                    worst <= cap_blocks,
                    "{} needs {worst} KV blocks but an instance only has {cap_blocks}; \
                     raise capacity or shrink the request",
                    r.id
                );
            }
        }

        let mut queue = EventQueue::new();
        for (i, r) in trace.requests().iter().enumerate() {
            queue.schedule(r.arrival, Event::Arrival(i));
        }

        let instances = (0..config.num_instances)
            .map(|i| InstanceRt {
                inst: Instance::new(i as u32, geometry, capacity, config.pcie),
                current_batch: Vec::new(),
                current_kind: IterationKind::Decode,
            })
            .collect();

        Engine {
            trace,
            config,
            policy: config.policy,
            perf,
            geometry,
            queue,
            instances,
            fabric: pascal_cluster::Fabric::new(config.num_instances, config.fabric),
            states: HashMap::with_capacity(trace.requests().len()),
            migration_reservations: HashMap::new(),
            records: Vec::with_capacity(trace.requests().len()),
            predictor: config.predictor.map(PredictorKind::build),
            prediction_samples: Vec::new(),
        }
    }

    fn run(mut self) -> SimOutput {
        while let Some((now, ev)) = self.queue.pop() {
            match ev {
                Event::Arrival(idx) => self.on_arrival(idx, now),
                Event::IterationDone { instance } => self.on_iteration_done(instance, now),
                Event::OffloadDone { req } => self.on_offload_done(req, now),
                Event::ReloadDone { req } => self.on_reload_done(req, now),
                Event::MigrationDone { req, to } => self.on_migration_done(req, to, now),
            }
        }
        assert!(
            self.states.is_empty(),
            "simulation drained with {} unfinished requests (deadlock)",
            self.states.len()
        );
        let mut records = self.records;
        records.sort_by_key(|r| r.spec.id);
        let makespan = records
            .iter()
            .map(|r| r.completion)
            .max()
            .unwrap_or(SimTime::ZERO);
        let mut predictions = self.prediction_samples;
        predictions.sort_by_key(|p| p.id);
        // Only PASCAL consumes predictions (demotion, placement); under
        // the baselines a predictor is purely observational — calibration
        // samples are still logged, but the run's behavior is identical to
        // the plain policy, and the name must say so.
        let policy_name = match (&self.predictor, &self.policy) {
            (Some(p), SchedPolicy::Pascal(_)) => {
                format!("{}(Predictive-{})", self.policy.name(), p.name())
            }
            _ => self.policy.name().to_owned(),
        };
        SimOutput {
            peak_gpu_kv_bytes: self
                .instances
                .iter()
                .map(|i| i.inst.gpu.peak_used_blocks() * self.geometry.block_bytes())
                .collect(),
            makespan,
            policy_name,
            records,
            predictions,
        }
    }

    // ----- event handlers -------------------------------------------------

    fn on_arrival(&mut self, idx: usize, now: SimTime) {
        let spec = self.trace.requests()[idx].clone();
        // Log the estimate the scheduler is about to act on (pre-observe:
        // this request's own lengths are still hidden from the predictor).
        if let Some(pred) = &self.predictor {
            let est = pred.estimate(&spec);
            self.prediction_samples.push(PredictionSample {
                id: spec.id,
                predicted_reasoning_tokens: est.reasoning_tokens,
                actual_reasoning_tokens: spec.reasoning_tokens,
                predicted_total_tokens: est.total_tokens(),
                actual_total_tokens: spec.output_tokens(),
            });
        }
        let stats = self.collect_stats(now);
        let target = self.policy.place_new_request(&stats);
        let mut state = RequestState::new(spec, target, self.config.target_tpot);
        // Speculative demotion (§IV-C made predictive): an incoming
        // reasoning request whose *predicted* total reasoning length
        // exceeds the threshold starts life in the low-priority queue
        // instead of waiting for its generated tokens to cross it.
        if let (Some(pred), Some(threshold)) =
            (&self.predictor, self.policy.demotion_threshold_tokens())
        {
            if state.phase == Phase::Reasoning && pred.predicts_oversized(&state.spec, threshold) {
                state.demoted = true;
            }
        }
        let id = state.spec.id;
        self.instances[target as usize].inst.members.insert(id);
        self.states.insert(id, state);
        self.try_schedule(target, now);
    }

    fn on_iteration_done(&mut self, instance: u32, now: SimTime) {
        let batch = std::mem::take(&mut self.instances[instance as usize].current_batch);
        let kind = self.instances[instance as usize].current_kind;
        self.instances[instance as usize].inst.compute_busy = false;

        for id in batch {
            {
                let st = self.states.get_mut(&id).expect("batched request exists");
                st.end_running(now);
                if kind == IterationKind::Prefill {
                    st.prefilled = true;
                }
            }
            self.emit_token(id, now);
        }
        self.try_schedule(instance, now);
    }

    fn on_offload_done(&mut self, req: RequestId, now: SimTime) {
        let (instance, blocks) = {
            let st = self
                .states
                .get_mut(&req)
                .expect("offloading request exists");
            assert_eq!(st.kv_location, KvLocation::OffloadingToCpu);
            let blocks = st.held_gpu_blocks;
            st.held_gpu_blocks = 0;
            // The CPU copy holds the actual context, without growth headroom.
            let cpu_blocks = self.geometry.blocks_for_tokens(st.context_tokens());
            st.held_cpu_blocks = cpu_blocks;
            st.kv_location = KvLocation::Cpu;
            (st.instance, blocks)
        };
        let inst = &mut self.instances[instance as usize].inst;
        inst.gpu.free(blocks);
        let cpu_blocks = self.states[&req].held_cpu_blocks;
        inst.cpu.alloc(cpu_blocks);
        self.try_schedule(instance, now);
    }

    fn on_reload_done(&mut self, req: RequestId, now: SimTime) {
        let instance = {
            let st = self.states.get_mut(&req).expect("reloading request exists");
            assert_eq!(st.kv_location, KvLocation::ReloadingToGpu);
            st.kv_location = KvLocation::Gpu;
            st.resident_since = Some(now);
            st.instance
        };
        let cpu_blocks = {
            let st = self.states.get_mut(&req).expect("reloading request exists");
            let b = st.held_cpu_blocks;
            st.held_cpu_blocks = 0;
            b
        };
        self.instances[instance as usize].inst.cpu.free(cpu_blocks);
        self.try_schedule(instance, now);
    }

    fn on_migration_done(&mut self, req: RequestId, to: u32, now: SimTime) {
        let (from, gpu_blocks) = {
            let st = self.states.get_mut(&req).expect("migrating request exists");
            assert_eq!(st.kv_location, KvLocation::Migrating);
            let blocks = st.held_gpu_blocks;
            st.held_gpu_blocks = 0;
            (st.instance, blocks)
        };
        self.instances[from as usize].inst.gpu.free(gpu_blocks);
        self.instances[from as usize].inst.members.remove(&req);

        let needed = {
            let st = self.states.get_mut(&req).expect("migrating request exists");
            st.instance = to;
            st.instances_visited.push(to);
            self.geometry.blocks_for_tokens(st.tokens_needed_next())
        };
        self.instances[to as usize].inst.members.insert(req);

        if let Some(reserved) = self.migration_reservations.remove(&req) {
            // Blocks were reserved when the transfer launched; no tokens were
            // generated in flight, so the reservation is still exact.
            debug_assert_eq!(reserved, needed);
            let st = self.states.get_mut(&req).expect("migrating request exists");
            st.held_gpu_blocks = reserved;
            st.kv_location = KvLocation::Gpu;
            st.resident_since = Some(now);
            self.try_schedule(from, now);
            self.try_schedule(to, now);
            return;
        }

        let dest = &mut self.instances[to as usize].inst;
        if dest.gpu.try_alloc(needed) {
            let st = self.states.get_mut(&req).expect("migrating request exists");
            st.held_gpu_blocks = needed;
            st.kv_location = KvLocation::Gpu;
            st.resident_since = Some(now);
        } else {
            // Destination has no room: the KV lands in its CPU pool and the
            // request must wait for a reload — the stall the adaptive
            // migration policy exists to avoid (Fig. 7, Fig. 15).
            let cpu_blocks = {
                let st = self.states.get_mut(&req).expect("migrating request exists");
                let b = self.geometry.blocks_for_tokens(st.context_tokens());
                st.held_cpu_blocks = b;
                st.kv_location = KvLocation::Cpu;
                b
            };
            dest.cpu.alloc(cpu_blocks);
        }
        self.try_schedule(from, now);
        self.try_schedule(to, now);
    }

    // ----- token + phase machinery ---------------------------------------

    fn emit_token(&mut self, id: RequestId, now: SimTime) {
        let mut crossed_threshold = None;
        let (transitioned, done) = {
            let st = self.states.get_mut(&id).expect("emitting request exists");
            st.tokens_generated += 1;
            st.token_times.push(now);

            // Round-robin quantum accounting (§II-C).
            st.tokens_in_quantum += 1;
            let quantum = self.policy.quantum();
            if st.tokens_in_quantum >= quantum {
                st.quanta_used += 1;
                st.tokens_in_quantum = 0;
            }

            // PASCAL's conditional demotion (§IV-C).
            if let Some(threshold) = self.policy.demotion_threshold_tokens() {
                // `checked_add`: a u32::MAX threshold means "never demote"
                // (the ablation configs) and must never signal a crossing.
                if st.phase == Phase::Reasoning
                    && Some(st.tokens_generated) == threshold.checked_add(1)
                {
                    // The request just proved itself oversized mid-flight —
                    // the early label the predictor cannot get from the
                    // (survivorship-biased) completion stream.
                    crossed_threshold = Some(threshold);
                }
                if st.phase == Phase::Reasoning && !st.demoted && st.tokens_generated > threshold {
                    st.demoted = true;
                }
            }

            if st.phase == Phase::Answering {
                st.pacer.on_token(now);
            }

            let transitioned = st.phase == Phase::Reasoning
                && st.tokens_generated == st.spec.reasoning_tokens
                && st.spec.answering_tokens > 0;
            (transitioned, st.is_done())
        };

        if let (Some(threshold), Some(pred)) = (crossed_threshold, &mut self.predictor) {
            let spec = self.states[&id].spec.clone();
            pred.observe_threshold_crossing(&spec, threshold);
        }

        if done {
            self.complete(id, now);
            return;
        }
        if transitioned {
            self.on_phase_transition(id, now);
        }
    }

    fn on_phase_transition(&mut self, id: RequestId, now: SimTime) {
        {
            let st = self.states.get_mut(&id).expect("transitioning request");
            st.phase = Phase::Answering;
            if self.policy.resets_quanta_at_transition() {
                st.quanta_used = 0;
                st.tokens_in_quantum = 0;
            }
        }
        let (current, needed_blocks) = {
            let st = &self.states[&id];
            (
                st.instance,
                self.geometry.blocks_for_tokens(st.tokens_needed_next()),
            )
        };
        let stats = self.collect_stats(now);
        match self
            .policy
            .migration_decision(current, needed_blocks, &stats)
        {
            MigrationDecision::Stay => {}
            MigrationDecision::MigrateTo(dest) => self.start_migration(id, dest, now),
        }
    }

    fn start_migration(&mut self, id: RequestId, dest: u32, now: SimTime) {
        // Under the adaptive policy the destination's KV blocks are reserved
        // up front; if that fails the request stays home (the race-free form
        // of the Fig. 7 override). NonAdaptive migrates blindly and may land
        // in the destination's CPU pool.
        let needed = self
            .geometry
            .blocks_for_tokens(self.states[&id].tokens_needed_next());
        if self.instances[dest as usize].inst.gpu.try_alloc(needed) {
            self.migration_reservations.insert(id, needed);
        } else if self.policy.adaptive_migration() {
            return;
        }
        let (from, bytes) = {
            let st = self.states.get_mut(&id).expect("migrating request");
            debug_assert_eq!(st.kv_location, KvLocation::Gpu);
            st.kv_location = KvLocation::Migrating;
            st.resident_since = None;
            let bytes =
                self.geometry.blocks_for_tokens(st.context_tokens()) * self.geometry.block_bytes();
            (st.instance, bytes)
        };
        let (_, finish) = self
            .fabric
            .migrate(now, from as usize, dest as usize, bytes);
        {
            let st = self.states.get_mut(&id).expect("migrating request");
            st.migration = Some(MigrationRecord {
                from_instance: from,
                to_instance: dest,
                started: now,
                finished: finish,
                bytes,
            });
        }
        self.queue
            .schedule(finish, Event::MigrationDone { req: id, to: dest });
    }

    fn complete(&mut self, id: RequestId, now: SimTime) {
        let st = self.states.remove(&id).expect("completing request exists");
        let instance = st.instance as usize;
        let gpu_blocks = st.held_gpu_blocks;
        let cpu_blocks = st.held_cpu_blocks;
        self.instances[instance].inst.members.remove(&id);
        if gpu_blocks > 0 {
            self.instances[instance].inst.gpu.free(gpu_blocks);
        }
        if cpu_blocks > 0 {
            self.instances[instance].inst.cpu.free(cpu_blocks);
        }
        // Completion is the online learning signal: the spec carries the
        // actual lengths, now revealed. Completions arrive in deterministic
        // event order, so predictor state stays replayable.
        if let Some(pred) = &mut self.predictor {
            pred.observe(&st.spec);
        }
        self.records.push(st.into_record(now));
    }

    // ----- the scheduling core --------------------------------------------

    /// Monitor snapshot of every instance (Fig. 6's instance monitor).
    fn collect_stats(&self, now: SimTime) -> Vec<InstanceStats> {
        self.instances
            .iter()
            .map(|rt| {
                let mut slo_ok = true;
                let mut reasoning = 0u32;
                let mut fresh_answering = 0u32;
                for id in &rt.inst.members {
                    let st = &self.states[id];
                    match st.phase {
                        Phase::Reasoning => {
                            if !st.demoted {
                                reasoning += 1;
                            }
                        }
                        Phase::Answering => {
                            if st.quanta_used == 0 {
                                fresh_answering += 1;
                            }
                            if !st.pacer.is_on_pace(now) {
                                slo_ok = false;
                            }
                        }
                    }
                }
                // Predicted future KV growth of the instance's in-flight
                // requests (predictive Algorithm 1). Rank-only predictors
                // estimate nothing and contribute zero — placement then
                // degrades gracefully to current footprints. Baselines
                // never read the field, so skip the per-member estimates.
                let predicted_future_kv_bytes = if matches!(self.policy, SchedPolicy::Pascal(_)) {
                    self.predictor.as_ref().map_or(0, |pred| {
                        rt.inst
                            .members
                            .iter()
                            .map(|id| {
                                let st = &self.states[id];
                                let Some(total) = pred.estimate(&st.spec).total_tokens() else {
                                    return 0;
                                };
                                let remaining =
                                    (total - f64::from(st.tokens_generated)).max(0.0).round();
                                self.geometry.bytes_for_tokens(remaining as u64)
                            })
                            .sum()
                    })
                } else {
                    0
                };
                InstanceStats {
                    instance: rt.inst.id,
                    slo_ok,
                    kv_footprint_bytes: rt.inst.kv_footprint_bytes(),
                    reasoning_count: reasoning,
                    fresh_answering_count: fresh_answering,
                    gpu_free_blocks: rt.inst.gpu.free_blocks(),
                    predicted_future_kv_bytes,
                }
            })
            .collect()
    }

    /// Plans residency and, if possible, launches the next iteration.
    fn try_schedule(&mut self, instance: u32, now: SimTime) {
        if self.instances[instance as usize].inst.compute_busy {
            return;
        }

        // 1. Candidates sorted by policy priority.
        let mut cands: Vec<RequestId> = self.instances[instance as usize]
            .inst
            .members
            .iter()
            .copied()
            .filter(|id| {
                let st = &self.states[id];
                !matches!(
                    st.kv_location,
                    KvLocation::Migrating | KvLocation::OffloadingToCpu
                )
            })
            .collect();
        cands.sort_by_key(|id| self.policy.priority_key(&self.states[id]));

        // 2. Desired prefix under the block budget. Blocks held by dying
        //    allocations (offloads, outbound migrations) are unavailable.
        let dying: u64 = self.instances[instance as usize]
            .inst
            .members
            .iter()
            .filter(|id| {
                matches!(
                    self.states[*id].kv_location,
                    KvLocation::OffloadingToCpu | KvLocation::Migrating
                )
            })
            .map(|id| self.states[id].held_gpu_blocks)
            .sum();
        let budget = self.instances[instance as usize]
            .inst
            .gpu
            .capacity_blocks()
            .map(|c| c.saturating_sub(dying));

        let mut desired: Vec<RequestId> = Vec::new();
        let mut acc: u64 = 0;
        for &id in &cands {
            if desired.len() >= self.config.max_batch as usize {
                break;
            }
            let st = &self.states[&id];
            let need = self
                .geometry
                .blocks_for_tokens(st.tokens_needed_next())
                .max(st.held_gpu_blocks);
            match budget {
                None => {
                    acc += need;
                    desired.push(id);
                }
                Some(b) if acc + need <= b => {
                    acc += need;
                    desired.push(id);
                }
                Some(_) => break,
            }
        }
        let desired_set: std::collections::HashSet<RequestId> = desired.iter().copied().collect();

        // 3. Preempt GPU residents that fell out of the desired set.
        let evictees: Vec<RequestId> = self.instances[instance as usize]
            .inst
            .members
            .iter()
            .copied()
            .filter(|id| {
                let st = &self.states[id];
                st.kv_location == KvLocation::Gpu && !desired_set.contains(id)
            })
            .collect();
        for id in evictees {
            self.start_offload(id, now);
        }

        // 4. Admit the desired set: grow residents, start reloads,
        //    materialize warm requests, and collect prefill candidates.
        let mut prefill_batch: Vec<RequestId> = Vec::new();
        let mut prefill_tokens: u64 = 0;
        let mut decode_batch: Vec<RequestId> = Vec::new();

        for &id in &desired {
            let (location, needs_prefill, warm, target_blocks, held, prompt) = {
                let st = &self.states[&id];
                (
                    st.kv_location,
                    st.needs_prefill(),
                    st.spec.warm_start,
                    self.geometry.blocks_for_tokens(st.tokens_needed_next()),
                    st.held_gpu_blocks,
                    st.spec.prompt_tokens,
                )
            };
            match location {
                KvLocation::Gpu => {
                    let runnable = if held >= target_blocks {
                        true
                    } else {
                        let delta = target_blocks - held;
                        if self.instances[instance as usize].inst.gpu.try_alloc(delta) {
                            self.states.get_mut(&id).expect("desired exists").held_gpu_blocks =
                                target_blocks;
                            true
                        } else {
                            false // waits for in-flight offloads to free memory
                        }
                    };
                    if runnable {
                        decode_batch.push(id);
                    }
                }
                KvLocation::Cpu
                    // Reload: GPU blocks reserved up front, PCIe serialized.
                    if self.instances[instance as usize].inst.gpu.try_alloc(target_blocks) => {
                        let bytes = {
                            let st = self.states.get_mut(&id).expect("desired exists");
                            st.held_gpu_blocks = target_blocks;
                            st.kv_location = KvLocation::ReloadingToGpu;
                            self.geometry.blocks_for_tokens(st.context_tokens())
                                * self.geometry.block_bytes()
                        };
                        let (_, finish) = self.instances[instance as usize]
                            .inst
                            .pcie
                            .enqueue(now, bytes);
                        self.queue.schedule(finish, Event::ReloadDone { req: id });
                    }
                KvLocation::None if warm
                    // Fig. 5 setup: the KV already exists logically; it
                    // materializes without prefill compute once admitted.
                    && self.instances[instance as usize].inst.gpu.try_alloc(target_blocks) => {
                        let st = self.states.get_mut(&id).expect("desired exists");
                        st.held_gpu_blocks = target_blocks;
                        st.kv_location = KvLocation::Gpu;
                        st.resident_since = Some(now);
                        st.prefilled = true;
                        decode_batch.push(id);
                    }
                KvLocation::None if needs_prefill => {
                    // A lone oversized prompt may exceed the budget; always
                    // admit at least one prefill so it cannot starve.
                    let within_budget = prefill_batch.is_empty()
                        || prefill_tokens + u64::from(prompt)
                            <= u64::from(self.config.prefill_token_budget);
                    if within_budget
                        && self.instances[instance as usize].inst.gpu.try_alloc(target_blocks)
                    {
                        self.states.get_mut(&id).expect("desired exists").held_gpu_blocks =
                            target_blocks;
                        prefill_tokens += u64::from(prompt);
                        prefill_batch.push(id);
                    }
                }
                _ => {} // reloading / none-but-impossible: wait
            }
        }

        // 5. Launch: prefill takes priority (vLLM 0.6.1 semantics), else a
        //    decode step over every runnable resident.
        if !prefill_batch.is_empty() {
            let prompts: Vec<u32> = prefill_batch
                .iter()
                .map(|id| self.states[id].spec.prompt_tokens)
                .collect();
            let duration = self.perf.prefill_time_batch(&prompts);
            for id in &prefill_batch {
                let st = self.states.get_mut(id).expect("prefill request exists");
                st.begin_running(now);
                // KV becomes resident as the prefill pass runs.
                st.kv_location = KvLocation::Gpu;
                st.resident_since = Some(now);
            }
            let rt = &mut self.instances[instance as usize];
            rt.current_batch = prefill_batch;
            rt.current_kind = IterationKind::Prefill;
            rt.inst.compute_busy = true;
            self.queue
                .schedule(now + duration, Event::IterationDone { instance });
        } else if !decode_batch.is_empty() {
            let total_context: u64 = decode_batch
                .iter()
                .map(|id| self.states[id].context_tokens())
                .sum();
            let duration = self.perf.decode_step_time(DecodeBatch {
                num_seqs: decode_batch.len() as u32,
                total_context_tokens: total_context,
            });
            for id in &decode_batch {
                self.states
                    .get_mut(id)
                    .expect("decode request exists")
                    .begin_running(now);
            }
            let rt = &mut self.instances[instance as usize];
            rt.current_batch = decode_batch;
            rt.current_kind = IterationKind::Decode;
            rt.inst.compute_busy = true;
            self.queue
                .schedule(now + duration, Event::IterationDone { instance });
        }
    }

    fn start_offload(&mut self, id: RequestId, now: SimTime) {
        let (instance, bytes) = {
            let st = self.states.get_mut(&id).expect("offload request exists");
            debug_assert_eq!(st.kv_location, KvLocation::Gpu);
            st.kv_location = KvLocation::OffloadingToCpu;
            st.resident_since = None;
            st.num_preemptions += 1;
            let bytes =
                self.geometry.blocks_for_tokens(st.context_tokens()) * self.geometry.block_bytes();
            (st.instance, bytes)
        };
        let (_, finish) = self.instances[instance as usize]
            .inst
            .pcie
            .enqueue(now, bytes);
        self.queue.schedule(finish, Event::OffloadDone { req: id });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KvCapacityMode;
    use pascal_sched::PascalConfig;
    use pascal_workload::RequestSpec;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn oracle(policy: SchedPolicy) -> SimConfig {
        SimConfig::characterization(policy, KvCapacityMode::Unlimited)
    }

    #[test]
    fn empty_trace_completes_immediately() {
        let out = run_simulation(&Trace::from_requests(vec![]), &oracle(SchedPolicy::Fcfs));
        assert!(out.records.is_empty());
        assert_eq!(out.makespan, SimTime::ZERO);
    }

    #[test]
    fn simultaneous_arrivals_all_complete() {
        let requests: Vec<RequestSpec> = (0..20)
            .map(|i| RequestSpec::new(RequestId(i), SimTime::ZERO, 64, 30, 10))
            .collect();
        let out = run_simulation(
            &Trace::from_requests(requests),
            &oracle(SchedPolicy::round_robin_default()),
        );
        assert_eq!(out.records.len(), 20);
        for r in &out.records {
            r.assert_consistent();
        }
    }

    #[test]
    fn max_batch_caps_concurrency() {
        // 30 simultaneous requests with max_batch 8: they still all finish,
        // just in waves.
        let requests: Vec<RequestSpec> = (0..30)
            .map(|i| RequestSpec::new(RequestId(i), SimTime::ZERO, 32, 10, 0))
            .collect();
        let mut config = oracle(SchedPolicy::Fcfs);
        config.max_batch = 8;
        let out = run_simulation(&Trace::from_requests(requests), &config);
        assert_eq!(out.records.len(), 30);
        // With FCFS and batch 8, the last requests cannot start before the
        // first wave ends: their blocked time must be non-trivial.
        let last = &out.records[29];
        assert!(last.blocked.as_secs_f64() > 0.1);
    }

    #[test]
    fn prefill_budget_batches_prompts() {
        // Two prompts of 3000 tokens exceed a 4096 budget together, so they
        // prefill in separate iterations; a single oversized prompt is still
        // admitted alone.
        let requests = vec![
            RequestSpec::new(RequestId(0), SimTime::ZERO, 3000, 5, 0),
            RequestSpec::new(RequestId(1), SimTime::ZERO, 3000, 5, 0),
            RequestSpec::new(RequestId(2), secs(10.0), 8000, 5, 0),
        ];
        let mut config = oracle(SchedPolicy::Fcfs);
        config.prefill_token_budget = 4096;
        let out = run_simulation(&Trace::from_requests(requests), &config);
        assert_eq!(out.records.len(), 3);
        // Request 1's first token comes a full prefill later than request 0's.
        let gap = out.records[1].token_times[0].saturating_since(out.records[0].token_times[0]);
        assert!(gap.as_millis_f64() > 50.0, "expected separate prefills");
    }

    #[test]
    fn demotion_drops_long_reasoning_to_low_priority() {
        // One enormous reasoning request and a stream of small ones under
        // PASCAL with a tiny demotion threshold: the big one must be flagged
        // demoted (observable through its preemptions once small requests
        // take priority under memory pressure).
        let mut requests = vec![RequestSpec::new(RequestId(0), SimTime::ZERO, 64, 2000, 0)];
        for i in 1..9 {
            requests.push(RequestSpec::new(
                RequestId(i),
                secs(5.0 + 4.0 * i as f64),
                64,
                400,
                0,
            ));
        }
        let geometry = oracle(SchedPolicy::Fcfs).geometry();
        let policy = SchedPolicy::pascal(PascalConfig {
            demotion_threshold_tokens: 500,
            ..PascalConfig::default()
        });
        let config = SimConfig::characterization(
            policy,
            KvCapacityMode::Bytes(geometry.bytes_for_tokens(2200)),
        );
        let out = run_simulation(&Trace::from_requests(requests), &config);
        let big = &out.records[0];
        assert!(
            big.num_preemptions > 0,
            "demoted giant should lose memory to fresh reasoning requests"
        );
        // Without demotion the giant reasoning request keeps strict
        // priority within its quantum class and is preempted less.
        let no_demotion = SchedPolicy::pascal(PascalConfig {
            demotion_threshold_tokens: u32::MAX,
            ..PascalConfig::default()
        });
        let config2 = SimConfig::characterization(
            no_demotion,
            KvCapacityMode::Bytes(geometry.bytes_for_tokens(2200)),
        );
        let out2 = run_simulation(
            &Trace::from_requests(
                out.records
                    .iter()
                    .map(|r| r.spec.clone())
                    .collect::<Vec<_>>(),
            ),
            &config2,
        );
        assert!(
            out2.records[0].completion <= big.completion,
            "demotion should not speed the giant up"
        );
    }

    #[test]
    fn warm_requests_under_pressure_queue_like_cold_ones() {
        // Warm requests still need GPU memory for their context; with only
        // room for one at a time they serialize.
        let geometry = oracle(SchedPolicy::Fcfs).geometry();
        let requests = vec![
            RequestSpec::warm(RequestId(0), SimTime::ZERO, 1000, 100),
            RequestSpec::warm(RequestId(1), SimTime::ZERO, 1000, 100),
        ];
        let config = SimConfig::characterization(
            SchedPolicy::Fcfs,
            KvCapacityMode::Bytes(geometry.bytes_for_tokens(1300)),
        );
        let out = run_simulation(&Trace::from_requests(requests), &config);
        let a = &out.records[0];
        let b = &out.records[1];
        assert!(
            b.token_times[0] >= a.completion,
            "B must wait for A's memory"
        );
        assert!(b.blocked.as_secs_f64() > 1.0);
    }

    #[test]
    #[should_panic(expected = "KV blocks but an instance only has")]
    fn oversized_request_rejected_at_setup() {
        let geometry = oracle(SchedPolicy::Fcfs).geometry();
        let requests = vec![RequestSpec::new(RequestId(0), SimTime::ZERO, 64, 5000, 0)];
        let config = SimConfig::characterization(
            SchedPolicy::Fcfs,
            KvCapacityMode::Bytes(geometry.bytes_for_tokens(1000)),
        );
        let _ = run_simulation(&Trace::from_requests(requests), &config);
    }

    #[test]
    fn pool_accounting_returns_to_zero() {
        let requests: Vec<RequestSpec> = (0..15)
            .map(|i| RequestSpec::new(RequestId(i), secs(0.2 * i as f64), 64, 200, 100))
            .collect();
        let trace = Trace::from_requests(requests);
        let geometry = oracle(SchedPolicy::Fcfs).geometry();
        for policy in [
            SchedPolicy::Fcfs,
            SchedPolicy::round_robin_default(),
            SchedPolicy::pascal(PascalConfig::default()),
        ] {
            let config = SimConfig::characterization(
                policy,
                KvCapacityMode::Bytes(geometry.bytes_for_tokens(2000)),
            );
            let mut engine = Engine::new(&trace, &config);
            while let Some((now, ev)) = engine.queue.pop() {
                match ev {
                    Event::Arrival(idx) => engine.on_arrival(idx, now),
                    Event::IterationDone { instance } => engine.on_iteration_done(instance, now),
                    Event::OffloadDone { req } => engine.on_offload_done(req, now),
                    Event::ReloadDone { req } => engine.on_reload_done(req, now),
                    Event::MigrationDone { req, to } => engine.on_migration_done(req, to, now),
                }
            }
            for rt in &engine.instances {
                assert_eq!(
                    rt.inst.gpu.used_blocks(),
                    0,
                    "{}: GPU blocks leaked",
                    policy.name()
                );
                assert_eq!(
                    rt.inst.cpu.used_blocks(),
                    0,
                    "{}: CPU blocks leaked",
                    policy.name()
                );
                assert!(
                    rt.inst.members.is_empty(),
                    "{}: members leaked",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn migrated_requests_account_memory_on_both_sides() {
        let requests: Vec<RequestSpec> = (0..40)
            .map(|i| RequestSpec::new(RequestId(i), secs(0.1 * i as f64), 64, 150, 150))
            .collect();
        let trace = Trace::from_requests(requests);
        let mut config =
            SimConfig::evaluation_cluster(SchedPolicy::pascal(PascalConfig::default()));
        config.num_instances = 3;
        let out = run_simulation(&trace, &config);
        let migrated = out.records.iter().filter(|r| r.migration.is_some()).count();
        assert!(migrated > 0, "expected at least one migration");
        // Token streams of migrated requests never go backwards in time
        // across the transfer gap.
        for r in out.records.iter().filter(|r| r.migration.is_some()) {
            let m = r.migration.expect("checked");
            let boundary = r.phase_transition_time().expect("transitioned");
            assert!(m.started >= boundary);
            let first_answer = r.first_answer_time().expect("answers");
            assert!(first_answer >= m.finished, "answer before KV arrived");
        }
    }
}
