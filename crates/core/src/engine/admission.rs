//! The admission controller: SLO admission control from predicted lengths.
//!
//! The paper's scheduler admits every arrival and lets overload surface as
//! pacer starvation (unhealthy `t_i`) long after the cluster committed the
//! memory. Predictive admission moves the decision to arrival time: project
//! the pool's aggregate KV footprint — current bytes plus the predicted
//! future growth of every in-flight request plus the incoming request's
//! predicted final footprint — and reject the arrival when the projection
//! exceeds the configured fraction of the pool's KV budget. Rejections are
//! recorded (id, time, projection, budget) so experiments can weigh shed
//! load against the SLO violations it prevented.

use pascal_cluster::PoolSnapshot;
use pascal_metrics::{AdmissionCounters, AdmissionRecord};
use pascal_sim::SimTime;
use pascal_telemetry::TraceEventKind;
use pascal_workload::RequestSpec;

use super::Shard;

/// Admission-control mode of a deployment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AdmissionMode {
    /// Every arrival is admitted — the paper's behavior.
    Disabled,
    /// Reject arrivals whose predicted aggregate KV footprint would push
    /// the pool past `max_utilization` of its GPU KV byte budget. The
    /// projection counts CPU-offloaded KV as demand on purpose: offloaded
    /// requests must reload onto a GPU to finish, so their bytes are
    /// deferred GPU demand, not relieved pressure.
    Predictive {
        /// Fraction of the pool GPU KV budget admission is willing to
        /// commit; `1.0` rejects once total predicted in-flight KV demand
        /// exceeds what the GPUs can physically hold.
        max_utilization: f64,
    },
}

impl AdmissionMode {
    /// The predictive mode at full budget utilization.
    #[must_use]
    pub fn predictive() -> Self {
        AdmissionMode::Predictive {
            max_utilization: 1.0,
        }
    }
}

/// Outcome of a (pure) admission probe: admit, or reject with the
/// projection that failed — kept so a federated deployment can probe its
/// home region, try to spill, and only *commit* whichever decision stood.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum AdmissionProbe {
    /// The arrival fits (or admission is off / memory is unbounded).
    Admit,
    /// The projection exceeded the budget.
    Reject {
        /// Projected aggregate KV bytes at decision time.
        projected_kv_bytes: u64,
        /// The byte budget the projection was tested against.
        budget_bytes: u64,
    },
}

/// Engine-side controller state: mode, pool budget and the rejection log.
pub(crate) struct AdmissionController {
    mode: AdmissionMode,
    /// Pool-wide KV byte budget (`None` = unbounded memory, never rejects).
    budget_bytes: Option<u64>,
    pub(super) counters: AdmissionCounters,
    pub(super) rejections: Vec<AdmissionRecord>,
}

impl AdmissionController {
    pub(super) fn new(mode: AdmissionMode, budget_bytes: Option<u64>) -> Self {
        if let AdmissionMode::Predictive { max_utilization } = mode {
            assert!(
                max_utilization > 0.0 && max_utilization.is_finite(),
                "admission max_utilization must be positive, got {max_utilization}"
            );
        }
        AdmissionController {
            mode,
            budget_bytes,
            counters: AdmissionCounters::default(),
            rejections: Vec::new(),
        }
    }

    pub(super) fn enabled(&self) -> bool {
        !matches!(self.mode, AdmissionMode::Disabled)
    }

    /// Rebinds the pool byte budget — the fleet layer calls this on every
    /// health transition so admission sheds load against the capacity that
    /// is actually up, not the nameplate pool size.
    pub(super) fn set_budget(&mut self, budget_bytes: Option<u64>) {
        self.budget_bytes = budget_bytes;
    }

    /// The pure admission decision — no counters, no log. Both the
    /// single-region check and the federation's probe-then-spill path are
    /// built from this, so they cannot disagree.
    fn probe(&self, pool: &PoolSnapshot, incoming_bytes: u64) -> AdmissionProbe {
        let AdmissionMode::Predictive { max_utilization } = self.mode else {
            return AdmissionProbe::Admit;
        };
        let Some(budget) = self.budget_bytes else {
            // Unbounded (oracle) memory cannot overload.
            return AdmissionProbe::Admit;
        };
        let projected = pool.predicted_kv_bytes.saturating_add(incoming_bytes);
        let limit = (budget as f64 * max_utilization) as u64;
        if projected > limit {
            AdmissionProbe::Reject {
                projected_kv_bytes: projected,
                budget_bytes: limit,
            }
        } else {
            AdmissionProbe::Admit
        }
    }

    /// Signed byte headroom left under the budget at the given pool
    /// projection — negative once the pool is overcommitted. `None` when
    /// admission is off or memory is unbounded (nothing to run out of).
    fn headroom_bytes(&self, pool: &PoolSnapshot) -> Option<i64> {
        let AdmissionMode::Predictive { max_utilization } = self.mode else {
            return None;
        };
        let budget = self.budget_bytes?;
        let limit = (budget as f64 * max_utilization) as u64;
        Some(limit as i64 - pool.predicted_kv_bytes as i64)
    }
}

impl Shard<'_> {
    /// The pure admission probe against a monitor snapshot: what this
    /// shard *would* decide, with nothing tallied or logged yet.
    pub(super) fn admission_probe(
        &self,
        spec: &RequestSpec,
        stats: &[pascal_cluster::InstanceStats],
    ) -> AdmissionProbe {
        if !self.admission_ctl.enabled() {
            return AdmissionProbe::Admit;
        }
        let pool = PoolSnapshot::aggregate(stats);
        let incoming = self.predicted_final_kv_bytes(spec);
        self.admission_ctl.probe(&pool, incoming)
    }

    /// Admission budget headroom against a monitor snapshot — the series
    /// sampler's gauge. Purely observational.
    pub(super) fn admission_headroom(
        &self,
        stats: &[pascal_cluster::InstanceStats],
    ) -> Option<i64> {
        if !self.admission_ctl.enabled() {
            return None;
        }
        let pool = PoolSnapshot::aggregate(stats);
        self.admission_ctl.headroom_bytes(&pool)
    }

    /// Tallies an admission.
    pub(super) fn admission_commit_admit(&mut self) {
        self.admission_ctl.counters.admitted += 1;
    }

    /// Tallies and logs a rejection from the probe that produced it.
    pub(super) fn admission_commit_reject(
        &mut self,
        spec: &RequestSpec,
        probe: AdmissionProbe,
        now: SimTime,
    ) {
        let AdmissionProbe::Reject {
            projected_kv_bytes,
            budget_bytes,
        } = probe
        else {
            unreachable!("committing a rejection requires a rejecting probe");
        };
        self.admission_ctl.counters.rejected += 1;
        self.admission_ctl.rejections.push(AdmissionRecord {
            id: spec.id,
            at: now,
            projected_kv_bytes,
            budget_bytes,
        });
        self.emit_trace(
            now,
            None,
            Some(spec.id),
            TraceEventKind::AdmissionRejected {
                projected_kv_bytes,
                budget_bytes,
            },
        );
    }

    /// Arrival-time admission check against the monitor snapshot the
    /// arrival handler already collected. `true` admits; `false` drops the
    /// arrival before any engine state is created (the request never
    /// occupies a queue, so it cannot deadlock the drain assertion).
    pub(super) fn admission_check(
        &mut self,
        spec: &RequestSpec,
        stats: &[pascal_cluster::InstanceStats],
        now: SimTime,
    ) -> bool {
        match self.admission_probe(spec, stats) {
            AdmissionProbe::Admit => {
                self.admission_commit_admit();
                true
            }
            probe => {
                self.admission_commit_reject(spec, probe, now);
                false
            }
        }
    }

    /// The incoming request's predicted final KV footprint: prompt plus the
    /// predictor's total-output estimate. Without an absolute estimate the
    /// projection falls back to what is certain at arrival — the prompt.
    fn predicted_final_kv_bytes(&self, spec: &RequestSpec) -> u64 {
        let predicted_output = self
            .predictor
            .as_ref()
            .and_then(|p| p.estimate(spec).total_tokens())
            .map_or(0, |t| t.max(0.0).round() as u64);
        self.geometry
            .bytes_for_tokens(u64::from(spec.prompt_tokens) + predicted_output)
    }
}
