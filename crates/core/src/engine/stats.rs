//! The instance-monitor sweep (Fig. 6's instance monitor).
//!
//! Assembles one [`InstanceStats`] snapshot per instance: answering SLO
//! health (`t_i`), KV footprint (`m_i`), queue counts (`r_i`, `a_i`), free
//! GPU blocks, and — when a consumer needs it — the predicted future KV
//! growth of the in-flight requests. Placement (Algorithm 1), migration
//! (Algorithm 2) and the admission controller all read this snapshot.
//!
//! Hot-path consumers (arrival placement, phase transitions) sweep into a
//! reused buffer via [`Shard::collect_stats_into`]; the allocating
//! [`Shard::collect_stats`] remains for the cluster-level paths that need
//! an owned snapshot.

use pascal_cluster::InstanceStats;
use pascal_sched::SchedPolicy;
use pascal_sim::SimTime;
use pascal_telemetry::{SeriesRow, SeriesScope};
use pascal_workload::Phase;

use super::Shard;

impl Shard<'_> {
    /// Monitor snapshot of every instance, written into `out` (cleared
    /// first) — the allocation-free form the hot path uses.
    ///
    /// Incremental: each instance's row is served from its
    /// [`StatsCacheEntry`](super::StatsCacheEntry) when still fresh —
    /// cleared by [`Shard::mark_stats_dirty`] at every mutation, expired
    /// by predictor updates (epoch) and pacer deadlines (`valid_until`) —
    /// so a sweep after a single-instance event recomputes one row and
    /// copies the rest. Debug builds shadow-compare every served row
    /// against a full recompute.
    pub(super) fn collect_stats_into(&self, now: SimTime, out: &mut Vec<InstanceStats>) {
        out.clear();
        let wants_predicted_growth = self.wants_predicted_growth();
        // Only healthy instances report: draining and down instances are
        // invisible to placement, migration targeting, admission projection
        // and the router's pool view. A static fleet is all-healthy, so the
        // filter never removes a row there.
        for (i, rt) in self.instances.iter().enumerate() {
            if self.health[i] != crate::fleet::HealthState::Healthy {
                continue;
            }
            let cached = rt.stats_cache.get().filter(|e| {
                e.epoch == self.predictor_epoch && e.valid_until.is_none_or(|v| now < v)
            });
            let stats = match cached {
                Some(entry) => entry.stats,
                None => {
                    let entry = self.compute_instance_stats(rt, now, wants_predicted_growth);
                    rt.stats_cache.set(Some(entry));
                    entry.stats
                }
            };
            #[cfg(debug_assertions)]
            {
                let fresh = self.compute_instance_stats(rt, now, wants_predicted_growth);
                assert_eq!(
                    stats, fresh.stats,
                    "stale monitor-row cache on instance {i}: a mutation site \
                     is missing a mark_stats_dirty call"
                );
            }
            out.push(stats);
        }
    }

    /// Whether any consumer reads `predicted_future_kv_bytes` this run:
    /// predicted growth feeds predictive Algorithm 1 placement (PASCAL
    /// only), the admission controller's pool projection, the autoscaler's
    /// demand estimate, and — in a multi-shard cluster — the predictive
    /// router's shard ranking, which reads the field through
    /// `PoolSnapshot` even under baseline policies. Rank-only predictors
    /// estimate nothing and contribute zero — consumers then degrade
    /// gracefully to current footprints. When no consumer reads the
    /// field, the sweep skips the per-member estimates.
    fn wants_predicted_growth(&self) -> bool {
        matches!(self.policy, SchedPolicy::Pascal(_))
            || self.admission_ctl.enabled()
            || self.autoscaler.is_some()
            || (self.config.shards > 1
                && self.config.router == pascal_sched::RouterPolicy::Predictive)
    }

    /// Computes one instance's monitor row from scratch, together with its
    /// cache-validity bounds — the full member sweep the cache exists to
    /// avoid. Also the reference implementation the debug shadow-compare
    /// and the snapshot microbench measure against.
    pub(super) fn compute_instance_stats(
        &self,
        rt: &super::InstanceRt,
        now: SimTime,
        wants_predicted_growth: bool,
    ) -> super::StatsCacheEntry {
        let mut slo_ok = true;
        let mut valid_until: Option<SimTime> = None;
        let mut reasoning = 0u32;
        let mut fresh_answering = 0u32;
        for (_, handle) in rt.inst.members.iter() {
            let st = &self.states[handle];
            match st.phase {
                Phase::Reasoning => {
                    if !st.demoted {
                        reasoning += 1;
                    }
                }
                Phase::Answering => {
                    if st.quanta_used == 0 {
                        fresh_answering += 1;
                    }
                    // `on_pace_until` fully characterizes the pacer: on
                    // pace exactly while `now` is below it (never, for an
                    // unstarted stream). The earliest member deadline is
                    // when this row's `slo_ok` would flip with no further
                    // event — the cache's time bound.
                    match st.pacer.on_pace_until() {
                        None => {}
                        Some(flip) if now < flip => {
                            valid_until = Some(valid_until.map_or(flip, |v| v.min(flip)));
                        }
                        Some(_) => slo_ok = false,
                    }
                }
            }
        }
        // An off-pace row cannot heal with time alone (expected tokens
        // only grow): it stays valid until a mutation clears the cell.
        if !slo_ok {
            valid_until = None;
        }
        let predicted_future_kv_bytes = if wants_predicted_growth {
            self.predictor.as_ref().map_or(0, |pred| {
                rt.inst
                    .members
                    .iter()
                    .map(|(_, handle)| {
                        let st = &self.states[handle];
                        let Some(remaining) =
                            pred.predicted_remaining_tokens(&st.spec, st.tokens_generated)
                        else {
                            return 0;
                        };
                        self.geometry.bytes_for_tokens(remaining.round() as u64)
                    })
                    .sum()
            })
        } else {
            0
        };
        super::StatsCacheEntry {
            stats: InstanceStats {
                instance: rt.inst.id,
                slo_ok,
                kv_footprint_bytes: rt.inst.kv_footprint_bytes(),
                reasoning_count: reasoning,
                fresh_answering_count: fresh_answering,
                gpu_free_blocks: rt.inst.gpu.free_blocks(),
                predicted_future_kv_bytes,
            },
            epoch: self.predictor_epoch,
            valid_until,
        }
    }

    /// The from-scratch form of [`Shard::collect_stats_into`]: every
    /// healthy row recomputed from its members, no cache reads or writes.
    /// Only the bench support calls it — the baseline the incremental
    /// sweep is priced against.
    pub(super) fn collect_stats_full_into(&self, now: SimTime, out: &mut Vec<InstanceStats>) {
        out.clear();
        let wants_predicted_growth = self.wants_predicted_growth();
        for (i, rt) in self.instances.iter().enumerate() {
            if self.health[i] != crate::fleet::HealthState::Healthy {
                continue;
            }
            out.push(
                self.compute_instance_stats(rt, now, wants_predicted_growth)
                    .stats,
            );
        }
    }

    /// Monitor snapshot of every instance, as an owned vector.
    pub(super) fn collect_stats(&self, now: SimTime) -> Vec<InstanceStats> {
        let mut out = Vec::with_capacity(self.instances.len());
        self.collect_stats_into(now, &mut out);
        out
    }

    /// One telemetry gauge sample of this shard at `at` — queue pressure,
    /// phase mix, KV occupancy, admission headroom and predictor accuracy
    /// so far. Read-only: sampling must not perturb the simulation.
    pub(super) fn series_row(&self, at: SimTime) -> SeriesRow {
        let mut queue_depth = 0u64;
        let mut reasoning = 0u64;
        let mut answering = 0u64;
        for (_, st) in self.states.iter() {
            if !st.running {
                queue_depth += 1;
            }
            match st.phase {
                Phase::Reasoning => reasoning += 1,
                Phase::Answering => answering += 1,
            }
        }
        let stats = self.collect_stats(at);
        let (abs_err, err_n) = self.prediction_abs_error();
        SeriesRow {
            t: at,
            scope: SeriesScope::Shard,
            region: self.region(),
            shard: Some(self.id),
            queue_depth,
            active: self.states.len() as u64,
            reasoning,
            answering,
            kv_used_bytes: stats.iter().map(|s| s.kv_footprint_bytes).sum(),
            // 0 encodes unbounded (oracle) memory.
            kv_capacity_bytes: self
                .config
                .kv_capacity_bytes()
                .map_or(0, |c| c * self.instances.len() as u64),
            admission_headroom_bytes: self.admission_headroom(&stats),
            predictor_mean_abs_error: (err_n > 0).then(|| abs_err / err_n as f64),
            wan_busy_s: None,
            slo_burn: self.slo_tracker.as_ref().and_then(|t| t.burn_gauge(at)),
        }
    }

    /// Sum of absolute reasoning-length prediction errors and the number
    /// of samples behind it — kept split so region rows can aggregate
    /// across shards without double-averaging.
    pub(super) fn prediction_abs_error(&self) -> (f64, u64) {
        let mut sum = 0.0;
        let mut n = 0u64;
        for s in &self.prediction_samples {
            if let Some(p) = s.predicted_reasoning_tokens {
                sum += (p - f64::from(s.actual_reasoning_tokens)).abs();
                n += 1;
            }
        }
        (sum, n)
    }
}
