//! The instance-monitor sweep (Fig. 6's instance monitor).
//!
//! Assembles one [`InstanceStats`] snapshot per instance: answering SLO
//! health (`t_i`), KV footprint (`m_i`), queue counts (`r_i`, `a_i`), free
//! GPU blocks, and — when a consumer needs it — the predicted future KV
//! growth of the in-flight requests. Placement (Algorithm 1), migration
//! (Algorithm 2) and the admission controller all read this snapshot.

use pascal_cluster::InstanceStats;
use pascal_sched::SchedPolicy;
use pascal_sim::SimTime;
use pascal_workload::Phase;

use super::Shard;

impl Shard<'_> {
    /// Monitor snapshot of every instance.
    pub(super) fn collect_stats(&self, now: SimTime) -> Vec<InstanceStats> {
        // Predicted future KV growth feeds predictive Algorithm 1 placement
        // (PASCAL only), the admission controller's pool projection, and —
        // in a multi-shard cluster — the predictive router's shard
        // ranking, which reads the field through `PoolSnapshot` even under
        // baseline policies. Rank-only predictors estimate nothing and
        // contribute zero — consumers then degrade gracefully to current
        // footprints. When no consumer reads the field, skip the
        // per-member estimates.
        let wants_predicted_growth = matches!(self.policy, SchedPolicy::Pascal(_))
            || self.admission_ctl.enabled()
            || (self.config.shards > 1
                && self.config.router == pascal_sched::RouterPolicy::Predictive);
        self.instances
            .iter()
            .map(|rt| {
                let mut slo_ok = true;
                let mut reasoning = 0u32;
                let mut fresh_answering = 0u32;
                for id in &rt.inst.members {
                    let st = &self.states[id];
                    match st.phase {
                        Phase::Reasoning => {
                            if !st.demoted {
                                reasoning += 1;
                            }
                        }
                        Phase::Answering => {
                            if st.quanta_used == 0 {
                                fresh_answering += 1;
                            }
                            if !st.pacer.is_on_pace(now) {
                                slo_ok = false;
                            }
                        }
                    }
                }
                let predicted_future_kv_bytes = if wants_predicted_growth {
                    self.predictor.as_ref().map_or(0, |pred| {
                        rt.inst
                            .members
                            .iter()
                            .map(|id| {
                                let st = &self.states[id];
                                let Some(remaining) =
                                    pred.predicted_remaining_tokens(&st.spec, st.tokens_generated)
                                else {
                                    return 0;
                                };
                                self.geometry.bytes_for_tokens(remaining.round() as u64)
                            })
                            .sum()
                    })
                } else {
                    0
                };
                InstanceStats {
                    instance: rt.inst.id,
                    slo_ok,
                    kv_footprint_bytes: rt.inst.kv_footprint_bytes(),
                    reasoning_count: reasoning,
                    fresh_answering_count: fresh_answering,
                    gpu_free_blocks: rt.inst.gpu.free_blocks(),
                    predicted_future_kv_bytes,
                }
            })
            .collect()
    }
}
