//! The shared event-loop driver.
//!
//! The single-region [`Engine`](super::cluster::Engine) and the
//! [`FederationEngine`](super::federation::FederationEngine) run the same
//! outer loop: pop the globally earliest pending event, and — when series
//! telemetry is on — emit gauge samples at every `k·interval` strictly
//! before the next event, so a row at time `s` reflects every event with
//! timestamp `<= s` (the engine state is piecewise-constant between
//! events). The loop lives here once; the engines supply the three
//! operations it is parameterized over.

use pascal_sim::{SimDuration, SimTime};

/// The engine operations the shared loop drives. Implemented by both the
/// cluster and federation engines; also the seam the windowed parallel
/// executor plugs into (see [`super::parallel`]).
pub(super) trait EventDriver {
    /// Timestamp of the globally next pending event (arrival or shard
    /// event), if any — the horizon the series sampler fills up to.
    fn next_event_time(&mut self) -> Option<SimTime>;

    /// Fires the globally earliest pending event. Returns `false` once
    /// everything has drained.
    fn step(&mut self) -> bool;

    /// Emits one series gauge sample at `at`. Read-only with respect to
    /// simulation state: sampling must not perturb the run.
    fn sample(&mut self, at: SimTime);
}

/// Runs `driver` to completion, interleaving series samples at
/// `interval` when one is configured.
pub(super) fn drive<D: EventDriver>(driver: &mut D, interval: Option<SimDuration>) {
    if let Some(interval) = interval {
        let mut next_sample = SimTime::ZERO + interval;
        while let Some(horizon) = driver.next_event_time() {
            while next_sample < horizon {
                driver.sample(next_sample);
                next_sample += interval;
            }
            driver.step();
        }
    } else {
        while driver.step() {}
    }
}
