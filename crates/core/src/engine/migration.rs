//! The migration controller: phase-boundary KV-cache migration (§IV-B).
//!
//! Owns everything that happens after a request finishes its reasoning
//! phase: the Algorithm 2 decision (delegated to the policy), the
//! *predictive cost/benefit test* that weighs the physical KV transfer cost
//! (from `pascal-model`'s link model) against the predicted remaining
//! service of the request (from `pascal-predict`), destination block
//! reservation, the transfer itself, and the landing. Every decision is
//! tallied in [`MigrationOutcomes`]; launched transfers additionally record
//! the predicted-vs-actual remaining service at decision time so the cost
//! model's calibration is measurable after the run.

use pascal_cluster::{KvLocation, ReqHandle};
use pascal_metrics::{MigrationOutcomes, MigrationRecord};
use pascal_sched::{MigrationCost, MigrationDecision};
use pascal_sim::SimTime;
use pascal_telemetry::{EscapeTier, TraceEventKind};
use pascal_workload::{Phase, RequestId};

use super::{context_kv_bytes, EscapeCandidate, Event, Shard};

/// Cost/benefit configuration of predictive migration.
///
/// When set on `SimConfig` (and a length predictor is active), the
/// controller vetoes Algorithm 2 migrations whose predicted remaining
/// service — remaining tokens at the pacing target — is below
/// `min_benefit_ratio` transfer-times. Unset, migration is exactly the
/// paper's reactive Algorithm 2. Rank-only predictors produce no absolute
/// estimates, so under them the test never fires and migration stays
/// reactive (the CLI rejects that combination outright).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PredictiveMigration {
    /// How many transfer-times of predicted remaining service a migration
    /// must buy to be worthwhile. `1.0` is break-even; `0.0` never vetoes.
    pub min_benefit_ratio: f64,
}

impl Default for PredictiveMigration {
    fn default() -> Self {
        PredictiveMigration {
            min_benefit_ratio: 1.0,
        }
    }
}

/// Engine-side controller state: reservation ledger plus outcome tally.
pub(crate) struct MigrationController {
    predictive: Option<PredictiveMigration>,
    /// GPU blocks pre-reserved on a migration destination, keyed by the
    /// migrating request. Cross-shard escapes reserve in the *destination*
    /// shard's ledger, so landing always consumes from the shard that
    /// holds the blocks. A plain vector: at most a handful of transfers
    /// are ever in flight per shard, and the in-flight request has no
    /// handle on the destination yet, so the id is the only stable key.
    pub(super) reservations: Vec<(RequestId, u64)>,
    pub(super) outcomes: MigrationOutcomes,
}

impl MigrationController {
    pub(super) fn new(predictive: Option<PredictiveMigration>) -> Self {
        if let Some(p) = predictive {
            assert!(
                p.min_benefit_ratio.is_finite() && p.min_benefit_ratio >= 0.0,
                "migration min_benefit_ratio must be a non-negative finite number, got {}",
                p.min_benefit_ratio
            );
        }
        MigrationController {
            predictive,
            reservations: Vec::new(),
            outcomes: MigrationOutcomes::default(),
        }
    }

    pub(super) fn predictive(&self) -> Option<PredictiveMigration> {
        self.predictive
    }

    /// Records a destination-side block reservation for `id`.
    pub(super) fn reserve(&mut self, id: RequestId, blocks: u64) {
        debug_assert!(
            !self.reservations.iter().any(|&(r, _)| r == id),
            "{id} reserved twice"
        );
        self.reservations.push((id, blocks));
    }

    /// Consumes `id`'s reservation, returning the reserved block count.
    pub(super) fn take_reservation(&mut self, id: RequestId) -> Option<u64> {
        let at = self.reservations.iter().position(|&(r, _)| r == id)?;
        Some(self.reservations.swap_remove(at).1)
    }
}

impl Shard<'_> {
    /// A request just produced its boundary token: flip it into the
    /// answering phase and let the controller decide whether its KV moves.
    pub(super) fn on_phase_transition(&mut self, handle: ReqHandle, now: SimTime) {
        let id = {
            let st = &mut self.states[handle];
            st.phase = Phase::Answering;
            if self.policy.resets_quanta_at_transition() {
                st.quanta_used = 0;
                st.tokens_in_quantum = 0;
            }
            st.spec.id
        };
        let (current, needed_blocks) = {
            let st = &self.states[handle];
            (
                st.instance,
                self.geometry.blocks_for_tokens(st.tokens_needed_next()),
            )
        };
        // The phase flip (and, for PASCAL, the quanta reset) changed this
        // request's priority key — and its monitor row's phase counts,
        // before the sweep below reads them.
        self.instances[current as usize].sched_dirty = true;
        self.mark_stats_dirty(current);
        // The remaining-service view at decision time: one predictor query
        // feeds the cost/benefit test and, if the transfer launches, the
        // calibration fields of the migration record.
        let predicted_remaining = {
            let st = &self.states[handle];
            self.predictor
                .as_ref()
                .and_then(|p| p.predicted_remaining_tokens(&st.spec, st.tokens_generated))
        };
        let mut stats = std::mem::take(&mut self.scratch.stats);
        self.collect_stats_into(now, &mut stats);
        let cost = self.migration_cost(handle, predicted_remaining);
        self.migration_ctl.outcomes.considered += 1;
        self.emit_trace(
            now,
            Some(self.global_instance(current)),
            Some(id),
            TraceEventKind::MigrationConsidered {
                tier: EscapeTier::Intra,
            },
        );
        // A saturated shard — every instance SLO-unhealthy (Algorithm 2
        // runs on its all-unhealthy fallback), or no instance able to hold
        // this request's KV right now (the memory pressure behind the
        // Fig. 7 override) — escalates the decision to the cluster: the
        // request becomes a cross-shard escape candidate, re-evaluated at
        // shard granularity over the slower interconnect once this
        // iteration's transitions have all landed. A `MigrateTo` inside a
        // fully unhealthy shard would only shuffle KV between two
        // saturated instances, so it defers too — keeping its destination
        // as the intra-shard fallback in case no sibling shard can take
        // the request.
        let can_escape = self.cross_escape_enabled
            && matches!(
                self.policy,
                pascal_sched::SchedPolicy::Pascal(c) if c.migration_enabled
            );
        let all_unhealthy = !stats.iter().any(|s| s.slo_ok);
        // A *draining* instance is filtered out of the monitor sweep, so
        // the policy's decision (which expects its own row) cannot run:
        // the transition becomes a drain escape instead — cross-shard when
        // the cluster has that path, an intra-shard move (same cost/benefit
        // veto) otherwise. Down instances never emit tokens, so only
        // `Draining` reaches this. The `considered` tally above already
        // counted this decision.
        if self.health[current as usize] != crate::fleet::HealthState::Healthy {
            if can_escape {
                self.cross_escape_outbox.push(EscapeCandidate {
                    req: id,
                    handle,
                    intra_fallback: None,
                });
            } else if cost.is_some_and(|c| c.vetoes()) {
                self.migration_ctl.outcomes.vetoed_by_cost += 1;
                self.emit_trace(
                    now,
                    Some(self.global_instance(current)),
                    Some(id),
                    TraceEventKind::MigrationVetoed {
                        tier: EscapeTier::Intra,
                    },
                );
            } else if let Some(dest) = self.policy.cross_shard_instance(needed_blocks, &stats) {
                self.start_migration(handle, dest, predicted_remaining, now);
            }
            self.scratch.stats = stats;
            return;
        }
        match self
            .policy
            .predictive_migration_decision(current, needed_blocks, &stats, cost)
        {
            MigrationDecision::Stay => {
                let saturated =
                    all_unhealthy || !stats.iter().any(|s| s.fits_blocks(needed_blocks));
                if can_escape && saturated {
                    self.cross_escape_outbox.push(EscapeCandidate {
                        req: id,
                        handle,
                        intra_fallback: None,
                    });
                }
            }
            MigrationDecision::VetoedByCost(_) => {
                // The cheaper intra-shard move already failed the cost
                // test; the pricier interconnect cannot pass it either.
                self.migration_ctl.outcomes.vetoed_by_cost += 1;
                self.emit_trace(
                    now,
                    Some(self.global_instance(current)),
                    Some(id),
                    TraceEventKind::MigrationVetoed {
                        tier: EscapeTier::Intra,
                    },
                );
            }
            MigrationDecision::MigrateTo(dest) if can_escape && all_unhealthy => {
                self.cross_escape_outbox.push(EscapeCandidate {
                    req: id,
                    handle,
                    intra_fallback: Some(dest),
                });
            }
            MigrationDecision::MigrateTo(dest) => {
                self.start_migration(handle, dest, predicted_remaining, now);
            }
        }
        self.scratch.stats = stats;
    }

    /// Executes a deferred intra-shard migration — the fallback when a
    /// cross-shard escape found no sibling shard to land on. The decision
    /// (`dest`) was made at the phase transition; only the launch was
    /// deferred, so the controller re-derives the predictor's
    /// remaining-service view and launches as usual.
    pub(super) fn launch_deferred_migration(&mut self, handle: ReqHandle, dest: u32, now: SimTime) {
        let predicted_remaining = {
            let st = &self.states[handle];
            self.predictor
                .as_ref()
                .and_then(|p| p.predicted_remaining_tokens(&st.spec, st.tokens_generated))
        };
        self.start_migration(handle, dest, predicted_remaining, now);
    }

    /// Cost/benefit inputs for `handle`'s migration decision, or `None`
    /// when the predictive controller is off (or no predictor is
    /// configured) — which makes the decision exactly the reactive
    /// Algorithm 2.
    pub(super) fn migration_cost(
        &self,
        handle: ReqHandle,
        predicted_remaining: Option<f64>,
    ) -> Option<MigrationCost> {
        let predictive = self.migration_ctl.predictive()?;
        self.predictor.as_ref()?;
        let bytes = context_kv_bytes(&self.geometry, &self.states[handle]);
        Some(MigrationCost {
            transfer_time: self.config.fabric.transfer_time(bytes),
            predicted_remaining_service: predicted_remaining
                .map(|tokens| self.config.target_tpot.mul_f64(tokens)),
            min_benefit_ratio: predictive.min_benefit_ratio,
        })
    }

    pub(super) fn start_migration(
        &mut self,
        handle: ReqHandle,
        dest: u32,
        predicted_remaining: Option<f64>,
        now: SimTime,
    ) {
        // Under the adaptive policy the destination's KV blocks are reserved
        // up front; if that fails the request stays home (the race-free form
        // of the Fig. 7 override). NonAdaptive migrates blindly and may land
        // in the destination's CPU pool.
        let id = self.states[handle].spec.id;
        let needed = self
            .geometry
            .blocks_for_tokens(self.states[handle].tokens_needed_next());
        if self.instances[dest as usize].inst.gpu.try_alloc(needed) {
            self.migration_ctl.reserve(id, needed);
            // The reservation shrank the destination's free-block count.
            self.mark_stats_dirty(dest);
        } else if self.policy.adaptive_migration() {
            self.migration_ctl.outcomes.aborted_no_reservation += 1;
            let from = self.states[handle].instance;
            self.emit_trace(
                now,
                Some(self.global_instance(from)),
                Some(id),
                TraceEventKind::MigrationAborted {
                    tier: EscapeTier::Intra,
                },
            );
            return;
        }
        let (from, held, bytes) = {
            let st = &mut self.states[handle];
            debug_assert_eq!(st.kv_location, KvLocation::Gpu);
            st.kv_location = KvLocation::Migrating;
            st.resident_since = None;
            (
                st.instance,
                st.held_gpu_blocks,
                context_kv_bytes(&self.geometry, st),
            )
        };
        self.instances[from as usize].dying_blocks += held;
        self.instances[from as usize].sched_dirty = true;
        let (_, finish) = self
            .fabric
            .migrate(now, from as usize, dest as usize, bytes);
        {
            let st = &mut self.states[handle];
            st.migration = Some(MigrationRecord {
                from_instance: self.offset + from,
                to_instance: self.offset + dest,
                started: now,
                finished: finish,
                bytes,
                stall: None,
                predicted_remaining_tokens: predicted_remaining,
                actual_remaining_tokens: st.spec.output_tokens() - st.tokens_generated,
            });
        }
        self.migration_ctl.outcomes.launched += 1;
        self.migration_ctl.outcomes.bytes_moved += bytes;
        self.emit_trace(
            now,
            Some(self.offset + from),
            Some(id),
            TraceEventKind::MigrationLaunched {
                tier: EscapeTier::Intra,
                to_shard: self.id,
                to_instance: self.offset + dest,
                bytes,
            },
        );
        self.queue.schedule(
            finish,
            Event::MigrationDone {
                req: handle,
                to: dest,
            },
        );
    }

    pub(super) fn on_migration_done(&mut self, handle: ReqHandle, to: u32, now: SimTime) {
        let (id, from, gpu_blocks) = {
            let st = &mut self.states[handle];
            assert_eq!(st.kv_location, KvLocation::Migrating);
            let blocks = st.held_gpu_blocks;
            st.held_gpu_blocks = 0;
            (st.spec.id, st.instance, blocks)
        };
        self.instances[from as usize].inst.gpu.free(gpu_blocks);
        self.instances[from as usize].inst.members.remove(id);
        self.instances[from as usize].dying_blocks -= gpu_blocks;
        self.instances[from as usize].sched_dirty = true;
        self.mark_stats_dirty(from);

        {
            let global = self.global_instance(to);
            let st = &mut self.states[handle];
            st.instance = to;
            st.instances_visited.push(global);
        }
        self.instances[to as usize].inst.members.insert(id, handle);
        self.land_migration(handle, to, now);
        // A destination that fail-stopped mid-transfer strands the request
        // after the landing's normal accounting (pool conservation holds);
        // the source losing a member may complete its drain.
        if self.health[to as usize] == crate::fleet::HealthState::Down {
            self.strand_request(handle, now);
        }
        self.check_drain_complete(from, now);
        self.try_schedule(from, now);
        self.try_schedule(to, now);
    }

    /// Lands a migrated KV cache on `instance` of this shard — the shared
    /// tail of intra- and cross-shard transfers. Consumes the reservation
    /// made at launch time if one exists; otherwise tries to allocate on
    /// arrival; otherwise the KV falls into the destination's CPU pool and
    /// the request must wait for a reload — the stall the adaptive
    /// migration policy exists to avoid (Fig. 7, Fig. 15). The request
    /// must already be a member of `instance` with its state in this
    /// shard's slab.
    pub(super) fn land_migration(&mut self, handle: ReqHandle, instance: u32, now: SimTime) {
        // The request (re)joins `instance`'s candidate set — membership was
        // inserted by the caller, and the location leaves `Migrating` here.
        // The new member also changes the destination's monitor row.
        self.instances[instance as usize].sched_dirty = true;
        self.mark_stats_dirty(instance);
        let id = self.states[handle].spec.id;
        let needed = self
            .geometry
            .blocks_for_tokens(self.states[handle].tokens_needed_next());
        let in_cpu = if let Some(reserved) = self.migration_ctl.take_reservation(id) {
            // Blocks were reserved when the transfer launched; no tokens were
            // generated in flight, so the reservation is still exact.
            debug_assert_eq!(reserved, needed);
            let st = &mut self.states[handle];
            st.held_gpu_blocks = reserved;
            st.kv_location = KvLocation::Gpu;
            st.resident_since = Some(now);
            false
        } else {
            let dest = &mut self.instances[instance as usize].inst;
            if dest.gpu.try_alloc(needed) {
                let st = &mut self.states[handle];
                st.held_gpu_blocks = needed;
                st.kv_location = KvLocation::Gpu;
                st.resident_since = Some(now);
                false
            } else {
                self.migration_ctl.outcomes.landed_in_cpu += 1;
                let cpu_blocks = {
                    let st = &mut self.states[handle];
                    let b = self.geometry.blocks_for_tokens(st.context_tokens());
                    st.held_cpu_blocks = b;
                    st.kv_location = KvLocation::Cpu;
                    b
                };
                dest.cpu.alloc(cpu_blocks);
                true
            }
        };
        self.emit_trace(
            now,
            Some(self.global_instance(instance)),
            Some(id),
            TraceEventKind::MigrationLanded { in_cpu },
        );
    }

    /// First execution after a migration landed: stamp the stall (landing →
    /// resume) on the record and the run tally.
    pub(super) fn stamp_migration_resume(&mut self, handle: ReqHandle, now: SimTime) {
        let Some(st) = self.states.get_mut(handle) else {
            return;
        };
        if let Some(m) = &mut st.migration {
            if m.stall.is_none() {
                let stall = now.saturating_since(m.finished);
                m.stall = Some(stall);
                self.migration_ctl.outcomes.total_stall += stall;
            }
        }
    }
}
