use super::*;
use crate::config::KvCapacityMode;
use pascal_sched::PascalConfig;
use pascal_workload::RequestSpec;

fn secs(s: f64) -> SimTime {
    SimTime::from_secs_f64(s)
}

fn oracle(policy: SchedPolicy) -> SimConfig {
    SimConfig::characterization(policy, KvCapacityMode::Unlimited)
}

#[test]
fn empty_trace_completes_immediately() {
    let out = run_simulation(&Trace::from_requests(vec![]), &oracle(SchedPolicy::Fcfs));
    assert!(out.records.is_empty());
    assert_eq!(out.makespan, SimTime::ZERO);
}

#[test]
fn simultaneous_arrivals_all_complete() {
    let requests: Vec<RequestSpec> = (0..20)
        .map(|i| RequestSpec::new(RequestId(i), SimTime::ZERO, 64, 30, 10))
        .collect();
    let out = run_simulation(
        &Trace::from_requests(requests),
        &oracle(SchedPolicy::round_robin_default()),
    );
    assert_eq!(out.records.len(), 20);
    assert_eq!(out.admission.admitted, 20, "disabled mode still tallies");
    assert_eq!(out.admission.rejected, 0);
    for r in &out.records {
        r.assert_consistent();
    }
}

#[test]
fn max_batch_caps_concurrency() {
    // 30 simultaneous requests with max_batch 8: they still all finish,
    // just in waves.
    let requests: Vec<RequestSpec> = (0..30)
        .map(|i| RequestSpec::new(RequestId(i), SimTime::ZERO, 32, 10, 0))
        .collect();
    let mut config = oracle(SchedPolicy::Fcfs);
    config.max_batch = 8;
    let out = run_simulation(&Trace::from_requests(requests), &config);
    assert_eq!(out.records.len(), 30);
    // With FCFS and batch 8, the last requests cannot start before the
    // first wave ends: their blocked time must be non-trivial.
    let last = &out.records[29];
    assert!(last.blocked.as_secs_f64() > 0.1);
}

#[test]
fn prefill_budget_batches_prompts() {
    // Two prompts of 3000 tokens exceed a 4096 budget together, so they
    // prefill in separate iterations; a single oversized prompt is still
    // admitted alone.
    let requests = vec![
        RequestSpec::new(RequestId(0), SimTime::ZERO, 3000, 5, 0),
        RequestSpec::new(RequestId(1), SimTime::ZERO, 3000, 5, 0),
        RequestSpec::new(RequestId(2), secs(10.0), 8000, 5, 0),
    ];
    let mut config = oracle(SchedPolicy::Fcfs);
    config.prefill_token_budget = 4096;
    let out = run_simulation(&Trace::from_requests(requests), &config);
    assert_eq!(out.records.len(), 3);
    // Request 1's first token comes a full prefill later than request 0's.
    let gap = out.records[1].token_times[0].saturating_since(out.records[0].token_times[0]);
    assert!(gap.as_millis_f64() > 50.0, "expected separate prefills");
}

#[test]
fn demotion_drops_long_reasoning_to_low_priority() {
    // One enormous reasoning request and a stream of small ones under
    // PASCAL with a tiny demotion threshold: the big one must be flagged
    // demoted (observable through its preemptions once small requests
    // take priority under memory pressure).
    let mut requests = vec![RequestSpec::new(RequestId(0), SimTime::ZERO, 64, 2000, 0)];
    for i in 1..9 {
        requests.push(RequestSpec::new(
            RequestId(i),
            secs(5.0 + 4.0 * i as f64),
            64,
            400,
            0,
        ));
    }
    let geometry = oracle(SchedPolicy::Fcfs).geometry();
    let policy = SchedPolicy::pascal(PascalConfig {
        demotion_threshold_tokens: 500,
        ..PascalConfig::default()
    });
    let config = SimConfig::characterization(
        policy,
        KvCapacityMode::Bytes(geometry.bytes_for_tokens(2200)),
    );
    let out = run_simulation(&Trace::from_requests(requests), &config);
    let big = &out.records[0];
    assert!(
        big.num_preemptions > 0,
        "demoted giant should lose memory to fresh reasoning requests"
    );
    // Without demotion the giant reasoning request keeps strict
    // priority within its quantum class and is preempted less.
    let no_demotion = SchedPolicy::pascal(PascalConfig {
        demotion_threshold_tokens: u32::MAX,
        ..PascalConfig::default()
    });
    let config2 = SimConfig::characterization(
        no_demotion,
        KvCapacityMode::Bytes(geometry.bytes_for_tokens(2200)),
    );
    let out2 = run_simulation(
        &Trace::from_requests(
            out.records
                .iter()
                .map(|r| r.spec.clone())
                .collect::<Vec<_>>(),
        ),
        &config2,
    );
    assert!(
        out2.records[0].completion <= big.completion,
        "demotion should not speed the giant up"
    );
}

#[test]
fn warm_requests_under_pressure_queue_like_cold_ones() {
    // Warm requests still need GPU memory for their context; with only
    // room for one at a time they serialize.
    let geometry = oracle(SchedPolicy::Fcfs).geometry();
    let requests = vec![
        RequestSpec::warm(RequestId(0), SimTime::ZERO, 1000, 100),
        RequestSpec::warm(RequestId(1), SimTime::ZERO, 1000, 100),
    ];
    let config = SimConfig::characterization(
        SchedPolicy::Fcfs,
        KvCapacityMode::Bytes(geometry.bytes_for_tokens(1300)),
    );
    let out = run_simulation(&Trace::from_requests(requests), &config);
    let a = &out.records[0];
    let b = &out.records[1];
    assert!(
        b.token_times[0] >= a.completion,
        "B must wait for A's memory"
    );
    assert!(b.blocked.as_secs_f64() > 1.0);
}

#[test]
#[should_panic(expected = "KV blocks but an instance only has")]
fn oversized_request_rejected_at_setup() {
    let geometry = oracle(SchedPolicy::Fcfs).geometry();
    let requests = vec![RequestSpec::new(RequestId(0), SimTime::ZERO, 64, 5000, 0)];
    let config = SimConfig::characterization(
        SchedPolicy::Fcfs,
        KvCapacityMode::Bytes(geometry.bytes_for_tokens(1000)),
    );
    let _ = run_simulation(&Trace::from_requests(requests), &config);
}

#[test]
fn pool_accounting_returns_to_zero() {
    let requests: Vec<RequestSpec> = (0..15)
        .map(|i| RequestSpec::new(RequestId(i), secs(0.2 * i as f64), 64, 200, 100))
        .collect();
    let trace = Trace::from_requests(requests);
    let geometry = oracle(SchedPolicy::Fcfs).geometry();
    for policy in [
        SchedPolicy::Fcfs,
        SchedPolicy::round_robin_default(),
        SchedPolicy::pascal(PascalConfig::default()),
    ] {
        let config = SimConfig::characterization(
            policy,
            KvCapacityMode::Bytes(geometry.bytes_for_tokens(2000)),
        );
        let mut engine = Engine::new(&trace, &config);
        while engine.step() {}
        for shard in engine.shards() {
            for rt in &shard.instances {
                assert_eq!(
                    rt.inst.gpu.used_blocks(),
                    0,
                    "{}: GPU blocks leaked",
                    policy.name()
                );
                assert_eq!(
                    rt.inst.cpu.used_blocks(),
                    0,
                    "{}: CPU blocks leaked",
                    policy.name()
                );
                assert!(
                    rt.inst.members.is_empty(),
                    "{}: members leaked",
                    policy.name()
                );
            }
        }
    }
}

#[test]
fn migrated_requests_account_memory_on_both_sides() {
    let requests: Vec<RequestSpec> = (0..40)
        .map(|i| RequestSpec::new(RequestId(i), secs(0.1 * i as f64), 64, 150, 150))
        .collect();
    let trace = Trace::from_requests(requests);
    let mut config = SimConfig::evaluation_cluster(SchedPolicy::pascal(PascalConfig::default()));
    config.num_instances = 3;
    let out = run_simulation(&trace, &config);
    let migrated = out.records.iter().filter(|r| r.migration.is_some()).count();
    assert!(migrated > 0, "expected at least one migration");
    assert_eq!(out.migration_outcomes.launched, migrated as u64);
    assert!(out.migration_outcomes.considered >= out.migration_outcomes.launched);
    assert!(out.migration_outcomes.bytes_moved > 0);
    assert_eq!(out.migration_outcomes.vetoed_by_cost, 0, "reactive run");
    // Token streams of migrated requests never go backwards in time
    // across the transfer gap.
    for r in out.records.iter().filter(|r| r.migration.is_some()) {
        let m = r.migration.expect("checked");
        let boundary = r.phase_transition_time().expect("transitioned");
        assert!(m.started >= boundary);
        let first_answer = r.first_answer_time().expect("answers");
        assert!(first_answer >= m.finished, "answer before KV arrived");
        // The resume stall was stamped and is consistent with the stream.
        let stall = m.stall.expect("migrated request ran again");
        assert!(first_answer.saturating_since(m.finished) >= stall);
    }
}

// ----- controller behavior ------------------------------------------------

/// Oracle-predicted PASCAL with the cost/benefit controller at `ratio`.
fn predictive_config(ratio: f64) -> SimConfig {
    let mut config = SimConfig::evaluation_cluster(SchedPolicy::pascal(PascalConfig::default()));
    config.num_instances = 3;
    config.predictor = Some(PredictorKind::Oracle);
    config.predictive_migration = Some(PredictiveMigration {
        min_benefit_ratio: ratio,
    });
    config
}

fn migration_trace() -> Trace {
    Trace::from_requests(
        (0..40)
            .map(|i| RequestSpec::new(RequestId(i), secs(0.1 * i as f64), 64, 150, 150))
            .collect(),
    )
}

#[test]
fn zero_ratio_cost_test_is_reactive() {
    // ratio 0: the veto can never fire, so the predictive controller must
    // reproduce the reactive run decision-for-decision.
    let trace = migration_trace();
    let mut reactive = predictive_config(0.0);
    reactive.predictive_migration = None;
    let a = run_simulation(&trace, &reactive);
    let b = run_simulation(&trace, &predictive_config(0.0));
    assert_eq!(a.records, b.records);
    assert_eq!(b.migration_outcomes.vetoed_by_cost, 0);
    assert_eq!(a.migration_outcomes.launched, b.migration_outcomes.launched);
}

#[test]
fn absurd_ratio_vetoes_every_migration() {
    // A migration can never buy a million transfer-times of service: every
    // Algorithm 2 MigrateTo is vetoed and nothing rides the fabric.
    let out = run_simulation(&migration_trace(), &predictive_config(1e6));
    assert_eq!(out.migration_outcomes.launched, 0);
    assert!(out.migration_outcomes.vetoed_by_cost > 0, "vetoes counted");
    assert_eq!(out.migrations().count(), 0);
    assert!(out.records.iter().all(|r| r.instances_visited.len() == 1));
    assert!(out.policy_name.contains("CostAwareMigration"));
}

#[test]
fn admission_rejects_at_predicted_overload_and_still_drains() {
    // Budget fits ~2 requests' final footprints; 12 simultaneous oracle-
    // predicted arrivals: most must be rejected, the rest complete.
    let geometry = oracle(SchedPolicy::Fcfs).geometry();
    let requests: Vec<RequestSpec> = (0..12)
        .map(|i| RequestSpec::new(RequestId(i), secs(0.01 * i as f64), 64, 200, 100))
        .collect();
    let policy = SchedPolicy::pascal(PascalConfig::default());
    let mut config = SimConfig::characterization(
        policy,
        KvCapacityMode::Bytes(geometry.bytes_for_tokens(800)),
    );
    config.predictor = Some(PredictorKind::Oracle);
    config.admission = AdmissionMode::predictive();
    let out = run_simulation(&Trace::from_requests(requests), &config);
    assert!(out.admission.rejected > 0, "overload must shed load");
    assert!(out.admission.admitted > 0, "not everything is shed");
    assert_eq!(
        out.admission.admitted as usize + out.admission.rejected as usize,
        12
    );
    assert_eq!(out.records.len(), out.admission.admitted as usize);
    assert_eq!(out.rejections.len(), out.admission.rejected as usize);
    for rej in &out.rejections {
        assert!(rej.projected_kv_bytes > rej.budget_bytes);
    }
    // Admitted requests were never starved into SLO trouble by the load
    // the controller shed.
    assert!(out.policy_name.ends_with("+PredictiveAdmission"));
}

// ----- sharding -----------------------------------------------------------

mod sharding {
    use super::*;
    use pascal_sched::{PolicyKind, RouterPolicy};
    use pascal_workload::{ArrivalProcess, DatasetMix, DatasetProfile, TraceBuilder};

    fn cluster_trace(count: usize, rate: f64, seed: u64) -> Trace {
        TraceBuilder::new(DatasetMix::single(DatasetProfile::arena_hard()))
            .arrivals(ArrivalProcess::poisson(rate))
            .count(count)
            .seed(seed)
            .build()
    }

    /// Strips the volatile parts of a `SimOutput` into a comparable form.
    fn digest(out: &SimOutput) -> (Vec<RequestRecord>, Vec<u64>, String) {
        (
            out.records.clone(),
            out.peak_gpu_kv_bytes.clone(),
            out.policy_name.clone(),
        )
    }

    #[test]
    fn one_shard_is_identical_to_the_unsharded_engine() {
        // `shards: 1` must replay the exact event sequence of the
        // pre-sharding engine regardless of the router key, for every
        // policy.
        let trace = cluster_trace(60, 6.0, 9);
        for kind in [PolicyKind::Fcfs, PolicyKind::RoundRobin, PolicyKind::Pascal] {
            let mut base = SimConfig::evaluation_cluster(kind.build());
            base.num_instances = 4;
            let reference = run_simulation(&trace, &base);
            for router in RouterPolicy::ALL {
                let sharded = base.clone().with_shards(1, router);
                let out = run_simulation(&trace, &sharded);
                assert_eq!(digest(&out), digest(&reference), "{kind} via {router}");
                assert_eq!(out.shard_stats.len(), 1);
                assert_eq!(out.shard_stats[0].routed_arrivals, 60);
                assert_eq!(out.migration_outcomes.cross_shard_launched, 0);
            }
        }
    }

    /// The committed fig11-matrix numbers (Alpaca/Arena at the high rate,
    /// 150 requests, the legacy seed 2026), captured from the pre-sharding
    /// engine: (dataset, policy, p99 TTFT seconds, migrations, makespan).
    const FIG11_GOLDEN: [(&str, &str, f64, usize, f64); 6] = [
        ("AlpacaEval2.0", "FCFS", 61.649172513449955, 0, 91.287896248),
        ("AlpacaEval2.0", "RR", 61.649172513449955, 0, 91.287896248),
        (
            "AlpacaEval2.0",
            "PASCAL",
            60.52408480785996,
            135,
            95.503700029,
        ),
        ("Arena-Hard", "FCFS", 111.79790002912992, 0, 154.091891692),
        ("Arena-Hard", "RR", 111.79790002912992, 0, 154.091891692),
        (
            "Arena-Hard",
            "PASCAL",
            110.56104834137992,
            140,
            164.137715108,
        ),
    ];

    #[test]
    fn one_shard_reproduces_the_committed_fig11_numbers() {
        use crate::experiments::common::run_matrix;
        use pascal_metrics::LatencySummary;
        use pascal_workload::MixPreset;

        let runs = run_matrix(
            &[MixPreset::Alpaca, MixPreset::Arena],
            &[crate::config::RateLevel::High],
            &PolicyKind::MAIN,
            150,
            2026,
        );
        assert_eq!(runs.len(), FIG11_GOLDEN.len());
        for (run, (dataset, policy, p99, migrations, makespan)) in runs.iter().zip(FIG11_GOLDEN) {
            assert_eq!(run.dataset, dataset);
            assert_eq!(run.policy_name, policy);
            let got_p99 = LatencySummary::from_values(
                run.output
                    .records
                    .iter()
                    .filter_map(|r| r.ttft().map(|d| d.as_secs_f64())),
            )
            .expect("answering requests exist")
            .p99;
            assert_eq!(got_p99, p99, "{dataset}/{policy}: p99 TTFT drifted");
            assert_eq!(run.output.migrations().count(), migrations);
            assert_eq!(run.output.makespan.as_secs_f64(), makespan);
        }
    }

    #[test]
    fn sharded_run_partitions_and_completes_everything() {
        let trace = cluster_trace(80, 8.0, 3);
        for router in RouterPolicy::ALL {
            let config =
                SimConfig::evaluation_cluster(PolicyKind::Pascal.build()).with_shards(4, router);
            let out = run_simulation(&trace, &config);
            assert_eq!(out.records.len(), 80, "{router}");
            assert_eq!(out.shard_stats.len(), 4);
            assert_eq!(out.peak_gpu_kv_bytes.len(), 8);
            assert_eq!(
                out.shard_stats
                    .iter()
                    .map(|s| s.routed_arrivals)
                    .sum::<u64>(),
                80
            );
            assert!(
                out.shard_stats.iter().all(|s| s.instances == 2),
                "fixed aggregate capacity splits evenly"
            );
            // Round-robin spreads arrivals exactly evenly.
            if router == RouterPolicy::RoundRobin {
                assert!(out.shard_stats.iter().all(|s| s.routed_arrivals == 20));
            }
            for r in &out.records {
                r.assert_consistent();
            }
        }
    }

    /// Two memory-tight shards of two instances each: transitions that
    /// find their whole shard unable to hold the KV must escalate to the
    /// cluster and migrate over the interconnect.
    fn saturated_two_shard_config(router: RouterPolicy) -> SimConfig {
        let mut config =
            SimConfig::evaluation_cluster(PolicyKind::Pascal.build()).with_shards(2, router);
        config.num_instances = 4;
        config.kv_capacity = KvCapacityMode::FractionOfPhysical(0.2);
        config
    }

    #[test]
    fn cross_shard_escape_fires_under_saturation_and_balances() {
        let trace = cluster_trace(150, 14.0, 5);
        let config = saturated_two_shard_config(RouterPolicy::RoundRobin);
        let out = run_simulation(&trace, &config);
        assert_eq!(out.records.len(), 150);
        let m = &out.migration_outcomes;
        assert!(
            m.cross_shard_considered > 0,
            "saturated shards must consider escapes: {m:?}"
        );
        assert!(m.cross_shard_launched > 0, "and launch some: {m:?}");
        assert_eq!(
            m.cross_shard_launched,
            out.shard_stats
                .iter()
                .map(|s| s.cross_shard_in)
                .sum::<u64>(),
            "every launched escape lands somewhere"
        );
        assert!(m.cross_shard_bytes_moved > 0);
        assert!(m.launched >= m.cross_shard_launched);
        // Escaped requests carry records whose instance ids span shards.
        let per_shard = out.peak_gpu_kv_bytes.len() as u32 / 2;
        let crossed = out
            .records
            .iter()
            .filter_map(|r| r.migration.as_ref())
            .filter(|m| (m.from_instance / per_shard) != (m.to_instance / per_shard))
            .count() as u64;
        assert_eq!(crossed, m.cross_shard_launched);
    }

    #[test]
    fn cross_shard_escapes_price_the_interconnect_not_the_fabric() {
        // With an absurd benefit ratio every escape that reaches the cost
        // test is vetoed at the interconnect price — nothing may ride the
        // interconnect, and the cross veto counter must account for every
        // considered escape.
        let trace = cluster_trace(150, 14.0, 5);
        let mut config = saturated_two_shard_config(RouterPolicy::RoundRobin);
        config.predictor = Some(PredictorKind::Oracle);
        config.predictive_migration = Some(PredictiveMigration {
            min_benefit_ratio: 1e6,
        });
        let out = run_simulation(&trace, &config);
        let m = &out.migration_outcomes;
        assert_eq!(m.cross_shard_launched, 0);
        assert_eq!(m.launched, 0, "intra-shard launches are vetoed too");
        assert!(
            m.cross_shard_considered > 0,
            "escapes still considered: {m:?}"
        );
        assert_eq!(
            m.cross_shard_considered,
            m.cross_shard_vetoed_by_cost + m.cross_shard_aborted,
            "every considered escape is vetoed or unplaceable at ratio 1e6: {m:?}"
        );
    }

    /// Committed golden numbers for the vetoed-escape fallback path
    /// (Arena-Hard, 150 requests, seed 5, two memory-tight shards,
    /// *non-adaptive* PASCAL so the fits-abort cannot preempt the cost
    /// test, Oracle predictor, benefit ratio 250): the ratio sits inside
    /// the window where the fabric-priced test that gated `MigrateTo` at
    /// the transition passes but the ~4×-slower interconnect price fails —
    /// so an all-unhealthy shard's deferred intra-shard move fires as the
    /// vetoed escape's fallback.
    const ESCAPE_FALLBACK_GOLDEN: EscapeFallbackGolden = EscapeFallbackGolden {
        cross_considered: 21,
        cross_vetoed: 6,
        cross_launched: 15,
        cross_aborted: 0,
        fallbacks: 12,
        fallbacks_after_veto: 3,
        launched: 89,
    };

    struct EscapeFallbackGolden {
        cross_considered: u64,
        cross_vetoed: u64,
        cross_launched: u64,
        cross_aborted: u64,
        fallbacks: u64,
        fallbacks_after_veto: u64,
        launched: u64,
    }

    #[test]
    fn vetoed_cluster_escape_fires_the_deferred_intra_shard_move() {
        let trace = cluster_trace(150, 14.0, 5);
        let mut config = saturated_two_shard_config(RouterPolicy::RoundRobin);
        config.policy = PolicyKind::PascalNonAdaptive.build();
        config.predictor = Some(PredictorKind::Oracle);
        config.predictive_migration = Some(PredictiveMigration {
            min_benefit_ratio: 250.0,
        });
        let out = run_simulation(&trace, &config);
        let m = &out.migration_outcomes;
        let g = ESCAPE_FALLBACK_GOLDEN;
        assert!(
            m.cross_shard_vetoed_by_cost > 0,
            "the window must veto at the interconnect price: {m:?}"
        );
        assert!(
            m.cross_shard_fallbacks_after_veto > 0,
            "a vetoed escape with a deferred intra move must fall back: {m:?}"
        );
        assert!(m.cross_shard_fallbacks >= m.cross_shard_fallbacks_after_veto);
        // The committed numbers: any drift in the escape/veto/fallback
        // pipeline shows up as an exact-count mismatch.
        assert_eq!(m.cross_shard_considered, g.cross_considered, "{m:?}");
        assert_eq!(m.cross_shard_vetoed_by_cost, g.cross_vetoed, "{m:?}");
        assert_eq!(m.cross_shard_launched, g.cross_launched, "{m:?}");
        assert_eq!(m.cross_shard_aborted, g.cross_aborted, "{m:?}");
        assert_eq!(m.cross_shard_fallbacks, g.fallbacks, "{m:?}");
        assert_eq!(
            m.cross_shard_fallbacks_after_veto, g.fallbacks_after_veto,
            "{m:?}"
        );
        assert_eq!(m.launched, g.launched, "{m:?}");
        assert_eq!(out.records.len(), 150, "everything still completes");
    }

    #[test]
    fn baselines_never_escape_across_shards() {
        let trace = cluster_trace(100, 14.0, 5);
        for kind in [
            PolicyKind::Fcfs,
            PolicyKind::RoundRobin,
            PolicyKind::PascalNoMigration,
        ] {
            let config = {
                let mut c = saturated_two_shard_config(RouterPolicy::LeastLoaded);
                c.policy = kind.build();
                c
            };
            let out = run_simulation(&trace, &config);
            assert_eq!(out.records.len(), 100, "{kind}");
            assert_eq!(out.migration_outcomes.cross_shard_considered, 0, "{kind}");
            assert_eq!(out.migration_outcomes.cross_shard_launched, 0, "{kind}");
        }
    }
}

#[test]
fn admission_disabled_and_unbounded_memory_never_reject() {
    let requests: Vec<RequestSpec> = (0..10)
        .map(|i| RequestSpec::new(RequestId(i), SimTime::ZERO, 64, 50, 20))
        .collect();
    let trace = Trace::from_requests(requests);
    // Unbounded memory: predictive admission cannot overload.
    let mut config = oracle(SchedPolicy::pascal(PascalConfig::default()));
    config.predictor = Some(PredictorKind::Oracle);
    config.admission = AdmissionMode::predictive();
    let out = run_simulation(&trace, &config);
    assert_eq!(out.admission.rejected, 0);
    assert_eq!(out.records.len(), 10);
}

mod federation {
    use super::*;
    use pascal_federation::FederationPolicy;
    use pascal_metrics::RequestRecord;
    use pascal_sched::{PolicyKind, RouterPolicy};
    use pascal_workload::{ArrivalProcess, DatasetMix, DatasetProfile, TraceBuilder};

    /// A geo-tagged Arena-Hard trace: bodies identical to the sharding
    /// tests' traces, origins from the builder's harmonic skew.
    fn geo_trace(count: usize, rate: f64, seed: u64, regions: usize) -> Trace {
        TraceBuilder::new(DatasetMix::single(DatasetProfile::arena_hard()))
            .arrivals(ArrivalProcess::poisson(rate))
            .count(count)
            .seed(seed)
            .regions(regions)
            .build()
    }

    fn digest(out: &SimOutput) -> (Vec<RequestRecord>, Vec<u64>, String) {
        (
            out.records.clone(),
            out.peak_gpu_kv_bytes.clone(),
            out.policy_name.clone(),
        )
    }

    /// The `--regions 1` determinism contract, driver edition: the
    /// federated engine at one region must replay the cluster engine's
    /// exact event sequence — records, peaks, policy name, counters AND
    /// the region summary — for every policy, shard count and federation
    /// router. (`run_simulation` additionally short-circuits one-region
    /// configs to the cluster engine, so the public path is covered by
    /// transitivity; this test pins the driver itself.)
    #[test]
    fn one_region_is_byte_identical_to_the_cluster_engine() {
        let trace = geo_trace(60, 6.0, 9, 1);
        for kind in [PolicyKind::Fcfs, PolicyKind::RoundRobin, PolicyKind::Pascal] {
            for shards in [1usize, 2] {
                let mut base = SimConfig::evaluation_cluster(kind.build())
                    .with_shards(shards, RouterPolicy::Predictive);
                base.num_instances = 4;
                let reference = Engine::new(&trace, &base).run();
                for fed in FederationPolicy::ALL {
                    let config = base.clone().with_regions(1, fed);
                    let out = FederationEngine::new(&trace, &config).run();
                    assert_eq!(
                        digest(&out),
                        digest(&reference),
                        "{kind}/s{shards} via {fed}"
                    );
                    assert_eq!(out.migration_outcomes, reference.migration_outcomes);
                    assert_eq!(out.admission, reference.admission);
                    assert_eq!(out.shard_stats, reference.shard_stats);
                    assert_eq!(out.region_stats, reference.region_stats);
                    assert_eq!(
                        format!("{:?}", out.records),
                        format!("{:?}", reference.records),
                        "byte-level divergence"
                    );
                }
            }
        }
    }

    /// The same contract under active controllers: predictive admission
    /// (whose probe/commit refactor must tally identically) and the
    /// cost/benefit migration veto.
    #[test]
    fn one_region_matches_the_cluster_engine_under_controllers() {
        let trace = geo_trace(120, 10.0, 31, 1);
        let mut config = SimConfig::evaluation_cluster(PolicyKind::Pascal.build())
            .with_shards(2, RouterPolicy::Predictive);
        config.num_instances = 4;
        config.kv_capacity = KvCapacityMode::FractionOfPhysical(0.3);
        config.predictor = Some(PredictorKind::Oracle);
        config.predictive_migration = Some(PredictiveMigration {
            min_benefit_ratio: 500.0,
        });
        config.admission = AdmissionMode::predictive();
        let reference = Engine::new(&trace, &config).run();
        let fed_config = config.clone().with_regions(1, FederationPolicy::Predictive);
        let out = FederationEngine::new(&trace, &fed_config).run();
        assert_eq!(digest(&out), digest(&reference));
        assert_eq!(out.rejections, reference.rejections);
        assert_eq!(out.admission, reference.admission);
        assert_eq!(out.region_stats, reference.region_stats);
        assert!(
            reference.admission.rejected > 0,
            "the scenario must actually exercise admission: {:?}",
            reference.admission
        );
    }

    #[test]
    fn static_federation_serves_every_arrival_at_its_origin() {
        let trace = geo_trace(120, 10.0, 7, 4);
        let config = SimConfig::evaluation_cluster(PolicyKind::Pascal.build())
            .with_regions(4, FederationPolicy::Static);
        let out = run_simulation(&trace, &config);
        assert_eq!(out.records.len(), 120);
        assert_eq!(out.region_stats.len(), 4);
        assert_eq!(out.shard_stats.len(), 4, "one shard per region here");
        let origins: u64 = out.region_stats.iter().map(|r| r.origin_arrivals).sum();
        assert_eq!(origins, 120);
        for r in &out.region_stats {
            assert_eq!(r.routed_arrivals, r.origin_arrivals, "static = geo-pinned");
            assert_eq!(r.nonlocal_arrivals, 0);
            assert_eq!(r.spill_in + r.spill_out, 0, "admission off, no spills");
        }
        // The harmonic origin skew reaches the engine: region 0 is hotter
        // than region 3.
        assert!(
            out.region_stats[0].origin_arrivals > out.region_stats[3].origin_arrivals,
            "{:?}",
            out.region_stats
        );
        for rec in &out.records {
            rec.assert_consistent();
        }
    }

    #[test]
    fn predictive_federation_detours_load_off_the_hot_region() {
        let trace = geo_trace(200, 16.0, 5, 4);
        let mut config = SimConfig::evaluation_cluster(PolicyKind::Pascal.build())
            .with_regions(4, FederationPolicy::Predictive);
        config.kv_capacity = KvCapacityMode::FractionOfPhysical(0.35);
        let out = run_simulation(&trace, &config);
        assert_eq!(out.records.len(), 200);
        let nonlocal: u64 = out.region_stats.iter().map(|r| r.nonlocal_arrivals).sum();
        assert!(
            nonlocal > 0,
            "a loaded hot region must push arrivals elsewhere: {:?}",
            out.region_stats
        );
        let routed: u64 = out.region_stats.iter().map(|r| r.routed_arrivals).sum();
        assert_eq!(routed, 200, "every arrival lands exactly once");
    }

    /// Two memory-tight single-shard regions: transitions that find their
    /// whole region unable to hold the KV must escalate to the federation
    /// and migrate over the WAN (there is no sibling shard to rank).
    fn saturated_two_region_config() -> SimConfig {
        let mut config = SimConfig::evaluation_cluster(PolicyKind::Pascal.build())
            .with_regions(2, FederationPolicy::Static);
        config.num_instances = 4;
        config.kv_capacity = KvCapacityMode::FractionOfPhysical(0.2);
        config
    }

    #[test]
    fn cross_region_escape_fires_under_saturation_and_lands() {
        let trace = geo_trace(150, 14.0, 5, 2);
        let out = run_simulation(&trace, &saturated_two_region_config());
        assert_eq!(out.records.len(), 150);
        let m = &out.migration_outcomes;
        assert!(
            m.cross_region_considered > 0,
            "saturated regions must consider WAN escapes: {m:?}"
        );
        assert!(m.cross_region_launched > 0, "and launch some: {m:?}");
        assert_eq!(
            m.cross_region_considered,
            m.cross_region_launched + m.cross_region_vetoed_by_cost + m.cross_region_aborted,
            "every considered escape resolves: {m:?}"
        );
        assert_eq!(
            m.cross_region_launched,
            out.region_stats
                .iter()
                .map(|r| r.cross_region_in)
                .sum::<u64>(),
            "every launched WAN escape lands somewhere"
        );
        assert!(m.cross_region_bytes_moved > 0);
        assert!(m.launched >= m.cross_region_launched);
        // Escaped requests carry records whose instance ids span regions.
        let per_region = out.peak_gpu_kv_bytes.len() as u32 / 2;
        let crossed = out
            .records
            .iter()
            .filter_map(|r| r.migration.as_ref())
            .filter(|mg| (mg.from_instance / per_region) != (mg.to_instance / per_region))
            .count() as u64;
        assert_eq!(crossed, m.cross_region_launched);
    }

    #[test]
    fn wan_priced_veto_forbids_frivolous_cross_region_moves() {
        // With an absurd benefit ratio every escape that reaches the WAN
        // cost test is vetoed — nothing may ride the WAN, exactly the
        // "cost veto naturally forbids frivolous moves" property the tier
        // exists for.
        let trace = geo_trace(150, 14.0, 5, 2);
        let mut config = saturated_two_region_config();
        config.predictor = Some(PredictorKind::Oracle);
        config.predictive_migration = Some(PredictiveMigration {
            min_benefit_ratio: 1e6,
        });
        let out = run_simulation(&trace, &config);
        let m = &out.migration_outcomes;
        assert_eq!(m.cross_region_launched, 0);
        assert!(
            m.cross_region_considered > 0,
            "escapes still considered: {m:?}"
        );
        assert_eq!(
            m.cross_region_considered,
            m.cross_region_vetoed_by_cost + m.cross_region_aborted,
            "every considered escape is vetoed or unplaceable at ratio 1e6: {m:?}"
        );
    }

    #[test]
    fn escape_conservation_holds_at_every_tier_and_scope() {
        // Both escape tiers active at once: two regions of two memory-tight
        // shards each. Every per-shard tally and the absorbed run total
        // must satisfy considered == launched + vetoed + aborted at both
        // tiers — the relation `assemble_output` debug-asserts on every
        // run and the trace events reconcile against.
        use pascal_metrics::MigrationOutcomes;
        let trace = geo_trace(150, 14.0, 5, 2);
        let mut config = SimConfig::evaluation_cluster(PolicyKind::Pascal.build())
            .with_shards(2, RouterPolicy::RoundRobin)
            .with_regions(2, FederationPolicy::Static);
        config.num_instances = 8;
        config.kv_capacity = KvCapacityMode::FractionOfPhysical(0.2);
        let out = run_simulation(&trace, &config);
        let check = |m: &MigrationOutcomes, what: &str| {
            // The debug assertion itself (active here; compiled out of
            // release binaries) plus hard asserts so release-mode test
            // runs still verify the relation.
            m.assert_escape_conservation();
            assert_eq!(
                m.cross_shard_considered,
                m.cross_shard_launched + m.cross_shard_vetoed_by_cost + m.cross_shard_aborted,
                "{what}: cross-shard escapes must resolve: {m:?}"
            );
            assert_eq!(
                m.cross_region_considered,
                m.cross_region_launched + m.cross_region_vetoed_by_cost + m.cross_region_aborted,
                "{what}: cross-region escapes must resolve: {m:?}"
            );
        };
        check(&out.migration_outcomes, "run total");
        for row in &out.shard_stats {
            check(&row.migrations, &format!("shard {}", row.shard));
        }
        assert!(
            out.migration_outcomes.cross_shard_considered > 0
                || out.migration_outcomes.cross_region_considered > 0,
            "the saturated grid must consider escapes: {:?}",
            out.migration_outcomes
        );
    }

    #[test]
    fn admission_spills_to_a_remote_region_before_rejecting() {
        // A hot region under predictive admission with a tight KV budget:
        // the probe rejects at home, and region-aware admission must place
        // the arrival in the cold region instead of turning it away.
        let trace = geo_trace(150, 14.0, 11, 2);
        let mut config = saturated_two_region_config();
        config.predictor = Some(PredictorKind::Oracle);
        config.admission = AdmissionMode::predictive();
        let out = run_simulation(&trace, &config);
        assert!(
            out.admission.spilled > 0,
            "the hot region must spill before rejecting: {:?}",
            out.admission
        );
        assert_eq!(
            out.admission.spilled,
            out.region_stats.iter().map(|r| r.spill_in).sum::<u64>(),
            "every spill lands somewhere: {:?}",
            out.region_stats
        );
        assert_eq!(
            out.region_stats.iter().map(|r| r.spill_out).sum::<u64>(),
            out.admission.spilled
        );
        // Spilled arrivals are served, not shed: completions cover every
        // admitted arrival.
        assert_eq!(out.records.len() as u64, out.admission.admitted);
        assert_eq!(
            out.admission.admitted + out.admission.rejected,
            150,
            "spills are bookkeeping, not extra arrivals: {:?}",
            out.admission
        );
    }

    #[test]
    fn baselines_never_escape_across_regions() {
        let trace = geo_trace(100, 14.0, 5, 2);
        for kind in [
            PolicyKind::Fcfs,
            PolicyKind::RoundRobin,
            PolicyKind::PascalNoMigration,
        ] {
            let mut config = saturated_two_region_config();
            config.policy = kind.build();
            let out = run_simulation(&trace, &config);
            assert_eq!(out.records.len(), 100, "{kind}");
            assert_eq!(out.migration_outcomes.cross_region_considered, 0, "{kind}");
            assert_eq!(out.migration_outcomes.cross_region_launched, 0, "{kind}");
        }
    }
}

mod windowed {
    use super::*;
    use crate::fleet::FleetPreset;
    use pascal_federation::FederationPolicy;
    use pascal_sched::{PolicyKind, RouterPolicy};
    use pascal_workload::{ArrivalProcess, DatasetMix, DatasetProfile, TraceBuilder};

    fn windowed_trace(count: usize, rate: f64, seed: u64, regions: usize) -> Trace {
        TraceBuilder::new(DatasetMix::single(DatasetProfile::arena_hard()))
            .arrivals(ArrivalProcess::poisson(rate))
            .count(count)
            .seed(seed)
            .regions(regions)
            .build()
    }

    /// Runs `config` sequentially and at several thread counts (including
    /// the auto setting, whose resolution is host-dependent) and demands
    /// the full `SimOutput` — records, counters, stats, everything Debug
    /// reaches — comes back identical.
    fn assert_thread_count_invariant(trace: &Trace, config: &SimConfig, label: &str) {
        let reference = format!(
            "{:?}",
            run_simulation(trace, &config.clone().with_run_threads(1))
        );
        for threads in [2usize, 3, 4, 0] {
            let out = format!(
                "{:?}",
                run_simulation(trace, &config.clone().with_run_threads(threads))
            );
            assert_eq!(out, reference, "{label}: run_threads={threads} diverged");
        }
    }

    #[test]
    fn sharded_cluster_is_thread_count_invariant() {
        let trace = windowed_trace(100, 10.0, 11, 1);
        for kind in [PolicyKind::Fcfs, PolicyKind::Pascal] {
            let config = SimConfig::evaluation_cluster(kind.build())
                .with_shards(4, RouterPolicy::Predictive);
            assert_thread_count_invariant(&trace, &config, &format!("{kind}"));
        }
    }

    /// Memory-tight shards force cross-shard escapes, so transition
    /// barriers and the lookahead bound are actually load-bearing here.
    #[test]
    fn saturated_cluster_with_escapes_is_thread_count_invariant() {
        let trace = windowed_trace(150, 14.0, 5, 1);
        let mut config = SimConfig::evaluation_cluster(PolicyKind::Pascal.build())
            .with_shards(2, RouterPolicy::RoundRobin);
        config.num_instances = 4;
        config.kv_capacity = KvCapacityMode::FractionOfPhysical(0.2);
        assert!(config.transition_barriers() || config.run_threads == 1);
        assert_thread_count_invariant(&trace, &config.clone().with_run_threads(2), "saturated");
    }

    #[test]
    fn federation_is_thread_count_invariant() {
        let trace = windowed_trace(120, 12.0, 7, 2);
        let mut config = SimConfig::evaluation_cluster(PolicyKind::Pascal.build())
            .with_shards(2, RouterPolicy::Predictive)
            .with_regions(2, FederationPolicy::Predictive);
        config.kv_capacity = KvCapacityMode::FractionOfPhysical(0.3);
        assert_thread_count_invariant(&trace, &config, "federation");
    }

    /// Fleet chaos on top: outages, drain-and-migrate and the autoscaler
    /// all schedule barrier events; the windowed run must replay them in
    /// the exact sequential order.
    #[test]
    fn fleet_chaos_is_thread_count_invariant() {
        let trace = windowed_trace(120, 12.0, 13, 1);
        let horizon = trace
            .requests()
            .last()
            .map(|r| r.arrival.as_secs_f64())
            .unwrap_or(0.0);
        for preset in [FleetPreset::Outage, FleetPreset::FlashCrowd] {
            let mut config = SimConfig::evaluation_cluster(PolicyKind::Pascal.build())
                .with_shards(4, RouterPolicy::Predictive);
            config.fleet = Some(preset.spec(horizon, 1, 4, config.num_instances));
            assert_thread_count_invariant(&trace, &config, preset.key());
        }
    }

    proptest::proptest! {
        // Each case runs three full simulations, so keep the case count
        // deliberate rather than the library default.
        #![proptest_config(proptest::ProptestConfig::with_cases(12))]

        /// Windowed parallel execution is unobservable in the output: over
        /// random small traces, topologies, memory pressure and policies,
        /// every thread count reproduces the sequential `SimOutput` —
        /// records, counters, stats, everything `Debug` reaches.
        #[test]
        fn prop_windowed_execution_matches_sequential(
            count in 20usize..80,
            rate in 4.0f64..16.0,
            seed in 0u64..1_000_000,
            shards_idx in 0usize..3,
            regions in 1usize..3,
            pascal in proptest::any::<bool>(),
            tight in proptest::any::<bool>(),
        ) {
            let shards = [1usize, 2, 4][shards_idx];
            let trace = windowed_trace(count, rate, seed, regions);
            let kind = if pascal { PolicyKind::Pascal } else { PolicyKind::Fcfs };
            let mut config = SimConfig::evaluation_cluster(kind.build())
                .with_shards(shards, RouterPolicy::Predictive);
            if regions > 1 {
                config = config.with_regions(regions, FederationPolicy::Predictive);
            }
            if tight {
                config.kv_capacity = KvCapacityMode::FractionOfPhysical(0.25);
            }
            let reference = format!(
                "{:?}",
                run_simulation(&trace, &config.clone().with_run_threads(1))
            );
            for threads in [2usize, 4] {
                let out = format!(
                    "{:?}",
                    run_simulation(&trace, &config.clone().with_run_threads(threads))
                );
                proptest::prop_assert_eq!(&out, &reference);
            }
        }
    }
}
