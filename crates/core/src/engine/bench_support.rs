//! Bench-only access to the instance-monitor sweep. Hidden from docs and
//! not a stable API: the only consumer is the `micro_scheduler_overhead`
//! bench, which prices the incremental stats cache against the
//! from-scratch member sweep it replaced.
//!
//! The fixture drives a real cluster engine a fixed number of events into
//! a run and freezes it there, so the sweeps are measured over genuine
//! mid-run state — resident members, live pacer deadlines, predictor
//! history — rather than a synthetic pool.

use pascal_cluster::InstanceStats;
use pascal_sim::SimTime;
use pascal_workload::Trace;

use super::cluster::Engine;
use super::driver::EventDriver;
use crate::SimConfig;

/// A cluster engine frozen mid-run, exposing the three monitor-sweep
/// costs the cache trades between: all-hit (pure serve), steady-state
/// (one dirty row per sweep), and the full recompute.
pub struct MonitorSweepFixture<'a> {
    engine: Engine<'a>,
    now: SimTime,
    /// Rotates which instance [`Self::sweep_one_dirty`] invalidates so
    /// successive iterations touch different rows.
    dirty_cursor: usize,
}

impl<'a> MonitorSweepFixture<'a> {
    /// Builds the engine and fires up to `events` of its earliest events
    /// (stopping early if the run drains), then freezes the clock at the
    /// next pending event time.
    #[must_use]
    pub fn new(trace: &'a Trace, config: &'a SimConfig, events: usize) -> Self {
        let mut engine = Engine::new(trace, config);
        for _ in 0..events {
            if !engine.step() {
                break;
            }
        }
        let now = engine.next_event_time().unwrap_or_default();
        MonitorSweepFixture {
            engine,
            now,
            dirty_cursor: 0,
        }
    }

    /// Requests resident anywhere in the fleet (running or queued) — the
    /// member population each sweep walks. Printed by the bench so the
    /// measured state is visible next to the numbers.
    #[must_use]
    pub fn resident_requests(&self) -> usize {
        self.engine.shards().iter().map(|s| s.states.len()).sum()
    }

    /// Instances across every shard.
    #[must_use]
    pub fn instances(&self) -> usize {
        self.engine.shards().iter().map(|s| s.instances.len()).sum()
    }

    /// One monitor sweep per shard through the cache. After the first
    /// call every row is a cache hit: the serve cost with nothing dirty.
    pub fn sweep_incremental(&self, out: &mut Vec<InstanceStats>) {
        for shard in self.engine.shards() {
            shard.collect_stats_into(self.now, out);
        }
    }

    /// Marks one instance's row dirty (rotating across the fleet), then
    /// sweeps — the advertised steady state: a single-instance event
    /// invalidates one row, the sweep recomputes it and serves the rest.
    pub fn sweep_one_dirty(&mut self, out: &mut Vec<InstanceStats>) {
        let shards = self.engine.shards();
        let shard = &shards[self.dirty_cursor % shards.len()];
        let local = (self.dirty_cursor / shards.len()) % shard.instances.len();
        shard.mark_stats_dirty(local as u32);
        self.dirty_cursor += 1;
        self.sweep_incremental(out);
    }

    /// The from-scratch sweep the cache replaced: every healthy row
    /// recomputed from its members, no cache reads or writes.
    pub fn sweep_full(&self, out: &mut Vec<InstanceStats>) {
        for shard in self.engine.shards() {
            shard.collect_stats_full_into(self.now, out);
        }
    }
}
