//! Fleet elasticity runtime: health transitions, drain-and-migrate,
//! fail-stop stranding, the water-filling rebalancer and the reactive
//! autoscaler.
//!
//! The [`FleetSpec`](crate::fleet::FleetSpec) on the config is resolved
//! into per-instance transitions at shard construction and injected
//! through the shard's calendar event queue — fleet changes are ordinary
//! simulation events, totally ordered with everything else, so a fleet run
//! is byte-identical at any thread count. An absent (or empty) spec
//! schedules nothing and writes nothing: the static-fleet hot path only
//! pays an always-false health comparison per event.
//!
//! The semantics, per transition:
//!
//! * **join** — the instance turns [`HealthState::Healthy`] and becomes
//!   visible to placement again (the monitor sweep includes its row); the
//!   admission budget grows by one instance's capacity.
//! * **drain** — the instance turns [`HealthState::Draining`]: invisible
//!   to placement, queued (never-prefilled) members are rebalanced onto
//!   healthy siblings, and resident KV escapes through the *same* priced
//!   migration paths as a saturation escape — the cross-shard/cross-region
//!   outbox in a cluster, an intra-shard move otherwise, cost/benefit veto
//!   and conservation counters included. Running work finishes in place.
//!   When the member list empties the drain completes and the instance
//!   leaves the fleet ([`HealthState::Down`]).
//! * **fail** — fail-stop: at-rest KV is stranded immediately, queued
//!   members are water-filling-rebalanced onto survivors (stranded when no
//!   healthy sibling exists), running members strand when their in-flight
//!   iteration lands, and in-transfer KV strands when its transfer event
//!   fires — every path after its normal transfer accounting, so pool
//!   conservation is auditable all the way through an outage.
//!
//! The autoscaler rides the same machinery: a periodic tick compares the
//! shard's predicted KV demand against the healthy capacity and activates
//! a parked standby instance (after the configured lead time) or drains
//! the highest-id scaler-managed one back into the pool.

use pascal_cluster::{KvLocation, ReqHandle};
use pascal_sim::SimTime;
use pascal_telemetry::TraceEventKind;

use crate::fleet::{AutoscalePolicy, HealthState};

use super::{EscapeCandidate, Event, Shard};

/// Autoscaler runtime state of one shard.
pub(crate) struct AutoscalerRt {
    /// The configured thresholds and cadence.
    pub(super) policy: AutoscalePolicy,
    /// Scaler-managed local instance ids currently parked (ascending).
    pub(super) parked: Vec<u32>,
    /// The full scaler-managed set — the `standby` directives that landed
    /// on this shard. Immutable after construction.
    pub(super) pool: Vec<u32>,
    /// Last trace arrival: ticks stop rescheduling once the clock passes
    /// this and the shard has drained, so the run terminates.
    pub(super) last_arrival: SimTime,
}

impl<'a> Shard<'a> {
    /// Resolves the config's fleet spec against this shard: schedules its
    /// transitions, parks its standby instances, arms the autoscaler. A
    /// `None` (or empty) spec returns immediately without touching state.
    pub(super) fn init_fleet(&mut self) {
        let Some(fleet) = &self.config.fleet else {
            return;
        };
        if fleet.is_empty() {
            return;
        }
        let per_shard = self.instances.len() as u32;
        for t in fleet.transitions(
            self.config.regions,
            self.config.shards,
            self.config.num_instances,
        ) {
            if t.shard == self.id {
                // Barrier: a transition touches shared placement state
                // (admission budget, escape outbox), so the windowed
                // parallel executor must synchronize on it.
                self.queue.schedule_barrier(
                    t.at,
                    Event::FleetTransition {
                        instance: t.instance,
                        to: t.to,
                    },
                );
            }
        }
        let mut parked: Vec<u32> = fleet
            .standby
            .iter()
            .filter(|&&gid| gid / per_shard == self.id)
            .map(|&gid| gid - self.offset)
            .collect();
        parked.sort_unstable();
        parked.dedup();
        // Parked instances start out of the fleet without a transition:
        // no trace event, no counter — they were never up.
        for &local in &parked {
            self.health[local as usize] = HealthState::Down;
        }
        if let Some(policy) = fleet.autoscale {
            let last_arrival = self
                .trace
                .requests()
                .iter()
                .map(|r| r.arrival)
                .max()
                .unwrap_or(SimTime::ZERO);
            self.queue
                .schedule_barrier(SimTime::ZERO + policy.interval, Event::AutoscaleTick);
            self.autoscaler = Some(AutoscalerRt {
                policy,
                pool: parked.clone(),
                parked,
                last_arrival,
            });
        }
        self.refresh_admission_budget();
    }

    /// Healthy instances right now — the denominator of every capacity
    /// computation (admission budget, autoscaler utilization).
    pub(super) fn healthy_count(&self) -> usize {
        self.health
            .iter()
            .filter(|&&h| h == HealthState::Healthy)
            .count()
    }

    /// Re-derives the admission budget as capacity × healthy instances, so
    /// the admission probe sheds load against what the fleet can actually
    /// hold, not its nameplate size.
    fn refresh_admission_budget(&mut self) {
        let budget = self
            .config
            .kv_capacity_bytes()
            .map(|c| c * self.healthy_count() as u64);
        self.admission_ctl.set_budget(budget);
    }

    /// Applies one health transition to a local instance. Idempotent: a
    /// transition to the current state is a no-op (a scheduled `fail` after
    /// a drain already completed, a duplicate `join`).
    pub(super) fn apply_fleet_transition(&mut self, instance: u32, to: HealthState, now: SimTime) {
        let i = instance as usize;
        let from = self.health[i];
        if from == to {
            return;
        }
        self.health[i] = to;
        self.fleet.transitions += 1;
        // Transitions are rare; drop any cached monitor row rather than
        // reason about its validity across a health boundary.
        self.mark_stats_dirty(instance);
        let global = Some(self.global_instance(instance));
        match to {
            HealthState::Healthy => {
                self.fleet.joins += 1;
                self.drain_started[i] = None;
                self.emit_trace(now, global, None, TraceEventKind::InstanceUp);
                if let Some(scaler) = &mut self.autoscaler {
                    scaler.parked.retain(|&p| p != instance);
                }
                self.refresh_admission_budget();
                self.try_schedule(instance, now);
            }
            HealthState::Draining => {
                self.fleet.drains_started += 1;
                self.drain_started[i] = Some(now);
                self.emit_trace(now, global, None, TraceEventKind::InstanceDraining);
                self.refresh_admission_budget();
                self.begin_drain_migrate(instance, now);
                self.check_drain_complete(instance, now);
            }
            HealthState::Down => {
                // A fail-stop cutting a drain short strands what the drain
                // had not yet moved; the drain never completes.
                self.drain_started[i] = None;
                self.fleet.fails += 1;
                self.emit_trace(now, global, None, TraceEventKind::InstanceDown);
                self.refresh_admission_budget();
                self.fail_instance(instance, now);
            }
        }
    }

    /// Fail-stop: strand at-rest KV, rebalance queued members, leave
    /// running and in-transfer members to strand at their event landings.
    fn fail_instance(&mut self, instance: u32, now: SimTime) {
        let mut at_rest = Vec::new();
        let mut waiting = Vec::new();
        for (_, handle) in self.instances[instance as usize].inst.members.iter() {
            let st = &self.states[handle];
            if st.running {
                // Strands at its in-flight iteration's completion — the
                // batch vector still carries this handle.
                continue;
            }
            match st.kv_location {
                KvLocation::Gpu | KvLocation::Cpu => at_rest.push(handle),
                KvLocation::None => waiting.push(handle),
                // In flight over PCIe or a fabric: the transfer event owns
                // the handle; its landing does the stranding.
                KvLocation::OffloadingToCpu
                | KvLocation::ReloadingToGpu
                | KvLocation::Migrating => {}
            }
        }
        for handle in at_rest {
            self.strand_request(handle, now);
        }
        self.rebalance_waiting(instance, waiting, now);
    }

    /// Planned leave: queued members rebalance off first (they have no KV
    /// to move), then resident KV escapes through the priced migration
    /// paths — the cross-shard/region outbox when the cluster has one,
    /// an intra-shard move (same cost/benefit veto) otherwise. Non-PASCAL
    /// policies have no migration machinery: their residents finish in
    /// place, exactly as they would under saturation.
    fn begin_drain_migrate(&mut self, instance: u32, now: SimTime) {
        let mut waiting = Vec::new();
        let mut residents = Vec::new();
        for (_, handle) in self.instances[instance as usize].inst.members.iter() {
            let st = &self.states[handle];
            if st.running {
                continue;
            }
            match st.kv_location {
                KvLocation::None => waiting.push(handle),
                KvLocation::Gpu => residents.push(handle),
                _ => {}
            }
        }
        self.rebalance_waiting(instance, waiting, now);
        let migration_on = matches!(
            self.policy,
            pascal_sched::SchedPolicy::Pascal(c) if c.migration_enabled
        );
        if !migration_on {
            return;
        }
        if self.cross_escape_enabled {
            // Same outbox, staleness checks, pricing and conservation
            // counters as a saturation escape; drained by the cluster
            // right after this transition is applied.
            for handle in residents {
                let id = self.states[handle].spec.id;
                self.cross_escape_outbox.push(EscapeCandidate {
                    req: id,
                    handle,
                    intra_fallback: None,
                });
            }
        } else {
            for handle in residents {
                self.drain_migrate_intra(handle, now);
            }
        }
    }

    /// One intra-shard drain escape: Algorithm 2's landing ranking over
    /// the healthy survivors, gated by the same cost/benefit veto a
    /// saturation escape faces.
    fn drain_migrate_intra(&mut self, handle: ReqHandle, now: SimTime) {
        let (id, from, needed, predicted_remaining) = {
            let st = &self.states[handle];
            (
                st.spec.id,
                st.instance,
                self.geometry.blocks_for_tokens(st.tokens_needed_next()),
                self.predictor
                    .as_ref()
                    .and_then(|p| p.predicted_remaining_tokens(&st.spec, st.tokens_generated)),
            )
        };
        let global = Some(self.global_instance(from));
        self.migration_ctl.outcomes.considered += 1;
        self.emit_trace(
            now,
            global,
            Some(id),
            TraceEventKind::MigrationConsidered {
                tier: pascal_telemetry::EscapeTier::Intra,
            },
        );
        let cost = self.migration_cost(handle, predicted_remaining);
        if cost.is_some_and(|c| c.vetoes()) {
            self.migration_ctl.outcomes.vetoed_by_cost += 1;
            self.emit_trace(
                now,
                global,
                Some(id),
                TraceEventKind::MigrationVetoed {
                    tier: pascal_telemetry::EscapeTier::Intra,
                },
            );
            return;
        }
        let mut stats = std::mem::take(&mut self.scratch.stats);
        self.collect_stats_into(now, &mut stats);
        let dest = self.policy.cross_shard_instance(needed, &stats);
        self.scratch.stats = stats;
        if let Some(dest) = dest {
            self.start_migration(handle, dest, predicted_remaining, now);
        }
    }

    /// Water-filling rebalance of queued (never-prefilled) members off
    /// `from`: each request goes to the healthy instance with the most
    /// estimated free blocks (ties to the lowest id), its estimated claim
    /// decrementing that instance's level — so displaced queues spread
    /// proportional to surviving capacity instead of dogpiling one target.
    /// With no healthy sibling on the shard, the requests strand.
    fn rebalance_waiting(&mut self, from: u32, waiting: Vec<ReqHandle>, now: SimTime) {
        if waiting.is_empty() {
            return;
        }
        let mut targets: Vec<(i64, u32)> = self
            .health
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h == HealthState::Healthy)
            .map(|(i, _)| {
                let free = self.instances[i]
                    .inst
                    .gpu
                    .free_blocks()
                    .map_or(i64::MAX, |f| f.min(i64::MAX as u64) as i64);
                (free, i as u32)
            })
            .collect();
        if targets.is_empty() {
            for handle in waiting {
                self.strand_request(handle, now);
            }
            return;
        }
        let from_global = self.global_instance(from);
        let mut touched: Vec<u32> = Vec::new();
        for handle in waiting {
            let (id, prompt) = {
                let st = &self.states[handle];
                (st.spec.id, st.spec.prompt_tokens)
            };
            let best = targets
                .iter()
                .enumerate()
                .max_by_key(|&(_, &(free, inst))| (free, std::cmp::Reverse(inst)))
                .map(|(at, _)| at)
                .expect("targets is non-empty");
            let (level, target) = targets[best];
            let claim = self.geometry.blocks_for_tokens(u64::from(prompt) + 1);
            targets[best].0 = level.saturating_sub(claim.min(i64::MAX as u64) as i64);
            let to_global = self.global_instance(target);
            {
                let st = &mut self.states[handle];
                st.instance = target;
                st.instances_visited.push(to_global);
            }
            self.instances[from as usize].inst.members.remove(id);
            self.instances[target as usize]
                .inst
                .members
                .insert(id, handle);
            self.instances[target as usize].sched_dirty = true;
            self.mark_stats_dirty(target);
            self.fleet.rebalanced += 1;
            self.emit_trace(
                now,
                Some(from_global),
                Some(id),
                TraceEventKind::RequestRebalanced {
                    to_instance: to_global,
                },
            );
            touched.push(target);
        }
        self.instances[from as usize].sched_dirty = true;
        self.mark_stats_dirty(from);
        touched.sort_unstable();
        touched.dedup();
        for target in touched {
            self.try_schedule(target, now);
        }
    }

    /// Removes a request the fleet lost: frees whatever KV it held, counts
    /// it stranded, and emits the trace event the chaos validation pairs
    /// against the outage. No completion record is produced — stranded
    /// requests are lost work, not served work.
    pub(super) fn strand_request(&mut self, handle: ReqHandle, now: SimTime) {
        let st = self.states.remove(handle);
        let i = st.instance as usize;
        let id = st.spec.id;
        self.instances[i].inst.members.remove(id);
        self.instances[i].sched_dirty = true;
        self.mark_stats_dirty(st.instance);
        if st.held_gpu_blocks > 0 {
            self.instances[i].inst.gpu.free(st.held_gpu_blocks);
        }
        if st.held_cpu_blocks > 0 {
            self.instances[i].inst.cpu.free(st.held_cpu_blocks);
        }
        self.fleet.stranded += 1;
        self.emit_trace(
            now,
            Some(self.global_instance(st.instance)),
            Some(id),
            TraceEventKind::RequestStranded,
        );
    }

    /// A draining instance completes its drain the moment its member list
    /// empties: it leaves the fleet, and a scaler-managed instance returns
    /// to the parked pool. Called after every membership removal; a single
    /// health comparison when the instance is not draining.
    pub(super) fn check_drain_complete(&mut self, instance: u32, now: SimTime) {
        let i = instance as usize;
        if self.health[i] != HealthState::Draining {
            return;
        }
        if !self.instances[i].inst.members.is_empty() {
            return;
        }
        self.health[i] = HealthState::Down;
        if let Some(started) = self.drain_started[i].take() {
            self.fleet.drain_time += now.saturating_since(started);
        }
        self.fleet.drains_completed += 1;
        self.emit_trace(
            now,
            Some(self.global_instance(instance)),
            None,
            TraceEventKind::DrainComplete,
        );
        if let Some(scaler) = &mut self.autoscaler {
            if scaler.pool.contains(&instance) && !scaler.parked.contains(&instance) {
                let at = scaler.parked.partition_point(|&p| p < instance);
                scaler.parked.insert(at, instance);
            }
        }
    }

    /// One autoscaler evaluation: predicted KV demand over healthy
    /// capacity. Above the up-threshold a parked instance (lowest id) is
    /// activated after the provisioning lead time; below the down-threshold
    /// the highest-id active scaler-managed instance drains back to the
    /// pool (never below one healthy instance). Returns the instance a
    /// scale-down started draining, so the dispatcher can resolve any
    /// escapes it queued.
    pub(super) fn autoscale_tick(&mut self, now: SimTime) -> Option<u32> {
        let Some(scaler) = &self.autoscaler else {
            return None;
        };
        let policy = scaler.policy;
        let last_arrival = scaler.last_arrival;
        let mut drained = None;
        if let Some(capacity) = self.config.kv_capacity_bytes() {
            let healthy = self.healthy_count();
            let mut stats = std::mem::take(&mut self.scratch.stats);
            self.collect_stats_into(now, &mut stats);
            let demand: u64 = stats.iter().map(|s| s.predicted_total_kv_bytes()).sum();
            self.scratch.stats = stats;
            let budget = capacity * healthy as u64;
            let util = if budget == 0 {
                f64::INFINITY
            } else {
                demand as f64 / budget as f64
            };
            if util > policy.up_utilization {
                let activated = self
                    .autoscaler
                    .as_mut()
                    .and_then(|s| (!s.parked.is_empty()).then(|| s.parked.remove(0)));
                if let Some(inst) = activated {
                    self.fleet.autoscale_up += 1;
                    self.emit_trace(
                        now,
                        Some(self.global_instance(inst)),
                        None,
                        TraceEventKind::AutoscaleUp,
                    );
                    // Capacity arrives only after the provisioning lead.
                    self.queue.schedule_barrier(
                        now + policy.lead,
                        Event::FleetTransition {
                            instance: inst,
                            to: HealthState::Healthy,
                        },
                    );
                }
            } else if util < policy.down_utilization && healthy > 1 {
                let candidate = self
                    .autoscaler
                    .as_ref()
                    .expect("checked above")
                    .pool
                    .iter()
                    .rev()
                    .find(|&&p| self.health[p as usize] == HealthState::Healthy)
                    .copied();
                if let Some(inst) = candidate {
                    self.fleet.autoscale_down += 1;
                    self.emit_trace(
                        now,
                        Some(self.global_instance(inst)),
                        None,
                        TraceEventKind::AutoscaleDown,
                    );
                    self.apply_fleet_transition(inst, HealthState::Draining, now);
                    drained = Some(inst);
                }
            }
        }
        // Keep ticking while arrivals are still possible or work is still
        // in flight; stop afterwards so the run terminates.
        if now <= last_arrival || !self.states.is_empty() {
            self.queue
                .schedule_barrier(now + policy.interval, Event::AutoscaleTick);
        }
        drained
    }
}
