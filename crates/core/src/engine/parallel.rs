//! The windowed parallel executor: deterministic intra-run parallelism.
//!
//! Shards are independent event worlds except at a small set of
//! **barrier events** — arrivals (the router reads every shard's pool
//! state), cross-shard and cross-region transfer landings (they mutate the
//! destination shard), fleet transitions and autoscaler ticks (they queue
//! escapes and re-derive budgets), and — when cross-shard escapes are
//! live — iteration completions that may fire a phase transition. Between
//! consecutive barriers every queued event is *shard-local*: iteration
//! completions, preemption offloads/reloads and intra-shard migration
//! landings touch only their own shard's state.
//!
//! The executor exploits exactly that structure. It advances the engine in
//! **lockstep windows**: each window's horizon is the earliest thing that
//! could couple shards —
//!
//! * the next trace arrival,
//! * the earliest pending barrier event on any shard,
//! * the next telemetry gauge sample (the row must snapshot the state at
//!   its own timestamp), and
//! * when transition-capable iterations are barriers, `committed + L`
//!   where `L` lower-bounds every iteration duration
//!   ([`min_iteration_duration`]) — a transition barrier scheduled *by* an
//!   in-window event therefore lands at or beyond the horizon, never
//!   inside it
//!
//! — and a worker pool drains every shard strictly below the horizon in
//! parallel, each shard in its own exact `(time, seq)` order. At the
//! horizon the coordinator falls back to the sequential engine for one
//! step, firing the barrier event under the global total order (arrivals
//! first, then lowest region/shard id). Because shard-local event handling
//! commutes across shards and each shard replays its own sequential order,
//! the simulation state at every barrier — and hence every output byte —
//! is identical to the sequential engine's, at any thread count.
//!
//! Request-lifecycle *tracing* is the one stream that observes the global
//! interleaving of shard-local events, so the engines route traced runs to
//! the sequential path instead ([`TelemetryHandle::trace_enabled`]).
//! Series rows are emitted only by the coordinator between windows, and
//! the profiler's counters are order-insensitive.
//!
//! The `unsafe` in this file — the crate's only `allow(unsafe_code)` — is
//! confined to the worker pool's pointer hand-off: disjoint `&mut Shard`
//! borrows are passed to the workers as erased pointers, refreshed from
//! `iter_mut` every window (so provenance stays fresh), and the
//! coordinator blocks until every worker reports done before touching the
//! engine again.
#![allow(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use pascal_model::{DecodeBatch, PerfModel};
use pascal_sim::{SimDuration, SimTime};
use pascal_telemetry::{ProfiledEvent, TelemetryHandle};

use super::{Event, Shard};

/// Resolves the configured [`run_threads`](crate::SimConfig::run_threads)
/// against the deployment: `0` auto-sizes from the host (clamped to 8,
/// like the sweep pool), and every value is capped at the shard count —
/// with fewer shards than threads the extra workers would only idle.
pub(crate) fn resolve_run_threads(configured: usize, shards: usize) -> usize {
    let requested = if configured == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
    } else {
        configured
    };
    requested.min(shards).max(1)
}

/// A lower bound on the duration of *any* schedulable iteration: the
/// cheaper of a one-sequence, one-context-token decode step and a
/// one-token prefill. The perf model is monotone in batch size, context
/// and prompt length (property-tested in `pascal-model`), so every real
/// iteration takes at least this long — which is what lets the executor
/// bound how soon an in-window event can schedule a new transition
/// barrier.
pub(super) fn min_iteration_duration(perf: &PerfModel) -> SimDuration {
    let decode = perf.decode_step_time(DecodeBatch {
        num_seqs: 1,
        total_context_tokens: 1,
    });
    decode.min(perf.prefill_time(1))
}

/// An erased `&mut Shard<'_>`, valid for one window. `Send` because the
/// shards a window hands out are disjoint and their owner (the engine)
/// is parked on the coordinator thread until the window completes.
#[derive(Clone, Copy)]
pub(super) struct ShardPtr(*mut ());

unsafe impl Send for ShardPtr {}

impl ShardPtr {
    pub(super) fn new(shard: &mut Shard<'_>) -> Self {
        ShardPtr(std::ptr::from_mut(shard).cast())
    }
}

/// Re-materializes the shard reference and drains it up to `horizon`.
///
/// # Safety
///
/// `p` must come from [`ShardPtr::new`] on a shard that is not aliased
/// for the duration of the call. The `'static` cast erases the shard's
/// borrows of the trace and config, which strictly outlive the window:
/// the coordinator owns the engine and blocks until every worker is done.
unsafe fn drain_erased(p: ShardPtr, horizon: Option<SimTime>) -> u64 {
    let shard = &mut *p.0.cast::<Shard<'static>>();
    shard.drain_window(horizon)
}

impl Shard<'_> {
    /// Pops and handles this shard's events strictly below `horizon`
    /// (everything, when `None`), stopping early at a barrier event.
    /// Exactly the shard-local slice of the cluster dispatcher: the
    /// cross-boundary arms are unreachable because those events are
    /// always scheduled as barriers, and in-window iterations cannot
    /// queue escapes (transition-capable completions are barriers
    /// whenever escapes are enabled). Returns the number of events
    /// drained.
    pub(super) fn drain_window(&mut self, horizon: Option<SimTime>) -> u64 {
        let mut drained = 0u64;
        loop {
            match self.queue.peek_time() {
                None => break,
                Some(t) if horizon.is_some_and(|h| t >= h) => break,
                Some(_) => {}
            }
            if self.queue.peek_is_barrier() {
                // Unreachable when the horizon math is right: every
                // barrier is either pending at window start (and caps the
                // horizon) or scheduled in-window at `>= committed + L`.
                debug_assert!(false, "barrier event inside a parallel window");
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event exists");
            let t0 = self.telemetry.profile_timer();
            match ev {
                Event::IterationDone { instance } => {
                    self.finish_iteration(instance, now);
                    debug_assert!(
                        self.cross_escape_outbox.is_empty(),
                        "cross-shard escape queued by a non-barrier iteration"
                    );
                    self.try_schedule(instance, now);
                    self.telemetry
                        .profile_record(ProfiledEvent::IterationDone, t0);
                }
                Event::OffloadDone { req } => {
                    self.on_offload_done(req, now);
                    self.telemetry
                        .profile_record(ProfiledEvent::OffloadDone, t0);
                }
                Event::ReloadDone { req } => {
                    self.on_reload_done(req, now);
                    self.telemetry.profile_record(ProfiledEvent::ReloadDone, t0);
                }
                Event::MigrationDone { req, to } => {
                    self.on_migration_done(req, to, now);
                    self.telemetry
                        .profile_record(ProfiledEvent::MigrationDone, t0);
                }
                Event::CrossShardDone { .. }
                | Event::CrossRegionDone { .. }
                | Event::FleetTransition { .. }
                | Event::AutoscaleTick => {
                    unreachable!("cross-boundary events are always barriers")
                }
            }
            drained += 1;
        }
        drained
    }
}

/// What the windowed executor needs from an engine beyond the sequential
/// [`EventDriver`](super::driver::EventDriver) contract it falls back to
/// at barriers.
pub(super) trait WindowedEngine: super::driver::EventDriver {
    /// Timestamp of the next undelivered trace arrival, if any.
    fn next_arrival_time(&self) -> Option<SimTime>;
    /// Earliest pending barrier event across every shard, if any.
    fn earliest_barrier(&mut self) -> Option<SimTime>;
    /// Refreshes `out` with one pointer per shard (every shard, every
    /// region). Called once per window so pointer provenance never spans
    /// a coordinator mutation.
    fn push_shard_ptrs(&mut self, out: &mut Vec<ShardPtr>);
}

/// Shared coordinator/worker state, guarded by one mutex. Workers wake on
/// a generation bump, drain their stride of the shard list, and report
/// back; the coordinator drains stride 0 itself and then waits for the
/// stragglers.
struct PoolState {
    generation: u64,
    ptrs: Vec<ShardPtr>,
    horizon: Option<SimTime>,
    done_count: usize,
    drained: u64,
    panicked: bool,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    go: Condvar,
    done: Condvar,
}

/// A persistent pool of `threads - 1` workers plus the calling thread:
/// windows are too short (often tens of microseconds of wall clock) to
/// amortize a thread spawn each, so the workers live for the whole run
/// and park on a condvar between windows.
struct ShardPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ShardPool {
    fn new(threads: usize) -> Self {
        assert!(threads > 1, "a one-thread run takes the sequential path");
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                generation: 0,
                ptrs: Vec::new(),
                horizon: None,
                done_count: 0,
                drained: 0,
                panicked: false,
                shutdown: false,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, index, threads))
            })
            .collect();
        ShardPool {
            shared,
            workers,
            threads,
        }
    }

    /// Runs one window: every shard in `ptrs` drains strictly below
    /// `horizon`, strided across the pool. Returns the total events
    /// drained.
    ///
    /// # Panics
    ///
    /// Panics if any worker panicked inside its drain — the run is
    /// unrecoverable (shard state is torn), so the failure propagates.
    fn run_window(&self, ptrs: &[ShardPtr], horizon: Option<SimTime>) -> u64 {
        {
            let mut st = self.shared.state.lock().expect("pool lock");
            st.ptrs.clear();
            st.ptrs.extend_from_slice(ptrs);
            st.horizon = horizon;
            st.done_count = 0;
            st.drained = 0;
            st.generation += 1;
        }
        self.shared.go.notify_all();
        let mut own = 0u64;
        let mut j = 0;
        while j < ptrs.len() {
            // SAFETY: stride 0 is disjoint from every worker's stride, and
            // the pointers were refreshed from `iter_mut` this window.
            own += unsafe { drain_erased(ptrs[j], horizon) };
            j += self.threads;
        }
        let mut st = self.shared.state.lock().expect("pool lock");
        while st.done_count < self.threads - 1 {
            st = self.shared.done.wait(st).expect("pool lock");
        }
        assert!(!st.panicked, "windowed executor worker panicked");
        st.drained + own
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        if let Ok(mut st) = self.shared.state.lock() {
            st.shutdown = true;
        }
        self.shared.go.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, index: usize, threads: usize) {
    let mut seen = 0u64;
    let mut mine: Vec<ShardPtr> = Vec::new();
    loop {
        let horizon = {
            let mut st = shared.state.lock().expect("pool lock");
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    break;
                }
                st = shared.go.wait(st).expect("pool lock");
            }
            seen = st.generation;
            mine.clear();
            mine.extend(st.ptrs.iter().skip(index).step_by(threads).copied());
            st.horizon
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut n = 0u64;
            for &p in &mine {
                // SAFETY: this worker's stride is disjoint from every
                // other stride, and the coordinator keeps the engine
                // parked until `done_count` reaches the pool size.
                n += unsafe { drain_erased(p, horizon) };
            }
            n
        }));
        let mut st = shared.state.lock().expect("pool lock");
        match result {
            Ok(n) => st.drained += n,
            Err(_) => st.panicked = true,
        }
        st.done_count += 1;
        if st.done_count == threads - 1 {
            shared.done.notify_one();
        }
    }
}

/// Drives `engine` to completion with `threads` threads: parallel windows
/// between barriers, the exact sequential step at them. `lookahead` is
/// `Some(L)` when transition-capable iterations are barrier events
/// ([`SimConfig::transition_barriers`](crate::SimConfig)); windows are
/// then additionally bounded to `committed + L` so a barrier scheduled by
/// an in-window event can never land inside its own window.
pub(super) fn run_windowed<D: WindowedEngine>(
    engine: &mut D,
    threads: usize,
    interval: Option<SimDuration>,
    lookahead: Option<SimDuration>,
    telemetry: &TelemetryHandle,
) {
    let pool = ShardPool::new(threads);
    let mut ptrs: Vec<ShardPtr> = Vec::new();
    // Everything before `committed` has been handled; the next window may
    // not reach past `committed + L` when transition barriers are live.
    let mut committed = SimTime::ZERO;
    let mut next_sample = interval.map(|iv| SimTime::ZERO + iv);
    while let Some(t_next) = engine.next_event_time() {
        // Same sampling contract as the sequential driver: a gauge row at
        // `s` fires once every event at or before `s` has been handled.
        if let (Some(ns), Some(iv)) = (next_sample.as_mut(), interval) {
            while *ns < t_next {
                engine.sample(*ns);
                *ns += iv;
            }
        }
        let mut horizon = engine.earliest_barrier();
        let cap = |h: &mut Option<SimTime>, t: SimTime| {
            *h = Some(h.map_or(t, |cur| cur.min(t)));
        };
        if let Some(arrival) = engine.next_arrival_time() {
            cap(&mut horizon, arrival);
        }
        if let Some(ns) = next_sample {
            cap(&mut horizon, ns);
        }
        if let Some(l) = lookahead {
            cap(&mut horizon, committed + l);
        }
        if horizon.is_none_or(|h| t_next < h) {
            // At least one shard-local event below the horizon: drain
            // every shard in parallel. (`t_next` cannot be an arrival or
            // barrier here — both cap the horizon.)
            engine.push_shard_ptrs(&mut ptrs);
            let drained = pool.run_window(&ptrs, horizon);
            telemetry.profile_window(drained);
            if let Some(h) = horizon {
                committed = h;
            }
        } else {
            // The next event is (or ties with) the horizon: fire exactly
            // one event under the sequential engine's global total order.
            let fired = engine.step();
            debug_assert!(fired, "next_event_time promised a pending event");
            committed = t_next;
            telemetry.profile_barrier_event();
        }
    }
}
