//! The cluster engine: N shards under one global clock, a cross-shard
//! router at the arrival boundary, and the inter-shard migration path.
//!
//! Every shard owns its event queue; the cluster repeatedly fires the
//! globally earliest event. The interleaving is fully deterministic:
//!
//! * at equal timestamps, **arrivals fire before shard events** — exactly
//!   the order the pre-sharding engine produced, where arrival events were
//!   enqueued first and therefore carried the lowest sequence numbers;
//! * ties between shards break by **lowest shard id**;
//! * within a shard, the [`EventQueue`](pascal_sim::EventQueue)'s
//!   `(time, sequence)` contract applies.
//!
//! With `shards == 1` the router degenerates to "shard 0" and the event
//! sequence — hence every output byte — matches the pre-sharding engine.
//!
//! Cross-shard migration: when a phase transition finds its home shard
//! saturated — every instance SLO-unhealthy, or none able to hold the
//! request's KV — the shard records an *escape candidate* instead of
//! acting locally (an intra-shard `MigrateTo` inside a fully unhealthy
//! shard is kept as the candidate's fallback). The cluster evaluates it
//! right after the triggering iteration — before the instance relaunches
//! — by ranking sibling shards ([`cross_shard_escape_target`]), picking a
//! landing instance with the destination shard's own Algorithm 2 ranking,
//! pricing the transfer at the two-tier [`Topology`]'s interconnect
//! (slower, so the predictive cost/benefit veto fires sooner than
//! intra-shard), and launching the KV over the contended inter-shard
//! link; every failure path executes the deferred intra-shard fallback.

use pascal_cluster::{KvLocation, PoolSnapshot, Topology};
use pascal_metrics::MigrationRecord;
use pascal_sched::{cross_shard_escape_target, MigrationCost, SchedPolicy};
use pascal_sim::SimTime;
use pascal_workload::{RequestId, Trace};

use crate::config::SimConfig;

use super::{context_kv_bytes, EscapeCandidate, Event, Shard, SimOutput};

/// The cluster of shards and its global clock.
pub(crate) struct Engine<'a> {
    trace: &'a Trace,
    config: &'a SimConfig,
    pub(super) shards: Vec<Shard<'a>>,
    topology: Topology,
    /// Trace indices in arrival order — `(arrival, index)`-sorted, the
    /// same total order the pre-sharding event queue popped arrivals in.
    arrival_order: Vec<usize>,
    next_arrival: usize,
    /// Round-robin router state.
    router_cursor: usize,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(trace: &'a Trace, config: &'a SimConfig) -> Self {
        config.validate();
        let geometry = config.geometry();
        if let Some(cap) = config.kv_capacity_bytes() {
            let cap_blocks = geometry.blocks_in(cap);
            for r in trace.requests() {
                let worst = geometry.blocks_for_tokens(r.final_context_tokens() + 1);
                assert!(
                    worst <= cap_blocks,
                    "{} needs {worst} KV blocks but an instance only has {cap_blocks}; \
                     raise capacity or shrink the request",
                    r.id
                );
            }
        }

        let per_shard = config.num_instances / config.shards;
        let shards = (0..config.shards)
            .map(|s| Shard::new(trace, config, s as u32, per_shard))
            .collect();

        let mut arrival_order: Vec<usize> = (0..trace.requests().len()).collect();
        arrival_order.sort_by_key(|&i| (trace.requests()[i].arrival, i));

        Engine {
            trace,
            config,
            shards,
            topology: Topology::two_tier(config.shards, config.fabric, config.interconnect),
            arrival_order,
            next_arrival: 0,
            router_cursor: 0,
        }
    }

    /// Fires the globally earliest pending event (arrivals win ties, then
    /// lowest shard id). Returns `false` once the cluster has drained.
    pub(super) fn step(&mut self) -> bool {
        let arrival = self
            .arrival_order
            .get(self.next_arrival)
            .map(|&idx| self.trace.requests()[idx].arrival);
        let mut shard_ev: Option<(SimTime, usize)> = None;
        for (s, shard) in self.shards.iter_mut().enumerate() {
            if let Some(t) = shard.queue.peek_time() {
                if shard_ev.is_none_or(|(best, _)| t < best) {
                    shard_ev = Some((t, s));
                }
            }
        }
        match (arrival, shard_ev) {
            (None, None) => false,
            (Some(at), shard) if shard.is_none_or(|(t, _)| at <= t) => {
                self.deliver_arrival(at);
                true
            }
            (_, Some((_, s))) => {
                let (now, ev) = self.shards[s].queue.pop().expect("peeked event exists");
                self.dispatch(s, ev, now);
                true
            }
            (Some(_), None) => unreachable!("arrival case handled by the guard above"),
        }
    }

    /// Routes the next trace arrival to a shard and delivers it. For
    /// load-aware routers the monitor sweep of the chosen shard is handed
    /// to the arrival handler so it is not repeated at the same timestamp;
    /// load-oblivious routing skips the sweep entirely.
    fn deliver_arrival(&mut self, now: SimTime) {
        let idx = self.arrival_order[self.next_arrival];
        self.next_arrival += 1;
        if self.shards.len() == 1 {
            self.shards[0].on_arrival(idx, now, None);
            return;
        }
        if !self.config.router.needs_pool_state() {
            let shard =
                pascal_sched::RouterPolicy::rotate(self.shards.len(), &mut self.router_cursor);
            self.shards[shard].on_arrival(idx, now, None);
            return;
        }
        let mut all_stats: Vec<_> = self.shards.iter().map(|sh| sh.collect_stats(now)).collect();
        let pools: Vec<PoolSnapshot> = all_stats
            .iter()
            .map(|stats| PoolSnapshot::aggregate(stats))
            .collect();
        let shard = self.config.router.route(&pools, &mut self.router_cursor);
        self.shards[shard].on_arrival(idx, now, Some(all_stats.swap_remove(shard)));
    }

    /// Routes one event to its handler. Iteration completions are split so
    /// cross-shard escapes are evaluated after tokens (and phase
    /// transitions) land but before the instance relaunches — the same
    /// point in the event order where intra-shard migrations launch.
    fn dispatch(&mut self, s: usize, ev: Event, now: SimTime) {
        match ev {
            Event::IterationDone { instance } => {
                self.shards[s].finish_iteration(instance, now);
                self.drain_escapes(s, now);
                self.shards[s].try_schedule(instance, now);
            }
            Event::OffloadDone { req } => self.shards[s].on_offload_done(req, now),
            Event::ReloadDone { req } => self.shards[s].on_reload_done(req, now),
            Event::MigrationDone { req, to } => self.shards[s].on_migration_done(req, to, now),
            Event::CrossShardDone {
                req,
                to_shard,
                to_instance,
            } => self.on_cross_shard_done(s, req, to_shard as usize, to_instance, now),
        }
    }

    /// Evaluates the escape candidates shard `s` queued during the
    /// iteration that just finished.
    fn drain_escapes(&mut self, s: usize, now: SimTime) {
        if self.shards.len() == 1 {
            debug_assert!(self.shards[s].cross_escape_outbox.is_empty());
            return;
        }
        let candidates = std::mem::take(&mut self.shards[s].cross_escape_outbox);
        for candidate in candidates {
            self.consider_cross_escape(s, candidate, now);
        }
    }

    /// The escape could not (or should not) cross shards: execute the
    /// intra-shard destination Algorithm 2 had picked at the transition,
    /// if there was one.
    fn escape_fallback(&mut self, from: usize, candidate: EscapeCandidate, now: SimTime) {
        if let Some(dest) = candidate.intra_fallback {
            self.shards[from].launch_deferred_migration(candidate.req, dest, now);
        }
    }

    /// One cross-shard migration decision: sibling-shard ranking, landing
    /// instance, interconnect-priced cost/benefit veto, reservation,
    /// launch. Every failure path falls back to the candidate's deferred
    /// intra-shard move (when it has one).
    fn consider_cross_escape(&mut self, from: usize, candidate: EscapeCandidate, now: SimTime) {
        let id = candidate.req;
        // The escape was queued at the phase transition; the KV must still
        // be resident and idle (nothing reschedules between the transition
        // and this drain, but stay defensive — a stale candidate is a
        // no-op, never a crash).
        let Some(st) = self.shards[from].states.get(&id) else {
            return;
        };
        if st.running || st.kv_location != KvLocation::Gpu {
            return;
        }

        let pools: Vec<PoolSnapshot> = self
            .shards
            .iter()
            .map(|sh| PoolSnapshot::aggregate(&sh.collect_stats(now)))
            .collect();
        let Some(dest) = cross_shard_escape_target(&pools, from) else {
            return self.escape_fallback(from, candidate, now);
        };
        self.shards[from]
            .migration_ctl
            .outcomes
            .cross_shard_considered += 1;

        let (needed, bytes, predicted_remaining) = {
            let sh = &self.shards[from];
            let st = &sh.states[&id];
            (
                sh.geometry.blocks_for_tokens(st.tokens_needed_next()),
                context_kv_bytes(&sh.geometry, st),
                sh.predictor
                    .as_ref()
                    .and_then(|p| p.predicted_remaining_tokens(&st.spec, st.tokens_generated)),
            )
        };

        // Landing instance by the destination shard's own Algorithm 2
        // ranking (adaptive: must fit right now).
        let dest_stats = self.shards[dest].collect_stats(now);
        let policy = self.shards[from].policy;
        let Some(to_local) = policy.cross_shard_instance(needed, &dest_stats) else {
            self.shards[from].migration_ctl.outcomes.cross_shard_aborted += 1;
            return self.escape_fallback(from, candidate, now);
        };

        // The cost/benefit test at the interconnect's (higher) price. A
        // veto here only rules out the expensive tier: the deferred
        // intra-shard move (which passed the cheaper intra-priced test at
        // the transition) still executes.
        let cost = self.shards[from]
            .migration_ctl
            .predictive()
            .filter(|_| self.shards[from].predictor.is_some())
            .map(|p| MigrationCost {
                transfer_time: self.topology.cross_transfer_time(bytes),
                predicted_remaining_service: predicted_remaining
                    .map(|tokens| self.config.target_tpot.mul_f64(tokens)),
                min_benefit_ratio: p.min_benefit_ratio,
            });
        if cost.is_some_and(|c| c.vetoes()) {
            self.shards[from]
                .migration_ctl
                .outcomes
                .cross_shard_vetoed_by_cost += 1;
            return self.escape_fallback(from, candidate, now);
        }

        // Adaptive reservation on the destination (race-free Fig. 7 form,
        // cross-shard edition), recorded in the destination shard's ledger
        // so landing consumes it from the shard that holds the blocks.
        // NonAdaptive launches blindly and may land in the destination's
        // CPU pool.
        if self.shards[dest].instances[to_local as usize]
            .inst
            .gpu
            .try_alloc(needed)
        {
            self.shards[dest]
                .migration_ctl
                .reservations
                .insert(id, needed);
        } else if policy.adaptive_migration() {
            self.shards[from].migration_ctl.outcomes.cross_shard_aborted += 1;
            return self.escape_fallback(from, candidate, now);
        }

        let (_, finish) = self.topology.cross_migrate(now, from, dest, bytes);
        let to_global = self.shards[dest].global_instance(to_local);
        {
            let sh = &mut self.shards[from];
            let st = sh.states.get_mut(&id).expect("escaping request");
            st.kv_location = KvLocation::Migrating;
            st.resident_since = None;
            let from_global = sh.offset + st.instance;
            st.migration = Some(MigrationRecord {
                from_instance: from_global,
                to_instance: to_global,
                started: now,
                finished: finish,
                bytes,
                stall: None,
                predicted_remaining_tokens: predicted_remaining,
                actual_remaining_tokens: st.spec.output_tokens() - st.tokens_generated,
            });
            sh.migration_ctl.outcomes.launched += 1;
            sh.migration_ctl.outcomes.bytes_moved += bytes;
            sh.migration_ctl.outcomes.cross_shard_launched += 1;
            sh.migration_ctl.outcomes.cross_shard_bytes_moved += bytes;
            sh.queue.schedule(
                finish,
                Event::CrossShardDone {
                    req: id,
                    to_shard: dest as u32,
                    to_instance: to_local,
                },
            );
        }
    }

    /// A cross-shard transfer cleared the interconnect: free the source
    /// side, hand the request state to the destination shard, land the KV.
    fn on_cross_shard_done(
        &mut self,
        from: usize,
        req: RequestId,
        to_shard: usize,
        to_local: u32,
        now: SimTime,
    ) {
        let (mut st, from_local) = {
            let sh = &mut self.shards[from];
            let mut st = sh.states.remove(&req).expect("cross-migrating request");
            assert_eq!(st.kv_location, KvLocation::Migrating);
            let from_local = st.instance;
            sh.instances[from_local as usize]
                .inst
                .gpu
                .free(st.held_gpu_blocks);
            sh.instances[from_local as usize].inst.members.remove(&req);
            st.held_gpu_blocks = 0;
            (st, from_local)
        };

        let sh = &mut self.shards[to_shard];
        let to_global = sh.global_instance(to_local);
        st.instance = to_local;
        st.instances_visited.push(to_global);
        sh.instances[to_local as usize].inst.members.insert(req);
        sh.states.insert(req, st);
        sh.cross_shard_in += 1;
        // The landing tail — reservation consume / allocate / CPU-pool
        // fallback — is the same mechanism as an intra-shard migration,
        // applied on the destination shard (whose ledger holds the
        // reservation made at launch).
        sh.land_migration(req, to_local, now);
        self.shards[from].try_schedule(from_local, now);
        self.shards[to_shard].try_schedule(to_local, now);
    }

    pub(crate) fn run(mut self) -> SimOutput {
        while self.step() {}
        for sh in &self.shards {
            assert!(
                sh.states.is_empty(),
                "shard {} drained with {} unfinished requests (deadlock)",
                sh.id,
                sh.states.len()
            );
        }
        for sh in &self.shards {
            assert!(
                sh.migration_ctl.reservations.is_empty(),
                "shard {} drained with leaked migration reservations",
                sh.id
            );
        }

        // Only PASCAL consumes predictions (demotion, placement); under
        // the baselines a predictor is purely observational — calibration
        // samples are still logged, but the run's behavior is identical to
        // the plain policy, and the name must say so. Active controllers
        // tag the name so paired comparisons stay legible.
        let lead = &self.shards[0];
        let mut policy_name = match (&lead.predictor, &lead.policy) {
            (Some(p), SchedPolicy::Pascal(_)) => {
                if lead.migration_ctl.predictive().is_some() {
                    format!(
                        "{}(Predictive-{}, CostAwareMigration)",
                        lead.policy.name(),
                        p.name()
                    )
                } else {
                    format!("{}(Predictive-{})", lead.policy.name(), p.name())
                }
            }
            _ => lead.policy.name().to_owned(),
        };
        if lead.admission_ctl.enabled() {
            policy_name.push_str("+PredictiveAdmission");
        }

        let shard_stats: Vec<_> = self.shards.iter().map(Shard::shard_stats).collect();
        let mut migration_outcomes = pascal_metrics::MigrationOutcomes::default();
        let mut admission = pascal_metrics::AdmissionCounters::default();
        for row in &shard_stats {
            migration_outcomes.absorb(&row.migrations);
            admission.absorb(&row.admission);
        }

        let mut records = Vec::new();
        let mut peak_gpu_kv_bytes = Vec::new();
        let mut predictions = Vec::new();
        let mut rejections = Vec::new();
        for sh in self.shards {
            records.extend(sh.records);
            peak_gpu_kv_bytes.extend(
                sh.instances
                    .iter()
                    .map(|i| i.inst.gpu.peak_used_blocks() * sh.geometry.block_bytes()),
            );
            predictions.extend(sh.prediction_samples);
            rejections.extend(sh.admission_ctl.rejections);
        }
        records.sort_by_key(|r| r.spec.id);
        predictions.sort_by_key(|p| p.id);
        rejections.sort_by_key(|r| (r.at, r.id));
        let makespan = records
            .iter()
            .map(|r| r.completion)
            .max()
            .unwrap_or(SimTime::ZERO);

        SimOutput {
            records,
            peak_gpu_kv_bytes,
            makespan,
            policy_name,
            predictions,
            migration_outcomes,
            admission,
            rejections,
            shard_stats,
        }
    }
}
