//! The cluster engine: N shards under one global clock, a cross-shard
//! router at the arrival boundary, and the inter-shard migration path.
//!
//! Every shard owns its event queue; the cluster repeatedly fires the
//! globally earliest event. The interleaving is fully deterministic:
//!
//! * at equal timestamps, **arrivals fire before shard events** — exactly
//!   the order the pre-sharding engine produced, where arrival events were
//!   enqueued first and therefore carried the lowest sequence numbers;
//! * ties between shards break by **lowest shard id**;
//! * within a shard, the [`EventQueue`](pascal_sim::EventQueue)'s
//!   `(time, sequence)` contract applies.
//!
//! With `shards == 1` the router degenerates to "shard 0" and the event
//! sequence — hence every output byte — matches the pre-sharding engine.
//!
//! Cross-shard migration: when a phase transition finds its home shard
//! saturated — every instance SLO-unhealthy, or none able to hold the
//! request's KV — the shard records an *escape candidate* instead of
//! acting locally (an intra-shard `MigrateTo` inside a fully unhealthy
//! shard is kept as the candidate's fallback). The cluster evaluates it
//! right after the triggering iteration — before the instance relaunches
//! — by ranking sibling shards ([`cross_shard_escape_target`]), picking a
//! landing instance with the destination shard's own Algorithm 2 ranking,
//! pricing the transfer at the two-tier [`Topology`]'s interconnect
//! (slower, so the predictive cost/benefit veto fires sooner than
//! intra-shard), and launching the KV over the contended inter-shard
//! link; every failure path executes the deferred intra-shard fallback.
//!
//! The [`Cluster`] is one region's worth of this machinery; the
//! single-region [`Engine`] drives it straight off the trace, while the
//! federated engine ([`super::federation`]) owns one `Cluster` per region
//! and resolves the two things a region cannot: escape candidates with no
//! in-region target (returned as [`ClusterSignal::Escalate`]) and WAN
//! transfer completions ([`ClusterSignal::CrossRegionArrived`]).

use pascal_cluster::{InstanceStats, KvLocation, PoolSnapshot, ReqHandle, Topology};
use pascal_metrics::{MigrationRecord, RegionStats};
use pascal_sched::{cross_shard_escape_target, MigrationCost, RouterPolicy, SchedPolicy};
use pascal_sim::SimTime;
use pascal_telemetry::{
    EscapeTier, ProfiledEvent, SeriesRow, SeriesScope, TelemetryHandle, TraceEventKind,
};
use pascal_workload::Trace;

use crate::config::SimConfig;

use super::{context_kv_bytes, EscapeCandidate, Event, Shard, SimOutput};

/// What firing one cluster event left for the caller to resolve. A
/// non-federated cluster always resolves everything itself and returns
/// [`ClusterSignal::Handled`].
pub(super) enum ClusterSignal {
    /// The event was fully handled inside the cluster.
    Handled,
    /// An iteration finished on `(shard, instance)` and these escape
    /// candidates found no in-region target: the federation must resolve
    /// them (cross-region escape or intra-shard fallback) and then
    /// relaunch the instance — the same "before the relaunch" point where
    /// in-region escapes are evaluated.
    Escalate {
        shard: usize,
        instance: u32,
        candidates: Vec<EscapeCandidate>,
        now: SimTime,
    },
    /// A cross-region transfer out of `shard` cleared the WAN; the
    /// federation must free the source side and land the request in the
    /// destination region.
    CrossRegionArrived {
        shard: usize,
        req: ReqHandle,
        to_region: u32,
        to_shard: u32,
        to_instance: u32,
        now: SimTime,
    },
}

/// One region's cluster of shards: the shard pool, its two-tier topology,
/// and the cross-shard router cursor.
pub(crate) struct Cluster<'a> {
    config: &'a SimConfig,
    pub(super) shards: Vec<Shard<'a>>,
    topology: Topology,
    /// Round-robin router state.
    router_cursor: usize,
    /// Whether a federation drives this cluster: escape candidates with no
    /// in-region target are escalated instead of falling back immediately.
    federated: bool,
    /// Telemetry sink shared with every shard — disabled it is a handful
    /// of `false` branches, so the hot path is unchanged.
    telemetry: TelemetryHandle,
}

impl<'a> Cluster<'a> {
    /// Builds a cluster of `shards` shards of `per_shard` instances each,
    /// with global shard ids starting at `first_shard` (0 for a
    /// single-region run, region-major in a federation).
    pub(super) fn new(
        trace: &'a Trace,
        config: &'a SimConfig,
        first_shard: u32,
        shards: usize,
        per_shard: usize,
        federated: bool,
        telemetry: TelemetryHandle,
    ) -> Self {
        Cluster {
            config,
            shards: (0..shards)
                .map(|s| {
                    Shard::new(
                        trace,
                        config,
                        first_shard + s as u32,
                        per_shard,
                        telemetry.clone(),
                    )
                })
                .collect(),
            topology: Topology::two_tier(shards, config.fabric, config.interconnect),
            router_cursor: 0,
            federated,
            telemetry,
        }
    }

    /// The earliest pending shard event as `(time, shard)`, if any — one
    /// scan serves both the peek (for the arrival-vs-event race) and the
    /// subsequent [`Cluster::fire_shard`]. Iterating in shard order with a
    /// strict minimum makes ties resolve to the lowest shard id.
    pub(super) fn peek_earliest(&mut self) -> Option<(SimTime, usize)> {
        let mut best: Option<(SimTime, usize)> = None;
        for (s, shard) in self.shards.iter_mut().enumerate() {
            if let Some(t) = shard.queue.peek_time() {
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, s));
                }
            }
        }
        best
    }

    /// Pops and dispatches shard `s`'s earliest event — the one
    /// [`Cluster::peek_earliest`] just reported. The returned
    /// [`ProfiledEvent`] tags what class of event fired, so the caller can
    /// attribute wall-clock time to it when the hot-path profiler is on.
    ///
    /// # Panics
    ///
    /// Panics if shard `s` has no pending event.
    pub(super) fn fire_shard(&mut self, s: usize) -> (ClusterSignal, ProfiledEvent) {
        let (now, ev) = self.shards[s].queue.pop().expect("peeked event exists");
        let kind = match &ev {
            Event::IterationDone { .. } => ProfiledEvent::IterationDone,
            Event::OffloadDone { .. } => ProfiledEvent::OffloadDone,
            Event::ReloadDone { .. } => ProfiledEvent::ReloadDone,
            Event::MigrationDone { .. } => ProfiledEvent::MigrationDone,
            Event::CrossShardDone { .. } => ProfiledEvent::CrossShardDone,
            Event::CrossRegionDone { .. } => ProfiledEvent::CrossRegionDone,
            Event::FleetTransition { .. } | Event::AutoscaleTick => ProfiledEvent::Fleet,
        };
        (self.dispatch(s, ev, now), kind)
    }

    /// Routes a trace arrival to a shard and delivers it — the
    /// single-region path. For load-aware routers the monitor sweep of the
    /// chosen shard is handed to the arrival handler so it is not repeated
    /// at the same timestamp; load-oblivious routing skips the sweep
    /// entirely.
    pub(super) fn route_arrival(&mut self, idx: usize, now: SimTime) {
        if self.shards.len() == 1 {
            self.shards[0].on_arrival(idx, now, None);
            return;
        }
        if !self.config.router.needs_pool_state() {
            let shard = RouterPolicy::rotate(self.shards.len(), &mut self.router_cursor);
            self.shards[shard].on_arrival(idx, now, None);
            return;
        }
        let mut all_stats: Vec<_> = self.shards.iter().map(|sh| sh.collect_stats(now)).collect();
        let pools: Vec<PoolSnapshot> = all_stats
            .iter()
            .map(|stats| PoolSnapshot::aggregate(stats))
            .collect();
        let shard = self.config.router.route(&pools, &mut self.router_cursor);
        self.shards[shard].on_arrival(idx, now, Some(all_stats.swap_remove(shard)));
    }

    /// Picks the shard an arrival would be routed to and returns its
    /// monitor snapshot — the federated path, where the admission decision
    /// (and possible spill to another region) happens *before* delivery.
    /// Advances the router cursor exactly like [`Cluster::route_arrival`].
    pub(super) fn pick_arrival_shard(&mut self, now: SimTime) -> (usize, Vec<InstanceStats>) {
        if self.shards.len() == 1 {
            return (0, self.shards[0].collect_stats(now));
        }
        if !self.config.router.needs_pool_state() {
            let shard = RouterPolicy::rotate(self.shards.len(), &mut self.router_cursor);
            return (shard, self.shards[shard].collect_stats(now));
        }
        let mut all_stats: Vec<_> = self.shards.iter().map(|sh| sh.collect_stats(now)).collect();
        let pools: Vec<PoolSnapshot> = all_stats
            .iter()
            .map(|stats| PoolSnapshot::aggregate(stats))
            .collect();
        let shard = self.config.router.route(&pools, &mut self.router_cursor);
        (shard, all_stats.swap_remove(shard))
    }

    /// One aggregate pool snapshot per shard — the view the cross-shard
    /// escape ranking (and, merged, the federation router) consumes.
    pub(super) fn shard_pools(&self, now: SimTime) -> Vec<PoolSnapshot> {
        self.shards
            .iter()
            .map(|sh| PoolSnapshot::aggregate(&sh.collect_stats(now)))
            .collect()
    }

    /// Routes one event to its handler. Iteration completions are split so
    /// cross-shard escapes are evaluated after tokens (and phase
    /// transitions) land but before the instance relaunches — the same
    /// point in the event order where intra-shard migrations launch.
    fn dispatch(&mut self, s: usize, ev: Event, now: SimTime) -> ClusterSignal {
        match ev {
            Event::IterationDone { instance } => {
                self.shards[s].finish_iteration(instance, now);
                let unresolved = self.drain_escapes(s, now);
                if !unresolved.is_empty() {
                    debug_assert!(self.federated, "non-federated escapes resolve in-cluster");
                    return ClusterSignal::Escalate {
                        shard: s,
                        instance,
                        candidates: unresolved,
                        now,
                    };
                }
                self.shards[s].try_schedule(instance, now);
                ClusterSignal::Handled
            }
            Event::OffloadDone { req } => {
                self.shards[s].on_offload_done(req, now);
                ClusterSignal::Handled
            }
            Event::ReloadDone { req } => {
                self.shards[s].on_reload_done(req, now);
                ClusterSignal::Handled
            }
            Event::MigrationDone { req, to } => {
                self.shards[s].on_migration_done(req, to, now);
                ClusterSignal::Handled
            }
            Event::CrossShardDone {
                req,
                to_shard,
                to_instance,
            } => {
                self.on_cross_shard_done(s, req, to_shard as usize, to_instance, now);
                ClusterSignal::Handled
            }
            Event::CrossRegionDone {
                req,
                to_region,
                to_shard,
                to_instance,
            } => ClusterSignal::CrossRegionArrived {
                shard: s,
                req,
                to_region,
                to_shard,
                to_instance,
                now,
            },
            // Fleet transitions mirror IterationDone's escape handling: a
            // drain queues its residents as cross-shard escape candidates,
            // which must be resolved (or escalated to the federation)
            // before the instance relaunches.
            Event::FleetTransition { instance, to } => {
                self.shards[s].apply_fleet_transition(instance, to, now);
                let unresolved = self.drain_escapes(s, now);
                if !unresolved.is_empty() {
                    debug_assert!(self.federated, "non-federated escapes resolve in-cluster");
                    return ClusterSignal::Escalate {
                        shard: s,
                        instance,
                        candidates: unresolved,
                        now,
                    };
                }
                self.shards[s].try_schedule(instance, now);
                ClusterSignal::Handled
            }
            Event::AutoscaleTick => {
                let touched = self.shards[s].autoscale_tick(now);
                let unresolved = self.drain_escapes(s, now);
                if !unresolved.is_empty() {
                    debug_assert!(self.federated, "non-federated escapes resolve in-cluster");
                    return ClusterSignal::Escalate {
                        shard: s,
                        instance: touched.unwrap_or(0),
                        candidates: unresolved,
                        now,
                    };
                }
                ClusterSignal::Handled
            }
        }
    }

    /// Evaluates the escape candidates shard `s` queued during the
    /// iteration that just finished, returning the ones no sibling shard
    /// could take (always empty in a non-federated cluster, where they
    /// fall back immediately).
    fn drain_escapes(&mut self, s: usize, now: SimTime) -> Vec<EscapeCandidate> {
        if self.shards.len() == 1 && !self.federated {
            debug_assert!(self.shards[s].cross_escape_outbox.is_empty());
            return Vec::new();
        }
        let candidates = std::mem::take(&mut self.shards[s].cross_escape_outbox);
        let mut unresolved = Vec::new();
        for candidate in candidates {
            if let Some(c) = self.consider_cross_escape(s, candidate, now) {
                unresolved.push(c);
            }
        }
        unresolved
    }

    /// The escape could not (or should not) cross shards: execute the
    /// intra-shard destination Algorithm 2 had picked at the transition,
    /// if there was one. `after_veto` attributes the fallback to the
    /// cost/benefit veto at the pricier tier (vs no-target/abort).
    pub(super) fn escape_fallback(
        &mut self,
        from: usize,
        candidate: EscapeCandidate,
        now: SimTime,
        after_veto: bool,
    ) {
        if let Some(dest) = candidate.intra_fallback {
            let outcomes = &mut self.shards[from].migration_ctl.outcomes;
            outcomes.cross_shard_fallbacks += 1;
            if after_veto {
                outcomes.cross_shard_fallbacks_after_veto += 1;
            }
            let sh = &self.shards[from];
            sh.emit_trace(
                now,
                Some(sh.offset + dest),
                Some(candidate.req),
                TraceEventKind::EscapeFallback { after_veto },
            );
            self.shards[from].launch_deferred_migration(candidate.handle, dest, now);
        }
    }

    /// One cross-shard migration decision: sibling-shard ranking, landing
    /// instance, interconnect-priced cost/benefit veto, reservation,
    /// launch. Every failure path falls back to the candidate's deferred
    /// intra-shard move (when it has one) — except "no sibling shard can
    /// take it" under a federation, which returns the candidate for
    /// cross-region escalation.
    fn consider_cross_escape(
        &mut self,
        from: usize,
        candidate: EscapeCandidate,
        now: SimTime,
    ) -> Option<EscapeCandidate> {
        let id = candidate.req;
        let handle = candidate.handle;
        // The escape was queued at the phase transition; the KV must still
        // be resident and idle (nothing reschedules between the transition
        // and this drain, but stay defensive — a stale candidate is a
        // no-op, never a crash). The id check guards against the slab slot
        // having been reused by a different request.
        let st = self.shards[from].states.get(handle)?;
        if st.spec.id != id || st.running || st.kv_location != KvLocation::Gpu {
            return None;
        }

        // A region's only shard has no siblings to rank: the candidate
        // goes straight to the federation.
        if self.shards.len() == 1 {
            debug_assert!(self.federated);
            return Some(candidate);
        }

        let pools = self.shard_pools(now);
        let Some(dest) = cross_shard_escape_target(&pools, from) else {
            if self.federated {
                return Some(candidate);
            }
            self.escape_fallback(from, candidate, now, false);
            return None;
        };
        self.shards[from]
            .migration_ctl
            .outcomes
            .cross_shard_considered += 1;
        let from_global = {
            let sh = &self.shards[from];
            sh.offset + sh.states[handle].instance
        };
        self.shards[from].emit_trace(
            now,
            Some(from_global),
            Some(id),
            TraceEventKind::MigrationConsidered {
                tier: EscapeTier::CrossShard,
            },
        );

        let (needed, bytes, predicted_remaining) = {
            let sh = &self.shards[from];
            let st = &sh.states[handle];
            (
                sh.geometry.blocks_for_tokens(st.tokens_needed_next()),
                context_kv_bytes(&sh.geometry, st),
                sh.predictor
                    .as_ref()
                    .and_then(|p| p.predicted_remaining_tokens(&st.spec, st.tokens_generated)),
            )
        };

        // Landing instance by the destination shard's own Algorithm 2
        // ranking (adaptive: must fit right now).
        let dest_stats = self.shards[dest].collect_stats(now);
        let policy = self.shards[from].policy;
        let Some(to_local) = policy.cross_shard_instance(needed, &dest_stats) else {
            self.shards[from].migration_ctl.outcomes.cross_shard_aborted += 1;
            self.shards[from].emit_trace(
                now,
                Some(from_global),
                Some(id),
                TraceEventKind::MigrationAborted {
                    tier: EscapeTier::CrossShard,
                },
            );
            self.escape_fallback(from, candidate, now, false);
            return None;
        };

        // The cost/benefit test at the interconnect's (higher) price. A
        // veto here only rules out the expensive tier: the deferred
        // intra-shard move (which passed the cheaper intra-priced test at
        // the transition) still executes.
        let cost = self.shards[from]
            .migration_ctl
            .predictive()
            .filter(|_| self.shards[from].predictor.is_some())
            .map(|p| MigrationCost {
                transfer_time: self.topology.cross_transfer_time(bytes),
                predicted_remaining_service: predicted_remaining
                    .map(|tokens| self.config.target_tpot.mul_f64(tokens)),
                min_benefit_ratio: p.min_benefit_ratio,
            });
        if cost.is_some_and(|c| c.vetoes()) {
            self.shards[from]
                .migration_ctl
                .outcomes
                .cross_shard_vetoed_by_cost += 1;
            self.shards[from].emit_trace(
                now,
                Some(from_global),
                Some(id),
                TraceEventKind::MigrationVetoed {
                    tier: EscapeTier::CrossShard,
                },
            );
            self.escape_fallback(from, candidate, now, true);
            return None;
        }

        // Adaptive reservation on the destination (race-free Fig. 7 form,
        // cross-shard edition), recorded in the destination shard's ledger
        // so landing consumes it from the shard that holds the blocks.
        // NonAdaptive launches blindly and may land in the destination's
        // CPU pool.
        if self.shards[dest].instances[to_local as usize]
            .inst
            .gpu
            .try_alloc(needed)
        {
            self.shards[dest].migration_ctl.reserve(id, needed);
            // The reservation shrank the destination's free-block count.
            self.shards[dest].mark_stats_dirty(to_local);
        } else if policy.adaptive_migration() {
            self.shards[from].migration_ctl.outcomes.cross_shard_aborted += 1;
            self.shards[from].emit_trace(
                now,
                Some(from_global),
                Some(id),
                TraceEventKind::MigrationAborted {
                    tier: EscapeTier::CrossShard,
                },
            );
            self.escape_fallback(from, candidate, now, false);
            return None;
        }

        let (_, finish) = self.topology.cross_migrate(now, from, dest, bytes);
        let to_global = self.shards[dest].global_instance(to_local);
        self.shards[from].emit_trace(
            now,
            Some(from_global),
            Some(id),
            TraceEventKind::MigrationLaunched {
                tier: EscapeTier::CrossShard,
                to_shard: self.shards[dest].id,
                to_instance: to_global,
                bytes,
            },
        );
        {
            let sh = &mut self.shards[from];
            let st = &mut sh.states[handle];
            st.kv_location = KvLocation::Migrating;
            st.resident_since = None;
            let from_local = st.instance;
            let from_global = sh.offset + from_local;
            let held = st.held_gpu_blocks;
            st.migration = Some(MigrationRecord {
                from_instance: from_global,
                to_instance: to_global,
                started: now,
                finished: finish,
                bytes,
                stall: None,
                predicted_remaining_tokens: predicted_remaining,
                actual_remaining_tokens: st.spec.output_tokens() - st.tokens_generated,
            });
            sh.instances[from_local as usize].dying_blocks += held;
            sh.instances[from_local as usize].sched_dirty = true;
            sh.migration_ctl.outcomes.launched += 1;
            sh.migration_ctl.outcomes.bytes_moved += bytes;
            sh.migration_ctl.outcomes.cross_shard_launched += 1;
            sh.migration_ctl.outcomes.cross_shard_bytes_moved += bytes;
            // Barrier: landing mutates the *destination* shard, so the
            // windowed parallel executor must synchronize on it.
            sh.queue.schedule_barrier(
                finish,
                Event::CrossShardDone {
                    req: handle,
                    to_shard: dest as u32,
                    to_instance: to_local,
                },
            );
        }
        None
    }

    /// A cross-shard transfer cleared the interconnect: free the source
    /// side, hand the request state to the destination shard, land the KV.
    fn on_cross_shard_done(
        &mut self,
        from: usize,
        req: ReqHandle,
        to_shard: usize,
        to_local: u32,
        now: SimTime,
    ) {
        let (mut st, from_local) = {
            let sh = &mut self.shards[from];
            let mut st = sh.states.remove(req);
            assert_eq!(st.kv_location, KvLocation::Migrating);
            let from_local = st.instance;
            sh.instances[from_local as usize]
                .inst
                .gpu
                .free(st.held_gpu_blocks);
            sh.instances[from_local as usize]
                .inst
                .members
                .remove(st.spec.id);
            sh.instances[from_local as usize].dying_blocks -= st.held_gpu_blocks;
            sh.instances[from_local as usize].sched_dirty = true;
            sh.mark_stats_dirty(from_local);
            st.held_gpu_blocks = 0;
            (st, from_local)
        };

        let sh = &mut self.shards[to_shard];
        let to_global = sh.global_instance(to_local);
        let id = st.spec.id;
        st.instance = to_local;
        st.instances_visited.push(to_global);
        let landed = sh.states.insert(st);
        sh.instances[to_local as usize]
            .inst
            .members
            .insert(id, landed);
        sh.cross_shard_in += 1;
        // The landing tail — reservation consume / allocate / CPU-pool
        // fallback — is the same mechanism as an intra-shard migration,
        // applied on the destination shard (whose ledger holds the
        // reservation made at launch).
        sh.land_migration(landed, to_local, now);
        // A destination that fail-stopped while the transfer was in flight
        // strands the request — after the landing's normal accounting, so
        // the pool books stay auditable through the outage.
        if sh.health[to_local as usize] == crate::fleet::HealthState::Down {
            sh.strand_request(landed, now);
        }
        // The source just lost a member; a draining source may now be empty.
        self.shards[from].check_drain_complete(from_local, now);
        self.shards[from].try_schedule(from_local, now);
        self.shards[to_shard].try_schedule(to_local, now);
    }

    /// Pushes one [`SeriesRow`] per shard plus one region-scope aggregate
    /// onto the telemetry buffer — the state of the world at `at`, sampled
    /// between events (the engine state is piecewise-constant, so a sample
    /// strictly before the next event reflects everything up to `at`).
    /// `wan_busy_s` is the region's WAN port horizon; `None` outside a
    /// federation.
    pub(super) fn sample_series(&self, at: SimTime, wan_busy_s: Option<f64>) {
        let mut agg = SeriesRow {
            t: at,
            scope: SeriesScope::Region,
            region: self.shards[0].region(),
            shard: None,
            queue_depth: 0,
            active: 0,
            reasoning: 0,
            answering: 0,
            kv_used_bytes: 0,
            kv_capacity_bytes: 0,
            admission_headroom_bytes: None,
            predictor_mean_abs_error: None,
            wan_busy_s,
            slo_burn: None,
        };
        let mut err_sum = 0.0;
        let mut err_n = 0u64;
        let mut slo_violations = 0u64;
        let mut slo_total = 0u64;
        let mut slo_budget = None;
        for sh in &self.shards {
            let row = sh.series_row(at);
            agg.queue_depth += row.queue_depth;
            agg.active += row.active;
            agg.reasoning += row.reasoning;
            agg.answering += row.answering;
            agg.kv_used_bytes += row.kv_used_bytes;
            agg.kv_capacity_bytes += row.kv_capacity_bytes;
            if let Some(h) = row.admission_headroom_bytes {
                agg.admission_headroom_bytes = Some(agg.admission_headroom_bytes.unwrap_or(0) + h);
            }
            let (abs_err, n) = sh.prediction_abs_error();
            err_sum += abs_err;
            err_n += n;
            // Region burn aggregates the raw window counts — not the
            // per-shard rates — so one busy shard cannot be diluted by
            // averaging against idle siblings' undefined gauges.
            if let Some(tracker) = &sh.slo_tracker {
                let (v, t) = tracker.window_counts(at);
                slo_violations += v;
                slo_total += t;
                slo_budget = Some(tracker.spec().budget);
            }
            self.telemetry.push_series(row);
        }
        if err_n > 0 {
            agg.predictor_mean_abs_error = Some(err_sum / err_n as f64);
        }
        if let Some(budget) = slo_budget {
            if slo_total > 0 {
                agg.slo_burn = Some(pascal_telemetry::alert::burn_rate(
                    slo_violations,
                    slo_total,
                    budget,
                ));
            }
        }
        self.telemetry.push_series(agg);
    }
}

/// Panics unless every single request's worst-case KV footprint fits one
/// instance — such a request could never be scheduled anywhere.
pub(super) fn validate_trace_fits(trace: &Trace, config: &SimConfig) {
    let geometry = config.geometry();
    if let Some(cap) = config.kv_capacity_bytes() {
        let cap_blocks = geometry.blocks_in(cap);
        for r in trace.requests() {
            let worst = geometry.blocks_for_tokens(r.final_context_tokens() + 1);
            assert!(
                worst <= cap_blocks,
                "{} needs {worst} KV blocks but an instance only has {cap_blocks}; \
                 raise capacity or shrink the request",
                r.id
            );
        }
    }
}

/// Panics if any shard drained with live requests or leaked reservations.
pub(super) fn assert_drained(shards: &[Shard<'_>]) {
    for sh in shards {
        assert!(
            sh.states.is_empty(),
            "shard {} drained with {} unfinished requests (deadlock)",
            sh.id,
            sh.states.len()
        );
    }
    for sh in shards {
        assert!(
            sh.migration_ctl.reservations.is_empty(),
            "shard {} drained with leaked migration reservations",
            sh.id
        );
    }
}

/// Collapses the drained shards into a [`SimOutput`] — the shared tail of
/// the single-region and federated engines. `region_stats` starts empty;
/// the caller fills it.
pub(super) fn assemble_output(shards: Vec<Shard<'_>>) -> SimOutput {
    // Only PASCAL consumes predictions (demotion, placement); under
    // the baselines a predictor is purely observational — calibration
    // samples are still logged, but the run's behavior is identical to
    // the plain policy, and the name must say so. Active controllers
    // tag the name so paired comparisons stay legible.
    let lead = &shards[0];
    let mut policy_name = match (&lead.predictor, &lead.policy) {
        (Some(p), SchedPolicy::Pascal(_)) => {
            if lead.migration_ctl.predictive().is_some() {
                format!(
                    "{}(Predictive-{}, CostAwareMigration)",
                    lead.policy.name(),
                    p.name()
                )
            } else {
                format!("{}(Predictive-{})", lead.policy.name(), p.name())
            }
        }
        _ => lead.policy.name().to_owned(),
    };
    if lead.admission_ctl.enabled() {
        policy_name.push_str("+PredictiveAdmission");
    }

    let shard_stats: Vec<_> = shards.iter().map(Shard::shard_stats).collect();
    let mut migration_outcomes = pascal_metrics::MigrationOutcomes::default();
    let mut admission = pascal_metrics::AdmissionCounters::default();
    let mut fleet = pascal_metrics::FleetOutcomes::default();
    for row in &shard_stats {
        row.migrations.assert_escape_conservation();
        migration_outcomes.absorb(&row.migrations);
        admission.absorb(&row.admission);
        fleet.absorb(&row.fleet);
    }
    migration_outcomes.assert_escape_conservation();

    let mut records = Vec::new();
    let mut peak_gpu_kv_bytes = Vec::new();
    let mut predictions = Vec::new();
    let mut rejections = Vec::new();
    let mut alerts = Vec::new();
    for sh in shards {
        records.extend(sh.records);
        peak_gpu_kv_bytes.extend(
            sh.instances
                .iter()
                .map(|i| i.inst.gpu.peak_used_blocks() * sh.geometry.block_bytes()),
        );
        predictions.extend(sh.prediction_samples);
        rejections.extend(sh.admission_ctl.rejections);
        alerts.extend(sh.alerts);
    }
    records.sort_by_key(|r| r.spec.id);
    predictions.sort_by_key(|p| p.id);
    rejections.sort_by_key(|r| (r.at, r.id));
    alerts.sort_by_key(|a| (a.at, a.shard, a.rule));
    let makespan = records
        .iter()
        .map(|r| r.completion)
        .max()
        .unwrap_or(SimTime::ZERO);

    SimOutput {
        records,
        peak_gpu_kv_bytes,
        makespan,
        policy_name,
        predictions,
        migration_outcomes,
        admission,
        rejections,
        fleet,
        shard_stats,
        alerts,
        region_stats: Vec::new(),
        telemetry: None,
    }
}

/// The single-region engine: the cluster driven straight off the trace.
pub(crate) struct Engine<'a> {
    trace: &'a Trace,
    config: &'a SimConfig,
    cluster: Cluster<'a>,
    /// Trace indices in arrival order — `(arrival, index)`-sorted, the
    /// same total order the pre-sharding event queue popped arrivals in.
    arrival_order: Vec<usize>,
    next_arrival: usize,
    telemetry: TelemetryHandle,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(trace: &'a Trace, config: &'a SimConfig) -> Self {
        config.validate();
        validate_trace_fits(trace, config);

        let per_shard = config.num_instances / config.shards;
        let mut arrival_order: Vec<usize> = (0..trace.requests().len()).collect();
        arrival_order.sort_by_key(|&i| (trace.requests()[i].arrival, i));
        let telemetry = TelemetryHandle::new(&config.telemetry);

        Engine {
            trace,
            config,
            cluster: Cluster::new(
                trace,
                config,
                0,
                config.shards,
                per_shard,
                false,
                telemetry.clone(),
            ),
            arrival_order,
            next_arrival: 0,
            telemetry,
        }
    }

    /// Read-only view of the shards: the engine unit tests audit pool
    /// accounting through it, and the bench-support fixture sweeps it.
    pub(super) fn shards(&self) -> &[Shard<'a>] {
        &self.cluster.shards
    }

    /// Fires the globally earliest pending event (arrivals win ties, then
    /// lowest shard id). Returns `false` once the cluster has drained.
    pub(super) fn step(&mut self) -> bool {
        let arrival = self
            .arrival_order
            .get(self.next_arrival)
            .map(|&idx| self.trace.requests()[idx].arrival);
        let shard_ev = self.cluster.peek_earliest();
        match (arrival, shard_ev) {
            (None, None) => false,
            (Some(at), shard) if shard.is_none_or(|(t, _)| at <= t) => {
                let t0 = self.telemetry.profile_timer();
                let idx = self.arrival_order[self.next_arrival];
                self.next_arrival += 1;
                self.cluster.route_arrival(idx, at);
                self.telemetry.profile_record(ProfiledEvent::Arrival, t0);
                true
            }
            (_, Some((_, s))) => {
                let t0 = self.telemetry.profile_timer();
                let (signal, kind) = self.cluster.fire_shard(s);
                self.telemetry.profile_record(kind, t0);
                debug_assert!(
                    matches!(signal, ClusterSignal::Handled),
                    "single-region clusters resolve every event internally"
                );
                true
            }
            (Some(_), None) => unreachable!("arrival case handled by the guard above"),
        }
    }

    pub(crate) fn run(mut self) -> SimOutput {
        let interval = self.telemetry.series_interval();
        let threads =
            super::parallel::resolve_run_threads(self.config.run_threads, self.config.shards);
        // Tracing observes the global interleaving of shard-local events,
        // so traced runs always take the exact sequential path.
        if threads > 1 && !self.telemetry.trace_enabled() {
            let lookahead = self
                .config
                .transition_barriers()
                .then(|| super::parallel::min_iteration_duration(&self.cluster.shards[0].perf));
            let telemetry = self.telemetry.clone();
            super::parallel::run_windowed(&mut self, threads, interval, lookahead, &telemetry);
        } else {
            super::driver::drive(&mut self, interval);
        }
        assert_drained(&self.cluster.shards);
        let config = self.config;
        let mut out = assemble_output(self.cluster.shards);
        out.telemetry = self.telemetry.finish();
        // The whole cluster is one region at the federation's level of
        // description: all arrivals originate and are served here.
        let routed: u64 = out.shard_stats.iter().map(|s| s.routed_arrivals).sum();
        out.region_stats = vec![RegionStats {
            region: 0,
            shards: config.shards,
            instances: config.num_instances,
            origin_arrivals: routed,
            routed_arrivals: routed,
            nonlocal_arrivals: 0,
            spill_out: 0,
            spill_in: 0,
            completed: out.records.len() as u64,
            cross_region_out: 0,
            cross_region_in: 0,
            admission: out.admission,
        }];
        out
    }
}

impl super::driver::EventDriver for Engine<'_> {
    /// Timestamp of the globally next pending event (arrival or shard
    /// event), if any.
    fn next_event_time(&mut self) -> Option<SimTime> {
        let arrival = self
            .arrival_order
            .get(self.next_arrival)
            .map(|&idx| self.trace.requests()[idx].arrival);
        let shard = self.cluster.peek_earliest().map(|(t, _)| t);
        match (arrival, shard) {
            (Some(a), Some(s)) => Some(a.min(s)),
            (a, s) => a.or(s),
        }
    }

    fn step(&mut self) -> bool {
        Engine::step(self)
    }

    fn sample(&mut self, at: SimTime) {
        self.cluster.sample_series(at, None);
    }
}

impl super::parallel::WindowedEngine for Engine<'_> {
    fn next_arrival_time(&self) -> Option<SimTime> {
        self.arrival_order
            .get(self.next_arrival)
            .map(|&idx| self.trace.requests()[idx].arrival)
    }

    fn earliest_barrier(&mut self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for sh in &mut self.cluster.shards {
            if let Some(t) = sh.queue.peek_barrier_time() {
                if best.is_none_or(|b| t < b) {
                    best = Some(t);
                }
            }
        }
        best
    }

    fn push_shard_ptrs(&mut self, out: &mut Vec<super::parallel::ShardPtr>) {
        out.clear();
        out.extend(
            self.cluster
                .shards
                .iter_mut()
                .map(super::parallel::ShardPtr::new),
        );
    }
}
