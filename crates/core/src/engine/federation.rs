//! The federated engine: N regions under one global clock, a region
//! router at the federation boundary, and the cross-region (WAN) paths.
//!
//! A *region* wraps one cluster-of-shards — the full PR 4 engine with its
//! own two-tier topology, instance pool sizing and shard router — and the
//! federation folds every region's event clock under one global clock:
//! the earliest event anywhere fires next, arrivals win timestamp ties
//! (exactly as in the cluster engine), and region ties break by lowest
//! region id. With `regions == 1` the event sequence — hence every output
//! byte — matches the cluster engine, which is why `run_simulation` only
//! takes this path above one region.
//!
//! Three mechanisms live at the federation boundary:
//!
//! * **region routing** ([`FederationPolicy`]): every arrival carries an
//!   `origin_region` tag; `static` pins it home, `nearest` fails over to
//!   the closest healthy region, `predictive` is Algorithm 1 lifted over
//!   per-region aggregate [`PoolSnapshot`]s;
//! * **region-aware admission**: the routed shard's admission decision is
//!   *probed* first; a would-be rejection tries the remote regions in
//!   [`spill_order`] (healthy, least predicted footprint, nearest) and
//!   only rejects when every region's budget is exhausted — shedding load
//!   to another continent beats shedding it to the floor;
//! * **cross-region escape migration**: an escape candidate no sibling
//!   shard could take escalates here — ranked by
//!   [`cross_region_escape_target`], landed by the destination region's
//!   own shard and Algorithm 2 instance ranking, priced by the
//!   cost/benefit veto at the WAN's (highest) transfer price, and carried
//!   over the contended [`WanTopology`] ports. Every failure path still
//!   executes the candidate's deferred intra-shard fallback.

use pascal_cluster::{KvLocation, PoolSnapshot, ReqHandle};
use pascal_federation::{spill_order, FederationPolicy, FederationSpec, WanTopology};
use pascal_metrics::{AdmissionCounters, MigrationRecord, RegionStats};
use pascal_sched::{best_escape_shard, cross_region_escape_target, MigrationCost};
use pascal_sim::SimTime;
use pascal_telemetry::{EscapeTier, ProfiledEvent, TelemetryHandle, TraceEventKind};
use pascal_workload::{RequestId, Trace};

use crate::config::SimConfig;

use super::admission::AdmissionProbe;
use super::cluster::{
    assemble_output, assert_drained, validate_trace_fits, Cluster, ClusterSignal,
};
use super::{context_kv_bytes, EscapeCandidate, Event, Shard, SimOutput};

/// One region at runtime: its cluster plus the federation-boundary tallies.
struct RegionRt<'a> {
    cluster: Cluster<'a>,
    origin_arrivals: u64,
    nonlocal_arrivals: u64,
    spill_in: u64,
    spill_out: u64,
}

/// The federation of regions and its global clock.
pub(crate) struct FederationEngine<'a> {
    trace: &'a Trace,
    config: &'a SimConfig,
    regions: Vec<RegionRt<'a>>,
    wan: WanTopology,
    /// Trace indices in arrival order — the same total order the cluster
    /// engine delivers arrivals in.
    arrival_order: Vec<usize>,
    next_arrival: usize,
    telemetry: TelemetryHandle,
}

impl<'a> FederationEngine<'a> {
    pub(crate) fn new(trace: &'a Trace, config: &'a SimConfig) -> Self {
        config.validate();
        validate_trace_fits(trace, config);

        // The even partition itself (and its divisibility rule) lives in
        // pascal-federation; the engine just instantiates it.
        let spec = FederationSpec::uniform(
            config.regions,
            config.shards,
            config.num_instances,
            config.wan,
        );
        let telemetry = TelemetryHandle::new(&config.telemetry);
        let regions = spec
            .regions
            .iter()
            .map(|region| RegionRt {
                cluster: Cluster::new(
                    trace,
                    config,
                    region.id * config.shards as u32,
                    region.shards,
                    region.instances_per_shard,
                    true,
                    telemetry.clone(),
                ),
                origin_arrivals: 0,
                nonlocal_arrivals: 0,
                spill_in: 0,
                spill_out: 0,
            })
            .collect();

        let mut arrival_order: Vec<usize> = (0..trace.requests().len()).collect();
        arrival_order.sort_by_key(|&i| (trace.requests()[i].arrival, i));

        FederationEngine {
            trace,
            config,
            regions,
            wan: WanTopology::new(spec.regions.len(), spec.wan),
            arrival_order,
            next_arrival: 0,
            telemetry,
        }
    }

    /// Fires the globally earliest pending event (arrivals win ties, then
    /// lowest region id, then lowest shard id within the region). Returns
    /// `false` once the federation has drained.
    fn step(&mut self) -> bool {
        let arrival = self
            .arrival_order
            .get(self.next_arrival)
            .map(|&idx| self.trace.requests()[idx].arrival);
        let mut region_ev: Option<(SimTime, usize, usize)> = None;
        for (r, region) in self.regions.iter_mut().enumerate() {
            if let Some((t, s)) = region.cluster.peek_earliest() {
                if region_ev.is_none_or(|(best, _, _)| t < best) {
                    region_ev = Some((t, r, s));
                }
            }
        }
        match (arrival, region_ev) {
            (None, None) => false,
            (Some(at), region) if region.is_none_or(|(t, _, _)| at <= t) => {
                let t0 = self.telemetry.profile_timer();
                let idx = self.arrival_order[self.next_arrival];
                self.next_arrival += 1;
                self.deliver_arrival(idx, at);
                self.telemetry.profile_record(ProfiledEvent::Arrival, t0);
                true
            }
            (_, Some((_, r, s))) => {
                let t0 = self.telemetry.profile_timer();
                let (signal, kind) = self.regions[r].cluster.fire_shard(s);
                match signal {
                    ClusterSignal::Handled => {}
                    ClusterSignal::Escalate {
                        shard,
                        instance,
                        candidates,
                        now,
                    } => {
                        for candidate in candidates {
                            self.consider_cross_region_escape(r, shard, candidate, now);
                        }
                        self.regions[r].cluster.shards[shard].try_schedule(instance, now);
                    }
                    ClusterSignal::CrossRegionArrived {
                        shard,
                        req,
                        to_region,
                        to_shard,
                        to_instance,
                        now,
                    } => {
                        self.on_cross_region_done(
                            r,
                            shard,
                            req,
                            to_region as usize,
                            to_shard as usize,
                            to_instance,
                            now,
                        );
                    }
                }
                self.telemetry.profile_record(kind, t0);
                true
            }
            (Some(_), None) => unreachable!("arrival case handled by the guard above"),
        }
    }

    /// One aggregate pool snapshot per region — the view the federation
    /// router, the spill ranking and the cross-region escape all consume.
    fn region_pools(&self, now: SimTime) -> Vec<PoolSnapshot> {
        self.regions
            .iter()
            .map(|region| PoolSnapshot::merge(&region.cluster.shard_pools(now)))
            .collect()
    }

    /// Routes one trace arrival: federation policy picks the region, the
    /// region's shard router picks the shard, the shard's admission
    /// controller is probed — and a would-be rejection tries the remote
    /// regions in spill order before it is committed.
    fn deliver_arrival(&mut self, idx: usize, now: SimTime) {
        let spec = self.trace.requests()[idx].clone();
        // Traces built without region tags (or with more regions than the
        // deployment has) clamp into range rather than crash — origin is
        // advisory metadata, not an engine invariant.
        let origin = (spec.origin_region as usize).min(self.regions.len() - 1);
        self.regions[origin].origin_arrivals += 1;

        // The routing sweep is reused by the spill ranking below: nothing
        // mutates between the two reads at the same timestamp, and the
        // spill path fires exactly on overloaded arrivals — the worst
        // moment to pay a second full-federation monitor sweep.
        let mut pools: Option<Vec<PoolSnapshot>> = None;
        let home = if self.config.fed_router.needs_pool_state() {
            let swept = self.region_pools(now);
            let home = self.config.fed_router.route(origin, &swept);
            pools = Some(swept);
            home
        } else {
            debug_assert_eq!(self.config.fed_router, FederationPolicy::Static);
            origin
        };

        let (shard, stats) = self.regions[home].cluster.pick_arrival_shard(now);
        match self.regions[home].cluster.shards[shard].admission_probe(&spec, &stats) {
            AdmissionProbe::Admit => {
                self.deliver_to(home, shard, spec, &stats, origin, now);
            }
            probe => {
                // Region-aware admission: spill to a remote region whose
                // budget still has room before turning the user away.
                let pools = pools.unwrap_or_else(|| self.region_pools(now));
                for candidate in spill_order(&pools, home) {
                    let (s, stats) = self.regions[candidate].cluster.pick_arrival_shard(now);
                    let remote =
                        self.regions[candidate].cluster.shards[s].admission_probe(&spec, &stats);
                    if remote == AdmissionProbe::Admit {
                        self.regions[home].spill_out += 1;
                        self.regions[candidate].spill_in += 1;
                        // The spill is bookkept at the home shard the
                        // arrival was routed to; the landing shard counts
                        // the admission itself.
                        self.regions[home].cluster.shards[shard]
                            .admission_ctl
                            .counters
                            .spilled += 1;
                        self.regions[home].cluster.shards[shard].emit_trace(
                            now,
                            None,
                            Some(spec.id),
                            TraceEventKind::AdmissionSpilled {
                                to_region: candidate as u32,
                            },
                        );
                        self.deliver_to(candidate, s, spec, &stats, origin, now);
                        return;
                    }
                }
                // Every region's budget is exhausted: the home shard owns
                // the rejection, with its own projection in the record.
                let sh = &mut self.regions[home].cluster.shards[shard];
                sh.routed_arrivals += 1;
                sh.admission_commit_reject(&spec, probe, now);
            }
        }
    }

    /// Final delivery of an admitted arrival to `(region, shard)`.
    fn deliver_to(
        &mut self,
        region: usize,
        shard: usize,
        spec: pascal_workload::RequestSpec,
        stats: &[pascal_cluster::InstanceStats],
        origin: usize,
        now: SimTime,
    ) {
        if region != origin {
            self.regions[region].nonlocal_arrivals += 1;
        }
        let sh = &mut self.regions[region].cluster.shards[shard];
        sh.routed_arrivals += 1;
        sh.admission_commit_admit();
        sh.place_arrival(spec, stats, now);
    }

    /// One cross-region migration decision for an escape candidate no
    /// sibling shard could take: remote-region ranking, landing shard and
    /// instance by the destination's own rankings, WAN-priced cost/benefit
    /// veto, reservation, launch. Every failure path falls back to the
    /// candidate's deferred intra-shard move (when it has one).
    fn consider_cross_region_escape(
        &mut self,
        from_r: usize,
        from_s: usize,
        candidate: EscapeCandidate,
        now: SimTime,
    ) {
        let id = candidate.req;
        let handle = candidate.handle;
        // Same defensive check as the cross-shard path: a stale candidate
        // is a no-op, never a crash. The slot may have been reused, so the
        // handle only counts when it still holds this request's id.
        {
            let Some(st) = self.regions[from_r].cluster.shards[from_s]
                .states
                .get(handle)
            else {
                return;
            };
            if st.spec.id != id || st.running || st.kv_location != KvLocation::Gpu {
                return;
            }
        }

        let pools = self.region_pools(now);
        let Some(dest_r) = cross_region_escape_target(&pools, from_r) else {
            return self.regions[from_r]
                .cluster
                .escape_fallback(from_s, candidate, now, false);
        };
        self.source_outcomes(from_r, from_s).cross_region_considered += 1;
        self.emit_escape_trace(
            from_r,
            from_s,
            handle,
            id,
            now,
            TraceEventKind::MigrationConsidered {
                tier: EscapeTier::CrossRegion,
            },
        );

        let (needed, bytes, predicted_remaining) = {
            let sh = &self.regions[from_r].cluster.shards[from_s];
            let st = &sh.states[handle];
            (
                sh.geometry.blocks_for_tokens(st.tokens_needed_next()),
                context_kv_bytes(&sh.geometry, st),
                sh.predictor
                    .as_ref()
                    .and_then(|p| p.predicted_remaining_tokens(&st.spec, st.tokens_generated)),
            )
        };

        // Landing shard by the destination region's own cross-shard
        // ranking, landing instance by that shard's Algorithm 2 ranking
        // (adaptive: must fit right now).
        let dest_pools = self.regions[dest_r].cluster.shard_pools(now);
        let Some(dest_s) = best_escape_shard(&dest_pools) else {
            self.source_outcomes(from_r, from_s).cross_region_aborted += 1;
            self.emit_escape_trace(
                from_r,
                from_s,
                handle,
                id,
                now,
                TraceEventKind::MigrationAborted {
                    tier: EscapeTier::CrossRegion,
                },
            );
            return self.regions[from_r]
                .cluster
                .escape_fallback(from_s, candidate, now, false);
        };
        let dest_stats = self.regions[dest_r].cluster.shards[dest_s].collect_stats(now);
        let policy = self.regions[from_r].cluster.shards[from_s].policy;
        let Some(to_local) = policy.cross_shard_instance(needed, &dest_stats) else {
            self.source_outcomes(from_r, from_s).cross_region_aborted += 1;
            self.emit_escape_trace(
                from_r,
                from_s,
                handle,
                id,
                now,
                TraceEventKind::MigrationAborted {
                    tier: EscapeTier::CrossRegion,
                },
            );
            return self.regions[from_r]
                .cluster
                .escape_fallback(from_s, candidate, now, false);
        };

        // The cost/benefit test at the WAN's (highest) price: this is the
        // tier where the veto almost always wins, and that is the point —
        // only requests with serious predicted remaining service justify
        // dragging their KV across a continent.
        let cost = {
            let sh = &self.regions[from_r].cluster.shards[from_s];
            sh.migration_ctl
                .predictive()
                .filter(|_| sh.predictor.is_some())
                .map(|p| MigrationCost {
                    transfer_time: self.wan.cross_transfer_time(bytes),
                    predicted_remaining_service: predicted_remaining
                        .map(|tokens| self.config.target_tpot.mul_f64(tokens)),
                    min_benefit_ratio: p.min_benefit_ratio,
                })
        };
        if cost.is_some_and(|c| c.vetoes()) {
            self.source_outcomes(from_r, from_s)
                .cross_region_vetoed_by_cost += 1;
            self.emit_escape_trace(
                from_r,
                from_s,
                handle,
                id,
                now,
                TraceEventKind::MigrationVetoed {
                    tier: EscapeTier::CrossRegion,
                },
            );
            return self.regions[from_r]
                .cluster
                .escape_fallback(from_s, candidate, now, true);
        }

        // Adaptive reservation on the destination shard's ledger, so
        // landing consumes it from the shard that holds the blocks.
        if self.regions[dest_r].cluster.shards[dest_s].instances[to_local as usize]
            .inst
            .gpu
            .try_alloc(needed)
        {
            self.regions[dest_r].cluster.shards[dest_s]
                .migration_ctl
                .reserve(id, needed);
            // The reservation shrank the destination's free-block count.
            self.regions[dest_r].cluster.shards[dest_s].mark_stats_dirty(to_local);
        } else if policy.adaptive_migration() {
            self.source_outcomes(from_r, from_s).cross_region_aborted += 1;
            self.emit_escape_trace(
                from_r,
                from_s,
                handle,
                id,
                now,
                TraceEventKind::MigrationAborted {
                    tier: EscapeTier::CrossRegion,
                },
            );
            return self.regions[from_r]
                .cluster
                .escape_fallback(from_s, candidate, now, false);
        }

        let (_, finish) = self.wan.cross_migrate(now, from_r, dest_r, bytes);
        let to_global = self.regions[dest_r].cluster.shards[dest_s].global_instance(to_local);
        self.emit_escape_trace(
            from_r,
            from_s,
            handle,
            id,
            now,
            TraceEventKind::MigrationLaunched {
                tier: EscapeTier::CrossRegion,
                to_shard: self.regions[dest_r].cluster.shards[dest_s].id,
                to_instance: to_global,
                bytes,
            },
        );
        let sh = &mut self.regions[from_r].cluster.shards[from_s];
        let st = &mut sh.states[handle];
        st.kv_location = KvLocation::Migrating;
        st.resident_since = None;
        let from_local = st.instance;
        let from_global = sh.offset + from_local;
        let held = st.held_gpu_blocks;
        st.migration = Some(MigrationRecord {
            from_instance: from_global,
            to_instance: to_global,
            started: now,
            finished: finish,
            bytes,
            stall: None,
            predicted_remaining_tokens: predicted_remaining,
            actual_remaining_tokens: st.spec.output_tokens() - st.tokens_generated,
        });
        sh.instances[from_local as usize].dying_blocks += held;
        sh.instances[from_local as usize].sched_dirty = true;
        sh.migration_ctl.outcomes.launched += 1;
        sh.migration_ctl.outcomes.bytes_moved += bytes;
        sh.migration_ctl.outcomes.cross_region_launched += 1;
        sh.migration_ctl.outcomes.cross_region_bytes_moved += bytes;
        // Barrier: landing mutates another region's shard, so the windowed
        // parallel executor must synchronize on it.
        sh.queue.schedule_barrier(
            finish,
            Event::CrossRegionDone {
                req: handle,
                to_region: dest_r as u32,
                to_shard: dest_s as u32,
                to_instance: to_local,
            },
        );
    }

    /// Emits a trace event attributed to the escaping request's current
    /// instance on the source shard (shorthand for the deep path).
    #[allow(clippy::too_many_arguments)]
    fn emit_escape_trace(
        &self,
        from_r: usize,
        from_s: usize,
        handle: ReqHandle,
        id: RequestId,
        now: SimTime,
        kind: TraceEventKind,
    ) {
        let sh = &self.regions[from_r].cluster.shards[from_s];
        let instance = sh.states.get(handle).map(|st| sh.offset + st.instance);
        sh.emit_trace(now, instance, Some(id), kind);
    }

    /// The escaping shard's outcome tally (shorthand for the deep path).
    fn source_outcomes(
        &mut self,
        from_r: usize,
        from_s: usize,
    ) -> &mut pascal_metrics::MigrationOutcomes {
        &mut self.regions[from_r].cluster.shards[from_s]
            .migration_ctl
            .outcomes
    }

    /// A cross-region transfer cleared the WAN: free the source side, hand
    /// the request state to the destination region's shard, land the KV.
    #[allow(clippy::too_many_arguments)]
    fn on_cross_region_done(
        &mut self,
        from_r: usize,
        from_s: usize,
        req: ReqHandle,
        to_r: usize,
        to_s: usize,
        to_local: u32,
        now: SimTime,
    ) {
        let (mut st, from_local) = {
            let sh = &mut self.regions[from_r].cluster.shards[from_s];
            let mut st = sh.states.remove(req);
            assert_eq!(st.kv_location, KvLocation::Migrating);
            let from_local = st.instance;
            sh.instances[from_local as usize]
                .inst
                .gpu
                .free(st.held_gpu_blocks);
            sh.instances[from_local as usize]
                .inst
                .members
                .remove(st.spec.id);
            sh.instances[from_local as usize].dying_blocks -= st.held_gpu_blocks;
            sh.instances[from_local as usize].sched_dirty = true;
            sh.mark_stats_dirty(from_local);
            st.held_gpu_blocks = 0;
            (st, from_local)
        };

        {
            let sh = &mut self.regions[to_r].cluster.shards[to_s];
            let to_global = sh.global_instance(to_local);
            let id = st.spec.id;
            st.instance = to_local;
            st.instances_visited.push(to_global);
            let landed = sh.states.insert(st);
            sh.instances[to_local as usize]
                .inst
                .members
                .insert(id, landed);
            sh.cross_region_in += 1;
            // Same landing tail as every other migration, on the shard
            // whose ledger holds the reservation made at launch.
            sh.land_migration(landed, to_local, now);
            // A destination instance that fail-stopped while the WAN
            // transfer was in flight strands the request after the
            // landing's normal accounting.
            if sh.health[to_local as usize] == crate::fleet::HealthState::Down {
                sh.strand_request(landed, now);
            }
            sh.try_schedule(to_local, now);
        }
        // The source just lost a member; a draining source may now be empty.
        self.regions[from_r].cluster.shards[from_s].check_drain_complete(from_local, now);
        self.regions[from_r].cluster.shards[from_s].try_schedule(from_local, now);
    }

    pub(crate) fn run(mut self) -> SimOutput {
        let interval = self.telemetry.series_interval();
        let total_shards = self.config.regions * self.config.shards;
        let threads = super::parallel::resolve_run_threads(self.config.run_threads, total_shards);
        // Tracing observes the global interleaving of shard-local events,
        // so traced runs always take the exact sequential path.
        if threads > 1 && !self.telemetry.trace_enabled() {
            let lookahead = self.config.transition_barriers().then(|| {
                super::parallel::min_iteration_duration(&self.regions[0].cluster.shards[0].perf)
            });
            let telemetry = self.telemetry.clone();
            super::parallel::run_windowed(&mut self, threads, interval, lookahead, &telemetry);
        } else {
            super::driver::drive(&mut self, interval);
        }

        let per_region_instances = self.config.num_instances / self.config.regions;
        let region_stats: Vec<RegionStats> = self
            .regions
            .iter()
            .enumerate()
            .map(|(r, region)| {
                let shards = &region.cluster.shards;
                let mut admission = AdmissionCounters::default();
                for sh in shards {
                    admission.absorb(&sh.admission_ctl.counters);
                }
                RegionStats {
                    region: r as u32,
                    shards: self.config.shards,
                    instances: per_region_instances,
                    origin_arrivals: region.origin_arrivals,
                    routed_arrivals: shards.iter().map(|s| s.routed_arrivals).sum(),
                    nonlocal_arrivals: region.nonlocal_arrivals,
                    spill_out: region.spill_out,
                    spill_in: region.spill_in,
                    completed: shards.iter().map(|s| s.records.len() as u64).sum(),
                    cross_region_out: shards
                        .iter()
                        .map(|s| s.migration_ctl.outcomes.cross_region_launched)
                        .sum(),
                    cross_region_in: shards.iter().map(|s| s.cross_region_in).sum(),
                    admission,
                }
            })
            .collect();

        let shards: Vec<Shard<'a>> = self
            .regions
            .into_iter()
            .flat_map(|region| region.cluster.shards)
            .collect();
        assert_drained(&shards);
        let mut out = assemble_output(shards);
        out.region_stats = region_stats;
        out.telemetry = self.telemetry.finish();
        out
    }
}

impl super::driver::EventDriver for FederationEngine<'_> {
    /// Timestamp of the globally next pending event (arrival or any
    /// region's shard event), if any.
    fn next_event_time(&mut self) -> Option<SimTime> {
        let arrival = self
            .arrival_order
            .get(self.next_arrival)
            .map(|&idx| self.trace.requests()[idx].arrival);
        let mut earliest: Option<SimTime> = None;
        for region in self.regions.iter_mut() {
            if let Some((t, _)) = region.cluster.peek_earliest() {
                if earliest.is_none_or(|best| t < best) {
                    earliest = Some(t);
                }
            }
        }
        match (arrival, earliest) {
            (Some(a), Some(e)) => Some(a.min(e)),
            (a, e) => a.or(e),
        }
    }

    fn step(&mut self) -> bool {
        FederationEngine::step(self)
    }

    fn sample(&mut self, at: SimTime) {
        for (r, region) in self.regions.iter().enumerate() {
            let wan_backlog = self
                .wan
                .port_busy_until(r)
                .saturating_since(at)
                .as_secs_f64();
            region.cluster.sample_series(at, Some(wan_backlog));
        }
    }
}

impl super::parallel::WindowedEngine for FederationEngine<'_> {
    fn next_arrival_time(&self) -> Option<SimTime> {
        self.arrival_order
            .get(self.next_arrival)
            .map(|&idx| self.trace.requests()[idx].arrival)
    }

    fn earliest_barrier(&mut self) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for region in self.regions.iter_mut() {
            for sh in &mut region.cluster.shards {
                if let Some(t) = sh.queue.peek_barrier_time() {
                    if best.is_none_or(|b| t < b) {
                        best = Some(t);
                    }
                }
            }
        }
        best
    }

    fn push_shard_ptrs(&mut self, out: &mut Vec<super::parallel::ShardPtr>) {
        out.clear();
        out.extend(
            self.regions
                .iter_mut()
                .flat_map(|region| region.cluster.shards.iter_mut())
                .map(super::parallel::ShardPtr::new),
        );
    }
}
