//! The per-request lifecycle state machine.
//!
//! Arrival → (admission) → placement → prefill → reasoning → answering →
//! completion, plus the preemption transitions (offload to CPU, reload to
//! GPU) and the per-iteration residency planning that drives them. Phase
//! boundaries hand off to the [migration controller](super::migration);
//! arrivals consult the [admission controller](super::admission) before any
//! state is created.
//!
//! Everything here is the engine's hot path: request state is reached
//! through slab handles (one array index per touch), and the scheduling
//! pass assembles its candidate/desired/batch sets in the shard's
//! [`ScheduleScratch`](super::ScheduleScratch) buffers, so a steady-state
//! iteration allocates nothing.

use pascal_cluster::{KvLocation, ReqHandle};
use pascal_model::DecodeBatch;
use pascal_sim::SimTime;
use pascal_telemetry::TraceEventKind;
use pascal_workload::Phase;

use super::{context_kv_bytes, Event, IterationKind, Shard};

impl Shard<'_> {
    // ----- arrival + token/phase machinery --------------------------------

    /// Handles a routed arrival. `stats` is this shard's monitor snapshot
    /// when the caller (the cluster router) already swept it at `now`;
    /// `None` collects it here. Either way one sweep serves both the
    /// admission projection and placement (nothing mutates between them).
    pub(super) fn on_arrival(
        &mut self,
        idx: usize,
        now: SimTime,
        stats: Option<Vec<pascal_cluster::InstanceStats>>,
    ) {
        let spec = self.trace.requests()[idx].clone();
        self.routed_arrivals += 1;
        match stats {
            Some(stats) => {
                if self.admission_check(&spec, &stats, now) {
                    self.place_arrival(spec, &stats, now);
                }
            }
            None => {
                // Single-shard fast path: sweep into the scratch buffer
                // instead of allocating a snapshot per arrival.
                let mut stats = std::mem::take(&mut self.scratch.stats);
                self.collect_stats_into(now, &mut stats);
                if self.admission_check(&spec, &stats, now) {
                    self.place_arrival(spec, &stats, now);
                }
                self.scratch.stats = stats;
            }
        }
    }

    /// Places an *already admitted* arrival: prediction-sample logging,
    /// Algorithm 1 placement, state creation and the first scheduling
    /// attempt. The federated path calls this directly after its
    /// probe-then-spill admission resolved which shard receives the
    /// request.
    pub(super) fn place_arrival(
        &mut self,
        spec: pascal_workload::RequestSpec,
        stats: &[pascal_cluster::InstanceStats],
        now: SimTime,
    ) {
        // Log the estimate the scheduler is about to act on (pre-observe:
        // this request's own lengths are still hidden from the predictor).
        if let Some(pred) = &self.predictor {
            let est = pred.estimate(&spec);
            self.prediction_samples
                .push(pascal_metrics::PredictionSample {
                    id: spec.id,
                    predicted_reasoning_tokens: est.reasoning_tokens,
                    actual_reasoning_tokens: spec.reasoning_tokens,
                    predicted_total_tokens: est.total_tokens(),
                    actual_total_tokens: spec.output_tokens(),
                });
        }
        // A fully failed shard (every instance down, so the monitor sweep
        // is empty) has nowhere to put the request: it strands on arrival.
        // Only reachable under a fleet schedule — a static fleet always has
        // instances to report.
        if stats.is_empty() {
            self.fleet.stranded += 1;
            self.emit_trace(now, None, Some(spec.id), TraceEventKind::RequestStranded);
            return;
        }
        let target = self.policy.place_new_request(stats);
        let mut state = pascal_cluster::RequestState::new(spec, target, self.config.target_tpot);
        // Speculative demotion (§IV-C made predictive): an incoming
        // reasoning request whose *predicted* total reasoning length
        // exceeds the threshold starts life in the low-priority queue
        // instead of waiting for its generated tokens to cross it.
        if let (Some(pred), Some(threshold)) =
            (&self.predictor, self.policy.demotion_threshold_tokens())
        {
            if state.phase == Phase::Reasoning && pred.predicts_oversized(&state.spec, threshold) {
                state.demoted = true;
            }
        }
        let id = state.spec.id;
        let speculatively_demoted = state.demoted;
        // Records carry global instance ids; a one-shard cluster has
        // offset 0 and this is the identity.
        state.instances_visited[0] = self.global_instance(target);
        let handle = self.states.insert(state);
        self.instances[target as usize]
            .inst
            .members
            .insert(id, handle);
        self.instances[target as usize].sched_dirty = true;
        self.mark_stats_dirty(target);
        let at_instance = Some(self.global_instance(target));
        self.emit_trace(now, at_instance, Some(id), TraceEventKind::Arrival);
        if speculatively_demoted {
            self.emit_trace(
                now,
                at_instance,
                Some(id),
                TraceEventKind::SpeculativeDemotion,
            );
        }
        self.try_schedule(target, now);
    }

    /// Ends the in-flight iteration on `instance`: closes the batch and
    /// emits one token per member (firing phase transitions and
    /// completions). The caller — the cluster dispatcher — follows up with
    /// [`Shard::try_schedule`] after it has drained any cross-shard
    /// escapes the transitions queued, so an escaping request cannot be
    /// relaunched underneath its own migration decision.
    pub(super) fn finish_iteration(&mut self, instance: u32, now: SimTime) {
        let kind = self.instances[instance as usize].current_kind;
        self.instances[instance as usize].inst.compute_busy = false;

        // A fail-stop mid-iteration loses the whole batch: no token is
        // emitted, every member strands. (A *drain* never takes this path —
        // draining instances finish their residents normally.)
        if self.health[instance as usize] == crate::fleet::HealthState::Down {
            let mut batch = std::mem::take(&mut self.instances[instance as usize].current_batch);
            for handle in batch.drain(..) {
                self.strand_request(handle, now);
            }
            self.instances[instance as usize].current_batch = batch;
            return;
        }

        // Drain by index so the batch vector keeps its capacity for the
        // next launch; nothing inside the loop touches the batch.
        let batch_len = self.instances[instance as usize].current_batch.len();
        for i in 0..batch_len {
            let handle = self.instances[instance as usize].current_batch[i];
            self.emit_token(handle, kind, now);
        }
        self.instances[instance as usize].current_batch.clear();
    }

    pub(super) fn on_offload_done(&mut self, handle: ReqHandle, now: SimTime) {
        let (id, instance, blocks, cpu_blocks) = {
            let st = &mut self.states[handle];
            assert_eq!(st.kv_location, KvLocation::OffloadingToCpu);
            let blocks = st.held_gpu_blocks;
            st.held_gpu_blocks = 0;
            // The CPU copy holds the actual context, without growth headroom.
            let cpu_blocks = self.geometry.blocks_for_tokens(st.context_tokens());
            st.held_cpu_blocks = cpu_blocks;
            st.kv_location = KvLocation::Cpu;
            (st.spec.id, st.instance, blocks, cpu_blocks)
        };
        let rt = &mut self.instances[instance as usize];
        rt.dying_blocks -= blocks;
        rt.sched_dirty = true; // back among the candidates
        let inst = &mut rt.inst;
        inst.gpu.free(blocks);
        inst.cpu.alloc(cpu_blocks);
        self.mark_stats_dirty(instance);
        self.emit_trace(
            now,
            Some(self.global_instance(instance)),
            Some(id),
            TraceEventKind::OffloadDone,
        );
        // The instance fail-stopped while the offload was in flight: the
        // CPU copy just landed on a dead host. Strand after the normal
        // accounting so pool conservation holds through the outage.
        if self.health[instance as usize] == crate::fleet::HealthState::Down {
            self.strand_request(handle, now);
            return;
        }
        self.try_schedule(instance, now);
    }

    pub(super) fn on_reload_done(&mut self, handle: ReqHandle, now: SimTime) {
        let (id, instance, cpu_blocks) = {
            let st = &mut self.states[handle];
            assert_eq!(st.kv_location, KvLocation::ReloadingToGpu);
            st.kv_location = KvLocation::Gpu;
            st.resident_since = Some(now);
            let cpu_blocks = st.held_cpu_blocks;
            st.held_cpu_blocks = 0;
            (st.spec.id, st.instance, cpu_blocks)
        };
        self.instances[instance as usize].inst.cpu.free(cpu_blocks);
        self.mark_stats_dirty(instance);
        self.emit_trace(
            now,
            Some(self.global_instance(instance)),
            Some(id),
            TraceEventKind::ReloadDone,
        );
        // Same as OffloadDone: a reload landing on a fail-stopped instance
        // strands after its normal accounting.
        if self.health[instance as usize] == crate::fleet::HealthState::Down {
            self.strand_request(handle, now);
            return;
        }
        self.try_schedule(instance, now);
    }

    /// Closes one batch member's iteration and emits its token: running
    /// bookkeeping, quantum accounting, demotions, phase transitions and
    /// completion — one slab access for all of it.
    pub(super) fn emit_token(&mut self, handle: ReqHandle, kind: IterationKind, now: SimTime) {
        let mut crossed_threshold = None;
        let mut demoted_now = false;
        let mut key_changed = false;
        let (id, transitioned, done, first_answer, at_instance) = {
            let st = &mut self.states[handle];
            st.end_running(now);
            if kind == IterationKind::Prefill {
                st.prefilled = true;
            }
            st.tokens_generated += 1;
            st.token_times.push(now);

            // Round-robin quantum accounting (§II-C).
            st.tokens_in_quantum += 1;
            let quantum = self.policy.quantum();
            if st.tokens_in_quantum >= quantum {
                st.quanta_used += 1;
                st.tokens_in_quantum = 0;
                key_changed = true; // quanta feed the priority key
            }

            // PASCAL's conditional demotion (§IV-C).
            if let Some(threshold) = self.policy.demotion_threshold_tokens() {
                // `checked_add`: a u32::MAX threshold means "never demote"
                // (the ablation configs) and must never signal a crossing.
                if st.phase == Phase::Reasoning
                    && Some(st.tokens_generated) == threshold.checked_add(1)
                {
                    // The request just proved itself oversized mid-flight —
                    // the early label the predictor cannot get from the
                    // (survivorship-biased) completion stream.
                    crossed_threshold = Some(threshold);
                }
                if st.phase == Phase::Reasoning && !st.demoted && st.tokens_generated > threshold {
                    st.demoted = true;
                    demoted_now = true;
                }
            }

            if st.phase == Phase::Answering {
                st.pacer.on_token(now);
            }

            let transitioned = st.phase == Phase::Reasoning
                && st.tokens_generated == st.spec.reasoning_tokens
                && st.spec.answering_tokens > 0;
            // The token at index `reasoning_tokens` (this is token number
            // reasoning_tokens + 1) is the first the user reads — the
            // instant the paper's TTFT clock stops.
            let first_answer =
                st.spec.answering_tokens > 0 && st.tokens_generated == st.spec.reasoning_tokens + 1;
            (
                st.spec.id,
                transitioned,
                st.is_done(),
                first_answer,
                st.instance,
            )
        };
        // Every token moves the monitor row: the pacer clock, the
        // predicted remaining growth, and possibly the quantum/demotion
        // counts the row reports.
        self.mark_stats_dirty(at_instance);
        if key_changed || demoted_now {
            self.instances[at_instance as usize].sched_dirty = true;
        }
        if demoted_now {
            let global = self.global_instance(at_instance);
            self.emit_trace(now, Some(global), Some(id), TraceEventKind::Demoted);
        }

        if let (Some(threshold), Some(pred)) = (crossed_threshold, &mut self.predictor) {
            let spec = self.states[handle].spec.clone();
            pred.observe_threshold_crossing(&spec, threshold);
            self.predictor_epoch += 1;
        }

        if first_answer {
            let global = self.global_instance(at_instance);
            self.emit_trace(
                now,
                Some(global),
                Some(id),
                TraceEventKind::FirstAnswerToken,
            );
        }
        if done {
            self.complete(handle, now);
            return;
        }
        if transitioned {
            let global = self.global_instance(at_instance);
            self.emit_trace(now, Some(global), Some(id), TraceEventKind::PhaseTransition);
            self.on_phase_transition(handle, now);
        }
    }

    pub(super) fn complete(&mut self, handle: ReqHandle, now: SimTime) {
        let st = self.states.remove(handle);
        let id = st.spec.id;
        let instance = st.instance as usize;
        let gpu_blocks = st.held_gpu_blocks;
        let cpu_blocks = st.held_cpu_blocks;
        self.instances[instance].inst.members.remove(id);
        self.instances[instance].sched_dirty = true;
        if gpu_blocks > 0 {
            self.instances[instance].inst.gpu.free(gpu_blocks);
        }
        if cpu_blocks > 0 {
            self.instances[instance].inst.cpu.free(cpu_blocks);
        }
        self.mark_stats_dirty(instance as u32);
        // Completion is the online learning signal: the spec carries the
        // actual lengths, now revealed. Completions arrive in deterministic
        // event order, so predictor state stays replayable.
        if let Some(pred) = &mut self.predictor {
            pred.observe(&st.spec);
            self.predictor_epoch += 1;
        }
        self.emit_trace(
            now,
            Some(self.global_instance(st.instance)),
            Some(id),
            TraceEventKind::Completed {
                tokens: u64::from(st.tokens_generated),
            },
        );
        let record = st.into_record(now);
        self.observe_slo(&record, now);
        self.records.push(record);
        // A draining instance completes its drain when its last member
        // finishes; a healthy instance pays one comparison here.
        self.check_drain_complete(instance as u32, now);
    }

    /// Feeds one completion to the SLO burn-rate tracker (when alerting is
    /// configured) and emits/records any rule edges it causes. The same
    /// population as `slo_violation_rate`: requests without answering
    /// tokens have no QoE and are excluded. Observation only — nothing the
    /// scheduler reads is touched.
    fn observe_slo(&mut self, record: &pascal_metrics::RequestRecord, now: SimTime) {
        let Some(tracker) = &mut self.slo_tracker else {
            return;
        };
        let Some(qoe) =
            pascal_metrics::answering_qoe(record, &pascal_metrics::QoeParams::paper_eval())
        else {
            return;
        };
        let edges = tracker.observe(now, qoe < pascal_metrics::SLO_QOE_THRESHOLD);
        for edge in edges {
            if edge.fired {
                self.alerts.push(pascal_telemetry::SloAlertRecord {
                    at: now,
                    region: self.region(),
                    shard: self.id,
                    rule: edge.rule,
                    burn_milli: edge.burn_milli,
                });
                self.emit_trace(
                    now,
                    None,
                    None,
                    TraceEventKind::SloAlertFired {
                        rule: edge.rule,
                        burn_milli: edge.burn_milli,
                    },
                );
            } else {
                self.emit_trace(
                    now,
                    None,
                    None,
                    TraceEventKind::SloAlertResolved { rule: edge.rule },
                );
            }
        }
    }

    // ----- the scheduling core --------------------------------------------

    /// Plans residency and, if possible, launches the next iteration.
    pub(super) fn try_schedule(&mut self, instance: u32, now: SimTime) {
        if self.instances[instance as usize].inst.compute_busy {
            return;
        }
        // A down instance never launches. Draining instances still
        // schedule: their residents must finish (or migrate) for the drain
        // to complete — only *new* placement avoids them.
        if self.health[instance as usize] == crate::fleet::HealthState::Down {
            return;
        }
        // The pass below may admit, evict, reload or grow residents — all
        // of which move the instance's pool gauges. One blanket
        // invalidation beats auditing the five allocation sites it spans.
        self.mark_stats_dirty(instance);
        let mut scratch = std::mem::take(&mut self.scratch);
        let policy = self.policy;

        // 1. Candidates sorted by policy priority, cached per instance and
        //    rebuilt only when membership, a key input, or an excluding
        //    KV-location changed since the last pass (`sched_dirty`).
        //    Members iterate in ascending id order and the key's final
        //    component is the id, so the order is total — sort stability
        //    is irrelevant, and a clean cache replays the exact order a
        //    rebuild would produce.
        std::mem::swap(
            &mut self.instances[instance as usize].cands,
            &mut scratch.cands,
        );
        if self.instances[instance as usize].sched_dirty {
            scratch.cands.clear();
            for (_, handle) in self.instances[instance as usize].inst.members.iter() {
                let st = &self.states[handle];
                if !matches!(
                    st.kv_location,
                    KvLocation::Migrating | KvLocation::OffloadingToCpu
                ) {
                    scratch.cands.push((policy.priority_key(st), handle));
                }
            }
            scratch.cands.sort_unstable_by_key(|&(key, _)| key);
            self.instances[instance as usize].sched_dirty = false;
        }

        // 2. Desired prefix under the block budget. Blocks held by dying
        //    allocations (offloads, outbound migrations) are unavailable;
        //    their total is maintained incrementally at every transfer
        //    launch and landing.
        let dying = self.instances[instance as usize].dying_blocks;
        let budget = self.instances[instance as usize]
            .inst
            .gpu
            .capacity_blocks()
            .map(|c| c.saturating_sub(dying));

        scratch.desired.clear();
        let mut acc: u64 = 0;
        for &(_, handle) in &scratch.cands {
            if scratch.desired.len() >= self.config.max_batch as usize {
                break;
            }
            let st = &self.states[handle];
            let need = self
                .geometry
                .blocks_for_tokens(st.tokens_needed_next())
                .max(st.held_gpu_blocks);
            match budget {
                None => {
                    acc += need;
                    scratch.desired.push((handle, need));
                }
                Some(b) if acc + need <= b => {
                    acc += need;
                    scratch.desired.push((handle, need));
                }
                Some(_) => break,
            }
        }

        // 3. Preempt GPU residents that fell out of the desired set. When
        //    every candidate is desired there can be no evictee (members
        //    outside the candidate set are never GPU-resident), so the
        //    common uncontended iteration skips the whole sweep.
        scratch.evictees.clear();
        if scratch.desired.len() != scratch.cands.len() {
            if scratch.desired_mark.len() < self.states.slot_capacity() {
                scratch
                    .desired_mark
                    .resize(self.states.slot_capacity(), false);
            }
            for &(handle, _) in &scratch.desired {
                scratch.desired_mark[handle.index()] = true;
            }
            for (_, handle) in self.instances[instance as usize].inst.members.iter() {
                let st = &self.states[handle];
                if st.kv_location == KvLocation::Gpu && !scratch.desired_mark[handle.index()] {
                    scratch.evictees.push(handle);
                }
            }
            for &(handle, _) in &scratch.desired {
                scratch.desired_mark[handle.index()] = false;
            }
            for &handle in &scratch.evictees {
                self.start_offload(handle, now);
            }
        }

        // 4. Admit the desired set: grow residents, start reloads,
        //    materialize warm requests, and collect prefill candidates.
        //    The desired entries carry their block needs from step 2, and
        //    batch aggregates (decode context, prefill prompt lengths)
        //    accumulate here so the launch step re-reads nothing.
        scratch.prefill.clear();
        scratch.decode.clear();
        scratch.prompts.clear();
        let mut prefill_tokens: u64 = 0;
        let mut decode_context: u64 = 0;

        for &(handle, target_blocks) in &scratch.desired {
            let (location, needs_prefill, warm, held, prompt, context) = {
                let st = &self.states[handle];
                (
                    st.kv_location,
                    st.needs_prefill(),
                    st.spec.warm_start,
                    st.held_gpu_blocks,
                    st.spec.prompt_tokens,
                    st.context_tokens(),
                )
            };
            match location {
                KvLocation::Gpu => {
                    let runnable = if held >= target_blocks {
                        true
                    } else {
                        let delta = target_blocks - held;
                        if self.instances[instance as usize].inst.gpu.try_alloc(delta) {
                            self.states[handle].held_gpu_blocks = target_blocks;
                            true
                        } else {
                            false // waits for in-flight offloads to free memory
                        }
                    };
                    if runnable {
                        decode_context += context;
                        scratch.decode.push(handle);
                    }
                }
                KvLocation::Cpu
                    // Reload: GPU blocks reserved up front, PCIe serialized.
                    if self.instances[instance as usize].inst.gpu.try_alloc(target_blocks) => {
                        let bytes = {
                            let st = &mut self.states[handle];
                            st.held_gpu_blocks = target_blocks;
                            st.kv_location = KvLocation::ReloadingToGpu;
                            context_kv_bytes(&self.geometry, st)
                        };
                        let (_, finish) = self.instances[instance as usize]
                            .inst
                            .pcie
                            .enqueue(now, bytes);
                        self.queue
                            .schedule(finish, Event::ReloadDone { req: handle });
                    }
                KvLocation::None if warm
                    // Fig. 5 setup: the KV already exists logically; it
                    // materializes without prefill compute once admitted.
                    && self.instances[instance as usize].inst.gpu.try_alloc(target_blocks) => {
                        let st = &mut self.states[handle];
                        st.held_gpu_blocks = target_blocks;
                        st.kv_location = KvLocation::Gpu;
                        st.resident_since = Some(now);
                        st.prefilled = true;
                        decode_context += context;
                        scratch.decode.push(handle);
                    }
                KvLocation::None if needs_prefill => {
                    // A lone oversized prompt may exceed the budget; always
                    // admit at least one prefill so it cannot starve.
                    let within_budget = scratch.prefill.is_empty()
                        || prefill_tokens + u64::from(prompt)
                            <= u64::from(self.config.prefill_token_budget);
                    if within_budget
                        && self.instances[instance as usize].inst.gpu.try_alloc(target_blocks)
                    {
                        self.states[handle].held_gpu_blocks = target_blocks;
                        prefill_tokens += u64::from(prompt);
                        scratch.prompts.push(prompt);
                        scratch.prefill.push(handle);
                    }
                }
                _ => {} // reloading / none-but-impossible: wait
            }
        }

        // 5. Launch: prefill takes priority (vLLM 0.6.1 semantics), else a
        //    decode step over every runnable resident. The launched batch
        //    is swapped into the instance (its drained predecessor's
        //    capacity swaps back into the scratch) — no allocation.
        if !scratch.prefill.is_empty() {
            let duration = self.perf.prefill_time_batch(&scratch.prompts);
            for &handle in &scratch.prefill {
                let st = &mut self.states[handle];
                st.begin_running(now);
                // KV becomes resident as the prefill pass runs.
                st.kv_location = KvLocation::Gpu;
                st.resident_since = Some(now);
            }
            let global = self.global_instance(instance);
            for &handle in &scratch.prefill {
                let st = &self.states[handle];
                let id = st.spec.id;
                // Queue wait as observed at this launch: arrival to first
                // prefill compute. Saturating because a spilled arrival may
                // land on its serving region after its origin timestamp.
                let queued_ns = now.saturating_since(st.spec.arrival).as_nanos();
                self.emit_trace(
                    now,
                    Some(global),
                    Some(id),
                    TraceEventKind::PrefillStart { queued_ns },
                );
            }
            let barrier = self.transition_barriers && self.batch_may_transition(&scratch.prefill);
            let rt = &mut self.instances[instance as usize];
            std::mem::swap(&mut rt.current_batch, &mut scratch.prefill);
            rt.current_kind = IterationKind::Prefill;
            rt.inst.compute_busy = true;
            self.queue
                .schedule_flagged(now + duration, Event::IterationDone { instance }, barrier);
        } else if !scratch.decode.is_empty() {
            let duration = self.perf.decode_step_time(DecodeBatch {
                num_seqs: scratch.decode.len() as u32,
                total_context_tokens: decode_context,
            });
            for &handle in &scratch.decode {
                self.stamp_migration_resume(handle, now);
                self.states[handle].begin_running(now);
            }
            let barrier = self.transition_barriers && self.batch_may_transition(&scratch.decode);
            let rt = &mut self.instances[instance as usize];
            std::mem::swap(&mut rt.current_batch, &mut scratch.decode);
            rt.current_kind = IterationKind::Decode;
            rt.inst.compute_busy = true;
            self.queue
                .schedule_flagged(now + duration, Event::IterationDone { instance }, barrier);
        }
        std::mem::swap(
            &mut self.instances[instance as usize].cands,
            &mut scratch.cands,
        );
        self.scratch = scratch;
    }

    /// Whether any member of the batch being launched could fire a phase
    /// transition when this iteration completes — each member gains exactly
    /// one token, so the question is decidable at launch time (tokens only
    /// advance at the member's own iteration completions, and the spec
    /// lengths are immutable). Only consulted when
    /// [`Shard::transition_barriers`] is set: a transition may then reach
    /// beyond the shard, so the completion must be a barrier event the
    /// windowed parallel executor synchronizes on.
    fn batch_may_transition(&self, batch: &[ReqHandle]) -> bool {
        batch.iter().any(|&handle| {
            let st = &self.states[handle];
            st.phase == Phase::Reasoning
                && st.tokens_generated + 1 == st.spec.reasoning_tokens
                && st.spec.answering_tokens > 0
        })
    }

    pub(super) fn start_offload(&mut self, handle: ReqHandle, now: SimTime) {
        let (id, instance, held, bytes) = {
            let st = &mut self.states[handle];
            debug_assert_eq!(st.kv_location, KvLocation::Gpu);
            st.kv_location = KvLocation::OffloadingToCpu;
            st.resident_since = None;
            st.num_preemptions += 1;
            (
                st.spec.id,
                st.instance,
                st.held_gpu_blocks,
                context_kv_bytes(&self.geometry, st),
            )
        };
        self.instances[instance as usize].dying_blocks += held;
        self.instances[instance as usize].sched_dirty = true;
        self.emit_trace(
            now,
            Some(self.global_instance(instance)),
            Some(id),
            TraceEventKind::Preempted,
        );
        let (_, finish) = self.instances[instance as usize]
            .inst
            .pcie
            .enqueue(now, bytes);
        self.queue
            .schedule(finish, Event::OffloadDone { req: handle });
    }
}
