//! The per-request lifecycle state machine.
//!
//! Arrival → (admission) → placement → prefill → reasoning → answering →
//! completion, plus the preemption transitions (offload to CPU, reload to
//! GPU) and the per-iteration residency planning that drives them. Phase
//! boundaries hand off to the [migration controller](super::migration);
//! arrivals consult the [admission controller](super::admission) before any
//! state is created.

use pascal_cluster::KvLocation;
use pascal_model::DecodeBatch;
use pascal_sim::SimTime;
use pascal_telemetry::TraceEventKind;
use pascal_workload::{Phase, RequestId};

use super::{context_kv_bytes, Event, IterationKind, Shard};

impl Shard<'_> {
    // ----- arrival + token/phase machinery --------------------------------

    /// Handles a routed arrival. `stats` is this shard's monitor snapshot
    /// when the caller (the cluster router) already swept it at `now`;
    /// `None` collects it here. Either way one sweep serves both the
    /// admission projection and placement (nothing mutates between them).
    pub(super) fn on_arrival(
        &mut self,
        idx: usize,
        now: SimTime,
        stats: Option<Vec<pascal_cluster::InstanceStats>>,
    ) {
        let spec = self.trace.requests()[idx].clone();
        self.routed_arrivals += 1;
        let stats = stats.unwrap_or_else(|| self.collect_stats(now));
        if !self.admission_check(&spec, &stats, now) {
            return;
        }
        self.place_arrival(spec, &stats, now);
    }

    /// Places an *already admitted* arrival: prediction-sample logging,
    /// Algorithm 1 placement, state creation and the first scheduling
    /// attempt. The federated path calls this directly after its
    /// probe-then-spill admission resolved which shard receives the
    /// request.
    pub(super) fn place_arrival(
        &mut self,
        spec: pascal_workload::RequestSpec,
        stats: &[pascal_cluster::InstanceStats],
        now: SimTime,
    ) {
        // Log the estimate the scheduler is about to act on (pre-observe:
        // this request's own lengths are still hidden from the predictor).
        if let Some(pred) = &self.predictor {
            let est = pred.estimate(&spec);
            self.prediction_samples
                .push(pascal_metrics::PredictionSample {
                    id: spec.id,
                    predicted_reasoning_tokens: est.reasoning_tokens,
                    actual_reasoning_tokens: spec.reasoning_tokens,
                    predicted_total_tokens: est.total_tokens(),
                    actual_total_tokens: spec.output_tokens(),
                });
        }
        let target = self.policy.place_new_request(stats);
        let mut state = pascal_cluster::RequestState::new(spec, target, self.config.target_tpot);
        // Speculative demotion (§IV-C made predictive): an incoming
        // reasoning request whose *predicted* total reasoning length
        // exceeds the threshold starts life in the low-priority queue
        // instead of waiting for its generated tokens to cross it.
        if let (Some(pred), Some(threshold)) =
            (&self.predictor, self.policy.demotion_threshold_tokens())
        {
            if state.phase == Phase::Reasoning && pred.predicts_oversized(&state.spec, threshold) {
                state.demoted = true;
            }
        }
        let id = state.spec.id;
        let speculatively_demoted = state.demoted;
        // Records carry global instance ids; a one-shard cluster has
        // offset 0 and this is the identity.
        state.instances_visited[0] = self.global_instance(target);
        self.instances[target as usize].inst.members.insert(id);
        self.states.insert(id, state);
        let at_instance = Some(self.global_instance(target));
        self.emit_trace(now, at_instance, Some(id), TraceEventKind::Arrival);
        if speculatively_demoted {
            self.emit_trace(
                now,
                at_instance,
                Some(id),
                TraceEventKind::SpeculativeDemotion,
            );
        }
        self.try_schedule(target, now);
    }

    /// Ends the in-flight iteration on `instance`: closes the batch and
    /// emits one token per member (firing phase transitions and
    /// completions). The caller — the cluster dispatcher — follows up with
    /// [`Shard::try_schedule`] after it has drained any cross-shard
    /// escapes the transitions queued, so an escaping request cannot be
    /// relaunched underneath its own migration decision.
    pub(super) fn finish_iteration(&mut self, instance: u32, now: SimTime) {
        let batch = std::mem::take(&mut self.instances[instance as usize].current_batch);
        let kind = self.instances[instance as usize].current_kind;
        self.instances[instance as usize].inst.compute_busy = false;

        for id in batch {
            {
                let st = self.states.get_mut(&id).expect("batched request exists");
                st.end_running(now);
                if kind == IterationKind::Prefill {
                    st.prefilled = true;
                }
            }
            self.emit_token(id, now);
        }
    }

    pub(super) fn on_offload_done(&mut self, req: RequestId, now: SimTime) {
        let (instance, blocks) = {
            let st = self
                .states
                .get_mut(&req)
                .expect("offloading request exists");
            assert_eq!(st.kv_location, KvLocation::OffloadingToCpu);
            let blocks = st.held_gpu_blocks;
            st.held_gpu_blocks = 0;
            // The CPU copy holds the actual context, without growth headroom.
            let cpu_blocks = self.geometry.blocks_for_tokens(st.context_tokens());
            st.held_cpu_blocks = cpu_blocks;
            st.kv_location = KvLocation::Cpu;
            (st.instance, blocks)
        };
        let inst = &mut self.instances[instance as usize].inst;
        inst.gpu.free(blocks);
        let cpu_blocks = self.states[&req].held_cpu_blocks;
        inst.cpu.alloc(cpu_blocks);
        self.emit_trace(
            now,
            Some(self.global_instance(instance)),
            Some(req),
            TraceEventKind::OffloadDone,
        );
        self.try_schedule(instance, now);
    }

    pub(super) fn on_reload_done(&mut self, req: RequestId, now: SimTime) {
        let instance = {
            let st = self.states.get_mut(&req).expect("reloading request exists");
            assert_eq!(st.kv_location, KvLocation::ReloadingToGpu);
            st.kv_location = KvLocation::Gpu;
            st.resident_since = Some(now);
            st.instance
        };
        let cpu_blocks = {
            let st = self.states.get_mut(&req).expect("reloading request exists");
            let b = st.held_cpu_blocks;
            st.held_cpu_blocks = 0;
            b
        };
        self.instances[instance as usize].inst.cpu.free(cpu_blocks);
        self.emit_trace(
            now,
            Some(self.global_instance(instance)),
            Some(req),
            TraceEventKind::ReloadDone,
        );
        self.try_schedule(instance, now);
    }

    pub(super) fn emit_token(&mut self, id: RequestId, now: SimTime) {
        let mut crossed_threshold = None;
        let mut demoted_now = false;
        let (transitioned, done, at_instance) = {
            let st = self.states.get_mut(&id).expect("emitting request exists");
            st.tokens_generated += 1;
            st.token_times.push(now);

            // Round-robin quantum accounting (§II-C).
            st.tokens_in_quantum += 1;
            let quantum = self.policy.quantum();
            if st.tokens_in_quantum >= quantum {
                st.quanta_used += 1;
                st.tokens_in_quantum = 0;
            }

            // PASCAL's conditional demotion (§IV-C).
            if let Some(threshold) = self.policy.demotion_threshold_tokens() {
                // `checked_add`: a u32::MAX threshold means "never demote"
                // (the ablation configs) and must never signal a crossing.
                if st.phase == Phase::Reasoning
                    && Some(st.tokens_generated) == threshold.checked_add(1)
                {
                    // The request just proved itself oversized mid-flight —
                    // the early label the predictor cannot get from the
                    // (survivorship-biased) completion stream.
                    crossed_threshold = Some(threshold);
                }
                if st.phase == Phase::Reasoning && !st.demoted && st.tokens_generated > threshold {
                    st.demoted = true;
                    demoted_now = true;
                }
            }

            if st.phase == Phase::Answering {
                st.pacer.on_token(now);
            }

            let transitioned = st.phase == Phase::Reasoning
                && st.tokens_generated == st.spec.reasoning_tokens
                && st.spec.answering_tokens > 0;
            (transitioned, st.is_done(), st.instance)
        };
        if demoted_now {
            let global = self.global_instance(at_instance);
            self.emit_trace(now, Some(global), Some(id), TraceEventKind::Demoted);
        }

        if let (Some(threshold), Some(pred)) = (crossed_threshold, &mut self.predictor) {
            let spec = self.states[&id].spec.clone();
            pred.observe_threshold_crossing(&spec, threshold);
        }

        if done {
            self.complete(id, now);
            return;
        }
        if transitioned {
            let global = self.global_instance(at_instance);
            self.emit_trace(now, Some(global), Some(id), TraceEventKind::PhaseTransition);
            self.on_phase_transition(id, now);
        }
    }

    pub(super) fn complete(&mut self, id: RequestId, now: SimTime) {
        let st = self.states.remove(&id).expect("completing request exists");
        let instance = st.instance as usize;
        let gpu_blocks = st.held_gpu_blocks;
        let cpu_blocks = st.held_cpu_blocks;
        self.instances[instance].inst.members.remove(&id);
        if gpu_blocks > 0 {
            self.instances[instance].inst.gpu.free(gpu_blocks);
        }
        if cpu_blocks > 0 {
            self.instances[instance].inst.cpu.free(cpu_blocks);
        }
        // Completion is the online learning signal: the spec carries the
        // actual lengths, now revealed. Completions arrive in deterministic
        // event order, so predictor state stays replayable.
        if let Some(pred) = &mut self.predictor {
            pred.observe(&st.spec);
        }
        self.emit_trace(
            now,
            Some(self.global_instance(st.instance)),
            Some(id),
            TraceEventKind::Completed {
                tokens: u64::from(st.tokens_generated),
            },
        );
        self.records.push(st.into_record(now));
    }

    // ----- the scheduling core --------------------------------------------

    /// Plans residency and, if possible, launches the next iteration.
    pub(super) fn try_schedule(&mut self, instance: u32, now: SimTime) {
        if self.instances[instance as usize].inst.compute_busy {
            return;
        }

        // 1. Candidates sorted by policy priority.
        let mut cands: Vec<RequestId> = self.instances[instance as usize]
            .inst
            .members
            .iter()
            .copied()
            .filter(|id| {
                let st = &self.states[id];
                !matches!(
                    st.kv_location,
                    KvLocation::Migrating | KvLocation::OffloadingToCpu
                )
            })
            .collect();
        cands.sort_by_key(|id| self.policy.priority_key(&self.states[id]));

        // 2. Desired prefix under the block budget. Blocks held by dying
        //    allocations (offloads, outbound migrations) are unavailable.
        let dying: u64 = self.instances[instance as usize]
            .inst
            .members
            .iter()
            .filter(|id| {
                matches!(
                    self.states[*id].kv_location,
                    KvLocation::OffloadingToCpu | KvLocation::Migrating
                )
            })
            .map(|id| self.states[id].held_gpu_blocks)
            .sum();
        let budget = self.instances[instance as usize]
            .inst
            .gpu
            .capacity_blocks()
            .map(|c| c.saturating_sub(dying));

        let mut desired: Vec<RequestId> = Vec::new();
        let mut acc: u64 = 0;
        for &id in &cands {
            if desired.len() >= self.config.max_batch as usize {
                break;
            }
            let st = &self.states[&id];
            let need = self
                .geometry
                .blocks_for_tokens(st.tokens_needed_next())
                .max(st.held_gpu_blocks);
            match budget {
                None => {
                    acc += need;
                    desired.push(id);
                }
                Some(b) if acc + need <= b => {
                    acc += need;
                    desired.push(id);
                }
                Some(_) => break,
            }
        }
        let desired_set: std::collections::HashSet<RequestId> = desired.iter().copied().collect();

        // 3. Preempt GPU residents that fell out of the desired set.
        let evictees: Vec<RequestId> = self.instances[instance as usize]
            .inst
            .members
            .iter()
            .copied()
            .filter(|id| {
                let st = &self.states[id];
                st.kv_location == KvLocation::Gpu && !desired_set.contains(id)
            })
            .collect();
        for id in evictees {
            self.start_offload(id, now);
        }

        // 4. Admit the desired set: grow residents, start reloads,
        //    materialize warm requests, and collect prefill candidates.
        let mut prefill_batch: Vec<RequestId> = Vec::new();
        let mut prefill_tokens: u64 = 0;
        let mut decode_batch: Vec<RequestId> = Vec::new();

        for &id in &desired {
            let (location, needs_prefill, warm, target_blocks, held, prompt) = {
                let st = &self.states[&id];
                (
                    st.kv_location,
                    st.needs_prefill(),
                    st.spec.warm_start,
                    self.geometry.blocks_for_tokens(st.tokens_needed_next()),
                    st.held_gpu_blocks,
                    st.spec.prompt_tokens,
                )
            };
            match location {
                KvLocation::Gpu => {
                    let runnable = if held >= target_blocks {
                        true
                    } else {
                        let delta = target_blocks - held;
                        if self.instances[instance as usize].inst.gpu.try_alloc(delta) {
                            self.states.get_mut(&id).expect("desired exists").held_gpu_blocks =
                                target_blocks;
                            true
                        } else {
                            false // waits for in-flight offloads to free memory
                        }
                    };
                    if runnable {
                        decode_batch.push(id);
                    }
                }
                KvLocation::Cpu
                    // Reload: GPU blocks reserved up front, PCIe serialized.
                    if self.instances[instance as usize].inst.gpu.try_alloc(target_blocks) => {
                        let bytes = {
                            let st = self.states.get_mut(&id).expect("desired exists");
                            st.held_gpu_blocks = target_blocks;
                            st.kv_location = KvLocation::ReloadingToGpu;
                            context_kv_bytes(&self.geometry, st)
                        };
                        let (_, finish) = self.instances[instance as usize]
                            .inst
                            .pcie
                            .enqueue(now, bytes);
                        self.queue.schedule(finish, Event::ReloadDone { req: id });
                    }
                KvLocation::None if warm
                    // Fig. 5 setup: the KV already exists logically; it
                    // materializes without prefill compute once admitted.
                    && self.instances[instance as usize].inst.gpu.try_alloc(target_blocks) => {
                        let st = self.states.get_mut(&id).expect("desired exists");
                        st.held_gpu_blocks = target_blocks;
                        st.kv_location = KvLocation::Gpu;
                        st.resident_since = Some(now);
                        st.prefilled = true;
                        decode_batch.push(id);
                    }
                KvLocation::None if needs_prefill => {
                    // A lone oversized prompt may exceed the budget; always
                    // admit at least one prefill so it cannot starve.
                    let within_budget = prefill_batch.is_empty()
                        || prefill_tokens + u64::from(prompt)
                            <= u64::from(self.config.prefill_token_budget);
                    if within_budget
                        && self.instances[instance as usize].inst.gpu.try_alloc(target_blocks)
                    {
                        self.states.get_mut(&id).expect("desired exists").held_gpu_blocks =
                            target_blocks;
                        prefill_tokens += u64::from(prompt);
                        prefill_batch.push(id);
                    }
                }
                _ => {} // reloading / none-but-impossible: wait
            }
        }

        // 5. Launch: prefill takes priority (vLLM 0.6.1 semantics), else a
        //    decode step over every runnable resident.
        if !prefill_batch.is_empty() {
            let prompts: Vec<u32> = prefill_batch
                .iter()
                .map(|id| self.states[id].spec.prompt_tokens)
                .collect();
            let duration = self.perf.prefill_time_batch(&prompts);
            for id in &prefill_batch {
                let st = self.states.get_mut(id).expect("prefill request exists");
                st.begin_running(now);
                // KV becomes resident as the prefill pass runs.
                st.kv_location = KvLocation::Gpu;
                st.resident_since = Some(now);
            }
            let global = self.global_instance(instance);
            for id in &prefill_batch {
                self.emit_trace(now, Some(global), Some(*id), TraceEventKind::PrefillStart);
            }
            let rt = &mut self.instances[instance as usize];
            rt.current_batch = prefill_batch;
            rt.current_kind = IterationKind::Prefill;
            rt.inst.compute_busy = true;
            self.queue
                .schedule(now + duration, Event::IterationDone { instance });
        } else if !decode_batch.is_empty() {
            let total_context: u64 = decode_batch
                .iter()
                .map(|id| self.states[id].context_tokens())
                .sum();
            let duration = self.perf.decode_step_time(DecodeBatch {
                num_seqs: decode_batch.len() as u32,
                total_context_tokens: total_context,
            });
            for id in &decode_batch {
                self.stamp_migration_resume(*id, now);
                self.states
                    .get_mut(id)
                    .expect("decode request exists")
                    .begin_running(now);
            }
            let rt = &mut self.instances[instance as usize];
            rt.current_batch = decode_batch;
            rt.current_kind = IterationKind::Decode;
            rt.inst.compute_busy = true;
            self.queue
                .schedule(now + duration, Event::IterationDone { instance });
        }
    }

    pub(super) fn start_offload(&mut self, id: RequestId, now: SimTime) {
        let (instance, bytes) = {
            let st = self.states.get_mut(&id).expect("offload request exists");
            debug_assert_eq!(st.kv_location, KvLocation::Gpu);
            st.kv_location = KvLocation::OffloadingToCpu;
            st.resident_since = None;
            st.num_preemptions += 1;
            (st.instance, context_kv_bytes(&self.geometry, st))
        };
        self.emit_trace(
            now,
            Some(self.global_instance(instance)),
            Some(id),
            TraceEventKind::Preempted,
        );
        let (_, finish) = self.instances[instance as usize]
            .inst
            .pcie
            .enqueue(now, bytes);
        self.queue.schedule(finish, Event::OffloadDone { req: id });
    }
}
