//! The sharded multi-instance serving engine.
//!
//! An iteration-level discrete-event simulation of vLLM-style continuous
//! batching (§II-B), organized as a **cluster of shards**. A [`Shard`] is
//! one scheduling domain — an instance pool plus its own event queue,
//! controllers and predictor state — running the single mechanism all
//! three schedulers share:
//!
//! 1. every time an instance is idle, sort its requests by the policy's
//!    priority key and grant GPU KV residency to the longest prefix that
//!    fits (the *desired set*);
//! 2. residents outside the desired set are preempted (KV offloaded to CPU
//!    over PCIe); non-residents inside it are admitted — prefilled,
//!    reloaded, or (for warm requests) materialized;
//! 3. run one iteration: a prefill pass over waiting prompts if any are
//!    admitted, otherwise one decode step for every runnable resident;
//! 4. at iteration end each decoded request gains one token; quantum
//!    counters advance, phase transitions fire (triggering Algorithm 2
//!    migration for PASCAL), completions free memory.
//!
//! Instance-level placement (Algorithm 1 / smallest-footprint) happens at
//! arrival events; KV migrations ride the intra-shard fabric with
//! ingress/egress contention (§V-C).
//!
//! The cluster-level [`Engine`](cluster) drives N shards under one global
//! clock: each event carries its shard, the earliest event fires next, and
//! ties are broken by shard id — so a one-shard cluster replays the exact
//! event sequence of the pre-sharding engine, byte for byte. Above the
//! shards sit the cluster-boundary mechanisms:
//!
//! * the **router** (`pascal_sched::RouterPolicy`) pins every arrival to a
//!   shard from per-shard [`PoolSnapshot`](pascal_cluster::PoolSnapshot)s
//!   before the shard's Algorithm 1 picks an instance;
//! * the **cross-shard escape**: when a phase transition finds its home
//!   shard saturated (no SLO-healthy instance, or no instance that can
//!   hold the KV), Algorithm 2 is lifted to shard granularity and the KV
//!   may migrate over the two-tier
//!   [`Topology`](pascal_cluster::Topology)'s slower interconnect — which
//!   the predictive cost/benefit veto prices accordingly, falling back to
//!   the deferred intra-shard move when no sibling can take the request.
//!
//! The per-shard components live one per submodule:
//!
//! * [`lifecycle`](self) — the per-request state machine: arrival →
//!   prefill → reasoning → answering → completion, including the
//!   offload/reload preemption transitions and per-iteration residency
//!   planning;
//! * [`migration`](self) — the [`MigrationController`](migration): phase-
//!   boundary Algorithm 2 decisions, the predictive cost/benefit veto
//!   (KV transfer cost vs predicted remaining service), transfer launch
//!   and landing;
//! * [`admission`](self) — the [`AdmissionController`](admission):
//!   predictive SLO admission control that rejects arrivals at predicted
//!   shard KV overload instead of letting the pacers starve;
//! * [`stats`](self) — the instance-monitor sweep producing the
//!   [`InstanceStats`] snapshots Algorithms 1 and 2 consume;
//! * [`cluster`](self) — the global clock, the router, and the
//!   cross-shard migration path.
//!
//! Both controllers default to off and `shards` defaults to 1, in which
//! case a run is byte-identical to the paper's reactive scheduler.

use pascal_cluster::{Instance, InstanceStats, ReqHandle, RequestSlab, RequestState};
use pascal_metrics::{
    AdmissionCounters, AdmissionRecord, CalibrationReport, FleetOutcomes, MigrationOutcomes,
    MigrationRecord, PredictionSample, RegionStats, RequestRecord, ShardStats,
};
use pascal_model::{KvGeometry, PerfModel};
use pascal_predict::{LengthPredictor, PredictorKind};
use pascal_sched::{PriorityKey, SchedPolicy};
use pascal_sim::{EventQueue, SimTime};
use pascal_telemetry::{
    SloAlertRecord, SloBurnTracker, TelemetryHandle, TelemetryOut, TraceEvent, TraceEventKind,
};
use pascal_workload::{RequestId, Trace};

use crate::config::SimConfig;
use crate::fleet::HealthState;

mod admission;
#[doc(hidden)]
pub mod bench_support;
mod cluster;
mod driver;
mod federation;
mod fleet_rt;
mod lifecycle;
mod migration;
mod parallel;
mod stats;
#[cfg(test)]
mod tests;

pub use admission::AdmissionMode;
pub use migration::PredictiveMigration;

use admission::AdmissionController;
pub(crate) use cluster::Engine;
#[cfg(test)]
pub(crate) use federation::FederationEngine;
use fleet_rt::AutoscalerRt;
use migration::MigrationController;

/// Events driving a shard. Arrivals are not queue events: the cluster
/// routes them straight off the trace (see [`cluster`]).
///
/// Request-scoped events carry the request's slab handle: every such event
/// fires while the request still lives on the scheduling shard (transfers
/// schedule on the *source* queue and the state moves at handling time),
/// so the handle is valid for the event's whole queue residency.
// Most queued events mark a completion, so the shared postfix is the
// honest name, not noise (fleet events are the exception).
#[allow(clippy::enum_variant_names)]
#[derive(Debug)]
pub(super) enum Event {
    /// The in-flight iteration on an instance finished.
    IterationDone { instance: u32 },
    /// A preemption offload finished; KV now lives in CPU memory.
    OffloadDone { req: ReqHandle },
    /// A reload finished; KV is GPU-resident again.
    ReloadDone { req: ReqHandle },
    /// An intra-shard phase-boundary migration landed on its destination.
    MigrationDone { req: ReqHandle, to: u32 },
    /// A cross-shard migration cleared the interconnect; the cluster hands
    /// the request from this shard to `to_shard`. (Scheduled on the source
    /// shard's queue so the source frees its KV exactly at landing time.)
    CrossShardDone {
        req: ReqHandle,
        to_shard: u32,
        to_instance: u32,
    },
    /// A cross-region migration cleared the WAN; the *federation* hands
    /// the request from this shard to another region's shard. (Scheduled
    /// on the source shard's queue, like [`Event::CrossShardDone`]; the
    /// cluster cannot resolve it and returns it to the federation driver.)
    CrossRegionDone {
        req: ReqHandle,
        to_region: u32,
        to_shard: u32,
        to_instance: u32,
    },
    /// A scheduled fleet transition fires: the instance joins, starts
    /// draining, or fail-stops. Resolved from the run's
    /// [`FleetSpec`](crate::fleet::FleetSpec) at construction (or scheduled
    /// by the autoscaler), so a fleet-free run never sees one.
    FleetTransition { instance: u32, to: HealthState },
    /// The reactive autoscaler re-evaluates predicted utilization.
    AutoscaleTick,
}

/// What kind of iteration an instance is running.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(super) enum IterationKind {
    Prefill,
    Decode,
}

/// A phase transition that escalated to the cluster: its shard was
/// saturated, so the migration decision defers to the cross-shard path.
/// `intra_fallback` carries the intra-shard destination Algorithm 2 had
/// picked (if any) — executed when no sibling shard can take the request.
///
/// Carries both the slab handle (for state access) and the request id: the
/// escape is evaluated after the triggering iteration, so the defensive
/// staleness check re-verifies that the handle still names this request.
#[derive(Clone, Copy, Debug)]
pub(super) struct EscapeCandidate {
    pub(super) req: RequestId,
    pub(super) handle: ReqHandle,
    pub(super) intra_fallback: Option<u32>,
}

/// Result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// One record per completed request, ordered by request id.
    pub records: Vec<RequestRecord>,
    /// Peak GPU KV usage per instance, in bytes (shard-major order, so
    /// index = global instance id).
    pub peak_gpu_kv_bytes: Vec<u64>,
    /// Time of the last completion.
    pub makespan: SimTime,
    /// Name of the policy that produced this run.
    pub policy_name: String,
    /// One predicted-vs-actual sample per admitted request, ordered by
    /// request id — empty when no length predictor was configured.
    pub predictions: Vec<PredictionSample>,
    /// Decision tally of the migration controllers, summed over shards.
    pub migration_outcomes: MigrationOutcomes,
    /// Decision tally of the admission controllers, summed over shards.
    pub admission: AdmissionCounters,
    /// Arrivals rejected by admission control, in arrival order — empty
    /// unless [`AdmissionMode::Predictive`] was configured.
    pub rejections: Vec<AdmissionRecord>,
    /// Fleet elasticity tally, summed over shards — all zeros unless
    /// [`SimConfig::fleet`](crate::SimConfig) scheduled fleet events.
    pub fleet: FleetOutcomes,
    /// One row per scheduling domain (a single row when `shards` is 1).
    pub shard_stats: Vec<ShardStats>,
    /// SLO burn-rate alerts fired during the run, ordered by (time, shard,
    /// rule) — empty unless [`SimConfig::alerts`](crate::SimConfig)
    /// configured alert rules. Side data only: nothing else in this struct
    /// ever depends on it.
    pub alerts: Vec<SloAlertRecord>,
    /// One row per region (a single row when `regions` is 1).
    pub region_stats: Vec<RegionStats>,
    /// What the run's telemetry streams collected — `None` unless
    /// [`SimConfig::telemetry`](crate::SimConfig::telemetry) enabled at
    /// least one stream. Side data only: nothing else in this struct ever
    /// depends on it.
    pub telemetry: Option<TelemetryOut>,
}

impl SimOutput {
    /// All phase-boundary migrations performed during the run, in request-id
    /// order (borrowed from the records — no allocation).
    pub fn migrations(&self) -> impl Iterator<Item = &MigrationRecord> + '_ {
        self.records.iter().filter_map(|r| r.migration.as_ref())
    }

    /// Calibration report of the run's length predictor, if it produced
    /// absolute estimates.
    #[must_use]
    pub fn calibration(&self) -> Option<CalibrationReport> {
        CalibrationReport::from_samples(&self.predictions)
    }
}

/// KV bytes a request's current context occupies — the footprint moved by
/// offloads, reloads and migrations, and the one the cost model prices.
/// Free function so call sites holding a `&mut RequestState` can use it.
pub(super) fn context_kv_bytes(geometry: &KvGeometry, st: &RequestState) -> u64 {
    geometry.blocks_for_tokens(st.context_tokens()) * geometry.block_bytes()
}

/// Runs `trace` through the deployment described by `config`.
///
/// Deterministic: identical `(trace, config)` inputs produce identical
/// outputs.
///
/// # Panics
///
/// Panics if the configuration is invalid, or if any single request's final
/// KV footprint exceeds one instance's KV capacity (such a request could
/// never be scheduled).
#[must_use]
pub fn run_simulation(trace: &Trace, config: &SimConfig) -> SimOutput {
    if config.regions > 1 {
        federation::FederationEngine::new(trace, config).run()
    } else {
        Engine::new(trace, config).run()
    }
}

/// One scheduling domain: an instance pool with its own event queue,
/// controllers, and (fresh) predictor state.
pub(super) struct Shard<'a> {
    /// Shard index — global across the federation (region-major), so a
    /// one-region cluster's shard ids are exactly the PR 4 ids.
    pub(super) id: u32,
    /// Global id of this shard's first instance; instance indices inside
    /// the shard are local, records carry `offset + local`.
    pub(super) offset: u32,
    /// Whether saturated phase transitions may escalate beyond this shard
    /// — sibling shards in the cluster, or (in a federation) remote
    /// regions even when the shard is its region's only one.
    pub(super) cross_escape_enabled: bool,
    /// Whether iterations that may fire a phase transition are scheduled
    /// as *barrier* events ([`SimConfig::transition_barriers`]): true only
    /// when a parallel executor may run and a transition can escape the
    /// shard. Never changes outputs — barriers only bound the windowed
    /// executor's lookahead.
    pub(super) transition_barriers: bool,
    pub(super) trace: &'a Trace,
    pub(super) config: &'a SimConfig,
    pub(super) policy: SchedPolicy,
    pub(super) perf: PerfModel,
    pub(super) geometry: KvGeometry,
    pub(super) queue: EventQueue<Event>,
    pub(super) instances: Vec<InstanceRt>,
    pub(super) fabric: pascal_cluster::Fabric,
    /// Slab storage of every in-flight request on this shard, indexed by
    /// the dense handles events and membership lists carry.
    pub(super) states: RequestSlab,
    /// Reusable hot-path buffers (see [`ScheduleScratch`]).
    pub(super) scratch: ScheduleScratch,
    pub(super) migration_ctl: MigrationController,
    pub(super) admission_ctl: AdmissionController,
    pub(super) records: Vec<RequestRecord>,
    /// Online length predictor (fresh state per shard per run); fed every
    /// completion that lands on this shard.
    pub(super) predictor: Option<Box<dyn LengthPredictor>>,
    pub(super) prediction_samples: Vec<PredictionSample>,
    /// Arrivals the router pinned here.
    pub(super) routed_arrivals: u64,
    /// Requests that migrated in over the interconnect.
    pub(super) cross_shard_in: u64,
    /// Requests that migrated in over the WAN (federated runs only).
    pub(super) cross_region_in: u64,
    /// Phase transitions that found the shard saturated — drained by the
    /// cluster right after the triggering iteration, before the instance
    /// relaunches.
    pub(super) cross_escape_outbox: Vec<EscapeCandidate>,
    /// Bumped at every predictor mutation (completion observations,
    /// threshold crossings). Cached monitor rows embed the epoch their
    /// predicted-growth fields were computed under, so one predictor
    /// update invalidates every instance's prediction-dependent row
    /// without a per-instance sweep.
    pub(super) predictor_epoch: u64,
    /// Per-instance availability. All-`Healthy` (and never written) without
    /// a fleet spec, so the static-fleet hot path is untouched.
    pub(super) health: Vec<HealthState>,
    /// When each in-progress drain started (drain-completion accounting).
    pub(super) drain_started: Vec<Option<SimTime>>,
    /// Fleet elasticity tally for this shard.
    pub(super) fleet: FleetOutcomes,
    /// Reactive autoscaler state; `None` without an `autoscale` directive.
    pub(super) autoscaler: Option<AutoscalerRt>,
    /// SLO burn-rate tracker; `None` without [`SimConfig::alerts`]. Fed
    /// every answering completion, never read by any scheduling decision.
    pub(super) slo_tracker: Option<SloBurnTracker>,
    /// Rising-edge alerts this shard's tracker fired, in sim-time order.
    pub(super) alerts: Vec<SloAlertRecord>,
    /// Telemetry emitter (a clone of the run-wide handle; a single no-op
    /// branch per call site when disabled).
    pub(super) telemetry: TelemetryHandle,
}

/// Engine-side per-instance runtime extension.
pub(super) struct InstanceRt {
    pub(super) inst: Instance,
    pub(super) current_batch: Vec<ReqHandle>,
    pub(super) current_kind: IterationKind,
    /// Cached candidate list of the last scheduling pass, sorted by
    /// priority key. Valid while `sched_dirty` is false — the scheduler
    /// then skips the rebuild *and* the sort, which dominates congested
    /// iterations. Invalidated by membership changes, priority-key input
    /// changes (quantum crossings, demotions, phase flips) and KV-location
    /// changes into or out of the candidate-excluded states.
    pub(super) cands: Vec<(PriorityKey, ReqHandle)>,
    /// Whether `cands` must be rebuilt before the next scheduling pass.
    pub(super) sched_dirty: bool,
    /// GPU blocks held by members whose KV is on the way out (preemption
    /// offloads, outbound migrations) — maintained incrementally so the
    /// scheduler's budget computation skips a full member sweep.
    pub(super) dying_blocks: u64,
    /// Incrementally maintained monitor row (`None` = stale). Every
    /// mutation that can change the row clears the cell through
    /// [`Shard::mark_stats_dirty`]; the monitor sweep refills it lazily. A
    /// `Cell` because the refill happens inside the `&self` sweep.
    pub(super) stats_cache: std::cell::Cell<Option<StatsCacheEntry>>,
}

/// One cached [`InstanceStats`] row plus the conditions it stays fresh
/// under: the predictor epoch its predicted-growth field was computed at,
/// and the earliest instant an answering member's pacer falls off pace
/// (`None` = no time bound). The row itself is pure instance state except
/// for `slo_ok`, whose only time dependence is exactly that pacer expiry —
/// so a cached row is byte-equal to a recomputed one until a mutation
/// clears it, the predictor learns, or the expiry passes.
#[derive(Clone, Copy)]
pub(super) struct StatsCacheEntry {
    pub(super) stats: InstanceStats,
    pub(super) epoch: u64,
    pub(super) valid_until: Option<SimTime>,
}

/// Reusable buffers for the per-iteration scheduling pass and the monitor
/// sweep, so the hot path performs no allocations after warmup. Taken with
/// `mem::take` for the duration of a pass and put back when it ends —
/// capacities ping-pong between here and the instances' current batches,
/// amortizing to zero allocation.
#[derive(Default)]
pub(super) struct ScheduleScratch {
    /// Schedulable candidates with their precomputed priority keys.
    pub(super) cands: Vec<(PriorityKey, ReqHandle)>,
    /// The desired-set prefix under the block budget, each entry carrying
    /// the GPU block need computed during the prefix scan (reused verbatim
    /// by the admission pass — nothing mutates in between).
    pub(super) desired: Vec<(ReqHandle, u64)>,
    /// Desired-set membership marks, indexed by slab slot.
    pub(super) desired_mark: Vec<bool>,
    /// GPU residents that fell out of the desired set.
    pub(super) evictees: Vec<ReqHandle>,
    /// Prefill batch being assembled.
    pub(super) prefill: Vec<ReqHandle>,
    /// Decode batch being assembled.
    pub(super) decode: Vec<ReqHandle>,
    /// Prompt lengths of the prefill batch.
    pub(super) prompts: Vec<u32>,
    /// Monitor-sweep buffer for in-shard stats consumers.
    pub(super) stats: Vec<InstanceStats>,
}

impl<'a> Shard<'a> {
    /// Builds shard `id` with `instances` instances (local ids `0..n`,
    /// global ids `offset..offset + n`).
    pub(super) fn new(
        trace: &'a Trace,
        config: &'a SimConfig,
        id: u32,
        instances: usize,
        telemetry: TelemetryHandle,
    ) -> Self {
        let perf = config.perf_model();
        let geometry = config.geometry();
        let capacity = config.kv_capacity_bytes();
        let rt = (0..instances)
            .map(|i| InstanceRt {
                inst: Instance::new(i as u32, geometry, capacity, config.pcie),
                current_batch: Vec::new(),
                current_kind: IterationKind::Decode,
                cands: Vec::new(),
                sched_dirty: true,
                dying_blocks: 0,
                stats_cache: std::cell::Cell::new(None),
            })
            .collect();
        let mut shard = Shard {
            id,
            offset: id * instances as u32,
            cross_escape_enabled: config.shards > 1 || config.regions > 1,
            transition_barriers: config.transition_barriers(),
            trace,
            config,
            policy: config.policy,
            perf,
            geometry,
            queue: EventQueue::new(),
            instances: rt,
            fabric: pascal_cluster::Fabric::new(instances, config.fabric),
            states: RequestSlab::new(),
            scratch: ScheduleScratch::default(),
            migration_ctl: MigrationController::new(config.predictive_migration),
            admission_ctl: AdmissionController::new(
                config.admission,
                capacity.map(|c| c * instances as u64),
            ),
            records: Vec::new(),
            predictor: config.predictor.map(PredictorKind::build),
            prediction_samples: Vec::new(),
            routed_arrivals: 0,
            cross_shard_in: 0,
            cross_region_in: 0,
            cross_escape_outbox: Vec::new(),
            predictor_epoch: 0,
            health: vec![HealthState::Healthy; instances],
            drain_started: vec![None; instances],
            fleet: FleetOutcomes::default(),
            autoscaler: None,
            slo_tracker: config.alerts.clone().map(SloBurnTracker::new),
            alerts: Vec::new(),
            telemetry,
        };
        shard.init_fleet();
        shard
    }

    /// The global id of a local instance index — what records carry.
    pub(super) fn global_instance(&self, local: u32) -> u32 {
        self.offset + local
    }

    /// Invalidates `instance`'s cached monitor row. Must be called after
    /// any mutation that can change the row: membership, pool allocations
    /// and frees, token emission (pacer, quanta, predicted growth), phase
    /// flips, demotions, health transitions. Debug builds shadow-compare
    /// every sweep against a full recompute, so a missed call fails loudly
    /// across the whole test suite.
    #[inline]
    pub(super) fn mark_stats_dirty(&self, instance: u32) {
        self.instances[instance as usize].stats_cache.set(None);
    }

    /// The region this shard belongs to (shard ids are region-major).
    pub(super) fn region(&self) -> u32 {
        self.id / self.config.shards as u32
    }

    /// Emits one trace event stamped with this shard's coordinates. A
    /// single branch when tracing is off; the event is built lazily.
    #[inline]
    pub(super) fn emit_trace(
        &self,
        at: SimTime,
        instance: Option<u32>,
        request: Option<RequestId>,
        kind: TraceEventKind,
    ) {
        self.telemetry.trace(|| TraceEvent {
            at,
            region: self.region(),
            shard: self.id,
            instance,
            request: request.map(|r| r.0),
            kind,
        });
    }

    /// This shard's row of the run summary.
    pub(super) fn shard_stats(&self) -> ShardStats {
        ShardStats {
            shard: self.id,
            instances: self.instances.len(),
            routed_arrivals: self.routed_arrivals,
            completed: self.records.len() as u64,
            peak_gpu_kv_bytes: self
                .instances
                .iter()
                .map(|i| i.inst.gpu.peak_used_blocks() * self.geometry.block_bytes())
                .sum(),
            migrations: self.migration_ctl.outcomes,
            admission: self.admission_ctl.counters,
            cross_shard_in: self.cross_shard_in,
            cross_region_in: self.cross_region_in,
            fleet: self.fleet,
        }
    }
}
