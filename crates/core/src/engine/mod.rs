//! The multi-instance serving engine.
//!
//! An iteration-level discrete-event simulation of vLLM-style continuous
//! batching (§II-B) across a pool of GPU instances, parameterized by a
//! [`SchedPolicy`]. The engine owns the single mechanism all three
//! schedulers share:
//!
//! 1. every time an instance is idle, sort its requests by the policy's
//!    priority key and grant GPU KV residency to the longest prefix that
//!    fits (the *desired set*);
//! 2. residents outside the desired set are preempted (KV offloaded to CPU
//!    over PCIe); non-residents inside it are admitted — prefilled,
//!    reloaded, or (for warm requests) materialized;
//! 3. run one iteration: a prefill pass over waiting prompts if any are
//!    admitted, otherwise one decode step for every runnable resident;
//! 4. at iteration end each decoded request gains one token; quantum
//!    counters advance, phase transitions fire (triggering Algorithm 2
//!    migration for PASCAL), completions free memory.
//!
//! Instance-level placement (Algorithm 1 / smallest-footprint) happens at
//! arrival events; KV migrations ride the fabric with ingress/egress
//! contention (§V-C).
//!
//! The engine is assembled from four cohesive components, one per
//! submodule:
//!
//! * [`lifecycle`](self) — the per-request state machine: arrival →
//!   prefill → reasoning → answering → completion, including the
//!   offload/reload preemption transitions and per-iteration residency
//!   planning;
//! * [`migration`](self) — the [`MigrationController`](migration): phase-
//!   boundary Algorithm 2 decisions, the predictive cost/benefit veto
//!   (KV transfer cost vs predicted remaining service), transfer launch
//!   and landing;
//! * [`admission`](self) — the [`AdmissionController`](admission):
//!   predictive SLO admission control that rejects arrivals at predicted
//!   aggregate KV overload instead of letting the pacers starve;
//! * [`stats`](self) — the instance-monitor sweep producing the
//!   [`InstanceStats`] snapshots Algorithms 1 and 2 consume.
//!
//! Both controllers default to off, in which case a run is byte-identical
//! to the paper's reactive scheduler.

use std::collections::HashMap;

use pascal_cluster::{Instance, RequestState};
use pascal_metrics::{
    AdmissionCounters, AdmissionRecord, CalibrationReport, MigrationOutcomes, MigrationRecord,
    PredictionSample, RequestRecord,
};
use pascal_model::{KvGeometry, PerfModel};
use pascal_predict::{LengthPredictor, PredictorKind};
use pascal_sched::SchedPolicy;
use pascal_sim::{EventQueue, SimTime};
use pascal_workload::{RequestId, Trace};

use crate::config::SimConfig;

mod admission;
mod lifecycle;
mod migration;
mod stats;
#[cfg(test)]
mod tests;

pub use admission::AdmissionMode;
pub use migration::PredictiveMigration;

use admission::AdmissionController;
use migration::MigrationController;

/// Events driving the engine.
#[derive(Debug)]
pub(super) enum Event {
    /// A request from the trace arrives (index into the trace).
    Arrival(usize),
    /// The in-flight iteration on an instance finished.
    IterationDone { instance: u32 },
    /// A preemption offload finished; KV now lives in CPU memory.
    OffloadDone { req: RequestId },
    /// A reload finished; KV is GPU-resident again.
    ReloadDone { req: RequestId },
    /// A phase-boundary migration landed on its destination.
    MigrationDone { req: RequestId, to: u32 },
}

/// What kind of iteration an instance is running.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(super) enum IterationKind {
    Prefill,
    Decode,
}

/// Result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// One record per completed request, ordered by request id.
    pub records: Vec<RequestRecord>,
    /// Peak GPU KV usage per instance, in bytes.
    pub peak_gpu_kv_bytes: Vec<u64>,
    /// Time of the last completion.
    pub makespan: SimTime,
    /// Name of the policy that produced this run.
    pub policy_name: String,
    /// One predicted-vs-actual sample per admitted request, ordered by
    /// request id — empty when no length predictor was configured.
    pub predictions: Vec<PredictionSample>,
    /// Decision tally of the migration controller.
    pub migration_outcomes: MigrationOutcomes,
    /// Decision tally of the admission controller.
    pub admission: AdmissionCounters,
    /// Arrivals rejected by admission control, in arrival order — empty
    /// unless [`AdmissionMode::Predictive`] was configured.
    pub rejections: Vec<AdmissionRecord>,
}

impl SimOutput {
    /// All phase-boundary migrations performed during the run, in request-id
    /// order (borrowed from the records — no allocation).
    pub fn migrations(&self) -> impl Iterator<Item = &MigrationRecord> + '_ {
        self.records.iter().filter_map(|r| r.migration.as_ref())
    }

    /// Calibration report of the run's length predictor, if it produced
    /// absolute estimates.
    #[must_use]
    pub fn calibration(&self) -> Option<CalibrationReport> {
        CalibrationReport::from_samples(&self.predictions)
    }
}

/// KV bytes a request's current context occupies — the footprint moved by
/// offloads, reloads and migrations, and the one the cost model prices.
/// Free function so call sites holding a `&mut RequestState` can use it.
pub(super) fn context_kv_bytes(geometry: &KvGeometry, st: &RequestState) -> u64 {
    geometry.blocks_for_tokens(st.context_tokens()) * geometry.block_bytes()
}

/// Runs `trace` through the deployment described by `config`.
///
/// Deterministic: identical `(trace, config)` inputs produce identical
/// outputs.
///
/// # Panics
///
/// Panics if the configuration is invalid, or if any single request's final
/// KV footprint exceeds one instance's KV capacity (such a request could
/// never be scheduled).
#[must_use]
pub fn run_simulation(trace: &Trace, config: &SimConfig) -> SimOutput {
    Engine::new(trace, config).run()
}

pub(super) struct Engine<'a> {
    trace: &'a Trace,
    config: &'a SimConfig,
    policy: SchedPolicy,
    perf: PerfModel,
    geometry: KvGeometry,
    queue: EventQueue<Event>,
    instances: Vec<InstanceRt>,
    fabric: pascal_cluster::Fabric,
    states: HashMap<RequestId, RequestState>,
    migration_ctl: MigrationController,
    admission_ctl: AdmissionController,
    records: Vec<RequestRecord>,
    /// Online length predictor (fresh state per run); fed every completion.
    predictor: Option<Box<dyn LengthPredictor>>,
    prediction_samples: Vec<PredictionSample>,
}

/// Engine-side per-instance runtime extension.
pub(super) struct InstanceRt {
    inst: Instance,
    current_batch: Vec<RequestId>,
    current_kind: IterationKind,
}

impl<'a> Engine<'a> {
    pub(super) fn new(trace: &'a Trace, config: &'a SimConfig) -> Self {
        config.validate();
        let perf = config.perf_model();
        let geometry = config.geometry();
        let capacity = config.kv_capacity_bytes();

        if let Some(cap) = capacity {
            let cap_blocks = geometry.blocks_in(cap);
            for r in trace.requests() {
                let worst = geometry.blocks_for_tokens(r.final_context_tokens() + 1);
                assert!(
                    worst <= cap_blocks,
                    "{} needs {worst} KV blocks but an instance only has {cap_blocks}; \
                     raise capacity or shrink the request",
                    r.id
                );
            }
        }

        let mut queue = EventQueue::new();
        for (i, r) in trace.requests().iter().enumerate() {
            queue.schedule(r.arrival, Event::Arrival(i));
        }

        let instances = (0..config.num_instances)
            .map(|i| InstanceRt {
                inst: Instance::new(i as u32, geometry, capacity, config.pcie),
                current_batch: Vec::new(),
                current_kind: IterationKind::Decode,
            })
            .collect();

        Engine {
            trace,
            config,
            policy: config.policy,
            perf,
            geometry,
            queue,
            instances,
            fabric: pascal_cluster::Fabric::new(config.num_instances, config.fabric),
            states: HashMap::with_capacity(trace.requests().len()),
            migration_ctl: MigrationController::new(config.predictive_migration),
            admission_ctl: AdmissionController::new(
                config.admission,
                capacity.map(|c| c * config.num_instances as u64),
            ),
            records: Vec::with_capacity(trace.requests().len()),
            predictor: config.predictor.map(PredictorKind::build),
            prediction_samples: Vec::new(),
        }
    }

    pub(super) fn run(mut self) -> SimOutput {
        while let Some((now, ev)) = self.queue.pop() {
            self.dispatch(ev, now);
        }
        assert!(
            self.states.is_empty(),
            "simulation drained with {} unfinished requests (deadlock)",
            self.states.len()
        );
        let mut records = self.records;
        records.sort_by_key(|r| r.spec.id);
        let makespan = records
            .iter()
            .map(|r| r.completion)
            .max()
            .unwrap_or(SimTime::ZERO);
        let mut predictions = self.prediction_samples;
        predictions.sort_by_key(|p| p.id);
        // Only PASCAL consumes predictions (demotion, placement); under
        // the baselines a predictor is purely observational — calibration
        // samples are still logged, but the run's behavior is identical to
        // the plain policy, and the name must say so. Active controllers
        // tag the name so paired comparisons stay legible.
        let mut policy_name = match (&self.predictor, &self.policy) {
            (Some(p), SchedPolicy::Pascal(_)) => {
                if self.migration_ctl.predictive().is_some() {
                    format!(
                        "{}(Predictive-{}, CostAwareMigration)",
                        self.policy.name(),
                        p.name()
                    )
                } else {
                    format!("{}(Predictive-{})", self.policy.name(), p.name())
                }
            }
            _ => self.policy.name().to_owned(),
        };
        if self.admission_ctl.enabled() {
            policy_name.push_str("+PredictiveAdmission");
        }
        SimOutput {
            peak_gpu_kv_bytes: self
                .instances
                .iter()
                .map(|i| i.inst.gpu.peak_used_blocks() * self.geometry.block_bytes())
                .collect(),
            makespan,
            policy_name,
            records,
            predictions,
            migration_outcomes: self.migration_ctl.outcomes,
            admission: self.admission_ctl.counters,
            rejections: self.admission_ctl.rejections,
        }
    }

    /// Routes one event to its handler — shared by [`Engine::run`] and the
    /// accounting tests that drive the loop manually.
    pub(super) fn dispatch(&mut self, ev: Event, now: SimTime) {
        match ev {
            Event::Arrival(idx) => self.on_arrival(idx, now),
            Event::IterationDone { instance } => self.on_iteration_done(instance, now),
            Event::OffloadDone { req } => self.on_offload_done(req, now),
            Event::ReloadDone { req } => self.on_reload_done(req, now),
            Event::MigrationDone { req, to } => self.on_migration_done(req, to, now),
        }
    }
}
