//! Fleet elasticity: deterministic fault-injection schedules.
//!
//! A [`FleetSpec`] describes how the fleet changes over a run's lifetime:
//! instances joining and leaving, planned drains, whole-shard and
//! whole-region outages, standby capacity and a reactive autoscaler. The
//! schedule is resolved into per-instance [`InstanceTransition`]s at
//! engine construction and injected through the per-shard calendar event
//! queues, so a fleet run is exactly as deterministic as a static one —
//! byte-identical at any thread count. An empty spec (the default) leaves
//! the engine untouched.
//!
//! The on-disk format is line-oriented (`#` comments allowed):
//!
//! ```text
//! # <time_s> <kind> <id>
//! 2.0  drain       3      # planned leave of instance 3 (drain-and-migrate)
//! 4.5  shard-down  1      # whole-shard outage (fail-stop)
//! 9.0  shard-up    1      # the shard rejoins
//! standby 6               # instance 6 starts parked for the autoscaler
//! autoscale 1.0 2.0 0.75 0.35
//! ```
//!
//! Instance ids are global (`0..num_instances`); shard ids are global
//! (`region * shards_per_region + shard`); region ids are `0..regions`.

use pascal_sim::{SimDuration, SimTime};

/// The event kinds accepted by [`FleetSpec::parse`], for error messages.
const VALID_KINDS: &str =
    "valid event kinds: join, drain, fail, shard-down, shard-up, region-down, region-up";

/// An instance's availability, as tracked by the engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum HealthState {
    /// In the fleet and accepting new work.
    #[default]
    Healthy,
    /// Planned leave in progress: invisible to placement, resident work
    /// migrates out or finishes in place.
    Draining,
    /// Out of the fleet. Resident work is stranded (fail-stop).
    Down,
}

/// What a fleet event does to its target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetAction {
    /// The target (re)joins the fleet as [`HealthState::Healthy`].
    Join,
    /// Planned leave: the target starts draining.
    Drain,
    /// Unplanned fail-stop: the target goes [`HealthState::Down`].
    Fail,
}

/// What a fleet event applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetTarget {
    /// One instance, by global id (`0..num_instances`).
    Instance(u32),
    /// Every instance of one shard, by global shard id.
    Shard(u32),
    /// Every instance of every shard in one region.
    Region(u32),
}

/// One scheduled change to the fleet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetEvent {
    /// When the change happens.
    pub at: SimTime,
    /// What happens.
    pub action: FleetAction,
    /// What it happens to.
    pub target: FleetTarget,
}

/// The reactive autoscaler's policy knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AutoscalePolicy {
    /// How often the scaler re-evaluates predicted utilization.
    pub interval: SimDuration,
    /// Provisioning delay: a scale-up decision becomes capacity only this
    /// long after the decision (the paper's scale-up lead time axis).
    pub lead: SimDuration,
    /// Predicted-utilization threshold above which a standby instance is
    /// activated.
    pub up_utilization: f64,
    /// Predicted-utilization threshold below which a scaler-managed
    /// instance is drained back to standby.
    pub down_utilization: f64,
}

/// A full fleet schedule: timed events, standby capacity, autoscaler.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetSpec {
    /// Timed transitions, in file order (ties keep file order).
    pub events: Vec<FleetEvent>,
    /// Instances (global ids) that start parked: [`HealthState::Down`] at
    /// time zero, excluded from capacity until the autoscaler (or a timed
    /// `join`) activates them.
    pub standby: Vec<u32>,
    /// The reactive autoscaler, if enabled.
    pub autoscale: Option<AutoscalePolicy>,
}

/// One resolved per-instance change, ready to schedule on a shard queue.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InstanceTransition {
    /// When it fires.
    pub at: SimTime,
    /// The owning shard (global id).
    pub shard: u32,
    /// The instance within the shard (local index).
    pub instance: u32,
    /// The state the instance moves to.
    pub to: HealthState,
}

impl FleetSpec {
    /// True when the spec changes nothing — the engine skips all fleet
    /// machinery and stays byte-identical to a static run.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.standby.is_empty() && self.autoscale.is_none()
    }

    /// Parses the line-oriented fleet-event format.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line; unknown-kind errors
    /// list every valid kind.
    pub fn parse(text: &str) -> Result<FleetSpec, String> {
        let mut spec = FleetSpec::default();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let n = i + 1;
            let fields: Vec<&str> = line.split_whitespace().collect();
            match fields[0] {
                "standby" => {
                    if fields.len() != 2 {
                        return Err(format!(
                            "fleet events line {n}: standby takes one instance id"
                        ));
                    }
                    spec.standby.push(parse_id(fields[1], n, "instance")?);
                }
                "autoscale" => {
                    if fields.len() != 5 {
                        return Err(format!(
                            "fleet events line {n}: autoscale takes <interval_s> <lead_s> <up_util> <down_util>"
                        ));
                    }
                    if spec.autoscale.is_some() {
                        return Err(format!(
                            "fleet events line {n}: duplicate autoscale directive"
                        ));
                    }
                    let interval = parse_f64(fields[1], n, "interval")?;
                    let lead = parse_f64(fields[2], n, "lead")?;
                    let up = parse_f64(fields[3], n, "up threshold")?;
                    let down = parse_f64(fields[4], n, "down threshold")?;
                    if interval <= 0.0 {
                        return Err(format!(
                            "fleet events line {n}: autoscale interval must be positive"
                        ));
                    }
                    if lead < 0.0 {
                        return Err(format!(
                            "fleet events line {n}: autoscale lead must be non-negative"
                        ));
                    }
                    if !(0.0 < down && down < up) {
                        return Err(format!(
                            "fleet events line {n}: autoscale thresholds need 0 < down < up"
                        ));
                    }
                    spec.autoscale = Some(AutoscalePolicy {
                        interval: SimDuration::from_secs_f64(interval),
                        lead: SimDuration::from_secs_f64(lead),
                        up_utilization: up,
                        down_utilization: down,
                    });
                }
                _ => {
                    if fields.len() != 3 {
                        return Err(format!(
                            "fleet events line {n}: expected '<time_s> <kind> <id>' ({VALID_KINDS})"
                        ));
                    }
                    let at = parse_f64(fields[0], n, "time")?;
                    if at < 0.0 {
                        return Err(format!("fleet events line {n}: time must be non-negative"));
                    }
                    let id = parse_id(fields[2], n, "target")?;
                    let (action, target) = match fields[1] {
                        "join" => (FleetAction::Join, FleetTarget::Instance(id)),
                        "drain" => (FleetAction::Drain, FleetTarget::Instance(id)),
                        "fail" => (FleetAction::Fail, FleetTarget::Instance(id)),
                        "shard-down" => (FleetAction::Fail, FleetTarget::Shard(id)),
                        "shard-up" => (FleetAction::Join, FleetTarget::Shard(id)),
                        "region-down" => (FleetAction::Fail, FleetTarget::Region(id)),
                        "region-up" => (FleetAction::Join, FleetTarget::Region(id)),
                        other => {
                            return Err(format!(
                                "fleet events line {n}: unknown event kind '{other}' ({VALID_KINDS})"
                            ));
                        }
                    };
                    spec.events.push(FleetEvent {
                        at: SimTime::from_secs_f64(at),
                        action,
                        target,
                    });
                }
            }
        }
        Ok(spec)
    }

    /// Checks every referenced id against the deployment's topology.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first out-of-range id.
    pub fn validate(
        &self,
        regions: usize,
        shards_per_region: usize,
        num_instances: usize,
    ) -> Result<(), String> {
        let global_shards = regions * shards_per_region;
        let check_instance = |id: u32| {
            if (id as usize) < num_instances {
                Ok(())
            } else {
                Err(format!(
                    "fleet events: instance {id} does not exist (fleet has {num_instances} instances)"
                ))
            }
        };
        for ev in &self.events {
            match ev.target {
                FleetTarget::Instance(id) => check_instance(id)?,
                FleetTarget::Shard(id) => {
                    if id as usize >= global_shards {
                        return Err(format!(
                            "fleet events: shard {id} does not exist (fleet has {global_shards} shards)"
                        ));
                    }
                }
                FleetTarget::Region(id) => {
                    if id as usize >= regions {
                        return Err(format!(
                            "fleet events: region {id} does not exist (fleet has {regions} regions)"
                        ));
                    }
                }
            }
        }
        for &id in &self.standby {
            check_instance(id)?;
        }
        Ok(())
    }

    /// Resolves the timed events into per-instance transitions, in file
    /// order with group targets expanded in ascending instance order.
    /// Call [`FleetSpec::validate`] first; out-of-range ids panic here.
    #[must_use]
    pub fn transitions(
        &self,
        regions: usize,
        shards_per_region: usize,
        num_instances: usize,
    ) -> Vec<InstanceTransition> {
        let global_shards = regions * shards_per_region;
        let per_shard = num_instances / global_shards;
        let mut out = Vec::new();
        for ev in &self.events {
            let to = match ev.action {
                FleetAction::Join => HealthState::Healthy,
                FleetAction::Drain => HealthState::Draining,
                FleetAction::Fail => HealthState::Down,
            };
            let mut push = |gid: u32| {
                out.push(InstanceTransition {
                    at: ev.at,
                    shard: gid / per_shard as u32,
                    instance: gid % per_shard as u32,
                    to,
                });
            };
            match ev.target {
                FleetTarget::Instance(id) => push(id),
                FleetTarget::Shard(s) => {
                    for local in 0..per_shard as u32 {
                        push(s * per_shard as u32 + local);
                    }
                }
                FleetTarget::Region(r) => {
                    for s in 0..shards_per_region as u32 {
                        let shard = r * shards_per_region as u32 + s;
                        for local in 0..per_shard as u32 {
                            push(shard * per_shard as u32 + local);
                        }
                    }
                }
            }
        }
        out
    }
}

fn parse_f64(s: &str, line: usize, what: &str) -> Result<f64, String> {
    let v: f64 = s
        .parse()
        .map_err(|_| format!("fleet events line {line}: bad {what} '{s}'"))?;
    if !v.is_finite() {
        return Err(format!("fleet events line {line}: bad {what} '{s}'"));
    }
    Ok(v)
}

fn parse_id(s: &str, line: usize, what: &str) -> Result<u32, String> {
    s.parse()
        .map_err(|_| format!("fleet events line {line}: bad {what} id '{s}'"))
}

/// The built-in fleet scenarios, parametrized by the run's horizon and
/// topology at resolution time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetPreset {
    /// A planned drain followed by a fail-stop outage of the largest
    /// grouping the topology has (region, else shard, else one instance),
    /// then a rejoin: drain at 25%, outage at 45%, recovery at 70% of the
    /// trace horizon.
    Outage,
    /// Half of each shard's instances start as autoscaler standby with an
    /// aggressive reactive policy — pair with a bursty arrival trace.
    FlashCrowd,
    /// The same standby split with a gentler policy sized for slow load
    /// swings — pair with a diurnal arrival trace.
    Diurnal,
}

impl FleetPreset {
    /// Every preset, in CLI listing order.
    pub const ALL: [FleetPreset; 3] = [
        FleetPreset::Outage,
        FleetPreset::FlashCrowd,
        FleetPreset::Diurnal,
    ];

    /// Stable lowercase key (CLI value and sweep-label suffix).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            FleetPreset::Outage => "outage",
            FleetPreset::FlashCrowd => "flash-crowd",
            FleetPreset::Diurnal => "diurnal",
        }
    }

    /// Parses a CLI key.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid presets.
    pub fn parse(s: &str) -> Result<FleetPreset, String> {
        FleetPreset::ALL
            .into_iter()
            .find(|p| p.key() == s)
            .ok_or_else(|| {
                let keys: Vec<&str> = FleetPreset::ALL.iter().map(|p| p.key()).collect();
                format!("unknown fleet preset '{s}' (valid: {})", keys.join(", "))
            })
    }

    /// Resolves the preset against a concrete horizon and topology.
    #[must_use]
    pub fn spec(
        self,
        horizon_s: f64,
        regions: usize,
        shards_per_region: usize,
        num_instances: usize,
    ) -> FleetSpec {
        let global_shards = regions * shards_per_region;
        let per_shard = num_instances / global_shards;
        match self {
            FleetPreset::Outage => {
                let target = if regions > 1 {
                    FleetTarget::Region(regions as u32 - 1)
                } else if global_shards > 1 {
                    FleetTarget::Shard(global_shards as u32 - 1)
                } else {
                    FleetTarget::Instance(num_instances as u32 - 1)
                };
                let at = |f: f64| SimTime::from_secs_f64(horizon_s * f);
                FleetSpec {
                    events: vec![
                        FleetEvent {
                            at: at(0.25),
                            action: FleetAction::Drain,
                            target,
                        },
                        FleetEvent {
                            at: at(0.45),
                            action: FleetAction::Fail,
                            target,
                        },
                        FleetEvent {
                            at: at(0.70),
                            action: FleetAction::Join,
                            target,
                        },
                    ],
                    standby: Vec::new(),
                    autoscale: None,
                }
            }
            FleetPreset::FlashCrowd | FleetPreset::Diurnal => {
                // Park the upper half of each shard: the autoscaler's pool.
                let parked = per_shard / 2;
                let mut standby = Vec::new();
                for shard in 0..global_shards as u32 {
                    for local in (per_shard - parked) as u32..per_shard as u32 {
                        standby.push(shard * per_shard as u32 + local);
                    }
                }
                let (interval_frac, lead_frac, up, down) = match self {
                    // React within ~2% of the horizon; bursts are short.
                    FleetPreset::FlashCrowd => (0.02, 0.04, 0.70, 0.30),
                    // Slow swings: sample at ~5% of the horizon.
                    FleetPreset::Diurnal => (0.05, 0.08, 0.75, 0.35),
                    FleetPreset::Outage => unreachable!("handled above"),
                };
                FleetSpec {
                    events: Vec::new(),
                    standby,
                    autoscale: Some(AutoscalePolicy {
                        interval: SimDuration::from_secs_f64((horizon_s * interval_frac).max(0.1)),
                        lead: SimDuration::from_secs_f64((horizon_s * lead_frac).max(0.1)),
                        up_utilization: up,
                        down_utilization: down,
                    }),
                }
            }
        }
    }
}

impl std::fmt::Display for FleetPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_parses_and_is_empty() {
        let spec = FleetSpec::parse("# nothing here\n\n").expect("parses");
        assert!(spec.is_empty());
        assert_eq!(spec, FleetSpec::default());
    }

    #[test]
    fn full_file_round_trips_semantically() {
        let text = "\
# a drain, an outage, a recovery
2.0 drain 3
4.5 shard-down 1   # trailing comment
9.0 shard-up 1
0.0 region-down 0
standby 6
standby 7
autoscale 1.0 2.0 0.75 0.35
";
        let spec = FleetSpec::parse(text).expect("parses");
        assert_eq!(spec.events.len(), 4);
        assert_eq!(
            spec.events[0],
            FleetEvent {
                at: SimTime::from_secs_f64(2.0),
                action: FleetAction::Drain,
                target: FleetTarget::Instance(3),
            }
        );
        assert_eq!(spec.events[1].target, FleetTarget::Shard(1));
        assert_eq!(spec.events[1].action, FleetAction::Fail);
        assert_eq!(spec.events[3].target, FleetTarget::Region(0));
        assert_eq!(spec.standby, vec![6, 7]);
        let auto = spec.autoscale.expect("autoscale set");
        assert_eq!(auto.interval, SimDuration::from_secs_f64(1.0));
        assert!((auto.up_utilization - 0.75).abs() < 1e-12);
    }

    #[test]
    fn unknown_kind_lists_valid_kinds() {
        let err = FleetSpec::parse("1.0 explode 3").expect_err("rejected");
        assert!(err.contains("line 1"), "names the line: {err}");
        for kind in [
            "join",
            "drain",
            "fail",
            "shard-down",
            "shard-up",
            "region-down",
            "region-up",
        ] {
            assert!(err.contains(kind), "error must list '{kind}': {err}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        assert!(FleetSpec::parse("1.0 drain")
            .expect_err("arity")
            .contains("line 1"));
        assert!(FleetSpec::parse("x drain 1")
            .expect_err("time")
            .contains("bad time"));
        assert!(FleetSpec::parse("-1.0 drain 1")
            .expect_err("negative")
            .contains("non-negative"));
        assert!(FleetSpec::parse("1.0 drain x")
            .expect_err("id")
            .contains("bad target id"));
        assert!(FleetSpec::parse("standby")
            .expect_err("arity")
            .contains("one instance id"));
        assert!(FleetSpec::parse("autoscale 1 1 0.2 0.5")
            .expect_err("order")
            .contains("0 < down < up"));
        assert!(FleetSpec::parse("autoscale 0 1 0.7 0.3")
            .expect_err("interval")
            .contains("interval must be positive"));
        assert!(FleetSpec::parse("autoscale 1 1 .7 .3\nautoscale 1 1 .7 .3")
            .expect_err("dup")
            .contains("duplicate autoscale"));
    }

    #[test]
    fn validate_names_the_bad_id() {
        let spec = FleetSpec::parse("1.0 fail 9").expect("parses");
        let err = spec.validate(1, 2, 8).expect_err("bad instance");
        assert!(err.contains("instance 9"), "{err}");
        let spec = FleetSpec::parse("1.0 shard-down 4").expect("parses");
        let err = spec.validate(2, 2, 8).expect_err("bad shard");
        assert!(err.contains("shard 4"), "{err}");
        let spec = FleetSpec::parse("1.0 region-up 2").expect("parses");
        let err = spec.validate(2, 2, 8).expect_err("bad region");
        assert!(err.contains("region 2"), "{err}");
        let spec = FleetSpec::parse("standby 8").expect("parses");
        let err = spec.validate(1, 2, 8).expect_err("bad standby");
        assert!(err.contains("instance 8"), "{err}");
        let good = FleetSpec::parse("1.0 shard-down 3\nstandby 7").expect("parses");
        good.validate(2, 2, 8).expect("in range");
    }

    #[test]
    fn transitions_expand_groups_to_local_ids() {
        // 2 regions x 2 shards x 2 instances each = 8 instances.
        let spec = FleetSpec::parse("1.0 region-down 1\n2.0 join 5").expect("parses");
        let ts = spec.transitions(2, 2, 8);
        // Region 1 owns global shards 2 and 3 => instances 4..8.
        assert_eq!(ts.len(), 5);
        for (i, t) in ts[..4].iter().enumerate() {
            assert_eq!(t.to, HealthState::Down);
            assert_eq!(t.shard, 2 + (i as u32) / 2);
            assert_eq!(t.instance, (i as u32) % 2);
        }
        assert_eq!(
            ts[4],
            InstanceTransition {
                at: SimTime::from_secs_f64(2.0),
                shard: 2,
                instance: 1,
                to: HealthState::Healthy,
            }
        );
    }

    #[test]
    fn outage_preset_picks_the_largest_grouping() {
        let multi_region = FleetPreset::Outage.spec(100.0, 2, 2, 8);
        assert_eq!(multi_region.events[0].target, FleetTarget::Region(1));
        assert_eq!(multi_region.events[0].action, FleetAction::Drain);
        assert_eq!(multi_region.events[1].action, FleetAction::Fail);
        assert_eq!(multi_region.events[2].action, FleetAction::Join);
        assert!(multi_region.events[0].at < multi_region.events[1].at);
        assert!(multi_region.events[1].at < multi_region.events[2].at);

        let sharded = FleetPreset::Outage.spec(100.0, 1, 4, 8);
        assert_eq!(sharded.events[0].target, FleetTarget::Shard(3));

        let single = FleetPreset::Outage.spec(100.0, 1, 1, 4);
        assert_eq!(single.events[0].target, FleetTarget::Instance(3));
    }

    #[test]
    fn scaling_presets_park_half_of_each_shard() {
        let spec = FleetPreset::FlashCrowd.spec(50.0, 1, 2, 8);
        // Shards hold instances 0..4 and 4..8; upper half of each parked.
        assert_eq!(spec.standby, vec![2, 3, 6, 7]);
        let auto = spec.autoscale.expect("autoscale enabled");
        assert!(auto.up_utilization > auto.down_utilization);
        assert!(auto.interval > SimDuration::ZERO);
        assert!(spec.validate(1, 2, 8).is_ok());

        // One instance per shard: nothing to park, but autoscale is on.
        let tiny = FleetPreset::Diurnal.spec(50.0, 1, 2, 2);
        assert!(tiny.standby.is_empty());
        assert!(tiny.autoscale.is_some());
    }

    #[test]
    fn preset_keys_round_trip_and_errors_list_valid() {
        for p in FleetPreset::ALL {
            assert_eq!(FleetPreset::parse(p.key()), Ok(p));
        }
        let err = FleetPreset::parse("meteor").expect_err("unknown");
        assert!(err.contains("valid: outage, flash-crowd, diurnal"), "{err}");
    }
}
