//! # pascal-core — the PASCAL serving engine and experiment harness
//!
//! This crate ties the whole reproduction together:
//!
//! * [`SimConfig`] / [`KvCapacityMode`] / [`RateLevel`] — deployment
//!   descriptions matching the paper's characterization testbed (§III-A)
//!   and eight-instance evaluation cluster (§V-A), plus the analytic
//!   arrival-rate calibration;
//! * [`run_simulation`] — the iteration-level multi-instance discrete-event
//!   engine implementing vLLM-style continuous batching, blocking,
//!   PCIe preemption, phase detection and fabric migration — organized as
//!   a cluster of shards: `SimConfig::shards` partitions the instances
//!   into scheduling domains behind a `pascal_sched::RouterPolicy`, with
//!   cross-shard escape migration over the two-tier
//!   `pascal_cluster::Topology` interconnect and per-domain
//!   `ShardStats` rows in [`SimOutput`]. One shard (the default)
//!   reproduces the paper's single-pool engine byte-for-byte. Each shard
//!   is decomposed into lifecycle / migration / admission / stats
//!   modules; [`PredictiveMigration`] and [`AdmissionMode`] switch the
//!   predictive controllers on (both default off, reproducing the paper
//!   exactly);
//! * [`experiments`] — one module per table/figure of the paper's
//!   evaluation, each returning printable row structs (see `DESIGN.md` §5
//!   for the experiment index);
//! * [`sweep`] — the scenario-sweep subsystem: declarative
//!   [`ScenarioSpec`] cells, [`SweepGrid`] presets, the parallel
//!   [`SweepRunner`], machine-readable [`SweepReport`]s (JSON + CSV) and
//!   the CI perf-regression [`sweep::gate`];
//! * [`report`] — plain-text table rendering shared by the benches;
//! * telemetry — opt-in observability re-exported from `pascal-telemetry`:
//!   [`TelemetryConfig`] on [`SimConfig`] switches on request-lifecycle
//!   tracing ([`TraceFormat`] JSONL or Chrome trace-event), time-series
//!   gauge sampling, and a wall-clock hot-path profiler
//!   ([`ProfileReport`]); with everything off (the default) the engine's
//!   outputs are byte-identical to an uninstrumented run.
//!
//! # Examples
//!
//! Run a small trace under PASCAL and inspect TTFT:
//!
//! ```
//! use pascal_core::{run_simulation, KvCapacityMode, SimConfig};
//! use pascal_sched::{PascalConfig, SchedPolicy};
//! use pascal_workload::{ArrivalProcess, DatasetMix, DatasetProfile, TraceBuilder};
//!
//! let trace = TraceBuilder::new(DatasetMix::single(DatasetProfile::alpaca_eval2()))
//!     .arrivals(ArrivalProcess::poisson(2.0))
//!     .count(20)
//!     .seed(1)
//!     .build();
//! let mut config = SimConfig::evaluation_cluster(SchedPolicy::pascal(PascalConfig::default()));
//! config.num_instances = 2;
//! let out = run_simulation(&trace, &config);
//! assert_eq!(out.records.len(), 20);
//! assert!(out.records.iter().all(|r| r.ttft().is_some()));
//! ```

// `deny` rather than `forbid`: the windowed parallel executor
// (`engine::parallel`) carries the crate's one audited `allow(unsafe_code)`
// for handing disjoint `&mut Shard` borrows to its worker pool. Everything
// else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
mod config;
mod engine;
pub mod experiments;
pub mod fleet;
pub mod report;
pub mod sweep;

pub use analyze::{anatomy_to_csv, anatomy_to_json, anatomy_waterfall, parse_trace_jsonl};
pub use config::{estimate_capacity_rps, KvCapacityMode, RateLevel, SimConfig};
#[doc(hidden)]
pub use engine::bench_support;
pub use engine::{run_simulation, AdmissionMode, PredictiveMigration, SimOutput};
pub use fleet::{FleetPreset, FleetSpec};
pub use pascal_federation::{FederationPolicy, WanLink};
pub use pascal_telemetry::{
    aggregate, events_to_chrome, events_to_jsonl, reconstruct, series_to_csv, series_to_json,
    AnatomyReport, BlameProfile, ProfileReport, TelemetryConfig, TelemetryOut, TraceFormat,
};
pub use sweep::{ScenarioSpec, SweepCell, SweepGrid, SweepReport, SweepRunner};
