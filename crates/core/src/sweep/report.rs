//! Machine-readable sweep results: JSON + CSV emission and JSON re-parsing.
//!
//! The JSON writer is deliberately canonical — fixed key order, fixed
//! indentation, shortest-round-trip floats — so two runs of the same grid
//! at the same seed produce byte-identical documents regardless of thread
//! count, and the determinism test can compare them with `==`. The parser
//! side ([`SweepReport::from_json`]) rebuilds full cells, which is what
//! lets the CI gate diff a fresh run against a committed baseline.

use pascal_federation::FederationPolicy;
use pascal_metrics::SweepCellMetrics;
use pascal_predict::PredictorKind;
use pascal_sched::{PolicyKind, RouterPolicy};
use pascal_workload::MixPreset;

use crate::config::RateLevel;
use crate::engine::AdmissionMode;
use crate::sweep::json::{json_f64, json_opt_f64, json_str, JsonValue};
use crate::sweep::{ScenarioSpec, SweepCell};

/// Schema version stamped into every report. Version 2 added the
/// `shards`/`router` axes and the cross-shard migration counters;
/// version 3 added the `regions`/`fed_router` axes plus the cross-region
/// migration and admission-spill counters; version 4 added the optional
/// report-level `throughput` block (aggregate engine events/sec, filled
/// only by profiled sweeps — `null` otherwise, so unprofiled reports stay
/// deterministic); version 5 added the optional per-cell `blame` block
/// (the latency-anatomy profile, emitted only by blame-enabled sweeps —
/// blame-free cells keep the historical key set).
pub const SWEEP_SCHEMA_VERSION: u64 = 5;

/// Report-level engine throughput, measured by the hot-path profiler
/// across every cell of a profiled sweep. Host-dependent by nature: it is
/// excluded from the determinism guarantee, and the CI gate compares it
/// with a far looser tolerance than the simulation metrics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepThroughput {
    /// Engine events handled across all cells.
    pub events: u64,
    /// Summed per-cell profiler wall-clock seconds (not the sweep's
    /// elapsed time — cells may run in parallel).
    pub wall_s: f64,
    /// `events / wall_s`: the aggregate single-thread events/sec figure
    /// the engine-speed work is judged against.
    pub events_per_sec: f64,
}

/// The results of one grid sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepReport {
    /// Name of the grid that produced the report.
    pub grid: String,
    /// The grid's base seed.
    pub base_seed: u64,
    /// Aggregate engine throughput (`None` unless the sweep was profiled).
    pub throughput: Option<SweepThroughput>,
    /// One executed cell per coherent grid combination, in expansion order.
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// Serializes the report as canonical JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {SWEEP_SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"grid\": {},\n", json_str(&self.grid)));
        out.push_str(&format!("  \"base_seed\": {},\n", self.base_seed));
        match &self.throughput {
            None => out.push_str("  \"throughput\": null,\n"),
            Some(t) => out.push_str(&format!(
                "  \"throughput\": {{\n    \"events\": {},\n    \"wall_s\": {},\n    \
                 \"events_per_sec\": {}\n  }},\n",
                t.events,
                json_f64(t.wall_s),
                json_f64(t.events_per_sec)
            )),
        }
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            out.push_str(&cell_json(cell));
            out.push_str(if i + 1 == self.cells.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serializes the report as CSV, one row per cell.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "label,mix,level,policy,predictor,admission_utilization,migration_benefit,\
             count,instances,shards,router,regions,fed_router,seed,rate_rps,policy_label,\
             requests,ttft_mean_s,\
             ttft_p50_s,ttft_p99_s,slo_violation_rate,mean_qoe,throughput_tokens_per_s,\
             goodput_rps,makespan_s,migrations_considered,migrations_launched,\
             migrations_vetoed,migrations_cross_shard,migrations_cross_region,\
             migrations_landed_in_cpu,\
             admission_admitted,admission_rejected,admission_spilled\n",
        );
        // Fleet columns appear only when some cell actually ran a fleet
        // preset: fleet-free reports (and the committed golden fixtures)
        // keep their historical column set byte-for-byte.
        let with_fleet = self.cells.iter().any(|c| c.spec.fleet.is_some());
        if with_fleet {
            out.truncate(out.len() - 1);
            out.push_str(
                ",fleet,requests_stranded,drain_completion_s,rebalance_moves,autoscale_actions\n",
            );
        }
        // Blame columns likewise appear only when some cell carries a
        // profile: blame-free reports keep their historical column set.
        let with_blame = self.cells.iter().any(|c| c.blame.is_some());
        if with_blame {
            out.truncate(out.len() - 1);
            out.push_str(",blame_requests,blame_mean_e2e_s,blame_p99_e2e_s");
            for name in pascal_telemetry::BLAME_COMPONENT_NAMES {
                out.push_str(&format!(",blame_{name}_mean_share"));
            }
            out.push('\n');
        }
        let opt = |x: Option<f64>| x.map_or_else(String::new, |v| format!("{v:?}"));
        for cell in &self.cells {
            let s = &cell.spec;
            let m = &cell.metrics;
            let admission = match s.admission {
                AdmissionMode::Disabled => String::new(),
                AdmissionMode::Predictive { max_utilization } => format!("{max_utilization:?}"),
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:?},{},{},{},{},{},{:?},{:?},{:?},{:?},{:?},{},{},{},{},{},{},{},{},{}",
                s.label(),
                s.mix.key(),
                s.level.key(),
                s.policy.key(),
                s.predictor.map(PredictorKind::key).unwrap_or_default(),
                admission,
                opt(s.migration_benefit),
                s.count,
                s.instances,
                s.shards,
                s.router.key(),
                s.regions,
                s.fed_router.key(),
                s.seed,
                cell.rate_rps,
                csv_field(&cell.policy_label),
                m.requests,
                opt(m.ttft_mean_s),
                opt(m.ttft_p50_s),
                opt(m.ttft_p99_s),
                m.slo_violation_rate,
                m.mean_qoe,
                m.throughput_tokens_per_s,
                m.goodput_rps,
                m.makespan_s,
                m.migrations_considered,
                m.migrations_launched,
                m.migrations_vetoed,
                m.migrations_cross_shard,
                m.migrations_cross_region,
                m.migrations_landed_in_cpu,
                m.admission_admitted,
                m.admission_rejected,
                m.admission_spilled,
            ));
            if with_fleet {
                out.push_str(&format!(
                    ",{},{},{:?},{},{}",
                    s.fleet
                        .map(crate::fleet::FleetPreset::key)
                        .unwrap_or_default(),
                    m.requests_stranded,
                    m.drain_completion_s,
                    m.rebalance_moves,
                    m.autoscale_actions,
                ));
            }
            if with_blame {
                match &cell.blame {
                    Some(b) => {
                        out.push_str(&format!(
                            ",{},{:?},{:?}",
                            b.requests, b.mean_e2e_s, b.p99_e2e_s
                        ));
                        for comp in &b.components {
                            out.push_str(&format!(",{:?}", comp.mean_share));
                        }
                    }
                    // A blame-less cell in a blame-bearing report keeps
                    // the row rectangular with empty fields.
                    None => {
                        out.push_str(&",".repeat(3 + pascal_telemetry::BLAME_COMPONENT_NAMES.len()))
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Parses a report back from its JSON serialization.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: JSON syntax,
    /// a missing field, or an unknown axis key.
    pub fn from_json(text: &str) -> Result<SweepReport, String> {
        let doc = JsonValue::parse(text)?;
        let schema = field(&doc, "schema")?
            .as_u64()
            .ok_or("schema must be an integer")?;
        if schema != SWEEP_SCHEMA_VERSION {
            return Err(format!(
                "unsupported sweep schema {schema} (expected {SWEEP_SCHEMA_VERSION})"
            ));
        }
        let grid = field(&doc, "grid")?
            .as_str()
            .ok_or("grid must be a string")?
            .to_owned();
        let base_seed = field(&doc, "base_seed")?
            .as_u64()
            .ok_or("base_seed must be an integer")?;
        let throughput = {
            let v = field(&doc, "throughput")?;
            if v.is_null() {
                None
            } else {
                Some(SweepThroughput {
                    events: int(v, "events")?,
                    wall_s: num(v, "wall_s")?,
                    events_per_sec: num(v, "events_per_sec")?,
                })
            }
        };
        let cells = field(&doc, "cells")?
            .as_array()
            .ok_or("cells must be an array")?
            .iter()
            .enumerate()
            .map(|(i, c)| parse_cell(c).map_err(|e| format!("cell {i}: {e}")))
            .collect::<Result<Vec<SweepCell>, String>>()?;
        Ok(SweepReport {
            grid,
            base_seed,
            throughput,
            cells,
        })
    }
}

/// RFC-4180 field quoting: values containing a comma, quote or newline are
/// wrapped in double quotes with inner quotes doubled. The engine's
/// decorated policy labels contain commas (e.g.
/// `PASCAL(Predictive-Oracle, CostAwareMigration)`), so the label column
/// must be quoted or those rows go ragged.
fn csv_field(value: &str) -> String {
    if value.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_owned()
    }
}

fn cell_json(cell: &SweepCell) -> String {
    let s = &cell.spec;
    let m = &cell.metrics;
    let predictor = s
        .predictor
        .map_or_else(|| "null".to_owned(), |p| json_str(p.key()));
    let admission = match s.admission {
        AdmissionMode::Disabled => "null".to_owned(),
        AdmissionMode::Predictive { max_utilization } => json_f64(max_utilization),
    };
    // The fleet axis and its metrics are serialized only for cells that
    // ran one: fleet-free cells keep the historical key set, so committed
    // golden sweep fixtures stay byte-identical. The parser treats the
    // missing keys as `None` / zero.
    let fleet_axis = s.fleet.map_or_else(String::new, |p| {
        format!("      \"fleet\": {},\n", json_str(p.key()))
    });
    let fleet_metrics = if s.fleet.is_some() {
        format!(
            ",\n        \"requests_stranded\": {},\n        \"drain_completion_s\": {},\n        \
             \"rebalance_moves\": {},\n        \"autoscale_actions\": {}",
            m.requests_stranded,
            json_f64(m.drain_completion_s),
            m.rebalance_moves,
            m.autoscale_actions
        )
    } else {
        String::new()
    };
    // The blame block follows the same conditional-key contract as the
    // fleet axis: only blame-enabled sweeps emit it, so blame-free reports
    // (including every committed fixture) keep their historical bytes.
    let blame = cell.blame.as_ref().map_or_else(String::new, |b| {
        let comps: Vec<String> = pascal_telemetry::BLAME_COMPONENT_NAMES
            .iter()
            .zip(b.components.iter())
            .map(|(name, comp)| {
                format!(
                    "          \"{name}\": {{\"mean_share\": {}, \"p99_share\": {}, \
                     \"total_ns\": {}}}",
                    json_f64(comp.mean_share),
                    json_f64(comp.p99_share),
                    comp.total_ns
                )
            })
            .collect();
        format!(
            ",\n      \"blame\": {{\n        \"requests\": {},\n        \"mean_e2e_s\": {},\n        \
             \"p99_e2e_s\": {},\n        \"components\": {{\n{}\n        }}\n      }}",
            b.requests,
            json_f64(b.mean_e2e_s),
            json_f64(b.p99_e2e_s),
            comps.join(",\n")
        )
    });
    format!(
        "    {{\n      \"label\": {label},\n      \"mix\": {mix},\n      \"level\": {level},\n      \
         \"policy\": {policy},\n      \"predictor\": {predictor},\n      \
         \"admission_utilization\": {admission},\n      \"migration_benefit\": {benefit},\n      \
         \"count\": {count},\n      \"instances\": {instances},\n      \"shards\": {shards},\n      \
         \"router\": {router},\n      \"regions\": {regions},\n      \
         \"fed_router\": {fed_router},\n{fleet_axis}      \"seed\": {seed},\n      \
         \"rate_rps\": {rate},\n      \"policy_label\": {plabel},\n      \"metrics\": {{\n        \
         \"requests\": {requests},\n        \"ttft_mean_s\": {ttft_mean},\n        \
         \"ttft_p50_s\": {ttft_p50},\n        \"ttft_p99_s\": {ttft_p99},\n        \
         \"slo_violation_rate\": {slo},\n        \"mean_qoe\": {qoe},\n        \
         \"throughput_tokens_per_s\": {tput},\n        \"goodput_rps\": {goodput},\n        \
         \"makespan_s\": {makespan},\n        \"migrations_considered\": {mig_considered},\n        \
         \"migrations_launched\": {mig_launched},\n        \"migrations_vetoed\": {mig_vetoed},\n        \
         \"migrations_cross_shard\": {mig_cross},\n        \
         \"migrations_cross_region\": {mig_cross_region},\n        \
         \"migrations_landed_in_cpu\": {mig_cpu},\n        \"admission_admitted\": {adm_ok},\n        \
         \"admission_rejected\": {adm_no},\n        \"admission_spilled\": {adm_spill}{fleet_metrics}\n      }}{blame}\n    }}",
        label = json_str(&s.label()),
        mix = json_str(s.mix.key()),
        level = json_str(s.level.key()),
        policy = json_str(s.policy.key()),
        benefit = json_opt_f64(s.migration_benefit),
        count = s.count,
        instances = s.instances,
        shards = s.shards,
        router = json_str(s.router.key()),
        regions = s.regions,
        fed_router = json_str(s.fed_router.key()),
        seed = s.seed,
        rate = json_f64(cell.rate_rps),
        plabel = json_str(&cell.policy_label),
        requests = m.requests,
        ttft_mean = json_opt_f64(m.ttft_mean_s),
        ttft_p50 = json_opt_f64(m.ttft_p50_s),
        ttft_p99 = json_opt_f64(m.ttft_p99_s),
        slo = json_f64(m.slo_violation_rate),
        qoe = json_f64(m.mean_qoe),
        tput = json_f64(m.throughput_tokens_per_s),
        goodput = json_f64(m.goodput_rps),
        makespan = json_f64(m.makespan_s),
        mig_considered = m.migrations_considered,
        mig_launched = m.migrations_launched,
        mig_vetoed = m.migrations_vetoed,
        mig_cross = m.migrations_cross_shard,
        mig_cross_region = m.migrations_cross_region,
        mig_cpu = m.migrations_landed_in_cpu,
        adm_ok = m.admission_admitted,
        adm_no = m.admission_rejected,
        adm_spill = m.admission_spilled,
    )
}

fn field<'a>(obj: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    obj.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn num(obj: &JsonValue, key: &str) -> Result<f64, String> {
    field(obj, key)?
        .as_f64()
        .ok_or_else(|| format!("'{key}' must be a number"))
}

fn int(obj: &JsonValue, key: &str) -> Result<u64, String> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("'{key}' must be a non-negative integer"))
}

fn opt_num(obj: &JsonValue, key: &str) -> Result<Option<f64>, String> {
    let v = field(obj, key)?;
    if v.is_null() {
        Ok(None)
    } else {
        v.as_f64()
            .map(Some)
            .ok_or_else(|| format!("'{key}' must be a number or null"))
    }
}

/// Integer field that fleet-free cells omit entirely: missing means zero.
fn int_or_zero(obj: &JsonValue, key: &str) -> Result<u64, String> {
    match obj.get(key) {
        None => Ok(0),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("'{key}' must be a non-negative integer")),
    }
}

/// Number field that fleet-free cells omit entirely: missing means zero.
fn num_or_zero(obj: &JsonValue, key: &str) -> Result<f64, String> {
    match obj.get(key) {
        None => Ok(0.0),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("'{key}' must be a number")),
    }
}

fn parse_cell(c: &JsonValue) -> Result<SweepCell, String> {
    let mix = MixPreset::parse(field(c, "mix")?.as_str().ok_or("'mix' must be a string")?)?;
    let level = RateLevel::parse(
        field(c, "level")?
            .as_str()
            .ok_or("'level' must be a string")?,
    )?;
    let policy = PolicyKind::parse(
        field(c, "policy")?
            .as_str()
            .ok_or("'policy' must be a string")?,
    )?;
    let predictor = {
        let v = field(c, "predictor")?;
        if v.is_null() {
            None
        } else {
            Some(PredictorKind::parse(
                v.as_str().ok_or("'predictor' must be a string or null")?,
            )?)
        }
    };
    let admission = match opt_num(c, "admission_utilization")? {
        None => AdmissionMode::Disabled,
        Some(max_utilization) => AdmissionMode::Predictive { max_utilization },
    };
    // Cells serialized before the fleet axis existed (and fleet-free cells
    // since) carry no "fleet" key at all.
    let fleet = match c.get("fleet") {
        None => None,
        Some(v) => Some(crate::fleet::FleetPreset::parse(
            v.as_str().ok_or("'fleet' must be a string")?,
        )?),
    };
    let spec = ScenarioSpec {
        mix,
        level,
        policy,
        predictor,
        admission,
        migration_benefit: opt_num(c, "migration_benefit")?,
        count: int(c, "count")? as usize,
        instances: int(c, "instances")? as usize,
        shards: int(c, "shards")? as usize,
        router: RouterPolicy::parse(
            field(c, "router")?
                .as_str()
                .ok_or("'router' must be a string")?,
        )?,
        regions: int(c, "regions")? as usize,
        fed_router: FederationPolicy::parse(
            field(c, "fed_router")?
                .as_str()
                .ok_or("'fed_router' must be a string")?,
        )?,
        fleet,
        seed: int(c, "seed")?,
    };
    let metrics_obj = field(c, "metrics")?;
    let metrics = SweepCellMetrics {
        requests: int(metrics_obj, "requests")? as usize,
        ttft_mean_s: opt_num(metrics_obj, "ttft_mean_s")?,
        ttft_p50_s: opt_num(metrics_obj, "ttft_p50_s")?,
        ttft_p99_s: opt_num(metrics_obj, "ttft_p99_s")?,
        slo_violation_rate: num(metrics_obj, "slo_violation_rate")?,
        mean_qoe: num(metrics_obj, "mean_qoe")?,
        throughput_tokens_per_s: num(metrics_obj, "throughput_tokens_per_s")?,
        goodput_rps: num(metrics_obj, "goodput_rps")?,
        makespan_s: num(metrics_obj, "makespan_s")?,
        migrations_considered: int(metrics_obj, "migrations_considered")?,
        migrations_launched: int(metrics_obj, "migrations_launched")?,
        migrations_vetoed: int(metrics_obj, "migrations_vetoed")?,
        migrations_cross_shard: int(metrics_obj, "migrations_cross_shard")?,
        migrations_cross_region: int(metrics_obj, "migrations_cross_region")?,
        migrations_landed_in_cpu: int(metrics_obj, "migrations_landed_in_cpu")?,
        admission_admitted: int(metrics_obj, "admission_admitted")?,
        admission_rejected: int(metrics_obj, "admission_rejected")?,
        admission_spilled: int(metrics_obj, "admission_spilled")?,
        requests_stranded: int_or_zero(metrics_obj, "requests_stranded")?,
        drain_completion_s: num_or_zero(metrics_obj, "drain_completion_s")?,
        rebalance_moves: int_or_zero(metrics_obj, "rebalance_moves")?,
        autoscale_actions: int_or_zero(metrics_obj, "autoscale_actions")?,
    };
    // Blame-free cells (every report before schema 5, and unblamed cells
    // since) carry no "blame" key at all.
    let blame = match c.get("blame") {
        None => None,
        Some(v) => {
            let mut profile = pascal_telemetry::BlameProfile {
                requests: int(v, "requests")?,
                mean_e2e_s: num(v, "mean_e2e_s")?,
                p99_e2e_s: num(v, "p99_e2e_s")?,
                components: Default::default(),
            };
            let comps = field(v, "components")?;
            for (name, slot) in pascal_telemetry::BLAME_COMPONENT_NAMES
                .iter()
                .zip(profile.components.iter_mut())
            {
                let cv = field(comps, name)?;
                slot.mean_share = num(cv, "mean_share")?;
                slot.p99_share = num(cv, "p99_share")?;
                slot.total_ns = int(cv, "total_ns")?;
            }
            Some(profile)
        }
    };
    Ok(SweepCell {
        spec,
        rate_rps: num(c, "rate_rps")?,
        policy_label: field(c, "policy_label")?
            .as_str()
            .ok_or("'policy_label' must be a string")?
            .to_owned(),
        metrics,
        blame,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{ScenarioSpec, SweepGrid, SweepRunner};
    use proptest::prelude::*;

    fn tiny_report() -> SweepReport {
        let mut grid = SweepGrid::preset("ci").expect("preset exists");
        grid.count = 30;
        grid.instances = 2;
        SweepRunner::new(2).run_grid(&grid)
    }

    /// Builds one report cell from raw entropy: every axis exercised,
    /// including full-range `u64` seeds and awkward labels. Deterministic
    /// in its inputs.
    fn arbitrary_cell(x: u64, f: f64) -> SweepCell {
        use pascal_workload::MixPreset;
        let pick = |shift: u32, n: u64| ((x >> shift) % n) as usize;
        let shards = [1usize, 2, 4][pick(0, 3)];
        let regions = [1usize, 2][pick(32, 2)];
        // `None` keeps the legacy serialization path (no fleet keys) under
        // test alongside the three presets.
        let fleet = [
            None,
            Some(crate::fleet::FleetPreset::Outage),
            Some(crate::fleet::FleetPreset::FlashCrowd),
            Some(crate::fleet::FleetPreset::Diurnal),
        ][pick(36, 4)];
        let spec = ScenarioSpec {
            mix: MixPreset::ALL[pick(2, 7)],
            level: crate::config::RateLevel::ALL[pick(5, 3)],
            policy: PolicyKind::ALL[pick(7, 5)],
            predictor: [
                None,
                Some(PredictorKind::Oracle),
                Some(PredictorKind::ProfileEma),
                Some(PredictorKind::PairwiseRank),
                Some(PredictorKind::Quantile),
            ][pick(10, 5)],
            admission: if x & (1 << 12) == 0 {
                crate::engine::AdmissionMode::Disabled
            } else {
                crate::engine::AdmissionMode::Predictive {
                    max_utilization: 0.25 + f.fract(),
                }
            },
            migration_benefit: (x & (1 << 13) != 0).then_some(f * 0.5 + 1.0),
            count: 1 + pick(14, 5000),
            instances: regions * shards * (1 + pick(27, 4)),
            shards,
            router: RouterPolicy::ALL[pick(30, 3)],
            regions,
            fed_router: pascal_federation::FederationPolicy::ALL[pick(34, 3)],
            fleet,
            // The raw entropy word: seeds must survive the full u64 range.
            seed: x,
        };
        let opt = |bit: u32, v: f64| (x & (1 << bit) != 0).then_some(v);
        let metrics = SweepCellMetrics {
            requests: pick(33, 10_000),
            ttft_mean_s: opt(40, f * 0.5),
            ttft_p50_s: opt(41, f * 0.25),
            ttft_p99_s: opt(42, f * 4.0),
            slo_violation_rate: f.fract(),
            mean_qoe: (f * 3.0).fract(),
            throughput_tokens_per_s: f * 17.0,
            goodput_rps: f * 0.01,
            makespan_s: f * 100.0,
            migrations_considered: x % 1000,
            migrations_launched: x % 500,
            migrations_vetoed: x % 77,
            migrations_cross_shard: x % 33,
            migrations_cross_region: x % 13,
            migrations_landed_in_cpu: x % 5,
            admission_admitted: x % 10_000,
            admission_rejected: x % 99,
            admission_spilled: x % 17,
            // Fleet-free cells omit these keys, so round-trip equality
            // requires them to hold the parser's zero defaults.
            requests_stranded: if fleet.is_some() { x % 23 } else { 0 },
            drain_completion_s: if fleet.is_some() { f * 0.125 } else { 0.0 },
            rebalance_moves: if fleet.is_some() { x % 41 } else { 0 },
            autoscale_actions: if fleet.is_some() { x % 9 } else { 0 },
        };
        // Half the cells carry a blame profile so both serialization paths
        // round-trip; shares exercise awkward float fractions.
        let blame = (x & (1 << 44) != 0).then(|| {
            let mut profile = pascal_telemetry::BlameProfile {
                requests: x % 4321,
                mean_e2e_s: f * 0.75,
                p99_e2e_s: f * 2.5,
                components: Default::default(),
            };
            for (i, comp) in profile.components.iter_mut().enumerate() {
                comp.mean_share = ((f + i as f64) * 0.37).fract();
                comp.p99_share = ((f + i as f64) * 0.71).fract();
                comp.total_ns = x.wrapping_mul(i as u64 + 1) % 1_000_000_007;
            }
            profile
        });
        SweepCell {
            spec,
            rate_rps: f,
            policy_label: [
                "PASCAL".to_owned(),
                "PASCAL(Predictive-Oracle, CostAwareMigration)".to_owned(),
                "odd \"label\"\twith\nescapes\\".to_owned(),
                "RR+PredictiveAdmission".to_owned(),
            ][pick(50, 4)]
            .clone(),
            metrics,
            blame,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Any SweepReport-shaped value — arbitrary axes, full-range u64
        /// seeds, escaped labels — serializes, parses and re-serializes
        /// byte-identically.
        #[test]
        fn prop_sweep_json_round_trips_byte_identically(
            base_seed in any::<u64>(),
            entropy in collection::vec((any::<u64>(), 0.0f64..1.0e9), 1..7),
        ) {
            let report = SweepReport {
                grid: ["ci", "sharded", "ci+sharded", "grid \"x\"+y"]
                    [(base_seed % 4) as usize]
                    .to_owned(),
                base_seed,
                // Exercise both the profiled and unprofiled serializations.
                throughput: (base_seed % 2 == 0).then_some(SweepThroughput {
                    events: base_seed >> 3,
                    wall_s: (base_seed % 1000) as f64 * 0.25 + 0.001,
                    events_per_sec: (base_seed % 7_000_000) as f64,
                }),
                cells: entropy.iter().map(|&(x, f)| arbitrary_cell(x, f)).collect(),
            };
            let json = report.to_json();
            let back = match SweepReport::from_json(&json) {
                Ok(back) => back,
                Err(e) => return Err(format!("own JSON rejected: {e}")),
            };
            prop_assert_eq!(&back, &report);
            prop_assert_eq!(back.to_json(), json);
            // The exact-u64 path: seeds survive even beyond f64's 2^53
            // window.
            for (cell, &(x, _)) in back.cells.iter().zip(&entropy) {
                prop_assert_eq!(cell.spec.seed, x);
            }
        }
    }

    #[test]
    fn json_round_trips_bit_for_bit() {
        let report = tiny_report();
        let json = report.to_json();
        let back = SweepReport::from_json(&json).expect("own output parses");
        assert_eq!(back, report, "parse(to_json(r)) == r");
        assert_eq!(back.to_json(), json, "re-serialization is byte-identical");
    }

    /// RFC-4180-aware field count: commas inside quoted fields don't split.
    fn csv_fields(line: &str) -> usize {
        let mut fields = 1;
        let mut in_quotes = false;
        for c in line.chars() {
            match c {
                '"' => in_quotes = !in_quotes,
                ',' if !in_quotes => fields += 1,
                _ => {}
            }
        }
        fields
    }

    #[test]
    fn csv_has_one_row_per_cell_and_matching_columns() {
        let report = tiny_report();
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), report.cells.len() + 1);
        let cols = csv_fields(lines[0]);
        for row in &lines[1..] {
            assert_eq!(csv_fields(row), cols, "ragged row: {row}");
        }
    }

    #[test]
    fn csv_quotes_comma_bearing_policy_labels() {
        // The engine decorates cost-aware cells with a comma in the label
        // (`PASCAL(Predictive-Oracle, CostAwareMigration)`); the CSV must
        // quote it or every later column shifts by one.
        let mut report = tiny_report();
        report.cells[0].policy_label = "PASCAL(Predictive-Oracle, CostAwareMigration)".to_owned();
        let csv = report.to_csv();
        assert!(
            csv.contains("\"PASCAL(Predictive-Oracle, CostAwareMigration)\""),
            "comma-bearing label must be quoted"
        );
        let lines: Vec<&str> = csv.lines().collect();
        let cols = csv_fields(lines[0]);
        for row in &lines[1..] {
            assert_eq!(csv_fields(row), cols, "ragged row: {row}");
        }
    }

    #[test]
    fn schema_mismatch_and_corruption_are_rejected() {
        let report = tiny_report();
        let json = report.to_json();
        let wrong_schema = json.replacen("\"schema\": 5", "\"schema\": 99", 1);
        assert!(SweepReport::from_json(&wrong_schema)
            .expect_err("wrong schema")
            .contains("schema"));
        assert!(SweepReport::from_json("{not json").is_err());
        let bad_policy = json.replacen("\"policy\": \"fcfs\"", "\"policy\": \"sjf\"", 1);
        assert!(SweepReport::from_json(&bad_policy).is_err());
    }
}
