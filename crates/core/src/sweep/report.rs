//! Machine-readable sweep results: JSON + CSV emission and JSON re-parsing.
//!
//! The JSON writer is deliberately canonical — fixed key order, fixed
//! indentation, shortest-round-trip floats — so two runs of the same grid
//! at the same seed produce byte-identical documents regardless of thread
//! count, and the determinism test can compare them with `==`. The parser
//! side ([`SweepReport::from_json`]) rebuilds full cells, which is what
//! lets the CI gate diff a fresh run against a committed baseline.

use pascal_metrics::SweepCellMetrics;
use pascal_predict::PredictorKind;
use pascal_sched::PolicyKind;
use pascal_workload::MixPreset;

use crate::config::RateLevel;
use crate::engine::AdmissionMode;
use crate::sweep::json::{json_f64, json_opt_f64, json_str, JsonValue};
use crate::sweep::{ScenarioSpec, SweepCell};

/// Schema version stamped into every report.
pub const SWEEP_SCHEMA_VERSION: u64 = 1;

/// The results of one grid sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepReport {
    /// Name of the grid that produced the report.
    pub grid: String,
    /// The grid's base seed.
    pub base_seed: u64,
    /// One executed cell per coherent grid combination, in expansion order.
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// Serializes the report as canonical JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {SWEEP_SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"grid\": {},\n", json_str(&self.grid)));
        out.push_str(&format!("  \"base_seed\": {},\n", self.base_seed));
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            out.push_str(&cell_json(cell));
            out.push_str(if i + 1 == self.cells.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serializes the report as CSV, one row per cell.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "label,mix,level,policy,predictor,admission_utilization,migration_benefit,\
             count,instances,seed,rate_rps,policy_label,requests,ttft_mean_s,ttft_p50_s,\
             ttft_p99_s,slo_violation_rate,mean_qoe,throughput_tokens_per_s,goodput_rps,\
             makespan_s,migrations_considered,migrations_launched,migrations_vetoed,\
             migrations_landed_in_cpu,admission_admitted,admission_rejected\n",
        );
        let opt = |x: Option<f64>| x.map_or_else(String::new, |v| format!("{v:?}"));
        for cell in &self.cells {
            let s = &cell.spec;
            let m = &cell.metrics;
            let admission = match s.admission {
                AdmissionMode::Disabled => String::new(),
                AdmissionMode::Predictive { max_utilization } => format!("{max_utilization:?}"),
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{:?},{},{},{},{},{},{:?},{:?},{:?},{:?},{:?},{},{},{},{},{},{}\n",
                s.label(),
                s.mix.key(),
                s.level.key(),
                s.policy.key(),
                s.predictor.map(PredictorKind::key).unwrap_or_default(),
                admission,
                opt(s.migration_benefit),
                s.count,
                s.instances,
                s.seed,
                cell.rate_rps,
                csv_field(&cell.policy_label),
                m.requests,
                opt(m.ttft_mean_s),
                opt(m.ttft_p50_s),
                opt(m.ttft_p99_s),
                m.slo_violation_rate,
                m.mean_qoe,
                m.throughput_tokens_per_s,
                m.goodput_rps,
                m.makespan_s,
                m.migrations_considered,
                m.migrations_launched,
                m.migrations_vetoed,
                m.migrations_landed_in_cpu,
                m.admission_admitted,
                m.admission_rejected,
            ));
        }
        out
    }

    /// Parses a report back from its JSON serialization.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: JSON syntax,
    /// a missing field, or an unknown axis key.
    pub fn from_json(text: &str) -> Result<SweepReport, String> {
        let doc = JsonValue::parse(text)?;
        let schema = field(&doc, "schema")?
            .as_u64()
            .ok_or("schema must be an integer")?;
        if schema != SWEEP_SCHEMA_VERSION {
            return Err(format!(
                "unsupported sweep schema {schema} (expected {SWEEP_SCHEMA_VERSION})"
            ));
        }
        let grid = field(&doc, "grid")?
            .as_str()
            .ok_or("grid must be a string")?
            .to_owned();
        let base_seed = field(&doc, "base_seed")?
            .as_u64()
            .ok_or("base_seed must be an integer")?;
        let cells = field(&doc, "cells")?
            .as_array()
            .ok_or("cells must be an array")?
            .iter()
            .enumerate()
            .map(|(i, c)| parse_cell(c).map_err(|e| format!("cell {i}: {e}")))
            .collect::<Result<Vec<SweepCell>, String>>()?;
        Ok(SweepReport {
            grid,
            base_seed,
            cells,
        })
    }
}

/// RFC-4180 field quoting: values containing a comma, quote or newline are
/// wrapped in double quotes with inner quotes doubled. The engine's
/// decorated policy labels contain commas (e.g.
/// `PASCAL(Predictive-Oracle, CostAwareMigration)`), so the label column
/// must be quoted or those rows go ragged.
fn csv_field(value: &str) -> String {
    if value.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_owned()
    }
}

fn cell_json(cell: &SweepCell) -> String {
    let s = &cell.spec;
    let m = &cell.metrics;
    let predictor = s
        .predictor
        .map_or_else(|| "null".to_owned(), |p| json_str(p.key()));
    let admission = match s.admission {
        AdmissionMode::Disabled => "null".to_owned(),
        AdmissionMode::Predictive { max_utilization } => json_f64(max_utilization),
    };
    format!(
        "    {{\n      \"label\": {label},\n      \"mix\": {mix},\n      \"level\": {level},\n      \
         \"policy\": {policy},\n      \"predictor\": {predictor},\n      \
         \"admission_utilization\": {admission},\n      \"migration_benefit\": {benefit},\n      \
         \"count\": {count},\n      \"instances\": {instances},\n      \"seed\": {seed},\n      \
         \"rate_rps\": {rate},\n      \"policy_label\": {plabel},\n      \"metrics\": {{\n        \
         \"requests\": {requests},\n        \"ttft_mean_s\": {ttft_mean},\n        \
         \"ttft_p50_s\": {ttft_p50},\n        \"ttft_p99_s\": {ttft_p99},\n        \
         \"slo_violation_rate\": {slo},\n        \"mean_qoe\": {qoe},\n        \
         \"throughput_tokens_per_s\": {tput},\n        \"goodput_rps\": {goodput},\n        \
         \"makespan_s\": {makespan},\n        \"migrations_considered\": {mig_considered},\n        \
         \"migrations_launched\": {mig_launched},\n        \"migrations_vetoed\": {mig_vetoed},\n        \
         \"migrations_landed_in_cpu\": {mig_cpu},\n        \"admission_admitted\": {adm_ok},\n        \
         \"admission_rejected\": {adm_no}\n      }}\n    }}",
        label = json_str(&s.label()),
        mix = json_str(s.mix.key()),
        level = json_str(s.level.key()),
        policy = json_str(s.policy.key()),
        benefit = json_opt_f64(s.migration_benefit),
        count = s.count,
        instances = s.instances,
        seed = s.seed,
        rate = json_f64(cell.rate_rps),
        plabel = json_str(&cell.policy_label),
        requests = m.requests,
        ttft_mean = json_opt_f64(m.ttft_mean_s),
        ttft_p50 = json_opt_f64(m.ttft_p50_s),
        ttft_p99 = json_opt_f64(m.ttft_p99_s),
        slo = json_f64(m.slo_violation_rate),
        qoe = json_f64(m.mean_qoe),
        tput = json_f64(m.throughput_tokens_per_s),
        goodput = json_f64(m.goodput_rps),
        makespan = json_f64(m.makespan_s),
        mig_considered = m.migrations_considered,
        mig_launched = m.migrations_launched,
        mig_vetoed = m.migrations_vetoed,
        mig_cpu = m.migrations_landed_in_cpu,
        adm_ok = m.admission_admitted,
        adm_no = m.admission_rejected,
    )
}

fn field<'a>(obj: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    obj.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn num(obj: &JsonValue, key: &str) -> Result<f64, String> {
    field(obj, key)?
        .as_f64()
        .ok_or_else(|| format!("'{key}' must be a number"))
}

fn int(obj: &JsonValue, key: &str) -> Result<u64, String> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("'{key}' must be a non-negative integer"))
}

fn opt_num(obj: &JsonValue, key: &str) -> Result<Option<f64>, String> {
    let v = field(obj, key)?;
    if v.is_null() {
        Ok(None)
    } else {
        v.as_f64()
            .map(Some)
            .ok_or_else(|| format!("'{key}' must be a number or null"))
    }
}

fn parse_cell(c: &JsonValue) -> Result<SweepCell, String> {
    let mix = MixPreset::parse(field(c, "mix")?.as_str().ok_or("'mix' must be a string")?)?;
    let level = RateLevel::parse(
        field(c, "level")?
            .as_str()
            .ok_or("'level' must be a string")?,
    )?;
    let policy = PolicyKind::parse(
        field(c, "policy")?
            .as_str()
            .ok_or("'policy' must be a string")?,
    )?;
    let predictor = {
        let v = field(c, "predictor")?;
        if v.is_null() {
            None
        } else {
            Some(PredictorKind::parse(
                v.as_str().ok_or("'predictor' must be a string or null")?,
            )?)
        }
    };
    let admission = match opt_num(c, "admission_utilization")? {
        None => AdmissionMode::Disabled,
        Some(max_utilization) => AdmissionMode::Predictive { max_utilization },
    };
    let spec = ScenarioSpec {
        mix,
        level,
        policy,
        predictor,
        admission,
        migration_benefit: opt_num(c, "migration_benefit")?,
        count: int(c, "count")? as usize,
        instances: int(c, "instances")? as usize,
        seed: int(c, "seed")?,
    };
    let metrics_obj = field(c, "metrics")?;
    let metrics = SweepCellMetrics {
        requests: int(metrics_obj, "requests")? as usize,
        ttft_mean_s: opt_num(metrics_obj, "ttft_mean_s")?,
        ttft_p50_s: opt_num(metrics_obj, "ttft_p50_s")?,
        ttft_p99_s: opt_num(metrics_obj, "ttft_p99_s")?,
        slo_violation_rate: num(metrics_obj, "slo_violation_rate")?,
        mean_qoe: num(metrics_obj, "mean_qoe")?,
        throughput_tokens_per_s: num(metrics_obj, "throughput_tokens_per_s")?,
        goodput_rps: num(metrics_obj, "goodput_rps")?,
        makespan_s: num(metrics_obj, "makespan_s")?,
        migrations_considered: int(metrics_obj, "migrations_considered")?,
        migrations_launched: int(metrics_obj, "migrations_launched")?,
        migrations_vetoed: int(metrics_obj, "migrations_vetoed")?,
        migrations_landed_in_cpu: int(metrics_obj, "migrations_landed_in_cpu")?,
        admission_admitted: int(metrics_obj, "admission_admitted")?,
        admission_rejected: int(metrics_obj, "admission_rejected")?,
    };
    Ok(SweepCell {
        spec,
        rate_rps: num(c, "rate_rps")?,
        policy_label: field(c, "policy_label")?
            .as_str()
            .ok_or("'policy_label' must be a string")?
            .to_owned(),
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{SweepGrid, SweepRunner};

    fn tiny_report() -> SweepReport {
        let mut grid = SweepGrid::preset("ci").expect("preset exists");
        grid.count = 30;
        grid.instances = 2;
        SweepRunner::new(2).run_grid(&grid)
    }

    #[test]
    fn json_round_trips_bit_for_bit() {
        let report = tiny_report();
        let json = report.to_json();
        let back = SweepReport::from_json(&json).expect("own output parses");
        assert_eq!(back, report, "parse(to_json(r)) == r");
        assert_eq!(back.to_json(), json, "re-serialization is byte-identical");
    }

    /// RFC-4180-aware field count: commas inside quoted fields don't split.
    fn csv_fields(line: &str) -> usize {
        let mut fields = 1;
        let mut in_quotes = false;
        for c in line.chars() {
            match c {
                '"' => in_quotes = !in_quotes,
                ',' if !in_quotes => fields += 1,
                _ => {}
            }
        }
        fields
    }

    #[test]
    fn csv_has_one_row_per_cell_and_matching_columns() {
        let report = tiny_report();
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), report.cells.len() + 1);
        let cols = csv_fields(lines[0]);
        for row in &lines[1..] {
            assert_eq!(csv_fields(row), cols, "ragged row: {row}");
        }
    }

    #[test]
    fn csv_quotes_comma_bearing_policy_labels() {
        // The engine decorates cost-aware cells with a comma in the label
        // (`PASCAL(Predictive-Oracle, CostAwareMigration)`); the CSV must
        // quote it or every later column shifts by one.
        let mut report = tiny_report();
        report.cells[0].policy_label = "PASCAL(Predictive-Oracle, CostAwareMigration)".to_owned();
        let csv = report.to_csv();
        assert!(
            csv.contains("\"PASCAL(Predictive-Oracle, CostAwareMigration)\""),
            "comma-bearing label must be quoted"
        );
        let lines: Vec<&str> = csv.lines().collect();
        let cols = csv_fields(lines[0]);
        for row in &lines[1..] {
            assert_eq!(csv_fields(row), cols, "ragged row: {row}");
        }
    }

    #[test]
    fn schema_mismatch_and_corruption_are_rejected() {
        let report = tiny_report();
        let json = report.to_json();
        let wrong_schema = json.replacen("\"schema\": 1", "\"schema\": 99", 1);
        assert!(SweepReport::from_json(&wrong_schema)
            .expect_err("wrong schema")
            .contains("schema"));
        assert!(SweepReport::from_json("{not json").is_err());
        let bad_policy = json.replacen("\"policy\": \"fcfs\"", "\"policy\": \"sjf\"", 1);
        assert!(SweepReport::from_json(&bad_policy).is_err());
    }
}
