//! Declarative sweep grids and their named presets.

use pascal_federation::FederationPolicy;
use pascal_predict::PredictorKind;
use pascal_sched::{PolicyKind, RouterPolicy};
use pascal_workload::MixPreset;

use crate::config::RateLevel;
use crate::engine::AdmissionMode;
use crate::fleet::FleetPreset;
use crate::sweep::ScenarioSpec;

/// A declarative cross-product of scenario axes.
///
/// [`SweepGrid::expand`] enumerates the product mix-major (mix → level →
/// policy → predictor → admission → migration benefit), skipping
/// combinations that are incoherent (the cost test without absolute
/// estimates) or redundant (a predictor attached to a baseline policy with
/// every predictive controller off — behaviorally identical to the plain
/// baseline, so running it would only duplicate a cell).
#[derive(Clone, Debug)]
pub struct SweepGrid {
    /// Grid name, recorded in the report.
    pub name: String,
    /// Workload mixes.
    pub mixes: Vec<MixPreset>,
    /// Arrival-rate levels.
    pub levels: Vec<RateLevel>,
    /// Scheduler variants.
    pub policies: Vec<PolicyKind>,
    /// Length predictors (`None` = reactive).
    pub predictors: Vec<Option<PredictorKind>>,
    /// Admission-control modes.
    pub admissions: Vec<AdmissionMode>,
    /// Predictive-migration benefit ratios (`None` = reactive).
    pub migration_benefits: Vec<Option<f64>>,
    /// Requests per cell trace.
    pub count: usize,
    /// Cluster size per cell (aggregate over shards — fixed capacity as
    /// the shard count varies).
    pub instances: usize,
    /// Shard counts. Cells with one shard collapse the router axis (the
    /// router is never consulted), keeping only the first router.
    pub shard_counts: Vec<usize>,
    /// Cross-shard routers.
    pub routers: Vec<RouterPolicy>,
    /// Region counts. Cells with one region collapse the federation-router
    /// axis, keeping only the first federation router.
    pub region_counts: Vec<usize>,
    /// Cross-region federation routers.
    pub fed_routers: Vec<FederationPolicy>,
    /// Fleet-event presets (`None` = static fleet).
    pub fleets: Vec<Option<FleetPreset>>,
    /// Base seed; per-cell trace seeds are derived from it (see
    /// [`derive_trace_seed`]).
    pub base_seed: u64,
}

impl SweepGrid {
    /// An empty grid with the evaluation defaults: reactive scheduler
    /// (no predictor, controllers off), eight instances, seed 2026.
    #[must_use]
    pub fn new(name: &str) -> Self {
        SweepGrid {
            name: name.to_owned(),
            mixes: Vec::new(),
            levels: Vec::new(),
            policies: Vec::new(),
            predictors: vec![None],
            admissions: vec![AdmissionMode::Disabled],
            migration_benefits: vec![None],
            count: 1000,
            instances: 8,
            shard_counts: vec![1],
            routers: vec![RouterPolicy::RoundRobin],
            region_counts: vec![1],
            fed_routers: vec![FederationPolicy::Static],
            fleets: vec![None],
            base_seed: 2026,
        }
    }

    /// The available preset names, in presentation order.
    pub const PRESET_NAMES: [&'static str; 9] = [
        "main",
        "predictive",
        "migration",
        "ci",
        "sharded",
        "federated",
        "chaos",
        "stress",
        "stress-smoke",
    ];

    /// A named grid preset.
    ///
    /// * `main` — the paper's main evaluation: chat mixes × all rates ×
    ///   the three schedulers (18 cells at 2500 requests);
    /// * `predictive` — reactive PASCAL vs the three predictors on the
    ///   chat and reasoning-heavy mixes at high rate (8 cells);
    /// * `migration` — the predictive-migration cost/benefit sweep on
    ///   Arena-Hard at high rate (5 cells);
    /// * `ci` — the smoke-sized grid the CI perf-regression gate runs:
    ///   both chat mixes at high rate under FCFS/RR/PASCAL plus
    ///   Oracle-predictive PASCAL, 120 requests per cell (8 cells);
    /// * `sharded` — the shard-scaling cross-product: PASCAL (reactive
    ///   and Oracle-predicted) on the mixed trace at medium/high rate,
    ///   1/2/4 shards at fixed aggregate capacity × the three routers
    ///   (28 cells; each one-shard anchor keeps a single router cell
    ///   since routing is a no-op there);
    /// * `federated` — the region-scaling cross-product: PASCAL (reactive
    ///   and Oracle-predicted) on the reasoning-heavy mix at high rate,
    ///   1/2/4 regions at fixed aggregate capacity × the three federation
    ///   routers (14 cells; one-region anchors collapse the
    ///   federation-router axis). Origins follow the harmonic skew, so
    ///   `static` really does overload the hot region.
    /// * `chaos` — the elasticity-under-failure grid: quantile-predicted
    ///   PASCAL on the mixed trace at high rate across two regions, static
    ///   vs predictive federation routing × the three fleet presets
    ///   (region outage, flash crowd, diurnal) — 6 cells at 120 requests,
    ///   sized for the CI perf gate like `ci`;
    /// * `stress` — the engine-capacity cell: ten million mixed-trace
    ///   requests on a 128-instance cluster split into 64 shards under
    ///   PASCAL (1 cell). Minutes of wall clock even after the slab +
    ///   calendar-queue overhaul; run it deliberately, never in CI;
    /// * `stress-smoke` — the same 64-shard × 128-instance topology with
    ///   the trace scaled down to 2000 requests (1 cell): the CI-sized
    ///   proof that the stress configuration schedules, migrates and
    ///   drains correctly.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid preset names.
    pub fn preset(name: &str) -> Result<SweepGrid, String> {
        let mut grid = SweepGrid::new(name);
        match name {
            "main" => {
                grid.mixes = vec![MixPreset::Alpaca, MixPreset::Arena];
                grid.levels = RateLevel::ALL.to_vec();
                grid.policies = PolicyKind::MAIN.to_vec();
                grid.count = 2500;
            }
            "predictive" => {
                grid.mixes = vec![MixPreset::Arena, MixPreset::ReasoningHeavy];
                grid.levels = vec![RateLevel::High];
                grid.policies = vec![PolicyKind::Pascal];
                grid.predictors = vec![
                    None,
                    Some(PredictorKind::Oracle),
                    Some(PredictorKind::ProfileEma),
                    Some(PredictorKind::PairwiseRank),
                    Some(PredictorKind::Quantile),
                ];
                grid.count = 2000;
            }
            "migration" => {
                grid.mixes = vec![MixPreset::Arena];
                grid.levels = vec![RateLevel::High];
                grid.policies = vec![PolicyKind::Pascal];
                grid.predictors = vec![
                    None,
                    Some(PredictorKind::Oracle),
                    Some(PredictorKind::ProfileEma),
                ];
                grid.migration_benefits = vec![None, Some(1000.0)];
                grid.count = 2000;
            }
            "ci" => {
                grid.mixes = vec![MixPreset::Alpaca, MixPreset::Arena];
                grid.levels = vec![RateLevel::High];
                grid.policies = PolicyKind::MAIN.to_vec();
                grid.predictors = vec![None, Some(PredictorKind::Oracle)];
                grid.count = 120;
            }
            "sharded" => {
                grid.mixes = vec![MixPreset::Mixed];
                grid.levels = vec![RateLevel::Medium, RateLevel::High];
                grid.policies = vec![PolicyKind::Pascal];
                grid.shard_counts = vec![1, 2, 4];
                grid.routers = RouterPolicy::ALL.to_vec();
                // The Oracle axis makes the predictive router's
                // distinguishing path — predictor-informed shard ranking —
                // an actually-gated code path, not a least-loaded alias.
                grid.predictors = vec![None, Some(PredictorKind::Oracle)];
                grid.count = 120;
            }
            "federated" => {
                grid.mixes = vec![MixPreset::ReasoningHeavy];
                grid.levels = vec![RateLevel::High];
                grid.policies = vec![PolicyKind::Pascal];
                grid.region_counts = vec![1, 2, 4];
                grid.fed_routers = FederationPolicy::ALL.to_vec();
                // Oracle makes the predictive federation router's
                // distinguishing input — predicted per-region footprints —
                // a real signal rather than a least-loaded alias.
                grid.predictors = vec![None, Some(PredictorKind::Oracle)];
                grid.count = 120;
            }
            "chaos" => {
                grid.mixes = vec![MixPreset::Mixed];
                grid.levels = vec![RateLevel::High];
                grid.policies = vec![PolicyKind::Pascal];
                // Quantile is the predictor the autoscaler's load forecast
                // rides; the preset keeps it on every cell so the
                // comparison across fleet presets is a fleet comparison.
                grid.predictors = vec![Some(PredictorKind::Quantile)];
                grid.region_counts = vec![2];
                grid.fed_routers = vec![FederationPolicy::Static, FederationPolicy::Predictive];
                grid.fleets = vec![
                    Some(FleetPreset::Outage),
                    Some(FleetPreset::FlashCrowd),
                    Some(FleetPreset::Diurnal),
                ];
                grid.count = 120;
            }
            "stress" | "stress-smoke" => {
                grid.mixes = vec![MixPreset::Mixed];
                grid.levels = vec![RateLevel::High];
                grid.policies = vec![PolicyKind::Pascal];
                grid.instances = 128;
                grid.shard_counts = vec![64];
                grid.routers = vec![RouterPolicy::LeastLoaded];
                grid.count = if name == "stress" { 10_000_000 } else { 2000 };
            }
            other => {
                return Err(format!(
                    "unknown grid preset '{other}' (valid: {})",
                    SweepGrid::PRESET_NAMES.join(", ")
                ));
            }
        }
        Ok(grid)
    }

    /// Expands the grid into coherent cells, mix-major, each with its
    /// derived trace seed.
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty — an empty grid is a bug, not a sweep
    /// of zero cells.
    #[must_use]
    pub fn expand(&self) -> Vec<ScenarioSpec> {
        for (axis, len) in [
            ("mixes", self.mixes.len()),
            ("levels", self.levels.len()),
            ("policies", self.policies.len()),
            ("predictors", self.predictors.len()),
            ("admissions", self.admissions.len()),
            ("migration_benefits", self.migration_benefits.len()),
            ("shard_counts", self.shard_counts.len()),
            ("routers", self.routers.len()),
            ("region_counts", self.region_counts.len()),
            ("fed_routers", self.fed_routers.len()),
            ("fleets", self.fleets.len()),
        ] {
            assert!(len > 0, "grid '{}' has an empty {axis} axis", self.name);
        }
        let mut cells = Vec::new();
        for &mix in &self.mixes {
            for &level in &self.levels {
                let seed =
                    derive_trace_seed(self.base_seed, mix, level, self.count, self.instances);
                for &policy in &self.policies {
                    for &predictor in &self.predictors {
                        for &admission in &self.admissions {
                            for &benefit in &self.migration_benefits {
                                for &shards in &self.shard_counts {
                                    for &router in &self.routers {
                                        for &regions in &self.region_counts {
                                            for &fed_router in &self.fed_routers {
                                                for &fleet in &self.fleets {
                                                    let spec = ScenarioSpec {
                                                        mix,
                                                        level,
                                                        policy,
                                                        predictor,
                                                        admission,
                                                        migration_benefit: benefit,
                                                        count: self.count,
                                                        instances: self.instances,
                                                        shards,
                                                        router,
                                                        regions,
                                                        fed_router,
                                                        fleet,
                                                        seed,
                                                    };
                                                    if self.keep(&spec) {
                                                        cells.push(spec);
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// The pruning rule: drop incoherent cells, cells where a predictor
    /// changes nothing (baseline policy with every predictive consumer off
    /// — the run would be byte-identical to the `None` cell), one-shard
    /// cells beyond the first router, and one-region cells beyond the
    /// first federation router (neither router is ever consulted there, so
    /// those runs would be byte-identical too).
    fn keep(&self, spec: &ScenarioSpec) -> bool {
        if spec.validate().is_err() {
            return false;
        }
        if spec.shards == 1 && spec.router != self.routers[0] {
            return false;
        }
        if spec.regions == 1 && spec.fed_router != self.fed_routers[0] {
            return false;
        }
        let predictor_consumed = matches!(
            spec.policy,
            PolicyKind::Pascal | PolicyKind::PascalNoMigration | PolicyKind::PascalNonAdaptive
        ) || spec.admission != AdmissionMode::Disabled
            || spec.migration_benefit.is_some();
        spec.predictor.is_none() || predictor_consumed
    }
}

/// Derives a cell's trace seed from the grid's base seed and the axes that
/// define the trace (mix, level, count, instances) — and nothing else, so
/// cells that differ only in policy, predictor or controller settings
/// share a trace and the comparison stays paired, exactly as the paper's
/// evaluation shares traces across schedulers.
///
/// FNV-1a over the trace-defining fields, finished with a SplitMix64-style
/// avalanche so adjacent base seeds decorrelate.
#[must_use]
pub fn derive_trace_seed(
    base: u64,
    mix: MixPreset,
    level: RateLevel,
    count: usize,
    instances: usize,
) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(&base.to_le_bytes());
    eat(mix.key().as_bytes());
    eat(level.key().as_bytes());
    eat(&(count as u64).to_le_bytes());
    eat(&(instances as u64).to_le_bytes());
    // SplitMix64 finalizer.
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_expand_to_expected_cell_counts() {
        assert_eq!(SweepGrid::preset("main").unwrap().expand().len(), 18);
        // predictive: reactive + oracle/ema/rank/quantile, per mix.
        assert_eq!(SweepGrid::preset("predictive").unwrap().expand().len(), 10);
        // migration: (none,None), (oracle,None), (oracle,1000),
        // (ema,None), (ema,1000) — the none+1000 cell is pruned.
        assert_eq!(SweepGrid::preset("migration").unwrap().expand().len(), 5);
        // ci: per mix — fcfs, rr, pascal, pascal+oracle.
        assert_eq!(SweepGrid::preset("ci").unwrap().expand().len(), 8);
        // sharded: per level × predictor — 1 one-shard anchor + {2,4}
        // shards × 3 routers.
        assert_eq!(SweepGrid::preset("sharded").unwrap().expand().len(), 28);
        // federated: per predictor — 1 one-region anchor + {2,4} regions
        // × 3 federation routers.
        assert_eq!(SweepGrid::preset("federated").unwrap().expand().len(), 14);
        // chaos: 2 federation routers × 3 fleet presets.
        let chaos = SweepGrid::preset("chaos").unwrap().expand();
        assert_eq!(chaos.len(), 6);
        assert!(chaos.iter().all(|c| c.fleet.is_some() && c.regions == 2));
        // stress / stress-smoke: one 64-shard capacity cell each; the
        // smoke variant differs only in trace size.
        for name in ["stress", "stress-smoke"] {
            let cells = SweepGrid::preset(name).unwrap().expand();
            assert_eq!(cells.len(), 1, "{name}");
            assert_eq!(cells[0].shards, 64);
            assert_eq!(cells[0].instances, 128);
        }
        assert!(SweepGrid::preset("stress").unwrap().expand()[0].count >= 10_000_000);
        let err = SweepGrid::preset("everything").expect_err("unknown preset");
        assert!(err.contains("federated"), "error lists presets: {err}");
    }

    #[test]
    fn one_region_cells_collapse_the_federation_router_axis() {
        let cells = SweepGrid::preset("federated").unwrap().expand();
        let anchors: Vec<&ScenarioSpec> = cells.iter().filter(|c| c.regions == 1).collect();
        assert_eq!(anchors.len(), 2, "one anchor per predictor");
        assert!(anchors
            .iter()
            .all(|c| c.fed_router == pascal_federation::FederationPolicy::Static));
        // Region counts share the (mix, level) trace seed: the comparison
        // across region counts and federation routers is paired.
        assert!(cells.windows(2).all(|w| w[0].seed == w[1].seed));
    }

    #[test]
    fn one_shard_cells_collapse_the_router_axis() {
        let cells = SweepGrid::preset("sharded").unwrap().expand();
        let anchors: Vec<&ScenarioSpec> = cells.iter().filter(|c| c.shards == 1).collect();
        assert_eq!(anchors.len(), 4, "one anchor per (level, predictor)");
        assert!(anchors
            .iter()
            .all(|c| c.router == pascal_sched::RouterPolicy::RoundRobin));
        // Shard counts share the (mix, level) trace seed: the comparison
        // across shard counts is paired.
        let high: Vec<&ScenarioSpec> = cells
            .iter()
            .filter(|c| c.level == RateLevel::High)
            .collect();
        assert!(high.windows(2).all(|w| w[0].seed == w[1].seed));
    }

    #[test]
    fn expanded_labels_are_unique() {
        for name in SweepGrid::PRESET_NAMES {
            let cells = SweepGrid::preset(name).unwrap().expand();
            let mut labels: Vec<String> = cells.iter().map(ScenarioSpec::label).collect();
            labels.sort();
            labels.dedup();
            assert_eq!(labels.len(), cells.len(), "duplicate labels in '{name}'");
        }
    }

    #[test]
    fn paired_cells_share_trace_seeds_and_distinct_traces_do_not() {
        let cells = SweepGrid::preset("ci").unwrap().expand();
        let alpaca: Vec<&ScenarioSpec> = cells
            .iter()
            .filter(|c| c.mix == MixPreset::Alpaca)
            .collect();
        assert!(alpaca.windows(2).all(|w| w[0].seed == w[1].seed));
        let arena_seed = cells
            .iter()
            .find(|c| c.mix == MixPreset::Arena)
            .unwrap()
            .seed;
        assert_ne!(
            alpaca[0].seed, arena_seed,
            "different mixes, different seeds"
        );
    }

    #[test]
    fn derived_seeds_depend_on_every_trace_axis() {
        let base = derive_trace_seed(1, MixPreset::Arena, RateLevel::High, 100, 8);
        assert_eq!(
            base,
            derive_trace_seed(1, MixPreset::Arena, RateLevel::High, 100, 8)
        );
        assert_ne!(
            base,
            derive_trace_seed(2, MixPreset::Arena, RateLevel::High, 100, 8)
        );
        assert_ne!(
            base,
            derive_trace_seed(1, MixPreset::Alpaca, RateLevel::High, 100, 8)
        );
        assert_ne!(
            base,
            derive_trace_seed(1, MixPreset::Arena, RateLevel::Low, 100, 8)
        );
        assert_ne!(
            base,
            derive_trace_seed(1, MixPreset::Arena, RateLevel::High, 101, 8)
        );
        assert_ne!(
            base,
            derive_trace_seed(1, MixPreset::Arena, RateLevel::High, 100, 4)
        );
    }

    #[test]
    #[should_panic(expected = "empty mixes axis")]
    fn empty_axis_is_a_bug() {
        let _ = SweepGrid::new("empty").expand();
    }
}
