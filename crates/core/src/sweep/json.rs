//! Minimal JSON support for sweep reports.
//!
//! The workspace builds with zero registry dependencies, so the sweep's
//! machine-readable output is emitted by hand (see `report.rs`) and read
//! back — for the CI perf-regression gate and the determinism tests — by
//! the small recursive-descent parser here. It covers all of JSON; the
//! emitters guarantee the stricter properties the gate relies on (stable
//! key order, shortest-round-trip floats).

use std::collections::BTreeMap;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal (no sign, fraction or exponent),
    /// kept exact — f64 cannot represent the full `u64` range, and sweep
    /// seeds use all 64 bits.
    UInt(u64),
    /// Any other JSON number (parsed as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object. Key order is not significant; lookups go through a map.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.get(key),
            _ => None,
        }
    }

    /// The number value, if this is a number. Integer literals convert
    /// (with rounding above 2^53, as in any JSON reader).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            JsonValue::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The number value as an exact unsigned integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` iff this is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        // Plain digit runs stay exact (u64); everything else goes to f64.
        if text.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_owned());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_owned());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape '{hex}'"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(format!("invalid escape '\\{}'", char::from(other)));
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|n| n & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Escapes a string for embedding in a JSON document (quotes included).
#[must_use]
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float with the shortest representation that round-trips to the
/// same `f64` — the property that makes re-parsing a report reproduce its
/// cells bit-for-bit. Non-finite values serialize as `null`.
#[must_use]
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_owned()
    }
}

/// Formats an optional float (`None` → `null`).
#[must_use]
pub fn json_opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_owned(), json_f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"x": null, "y": true}, "s": "hi\n\"there\""}"#;
        let v = JsonValue::parse(doc).expect("valid");
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert!(v.get("b").unwrap().get("x").unwrap().is_null());
        assert_eq!(v.get("b").unwrap().get("y"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi\n\"there\""));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "nul", "1 2", "\"open"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.0, 1.0 / 3.0, 1e-12, 123456.789, f64::MAX, 2f64.powi(53)] {
            let text = json_f64(v);
            let back = JsonValue::parse(&text).expect("valid number");
            assert_eq!(back.as_f64(), Some(v), "{text}");
        }
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_opt_f64(None), "null");
    }

    #[test]
    fn strings_round_trip_through_escaping() {
        let original = "tab\t newline\n quote\" back\\ unicode é\u{1}";
        let escaped = json_str(original);
        let back = JsonValue::parse(&escaped).expect("valid string");
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn integers_read_back_exactly_across_the_full_u64_range() {
        // Digit-run literals stay exact even beyond f64's 2^53 window —
        // sweep seeds use all 64 bits.
        for v in [0u64, 120, 1 << 54, u64::MAX] {
            let parsed = JsonValue::parse(&v.to_string()).expect("integer parses");
            assert_eq!(parsed.as_u64(), Some(v), "{v}");
        }
        // Float-shaped numbers still refuse exactness above 2^53…
        let big_float = JsonValue::parse("1.8014398509481984e16").expect("valid");
        assert_eq!(big_float.as_u64(), None);
        // …and in-window floats convert.
        assert_eq!(JsonValue::parse("120.0").unwrap().as_u64(), Some(120));
    }
}
