//! The scenario-sweep subsystem.
//!
//! Every evaluation in this repo is some cross-product of *scenario* axes:
//! scheduling policy × length predictor × controller settings × arrival
//! rate × workload mix. This module makes that cross-product one call:
//!
//! * [`ScenarioSpec`] — one fully-declarative cell: every axis is a
//!   copyable, parseable key (no config structs), so a cell can be printed,
//!   serialized to JSON/CSV and compared against a committed baseline;
//! * [`SweepGrid`] — a declarative grid over the axes with named presets
//!   (`main`, `predictive`, `migration`, `ci`); [`SweepGrid::expand`] turns
//!   it into cells, pruning incoherent combinations;
//! * [`SweepRunner`] — executes cells on a `std::thread` scoped worker
//!   pool. Each cell derives its trace seed deterministically from the
//!   grid's base seed (shared across cells that differ only in policy or
//!   controller settings, so comparisons stay paired as in the paper), and
//!   cells share no mutable state — a parallel sweep is result-identical
//!   to a sequential one;
//! * [`SweepReport`] — machine-readable results (JSON + CSV) with one
//!   [`SweepCellMetrics`] row per cell, re-parseable via the in-tree JSON
//!   parser;
//! * [`gate`] — the CI perf-regression gate: compares a fresh report
//!   against a committed baseline with explicit tolerances.
//!
//! # Examples
//!
//! ```
//! use pascal_core::sweep::{SweepGrid, SweepRunner};
//!
//! let mut grid = SweepGrid::preset("ci").unwrap();
//! grid.count = 40; // shrink for the doctest
//! let report = SweepRunner::new(2).run_grid(&grid);
//! assert_eq!(report.cells.len(), grid.expand().len());
//! assert!(report.to_json().contains("\"grid\": \"ci\""));
//! ```

use pascal_federation::FederationPolicy;
use pascal_metrics::{QoeParams, SweepCellMetrics};
use pascal_predict::PredictorKind;
use pascal_sched::{PolicyKind, RouterPolicy};
use pascal_telemetry::{ProfileReport, TelemetryConfig};
use pascal_workload::{ArrivalProcess, MixPreset, Trace, TraceBuilder};

use crate::config::{RateLevel, SimConfig};
use crate::engine::{run_simulation, AdmissionMode, SimOutput};
use crate::fleet::FleetPreset;

pub mod gate;
mod grid;
mod json;
mod pool;
mod report;

pub use grid::SweepGrid;
pub use json::{json_f64, json_opt_f64, json_str, JsonValue};
pub use pool::{default_threads, parallel_map};
pub use report::{SweepReport, SweepThroughput};

/// One declarative sweep cell: everything needed to reproduce one
/// simulation run, expressed as copyable keys.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Workload mix preset.
    pub mix: MixPreset,
    /// Arrival-rate level (utilization fraction of the analytic capacity).
    pub level: RateLevel,
    /// Scheduler variant.
    pub policy: PolicyKind,
    /// Online length predictor (`None` = the paper's reactive scheduler).
    pub predictor: Option<PredictorKind>,
    /// Admission-control mode.
    pub admission: AdmissionMode,
    /// Predictive-migration benefit ratio (`None` = reactive Algorithm 2).
    pub migration_benefit: Option<f64>,
    /// Requests in the trace.
    pub count: usize,
    /// Cluster size (aggregate over all shards).
    pub instances: usize,
    /// Scheduling domains the instances split into (`1` = the paper's
    /// single-pool engine), per region. Must divide `instances / regions`.
    pub shards: usize,
    /// Cross-shard routing discipline (only meaningful when `shards > 1`).
    pub router: RouterPolicy,
    /// Geographic regions the cluster federates across (`1` = the PR 4
    /// cluster engine). Must divide `instances`.
    pub regions: usize,
    /// Cross-region routing discipline (only meaningful when
    /// `regions > 1`).
    pub fed_router: FederationPolicy,
    /// Fleet-event preset (`None` = the static fleet every prior grid
    /// ran). Resolved against the cell's topology and time horizon; the
    /// flash-crowd and diurnal presets also reshape the arrival process.
    pub fleet: Option<FleetPreset>,
    /// Trace seed. Grids derive it from their base seed; hand-built specs
    /// (the refactored experiments) set it directly.
    pub seed: u64,
}

impl ScenarioSpec {
    /// A cell with the evaluation-cluster defaults: eight instances, no
    /// predictor, controllers off.
    #[must_use]
    pub fn new(
        mix: MixPreset,
        level: RateLevel,
        policy: PolicyKind,
        count: usize,
        seed: u64,
    ) -> Self {
        ScenarioSpec {
            mix,
            level,
            policy,
            predictor: None,
            admission: AdmissionMode::Disabled,
            migration_benefit: None,
            count,
            instances: 8,
            shards: 1,
            router: RouterPolicy::RoundRobin,
            regions: 1,
            fed_router: FederationPolicy::Static,
            fleet: None,
            seed,
        }
    }

    /// The same cell partitioned into `shards` domains behind `router`.
    #[must_use]
    pub fn with_shards(mut self, shards: usize, router: RouterPolicy) -> Self {
        self.shards = shards;
        self.router = router;
        self
    }

    /// The same cell federated across `regions` regions behind
    /// `fed_router`.
    #[must_use]
    pub fn with_regions(mut self, regions: usize, fed_router: FederationPolicy) -> Self {
        self.regions = regions;
        self.fed_router = fed_router;
        self
    }

    /// The same cell with a length predictor attached.
    #[must_use]
    pub fn with_predictor(mut self, predictor: PredictorKind) -> Self {
        self.predictor = Some(predictor);
        self
    }

    /// The same cell with the predictive-migration cost test at `ratio`.
    #[must_use]
    pub fn with_migration_benefit(mut self, ratio: f64) -> Self {
        self.migration_benefit = Some(ratio);
        self
    }

    /// The same cell with predictive admission control at full utilization.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionMode) -> Self {
        self.admission = admission;
        self
    }

    /// The same cell under a fleet-event preset.
    #[must_use]
    pub fn with_fleet(mut self, fleet: FleetPreset) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// A short, unique, stable identifier — the key the JSON report and
    /// the regression gate match cells by.
    #[must_use]
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}/{}/{}",
            self.mix.key(),
            self.level.key(),
            self.policy.key()
        );
        if let Some(p) = self.predictor {
            label.push('+');
            label.push_str(p.key());
        }
        if let AdmissionMode::Predictive { max_utilization } = self.admission {
            label.push_str(&format!("+adm{max_utilization}"));
        }
        if let Some(ratio) = self.migration_benefit {
            label.push_str(&format!("+mb{ratio}"));
        }
        if self.instances != 8 {
            label.push_str(&format!("/i{}", self.instances));
        }
        if self.shards != 1 {
            label.push_str(&format!("/s{}-{}", self.shards, self.router.key()));
        }
        if self.regions != 1 {
            label.push_str(&format!("/r{}-{}", self.regions, self.fed_router.key()));
        }
        if let Some(f) = self.fleet {
            label.push_str(&format!("/f-{}", f.key()));
        }
        label
    }

    /// Checks cross-field coherence — the same rules the CLI enforces.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the combination cannot work:
    /// the migration cost test needs absolute length estimates (Oracle or
    /// EMA predictor) and a policy that migrates at all.
    pub fn validate(&self) -> Result<(), String> {
        if self.count == 0 {
            return Err("count must be positive".to_owned());
        }
        if self.instances == 0 {
            return Err("instances must be positive".to_owned());
        }
        if self.shards == 0 {
            return Err("shards must be positive".to_owned());
        }
        if self.regions == 0 {
            return Err("regions must be positive".to_owned());
        }
        if self.instances % self.shards != 0 {
            return Err(format!(
                "{}: {} instances do not split evenly into {} shards",
                self.label(),
                self.instances,
                self.shards
            ));
        }
        if self.instances % (self.regions * self.shards) != 0 {
            return Err(format!(
                "{}: {} instances do not split evenly into {} regions of {} shards",
                self.label(),
                self.instances,
                self.regions,
                self.shards
            ));
        }
        if self.migration_benefit.is_some() {
            match self.predictor {
                None => {
                    return Err(format!(
                        "{}: migration benefit needs a length predictor",
                        self.label()
                    ));
                }
                Some(PredictorKind::PairwiseRank) => {
                    return Err(format!(
                        "{}: migration benefit needs absolute length estimates \
                         (rank only orders requests)",
                        self.label()
                    ));
                }
                Some(_) => {}
            }
            if !matches!(
                self.policy,
                PolicyKind::Pascal | PolicyKind::PascalNonAdaptive
            ) {
                return Err(format!(
                    "{}: migration benefit requires a migrating policy",
                    self.label()
                ));
            }
        }
        Ok(())
    }

    /// The deployment this cell describes.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid (see [`ScenarioSpec::validate`]).
    #[must_use]
    pub fn config(&self) -> SimConfig {
        self.validate().expect("coherent scenario spec");
        let mut config = SimConfig::evaluation_cluster(self.policy.build());
        config.num_instances = self.instances;
        config.shards = self.shards;
        config.router = self.router;
        config.regions = self.regions;
        config.fed_router = self.fed_router;
        config.predictor = self.predictor;
        config.admission = self.admission;
        if let Some(ratio) = self.migration_benefit {
            config = config.with_predictive_migration(ratio);
        }
        if let Some(preset) = self.fleet {
            // Anchor the schedule to the cell's expected load window: at
            // `count` requests arriving at `rate_rps`, the arrival horizon
            // is count/rate seconds — outages and scaler windows land
            // mid-run rather than after the trace drains.
            let horizon_s = self.count as f64 / self.rate_rps();
            config.fleet = Some(preset.spec(horizon_s, self.regions, self.shards, self.instances));
        }
        config
    }

    /// The concrete arrival rate of this cell, in requests per second.
    /// Derived from the FCFS reference deployment at this cell's cluster
    /// size, so cells differing only in policy or controllers share a rate.
    #[must_use]
    pub fn rate_rps(&self) -> f64 {
        let mut reference = SimConfig::evaluation_cluster(pascal_sched::SchedPolicy::Fcfs);
        reference.num_instances = self.instances;
        self.level.rate_rps(&reference, &self.mix.mix())
    }

    /// Builds this cell's trace. Deterministic in the spec alone. Origin
    /// tags come from a separate RNG stream, so cells that differ only in
    /// region count serve identical request bodies.
    #[must_use]
    pub fn trace(&self) -> Trace {
        let rate = self.rate_rps();
        // The demand-shape presets reshape the arrival process around the
        // same long-run rate; the outage preset keeps Poisson arrivals so
        // the failure is the only thing that changes versus the baseline.
        let arrivals = match self.fleet {
            Some(FleetPreset::FlashCrowd) => ArrivalProcess::bursty(rate, 15.0, 45.0),
            Some(FleetPreset::Diurnal) => {
                ArrivalProcess::diurnal(rate, 0.6, self.count as f64 / rate)
            }
            Some(FleetPreset::Outage) | None => ArrivalProcess::poisson(rate),
        };
        TraceBuilder::new(self.mix.mix())
            .arrivals(arrivals)
            .count(self.count)
            .seed(self.seed)
            .regions(self.regions)
            .build()
    }

    /// Runs the cell: trace synthesis plus the full simulation.
    #[must_use]
    pub fn run(&self) -> SimOutput {
        run_simulation(&self.trace(), &self.config())
    }

    /// Runs the cell with the given telemetry configuration. Telemetry is
    /// deliberately *not* a [`ScenarioSpec`] axis — it never changes a
    /// run's deterministic outputs, so it must never change a cell's
    /// label or serialized form either.
    #[must_use]
    pub fn run_with_telemetry(&self, telemetry: TelemetryConfig) -> SimOutput {
        let mut config = self.config();
        config.telemetry = telemetry;
        run_simulation(&self.trace(), &config)
    }
}

/// One executed cell of a sweep report.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepCell {
    /// The cell's declarative description.
    pub spec: ScenarioSpec,
    /// The concrete arrival rate the trace was generated at.
    pub rate_rps: f64,
    /// The engine's decorated policy name (e.g.
    /// `PASCAL(Predictive-Oracle)`).
    pub policy_label: String,
    /// The aggregate metrics row.
    pub metrics: SweepCellMetrics,
    /// Latency-anatomy blame profile, filled only by blame-enabled sweeps
    /// (see [`SweepRunner::with_blame`]). `None` cells serialize without
    /// any blame keys, so blame-free reports keep their historical form.
    pub blame: Option<pascal_telemetry::BlameProfile>,
}

impl SweepCell {
    /// Condenses a run into a report cell.
    #[must_use]
    pub fn from_output(spec: ScenarioSpec, rate_rps: f64, out: &SimOutput) -> Self {
        SweepCell {
            spec,
            rate_rps,
            policy_label: out.policy_name.clone(),
            metrics: SweepCellMetrics::from_run(
                &out.records,
                &out.migration_outcomes,
                &out.admission,
                &out.fleet,
                out.makespan.as_secs_f64(),
                &QoeParams::paper_eval(),
            ),
            blame: None,
        }
    }

    /// The cell's matching key (see [`ScenarioSpec::label`]).
    #[must_use]
    pub fn label(&self) -> String {
        self.spec.label()
    }
}

/// Executes sweep cells on a scoped-thread worker pool.
#[derive(Clone, Copy, Debug)]
pub struct SweepRunner {
    threads: usize,
    /// Attach the hot-path profiler to every cell. Lives on the runner —
    /// not on [`ScenarioSpec`] — because profiling is host-dependent and
    /// must never leak into a cell's identity or serialized report.
    profile: bool,
    /// Intra-run worker threads for every cell's event loop (see
    /// [`SimConfig::run_threads`]). Lives on the runner — not on
    /// [`ScenarioSpec`] — because outputs are byte-identical at any
    /// thread count, so it must never change a cell's identity, label or
    /// serialized form.
    run_threads: usize,
    /// Attach a latency-anatomy blame profile to every cell. Lives on the
    /// runner — not on [`ScenarioSpec`] — because blame is derived purely
    /// from the (observer-effect-free) trace stream: a cell's
    /// deterministic metrics are identical with it on or off, only the
    /// report gains blame columns.
    blame: bool,
}

impl SweepRunner {
    /// A runner with a fixed pool width; `0` picks
    /// [`default_threads`] (available parallelism, capped at 8).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        SweepRunner {
            threads: if threads == 0 {
                default_threads()
            } else {
                threads
            },
            profile: false,
            run_threads: 1,
            blame: false,
        }
    }

    /// The same runner with per-cell hot-path profiling switched on.
    /// Per-cell profiler output is wall-clock (non-deterministic) and is
    /// returned out-of-band by [`SweepRunner::run_grids_profiled`]; the
    /// [`SweepReport`] additionally carries the aggregate
    /// [`SweepThroughput`] figure (the only host-dependent field a report
    /// can contain — unprofiled reports stay fully deterministic).
    #[must_use]
    pub fn with_profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// The same runner with `run_threads` intra-run worker threads per
    /// cell (`0` = auto, `1` = the sequential engine). Cells are
    /// byte-identical at any value; this only trades cell-level for
    /// intra-run parallelism — useful when a sweep has fewer cells than
    /// cores (the stress grid) or a single huge cell dominates.
    #[must_use]
    pub fn with_run_threads(mut self, run_threads: usize) -> Self {
        self.run_threads = run_threads;
        self
    }

    /// The same runner with per-cell latency-anatomy blame profiles
    /// switched on: every cell runs with request tracing, the trace is
    /// reconstructed into an exact additive blame decomposition
    /// ([`pascal_telemetry::reconstruct`]) and aggregated into the cell's
    /// [`SweepCell::blame`] profile. Every deterministic metric is
    /// byte-identical with blame on or off; only the report gains the
    /// schema-v5 blame keys/columns.
    #[must_use]
    pub fn with_blame(mut self, blame: bool) -> Self {
        self.blame = blame;
        self
    }

    /// The pool width this runner uses.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs one spec under this runner's intra-run thread setting.
    fn run_spec(&self, spec: &ScenarioSpec, telemetry: TelemetryConfig) -> SimOutput {
        let mut config = spec.config();
        config.telemetry = telemetry;
        config.run_threads = self.run_threads;
        run_simulation(&spec.trace(), &config)
    }

    /// Runs every spec and maps its output, returning results in spec
    /// order. The map function sees the spec and the full [`SimOutput`],
    /// so experiments can extract whatever their rows need; results are
    /// identical at any pool width.
    pub fn run_map<T, F>(&self, specs: &[ScenarioSpec], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&ScenarioSpec, SimOutput) -> T + Sync,
    {
        parallel_map(specs.len(), self.threads, |i| {
            let spec = &specs[i];
            f(spec, self.run_spec(spec, TelemetryConfig::default()))
        })
    }

    /// Runs a grid end-to-end into a machine-readable report.
    #[must_use]
    pub fn run_grid(&self, grid: &SweepGrid) -> SweepReport {
        self.run_grids(std::slice::from_ref(grid))
    }

    /// Runs several grids as one report (cells concatenated in grid
    /// order, name joined with `+`) — how the CI perf gate sweeps the
    /// `ci` and `sharded` grids against a single committed baseline.
    ///
    /// # Panics
    ///
    /// Panics if the grids produce duplicate cell labels (the gate matches
    /// cells by label, so a merged report must keep them unique) or if
    /// `grids` is empty.
    #[must_use]
    pub fn run_grids(&self, grids: &[SweepGrid]) -> SweepReport {
        self.run_grids_profiled(grids).0
    }

    /// [`SweepRunner::run_grids`] plus the out-of-band per-cell profiler
    /// reports (in cell order; all `None` unless
    /// [`SweepRunner::with_profile`] switched profiling on). Cells and
    /// every deterministic field are byte-identical with profiling on or
    /// off; profiling additionally stamps the report-level
    /// [`SweepThroughput`] aggregate and returns the per-cell wall-clock
    /// reports through the second element.
    ///
    /// # Panics
    ///
    /// Same conditions as [`SweepRunner::run_grids`].
    #[must_use]
    pub fn run_grids_profiled(
        &self,
        grids: &[SweepGrid],
    ) -> (SweepReport, Vec<Option<ProfileReport>>) {
        assert!(!grids.is_empty(), "need at least one grid");
        let specs: Vec<ScenarioSpec> = grids.iter().flat_map(SweepGrid::expand).collect();
        let mut labels: Vec<String> = specs.iter().map(ScenarioSpec::label).collect();
        labels.sort();
        if let Some(dup) = labels.windows(2).find(|w| w[0] == w[1]) {
            panic!("grids produce a duplicate cell label '{}'", dup[0]);
        }
        let telemetry = TelemetryConfig {
            profile: self.profile,
            trace: self.blame,
            ..TelemetryConfig::default()
        };
        let results: Vec<(SweepCell, Option<ProfileReport>)> =
            parallel_map(specs.len(), self.threads, |i| {
                let spec = &specs[i];
                let mut out = self.run_spec(spec, telemetry);
                let tele = out.telemetry.take();
                let profile = tele.as_ref().and_then(|t| t.profile.clone());
                let mut cell = SweepCell::from_output(*spec, spec.rate_rps(), &out);
                if self.blame {
                    let events = tele.map(|t| t.events).unwrap_or_default();
                    let anatomy = pascal_telemetry::reconstruct(&events);
                    cell.blame = Some(pascal_telemetry::aggregate(&anatomy.requests));
                }
                (cell, profile)
            });
        let (cells, profiles): (Vec<_>, Vec<_>) = results.into_iter().unzip();
        // Aggregate throughput over the per-cell profiler reports: summed
        // events over summed single-cell wall seconds, so the figure is
        // thread-count-independent (each cell's clock covers only its own
        // event loop).
        let throughput = if self.profile {
            let (events, wall_s) = profiles
                .iter()
                .flatten()
                .fold((0u64, 0.0f64), |(e, w), p: &ProfileReport| {
                    (e + p.events, w + p.wall_s)
                });
            (wall_s > 0.0).then(|| SweepThroughput {
                events,
                wall_s,
                events_per_sec: events as f64 / wall_s,
            })
        } else {
            None
        };
        let report = SweepReport {
            grid: grids
                .iter()
                .map(|g| g.name.as_str())
                .collect::<Vec<_>>()
                .join("+"),
            base_seed: grids[0].base_seed,
            throughput,
            cells,
        };
        (report, profiles)
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_stable() {
        let base = ScenarioSpec::new(
            MixPreset::Arena,
            RateLevel::High,
            PolicyKind::Pascal,
            100,
            1,
        );
        assert_eq!(base.label(), "arena/high/pascal");
        assert_eq!(
            base.with_predictor(PredictorKind::Oracle)
                .with_migration_benefit(1000.0)
                .label(),
            "arena/high/pascal+oracle+mb1000"
        );
        assert_eq!(
            base.with_admission(AdmissionMode::predictive()).label(),
            "arena/high/pascal+adm1"
        );
        let mut small = base;
        small.instances = 2;
        assert_eq!(small.label(), "arena/high/pascal/i2");
    }

    #[test]
    fn incoherent_specs_are_rejected() {
        let base = ScenarioSpec::new(
            MixPreset::Arena,
            RateLevel::High,
            PolicyKind::Pascal,
            100,
            1,
        );
        assert!(base.validate().is_ok());
        assert!(base.with_migration_benefit(2.0).validate().is_err());
        assert!(base
            .with_predictor(PredictorKind::PairwiseRank)
            .with_migration_benefit(2.0)
            .validate()
            .is_err());
        let mut fcfs = base
            .with_predictor(PredictorKind::Oracle)
            .with_migration_benefit(2.0);
        fcfs.policy = PolicyKind::Fcfs;
        assert!(fcfs.validate().is_err());
        let mut zero = base;
        zero.count = 0;
        assert!(zero.validate().is_err());
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let specs: Vec<ScenarioSpec> = PolicyKind::MAIN
            .into_iter()
            .map(|p| {
                let mut s = ScenarioSpec::new(MixPreset::Alpaca, RateLevel::Medium, p, 40, 7);
                s.instances = 2;
                s
            })
            .collect();
        let one = SweepRunner::new(1).run_map(&specs, |spec, out| {
            SweepCell::from_output(*spec, spec.rate_rps(), &out)
        });
        let four = SweepRunner::new(4).run_map(&specs, |spec, out| {
            SweepCell::from_output(*spec, spec.rate_rps(), &out)
        });
        assert_eq!(one, four);
        assert_eq!(one.len(), 3);
        assert!(one.iter().all(|c| c.metrics.requests == 40));
    }

    #[test]
    fn blame_sweeps_keep_metrics_identical_and_attach_profiles() {
        let mut grid = SweepGrid::preset("ci").expect("preset exists");
        grid.count = 30;
        grid.instances = 2;
        let plain = SweepRunner::new(2).run_grid(&grid);
        let blamed = SweepRunner::new(2).with_blame(true).run_grid(&grid);
        assert_eq!(plain.cells.len(), blamed.cells.len());
        for (p, b) in plain.cells.iter().zip(&blamed.cells) {
            // Zero observer effect: tracing for blame never changes a
            // cell's deterministic metrics.
            assert_eq!(p.metrics, b.metrics, "{}", p.label());
            assert!(p.blame.is_none());
            let profile = b.blame.as_ref().expect("blame attached");
            assert_eq!(profile.requests as usize, p.metrics.requests);
        }
        // The schema-v5 blame keys survive a JSON round trip.
        let json = blamed.to_json();
        let back = crate::sweep::SweepReport::from_json(&json).expect("parses");
        assert_eq!(back, blamed);
    }

    #[test]
    fn intra_run_threads_never_change_sweep_results() {
        // A sharded cell so the windowed executor actually engages.
        let mut spec = ScenarioSpec::new(
            MixPreset::Alpaca,
            RateLevel::High,
            PolicyKind::Pascal,
            60,
            11,
        )
        .with_shards(2, RouterPolicy::Predictive);
        spec.instances = 4;
        let specs = [spec];
        let sequential = SweepRunner::new(1).run_map(&specs, |spec, out| {
            SweepCell::from_output(*spec, spec.rate_rps(), &out)
        });
        let windowed = SweepRunner::new(1)
            .with_run_threads(2)
            .run_map(&specs, |spec, out| {
                SweepCell::from_output(*spec, spec.rate_rps(), &out)
            });
        assert_eq!(sequential, windowed);
    }
}
