//! The CI perf-regression gate.
//!
//! Compares a freshly-run [`SweepReport`] against a committed baseline
//! with explicit tolerances. Two metrics gate the merge: per-cell **p99
//! TTFT** (relative tolerance plus an absolute floor, so near-zero
//! baselines don't trip on noise-scale deltas) and per-cell **SLO
//! violation rate** (absolute tolerance). Structural drift — cells added,
//! removed, or re-configured relative to the baseline — also fails, which
//! forces the baseline to be regenerated in the same PR that changes the
//! grid. Improvements never fail the gate.

use crate::sweep::SweepReport;

/// Gate tolerances. The defaults assume a deterministic simulator: they
/// exist to absorb legitimate algorithmic evolution, not run-to-run noise
/// (there is none), so they are deliberately tight.
#[derive(Clone, Copy, Debug)]
pub struct GateTolerances {
    /// Allowed relative p99-TTFT growth (0.10 = +10%).
    pub ttft_p99_rel: f64,
    /// Absolute p99-TTFT slack in seconds, added on top of the relative
    /// allowance.
    pub ttft_p99_abs_s: f64,
    /// Allowed absolute SLO-violation-rate growth (0.02 = +2 points).
    pub slo_rate_abs: f64,
}

impl Default for GateTolerances {
    fn default() -> Self {
        GateTolerances {
            ttft_p99_rel: 0.10,
            ttft_p99_abs_s: 0.5,
            slo_rate_abs: 0.02,
        }
    }
}

/// One per-cell, per-metric comparison row of the gate's diff table.
#[derive(Clone, Debug)]
pub struct GateFinding {
    /// The cell's matching key.
    pub label: String,
    /// Metric name (`ttft_p99_s` or `slo_violation_rate`).
    pub metric: &'static str,
    /// Baseline value (`None` when the baseline recorded no value).
    pub baseline: Option<f64>,
    /// Current value.
    pub current: Option<f64>,
    /// Largest current value the tolerances allow.
    pub allowed: f64,
    /// Whether this row fails the gate.
    pub regression: bool,
}

/// The gate's verdict: per-metric findings plus structural mismatches.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// One row per compared cell × metric, in baseline order.
    pub findings: Vec<GateFinding>,
    /// Cells present on one side only, or re-configured between the two
    /// reports. Any entry fails the gate.
    pub structural: Vec<String>,
}

impl GateReport {
    /// `true` when nothing regressed and the reports are structurally
    /// identical.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.structural.is_empty() && !self.findings.iter().any(|f| f.regression)
    }

    /// The failing findings.
    pub fn regressions(&self) -> impl Iterator<Item = &GateFinding> {
        self.findings.iter().filter(|f| f.regression)
    }
}

/// Compares `current` against `baseline` under `tol`.
#[must_use]
pub fn compare(baseline: &SweepReport, current: &SweepReport, tol: &GateTolerances) -> GateReport {
    let mut report = GateReport::default();
    for base_cell in &baseline.cells {
        let label = base_cell.label();
        let Some(cur_cell) = current.cells.iter().find(|c| c.label() == label) else {
            report
                .structural
                .push(format!("{label}: in baseline but missing from current run"));
            continue;
        };
        if cur_cell.spec != base_cell.spec {
            report.structural.push(format!(
                "{label}: cell configuration changed (baseline {:?} vs current {:?}) — \
                 regenerate the baseline",
                base_cell.spec, cur_cell.spec
            ));
            continue;
        }

        // p99 TTFT: relative tolerance plus absolute floor.
        let base_p99 = base_cell.metrics.ttft_p99_s;
        let cur_p99 = cur_cell.metrics.ttft_p99_s;
        let allowed_p99 = base_p99.map_or(f64::INFINITY, |b| {
            b * (1.0 + tol.ttft_p99_rel) + tol.ttft_p99_abs_s
        });
        let p99_regressed = match (base_p99, cur_p99) {
            (Some(_), Some(c)) => c > allowed_p99,
            // The baseline had answering requests but the current run lost
            // them entirely — that is a regression, not a free pass.
            (Some(_), None) => true,
            (None, _) => false,
        };
        report.findings.push(GateFinding {
            label: label.clone(),
            metric: "ttft_p99_s",
            baseline: base_p99,
            current: cur_p99,
            allowed: allowed_p99,
            regression: p99_regressed,
        });

        // SLO violation rate: absolute tolerance.
        let base_slo = base_cell.metrics.slo_violation_rate;
        let cur_slo = cur_cell.metrics.slo_violation_rate;
        let allowed_slo = base_slo + tol.slo_rate_abs;
        report.findings.push(GateFinding {
            label,
            metric: "slo_violation_rate",
            baseline: Some(base_slo),
            current: Some(cur_slo),
            allowed: allowed_slo,
            regression: cur_slo > allowed_slo,
        });
    }
    for cur_cell in &current.cells {
        let label = cur_cell.label();
        if !baseline.cells.iter().any(|b| b.label() == label) {
            report.structural.push(format!(
                "{label}: in current run but not in baseline — regenerate the baseline"
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{SweepGrid, SweepRunner};

    fn tiny_report() -> SweepReport {
        let mut grid = SweepGrid::preset("ci").expect("preset exists");
        grid.count = 30;
        grid.instances = 2;
        SweepRunner::default().run_grid(&grid)
    }

    #[test]
    fn identical_reports_pass() {
        let report = tiny_report();
        let gate = compare(&report, &report, &GateTolerances::default());
        assert!(gate.passed(), "structural: {:?}", gate.structural);
        assert_eq!(gate.findings.len(), 2 * report.cells.len());
    }

    #[test]
    fn perturbed_baseline_beyond_tolerance_fails() {
        let report = tiny_report();
        // Pretend the baseline was dramatically better than reality.
        let mut better = report.clone();
        for cell in &mut better.cells {
            cell.metrics.slo_violation_rate = -1.0;
        }
        let gate = compare(&better, &report, &GateTolerances::default());
        assert!(!gate.passed());
        assert!(gate.regressions().all(|f| f.metric == "slo_violation_rate"));

        let mut faster = report.clone();
        for cell in &mut faster.cells {
            cell.metrics.ttft_p99_s = cell.metrics.ttft_p99_s.map(|_| 0.0);
        }
        // Shrink the absolute floor so small TTFTs can trip it.
        let tight = GateTolerances {
            ttft_p99_abs_s: 1e-9,
            ..GateTolerances::default()
        };
        let gate = compare(&faster, &report, &tight);
        assert!(!gate.passed());
        assert!(gate.regressions().any(|f| f.metric == "ttft_p99_s"));
    }

    #[test]
    fn within_tolerance_drift_passes() {
        let report = tiny_report();
        let mut slightly_better_baseline = report.clone();
        for cell in &mut slightly_better_baseline.cells {
            cell.metrics.slo_violation_rate -= 0.01; // within the 0.02 slack
            cell.metrics.ttft_p99_s = cell.metrics.ttft_p99_s.map(|v| v * 0.95);
        }
        let gate = compare(
            &slightly_better_baseline,
            &report,
            &GateTolerances::default(),
        );
        assert!(
            gate.passed(),
            "{:?}",
            gate.regressions().collect::<Vec<_>>()
        );
    }

    #[test]
    fn structural_drift_fails_both_directions() {
        let report = tiny_report();
        let mut missing = report.clone();
        missing.cells.pop();
        let gate = compare(&report, &missing, &GateTolerances::default());
        assert!(!gate.passed());
        assert!(gate.structural[0].contains("missing from current"));

        let gate = compare(&missing, &report, &GateTolerances::default());
        assert!(!gate.passed());
        assert!(gate.structural[0].contains("not in baseline"));

        let mut reconfigured = report.clone();
        reconfigured.cells[0].spec.seed ^= 1;
        let gate = compare(&report, &reconfigured, &GateTolerances::default());
        assert!(!gate.passed());
        assert!(gate.structural[0].contains("configuration changed"));
    }
}
