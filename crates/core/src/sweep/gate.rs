//! The CI perf-regression gate.
//!
//! Compares a freshly-run [`SweepReport`] against a committed baseline
//! with explicit tolerances. Three metrics gate the merge: per-cell **p99
//! TTFT** (relative tolerance plus an absolute floor, so near-zero
//! baselines don't trip on noise-scale deltas), per-cell **SLO
//! violation rate** (absolute tolerance), and — when the baseline carries
//! a schema-4 throughput block — the report-level **engine events/sec**
//! (relative tolerance, direction inverted: *lower* is the regression).
//! The throughput figure is wall-clock and host-dependent, so its
//! tolerance is far looser than the simulation metrics'. Structural
//! drift — cells added, removed, or re-configured relative to the
//! baseline — also fails, which forces the baseline to be regenerated in
//! the same PR that changes the grid. Improvements never fail the gate.

use crate::sweep::SweepReport;

/// Gate tolerances. The defaults assume a deterministic simulator: they
/// exist to absorb legitimate algorithmic evolution, not run-to-run noise
/// (there is none), so they are deliberately tight.
#[derive(Clone, Copy, Debug)]
pub struct GateTolerances {
    /// Allowed relative p99-TTFT growth (0.10 = +10%).
    pub ttft_p99_rel: f64,
    /// Absolute p99-TTFT slack in seconds, added on top of the relative
    /// allowance.
    pub ttft_p99_abs_s: f64,
    /// Allowed absolute SLO-violation-rate growth (0.02 = +2 points).
    pub slo_rate_abs: f64,
    /// Allowed relative engine-throughput *loss* (0.20 = the current run
    /// may be up to 20% slower in events/sec than the baseline). Loose by
    /// design: events/sec is wall-clock and varies with host load.
    pub throughput_rel: f64,
}

impl Default for GateTolerances {
    fn default() -> Self {
        GateTolerances {
            ttft_p99_rel: 0.10,
            ttft_p99_abs_s: 0.5,
            slo_rate_abs: 0.02,
            throughput_rel: 0.20,
        }
    }
}

/// One per-cell, per-metric comparison row of the gate's diff table.
#[derive(Clone, Debug)]
pub struct GateFinding {
    /// The cell's matching key.
    pub label: String,
    /// Metric name (`ttft_p99_s`, `slo_violation_rate` or
    /// `events_per_sec`).
    pub metric: &'static str,
    /// Baseline value (`None` when the baseline recorded no value).
    pub baseline: Option<f64>,
    /// Current value.
    pub current: Option<f64>,
    /// The tolerance boundary: the largest allowed current value for the
    /// simulation metrics, the *smallest* for `events_per_sec` (where
    /// lower is the regression).
    pub allowed: f64,
    /// Whether this row fails the gate.
    pub regression: bool,
}

/// The gate's verdict: per-metric findings plus structural mismatches.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// One row per compared cell × metric, in baseline order.
    pub findings: Vec<GateFinding>,
    /// Cells present on one side only, or re-configured between the two
    /// reports. Any entry fails the gate.
    pub structural: Vec<String>,
}

impl GateReport {
    /// `true` when nothing regressed and the reports are structurally
    /// identical.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.structural.is_empty() && !self.findings.iter().any(|f| f.regression)
    }

    /// The failing findings.
    pub fn regressions(&self) -> impl Iterator<Item = &GateFinding> {
        self.findings.iter().filter(|f| f.regression)
    }
}

/// Compares `current` against `baseline` under `tol`.
#[must_use]
pub fn compare(baseline: &SweepReport, current: &SweepReport, tol: &GateTolerances) -> GateReport {
    let mut report = GateReport::default();

    // Engine throughput: gated only when the committed baseline carries a
    // figure. A profiled baseline demands a profiled current run — silently
    // skipping the comparison would let the perf gate rot.
    if let Some(base_tput) = &baseline.throughput {
        let allowed = base_tput.events_per_sec * (1.0 - tol.throughput_rel);
        match &current.throughput {
            Some(cur_tput) => report.findings.push(GateFinding {
                label: "<report>".to_owned(),
                metric: "events_per_sec",
                baseline: Some(base_tput.events_per_sec),
                current: Some(cur_tput.events_per_sec),
                allowed,
                regression: cur_tput.events_per_sec < allowed,
            }),
            None => report.structural.push(
                "baseline commits an events/sec figure but the current run was not \
                 profiled — re-run the sweep with --profile"
                    .to_owned(),
            ),
        }
    }

    for base_cell in &baseline.cells {
        let label = base_cell.label();
        let Some(cur_cell) = current.cells.iter().find(|c| c.label() == label) else {
            report
                .structural
                .push(format!("{label}: in baseline but missing from current run"));
            continue;
        };
        if cur_cell.spec != base_cell.spec {
            report.structural.push(format!(
                "{label}: cell configuration changed (baseline {:?} vs current {:?}) — \
                 regenerate the baseline",
                base_cell.spec, cur_cell.spec
            ));
            continue;
        }

        // p99 TTFT: relative tolerance plus absolute floor.
        let base_p99 = base_cell.metrics.ttft_p99_s;
        let cur_p99 = cur_cell.metrics.ttft_p99_s;
        let allowed_p99 = base_p99.map_or(f64::INFINITY, |b| {
            b * (1.0 + tol.ttft_p99_rel) + tol.ttft_p99_abs_s
        });
        let p99_regressed = match (base_p99, cur_p99) {
            (Some(_), Some(c)) => c > allowed_p99,
            // The baseline had answering requests but the current run lost
            // them entirely — that is a regression, not a free pass.
            (Some(_), None) => true,
            (None, _) => false,
        };
        report.findings.push(GateFinding {
            label: label.clone(),
            metric: "ttft_p99_s",
            baseline: base_p99,
            current: cur_p99,
            allowed: allowed_p99,
            regression: p99_regressed,
        });

        // SLO violation rate: absolute tolerance.
        let base_slo = base_cell.metrics.slo_violation_rate;
        let cur_slo = cur_cell.metrics.slo_violation_rate;
        let allowed_slo = base_slo + tol.slo_rate_abs;
        report.findings.push(GateFinding {
            label,
            metric: "slo_violation_rate",
            baseline: Some(base_slo),
            current: Some(cur_slo),
            allowed: allowed_slo,
            regression: cur_slo > allowed_slo,
        });
    }
    for cur_cell in &current.cells {
        let label = cur_cell.label();
        if !baseline.cells.iter().any(|b| b.label() == label) {
            report.structural.push(format!(
                "{label}: in current run but not in baseline — regenerate the baseline"
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{SweepGrid, SweepRunner};

    fn tiny_report() -> SweepReport {
        let mut grid = SweepGrid::preset("ci").expect("preset exists");
        grid.count = 30;
        grid.instances = 2;
        SweepRunner::default().run_grid(&grid)
    }

    #[test]
    fn identical_reports_pass() {
        let report = tiny_report();
        let gate = compare(&report, &report, &GateTolerances::default());
        assert!(gate.passed(), "structural: {:?}", gate.structural);
        assert_eq!(gate.findings.len(), 2 * report.cells.len());
    }

    #[test]
    fn perturbed_baseline_beyond_tolerance_fails() {
        let report = tiny_report();
        // Pretend the baseline was dramatically better than reality.
        let mut better = report.clone();
        for cell in &mut better.cells {
            cell.metrics.slo_violation_rate = -1.0;
        }
        let gate = compare(&better, &report, &GateTolerances::default());
        assert!(!gate.passed());
        assert!(gate.regressions().all(|f| f.metric == "slo_violation_rate"));

        let mut faster = report.clone();
        for cell in &mut faster.cells {
            cell.metrics.ttft_p99_s = cell.metrics.ttft_p99_s.map(|_| 0.0);
        }
        // Shrink the absolute floor so small TTFTs can trip it.
        let tight = GateTolerances {
            ttft_p99_abs_s: 1e-9,
            ..GateTolerances::default()
        };
        let gate = compare(&faster, &report, &tight);
        assert!(!gate.passed());
        assert!(gate.regressions().any(|f| f.metric == "ttft_p99_s"));
    }

    #[test]
    fn within_tolerance_drift_passes() {
        let report = tiny_report();
        let mut slightly_better_baseline = report.clone();
        for cell in &mut slightly_better_baseline.cells {
            cell.metrics.slo_violation_rate -= 0.01; // within the 0.02 slack
            cell.metrics.ttft_p99_s = cell.metrics.ttft_p99_s.map(|v| v * 0.95);
        }
        let gate = compare(
            &slightly_better_baseline,
            &report,
            &GateTolerances::default(),
        );
        assert!(
            gate.passed(),
            "{:?}",
            gate.regressions().collect::<Vec<_>>()
        );
    }

    #[test]
    fn throughput_gate_fails_only_beyond_tolerance_and_demands_profiling() {
        use crate::sweep::SweepThroughput;
        let tput = |events_per_sec: f64| SweepThroughput {
            events: 1_000_000,
            wall_s: 1_000_000.0 / events_per_sec,
            events_per_sec,
        };
        let mut baseline = tiny_report();
        baseline.throughput = Some(tput(1_000_000.0));

        // 10% slower: inside the 20% allowance.
        let mut current = baseline.clone();
        current.throughput = Some(tput(900_000.0));
        let gate = compare(&baseline, &current, &GateTolerances::default());
        assert!(
            gate.passed(),
            "{:?}",
            gate.regressions().collect::<Vec<_>>()
        );

        // 30% slower: a throughput regression.
        current.throughput = Some(tput(700_000.0));
        let gate = compare(&baseline, &current, &GateTolerances::default());
        assert!(!gate.passed());
        assert!(gate.regressions().any(|f| f.metric == "events_per_sec"));

        // Faster never fails.
        current.throughput = Some(tput(5_000_000.0));
        assert!(compare(&baseline, &current, &GateTolerances::default()).passed());

        // A profiled baseline demands a profiled current run.
        current.throughput = None;
        let gate = compare(&baseline, &current, &GateTolerances::default());
        assert!(!gate.passed());
        assert!(gate.structural[0].contains("--profile"));

        // An unprofiled baseline gates nothing on throughput.
        baseline.throughput = None;
        current.throughput = Some(tput(1.0));
        assert!(compare(&baseline, &current, &GateTolerances::default()).passed());
    }

    #[test]
    fn structural_drift_fails_both_directions() {
        let report = tiny_report();
        let mut missing = report.clone();
        missing.cells.pop();
        let gate = compare(&report, &missing, &GateTolerances::default());
        assert!(!gate.passed());
        assert!(gate.structural[0].contains("missing from current"));

        let gate = compare(&missing, &report, &GateTolerances::default());
        assert!(!gate.passed());
        assert!(gate.structural[0].contains("not in baseline"));

        let mut reconfigured = report.clone();
        reconfigured.cells[0].spec.seed ^= 1;
        let gate = compare(&report, &reconfigured, &GateTolerances::default());
        assert!(!gate.passed());
        assert!(gate.structural[0].contains("configuration changed"));
    }
}
