//! A deterministic scoped-thread worker pool.
//!
//! [`parallel_map`] evaluates `f(0..n)` on a fixed number of workers and
//! returns the results in index order. Work is handed out through a single
//! atomic cursor; each result lands in its own slot, so the output is
//! independent of which worker ran which index or in what order they
//! finished — a parallel run is result-identical to a sequential one as
//! long as `f` itself is a pure function of its index. Built on
//! `std::thread::scope` only: no registry dependencies.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The pool width used when a caller does not pin one: the machine's
/// available parallelism, capped at 8 so test runs and benches do not
/// oversubscribe the host they share with the build.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .clamp(1, 8)
}

/// Maps `f` over `0..n` on `threads` workers, returning results in index
/// order. `threads` is clamped to `[1, n]`; one thread short-circuits to a
/// plain sequential loop (no pool, no locks).
///
/// # Panics
///
/// Propagates the first panic raised by `f` once all workers have stopped.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(n.max(1));
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Compute outside the lock — the lock only guards the
                // (instant) slot store, so workers never serialize on it.
                let value = f(i);
                slots.lock().expect("sweep pool poisoned")[i] = Some(value);
            });
        }
    });
    slots
        .into_inner()
        .expect("sweep pool poisoned")
        .into_iter()
        .map(|s| s.expect("every index was claimed by a worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order_at_any_width() {
        let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
        for threads in [1, 2, 4, 16] {
            assert_eq!(parallel_map(37, threads, |i| i * i), expected);
        }
    }

    #[test]
    fn handles_empty_and_single_item_inputs() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn default_threads_is_positive_and_bounded() {
        let t = default_threads();
        assert!((1..=8).contains(&t));
    }
}
