//! Plain-text table rendering for the figure-regeneration benches.

/// Renders rows as a fixed-width text table with a header rule.
///
/// # Examples
///
/// ```
/// use pascal_core::report::render_table;
///
/// let table = render_table(
///     &["policy", "ttft"],
///     &[vec!["FCFS".into(), "12.3".into()], vec!["PASCAL".into(), "4.5".into()]],
/// );
/// assert!(table.contains("PASCAL"));
/// assert!(table.lines().count() >= 4);
/// ```
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: Vec<&str>| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$}", cell, width = widths[i] + 2));
        }
        line.trim_end().to_owned() + "\n"
    };
    out.push_str(&render_row(headers.to_vec()));
    out.push_str(&format!(
        "{}\n",
        "-".repeat(
            widths
                .iter()
                .map(|w| w + 2)
                .sum::<usize>()
                .saturating_sub(2)
        )
    ));
    for row in rows {
        out.push_str(&render_row(row.iter().map(String::as_str).collect()));
    }
    out
}

/// Formats a fraction as a percentage with two decimals.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Formats seconds with two decimals.
#[must_use]
pub fn secs(x: f64) -> String {
    format!("{x:.2}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["a", "long_header"],
            &[
                vec!["xxxxxx".into(), "1".into()],
                vec!["y".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows start their second column at the same offset.
        let off = lines[0].find("long_header").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), off);
        assert_eq!(lines[3].find('2').unwrap(), off);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(secs(1.5), "1.50s");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        let _ = render_table(&["a", "b"], &[vec!["only one".into()]]);
    }
}

/// Serializes request records as CSV (one row per request) for offline
/// analysis/plotting. Columns cover every metric the paper reports.
///
/// # Examples
///
/// ```
/// use pascal_core::report::records_csv;
///
/// let csv = records_csv(&[]);
/// assert!(csv.starts_with("request_id,arrival_s"));
/// ```
#[must_use]
pub fn records_csv(records: &[pascal_metrics::RequestRecord]) -> String {
    let mut out = String::from(
        "request_id,arrival_s,prompt_tokens,reasoning_tokens,answering_tokens,\
         warm_start,completion_s,ttft_s,ttfat_s,reasoning_latency_s,\
         answering_latency_s,e2e_s,executed_s,blocked_s,preempted_s,\
         num_preemptions,migrated,instances_visited\n",
    );
    let fmt_opt = |x: Option<f64>| x.map_or_else(String::new, |v| format!("{v:.6}"));
    for r in records {
        let visited = r
            .instances_visited
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("|");
        out.push_str(&format!(
            "{},{:.6},{},{},{},{},{:.6},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{},{},{}\n",
            r.spec.id.0,
            r.spec.arrival.as_secs_f64(),
            r.spec.prompt_tokens,
            r.spec.reasoning_tokens,
            r.spec.answering_tokens,
            r.spec.warm_start,
            r.completion.as_secs_f64(),
            fmt_opt(r.ttft().map(|d| d.as_secs_f64())),
            fmt_opt(r.ttfat().map(|d| d.as_secs_f64())),
            fmt_opt(r.reasoning_latency().map(|d| d.as_secs_f64())),
            fmt_opt(r.answering_latency().map(|d| d.as_secs_f64())),
            r.e2e_latency().as_secs_f64(),
            r.executed.as_secs_f64(),
            r.blocked.as_secs_f64(),
            r.preempted.as_secs_f64(),
            r.num_preemptions,
            r.migration.is_some(),
            visited,
        ));
    }
    out
}

#[cfg(test)]
mod csv_tests {
    use super::records_csv;
    use crate::config::KvCapacityMode;
    use crate::engine::run_simulation;
    use crate::SimConfig;
    use pascal_sched::SchedPolicy;
    use pascal_sim::SimTime;
    use pascal_workload::{RequestId, RequestSpec, Trace};

    #[test]
    fn csv_has_one_row_per_request_plus_header() {
        let trace = Trace::from_requests(vec![
            RequestSpec::new(RequestId(0), SimTime::ZERO, 64, 10, 5),
            RequestSpec::new(RequestId(1), SimTime::from_secs_f64(1.0), 64, 5, 0),
        ]);
        let config = SimConfig::characterization(SchedPolicy::Fcfs, KvCapacityMode::Unlimited);
        let out = run_simulation(&trace, &config);
        let csv = records_csv(&out.records);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        let header_cols = lines[0].split(',').count();
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), header_cols, "ragged row: {row}");
        }
        // The reasoning-only request has empty TTFT/TTFAT/answering columns.
        assert!(lines[2].contains(",,"));
    }
}
