//! Trace serialization: JSONL and Chrome trace-event output.
//!
//! Both serializers are pure functions over an event buffer — the engine
//! never touches files, so a disabled sink costs nothing and a run's
//! events can be re-serialized in either format after the fact. The
//! emitted JSON uses the same conventions as the sweep reports (stable key
//! order, shortest-round-trip floats), so the in-tree recursive-descent
//! parser reads every line back exactly.

use crate::event::{TraceEvent, TraceEventKind};

/// On-disk trace format.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line — grep/jq friendly.
    #[default]
    Jsonl,
    /// A single Chrome trace-event JSON array, loadable in Perfetto or
    /// `chrome://tracing`.
    Chrome,
}

impl TraceFormat {
    /// Every format, in CLI listing order.
    pub const ALL: [TraceFormat; 2] = [TraceFormat::Jsonl, TraceFormat::Chrome];

    /// Stable lowercase key (the CLI value).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Chrome => "chrome",
        }
    }

    /// Parses a CLI key.
    #[must_use]
    pub fn parse(text: &str) -> Option<TraceFormat> {
        TraceFormat::ALL.into_iter().find(|f| f.key() == text)
    }
}

/// Shortest `f64` representation that round-trips (the sweep-report float
/// convention, duplicated here because `pascal-core` sits above this crate).
fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

/// Appends the kind-specific payload fields of `kind` as `,"key":value`
/// pairs (shared by both serializers; the Chrome `args` object reuses it).
fn push_kind_fields(out: &mut String, kind: &TraceEventKind) {
    match kind {
        TraceEventKind::AdmissionRejected {
            projected_kv_bytes,
            budget_bytes,
        } => {
            out.push_str(&format!(
                ",\"projected_kv_bytes\":{projected_kv_bytes},\"budget_bytes\":{budget_bytes}"
            ));
        }
        TraceEventKind::AdmissionSpilled { to_region } => {
            out.push_str(&format!(",\"to_region\":{to_region}"));
        }
        TraceEventKind::MigrationConsidered { tier }
        | TraceEventKind::MigrationVetoed { tier }
        | TraceEventKind::MigrationAborted { tier } => {
            out.push_str(&format!(",\"tier\":\"{}\"", tier.key()));
        }
        TraceEventKind::MigrationLaunched {
            tier,
            to_shard,
            to_instance,
            bytes,
        } => {
            out.push_str(&format!(
                ",\"tier\":\"{}\",\"to_shard\":{to_shard},\"to_instance\":{to_instance},\"bytes\":{bytes}",
                tier.key()
            ));
        }
        TraceEventKind::MigrationLanded { in_cpu } => {
            out.push_str(&format!(",\"in_cpu\":{in_cpu}"));
        }
        TraceEventKind::EscapeFallback { after_veto } => {
            out.push_str(&format!(",\"after_veto\":{after_veto}"));
        }
        TraceEventKind::Completed { tokens } => {
            out.push_str(&format!(",\"tokens\":{tokens}"));
        }
        TraceEventKind::RequestRebalanced { to_instance } => {
            out.push_str(&format!(",\"to_instance\":{to_instance}"));
        }
        TraceEventKind::PrefillStart { queued_ns } => {
            out.push_str(&format!(",\"queued_ns\":{queued_ns}"));
        }
        TraceEventKind::SloAlertFired { rule, burn_milli } => {
            out.push_str(&format!(",\"rule\":{rule},\"burn_milli\":{burn_milli}"));
        }
        TraceEventKind::SloAlertResolved { rule } => {
            out.push_str(&format!(",\"rule\":{rule}"));
        }
        TraceEventKind::Arrival
        | TraceEventKind::SpeculativeDemotion
        | TraceEventKind::Demoted
        | TraceEventKind::PhaseTransition
        | TraceEventKind::FirstAnswerToken
        | TraceEventKind::Preempted
        | TraceEventKind::OffloadDone
        | TraceEventKind::ReloadDone
        | TraceEventKind::InstanceDown
        | TraceEventKind::InstanceDraining
        | TraceEventKind::InstanceUp
        | TraceEventKind::DrainComplete
        | TraceEventKind::RequestStranded
        | TraceEventKind::AutoscaleUp
        | TraceEventKind::AutoscaleDown => {}
    }
}

/// Serializes events as JSONL: one self-contained object per line, sim
/// time as exact integer nanoseconds (`t_ns`).
#[must_use]
pub fn events_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&format!(
            "{{\"t_ns\":{},\"event\":\"{}\",\"region\":{},\"shard\":{}",
            ev.at.as_nanos(),
            ev.kind.key(),
            ev.region,
            ev.shard
        ));
        if let Some(instance) = ev.instance {
            out.push_str(&format!(",\"instance\":{instance}"));
        }
        if let Some(request) = ev.request {
            out.push_str(&format!(",\"request\":{request}"));
        }
        push_kind_fields(&mut out, &ev.kind);
        out.push_str("}\n");
    }
    out
}

/// Serializes events as one Chrome trace-event JSON array of instant
/// events: `ts` in microseconds, `pid` = region, `tid` = shard (global id),
/// payload under `args`. Load the file in [Perfetto](https://ui.perfetto.dev)
/// or `chrome://tracing`.
#[must_use]
pub fn events_to_chrome(events: &[TraceEvent]) -> String {
    let mut out = String::from("[\n");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{",
            ev.kind.key(),
            fmt_f64(ev.at.as_nanos() as f64 / 1_000.0),
            ev.region,
            ev.shard
        ));
        let mut args = String::new();
        if let Some(instance) = ev.instance {
            args.push_str(&format!(",\"instance\":{instance}"));
        }
        if let Some(request) = ev.request {
            args.push_str(&format!(",\"request\":{request}"));
        }
        push_kind_fields(&mut args, &ev.kind);
        out.push_str(args.strip_prefix(',').unwrap_or(&args));
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EscapeTier;
    use pascal_sim::SimTime;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                at: SimTime::from_nanos(1_500),
                region: 0,
                shard: 1,
                instance: Some(2),
                request: Some(7),
                kind: TraceEventKind::Arrival,
            },
            TraceEvent {
                at: SimTime::from_nanos(2_500),
                region: 1,
                shard: 3,
                instance: None,
                request: Some(7),
                kind: TraceEventKind::MigrationLaunched {
                    tier: EscapeTier::CrossRegion,
                    to_shard: 0,
                    to_instance: 1,
                    bytes: 4096,
                },
            },
        ]
    }

    #[test]
    fn format_keys_round_trip() {
        for f in TraceFormat::ALL {
            assert_eq!(TraceFormat::parse(f.key()), Some(f));
        }
        assert_eq!(TraceFormat::parse("bogus"), None);
    }

    #[test]
    fn jsonl_is_one_object_per_line_with_integer_nanos() {
        let text = events_to_jsonl(&sample_events());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"t_ns\":1500,"));
        assert!(lines[0].ends_with('}'));
        assert!(lines[1].contains("\"tier\":\"cross_region\""));
        assert!(lines[1].contains("\"bytes\":4096"));
        assert!(!lines[0].contains("\"tier\""), "no payload on plain kinds");
    }

    #[test]
    fn chrome_is_one_array_with_microsecond_ts() {
        let text = events_to_chrome(&sample_events());
        assert!(text.starts_with("[\n"));
        assert!(text.ends_with("\n]\n"));
        assert!(text.contains("\"ts\":1.5,"));
        assert!(text.contains("\"ts\":2.5,"));
        assert!(text.contains("\"ph\":\"i\""));
        assert!(text.contains("\"pid\":1,\"tid\":3"));
        assert!(text.contains("\"args\":{\"instance\":2,\"request\":7}"));
    }

    #[test]
    fn empty_buffers_serialize_cleanly() {
        assert_eq!(events_to_jsonl(&[]), "");
        assert_eq!(events_to_chrome(&[]), "[\n\n]\n");
    }
}
