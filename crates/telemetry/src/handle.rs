//! The engine-facing telemetry handle and its configuration.
//!
//! Every shard holds a clone of one [`TelemetryHandle`]; all clones share
//! the same buffers. The zero-observer-effect contract lives here: with a
//! stream disabled, the corresponding emit call tests one `bool` and
//! returns — no allocation, no lock, no closure call — so a fully
//! disabled handle cannot perturb anything, and an enabled one only ever
//! *appends to side buffers* that deterministic outputs never read.
//!
//! The shared buffers sit behind an `Arc<Mutex<..>>` so shards carrying
//! clones can be driven from the windowed parallel executor's worker
//! threads; the mutex is uncontended on the sequential path, and every
//! access is still gated behind the per-stream `bool` first.

use std::cell::Cell;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use pascal_sim::SimDuration;

use crate::event::TraceEvent;
use crate::profiler::{HotPathProfiler, ProfileReport, ProfiledEvent};
use crate::series::SeriesRow;

/// Which telemetry streams a run collects. Everything defaults to off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Collect request-lifecycle [`TraceEvent`]s.
    pub trace: bool,
    /// Snapshot time-series gauges every this much sim time.
    pub series_interval: Option<SimDuration>,
    /// Profile the event loop's wall clock.
    pub profile: bool,
}

impl TelemetryConfig {
    /// True iff any stream is enabled.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.trace || self.series_interval.is_some() || self.profile
    }
}

/// The shared buffers behind an enabled handle.
struct TelemetryBuf {
    events: Vec<TraceEvent>,
    series: Vec<SeriesRow>,
    profiler: Option<HotPathProfiler>,
}

/// A cheap, clonable emitter the engine threads through every shard.
///
/// Disabled streams cost a single branch per call site.
#[derive(Clone, Default)]
pub struct TelemetryHandle {
    trace_on: bool,
    profile_on: bool,
    series_interval: Option<SimDuration>,
    /// Rolls over every [`PROFILE_SAMPLE_EVERY`] timer calls; per-clone,
    /// so each shard samples its own stream independently.
    profile_tick: Cell<u32>,
    inner: Option<Arc<Mutex<TelemetryBuf>>>,
}

/// Wall-clock timing is sampled 1-in-N: event *counts* stay exact (they
/// feed the headline events/sec, which divides by the profiler's own wall
/// clock, not by summed samples), while the per-event histograms are built
/// from every Nth event — cutting the profiler's hot-path cost from two
/// `Instant::now` calls per event to two per N events.
const PROFILE_SAMPLE_EVERY: u32 = 16;

impl std::fmt::Debug for TelemetryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryHandle")
            .field("trace_on", &self.trace_on)
            .field("profile_on", &self.profile_on)
            .field("series_interval", &self.series_interval)
            .finish_non_exhaustive()
    }
}

impl TelemetryHandle {
    /// A fully disabled handle: every emit call is a no-op branch.
    #[must_use]
    pub fn off() -> Self {
        TelemetryHandle::default()
    }

    /// Builds a handle for `config`; fully disabled configs allocate
    /// nothing and return [`TelemetryHandle::off`].
    #[must_use]
    pub fn new(config: &TelemetryConfig) -> Self {
        if !config.enabled() {
            return TelemetryHandle::off();
        }
        TelemetryHandle {
            trace_on: config.trace,
            profile_on: config.profile,
            series_interval: config.series_interval,
            profile_tick: Cell::new(0),
            inner: Some(Arc::new(Mutex::new(TelemetryBuf {
                events: Vec::new(),
                series: Vec::new(),
                profiler: config.profile.then(HotPathProfiler::new),
            }))),
        }
    }

    /// True iff any stream is live.
    #[must_use]
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Emits a trace event. The closure runs only when tracing is on, so
    /// a disabled handle never even builds the event.
    #[inline]
    pub fn trace(&self, event: impl FnOnce() -> TraceEvent) {
        if self.trace_on {
            if let Some(inner) = &self.inner {
                inner.lock().expect("telemetry lock").events.push(event());
            }
        }
    }

    /// True iff request-lifecycle tracing is on. The windowed parallel
    /// executor checks this to fall back to the sequential path: trace
    /// events are appended in processing order, which only matches the
    /// committed fixtures when events fire in global `(time, seq)` order.
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.trace_on
    }

    /// The configured gauge-sampling interval, if series are on.
    #[must_use]
    pub fn series_interval(&self) -> Option<SimDuration> {
        self.series_interval
    }

    /// Appends one gauge snapshot row.
    pub fn push_series(&self, row: SeriesRow) {
        if let Some(inner) = &self.inner {
            inner.lock().expect("telemetry lock").series.push(row);
        }
    }

    /// Starts timing one event-loop event; `None` when profiling is off
    /// or this event falls outside the 1-in-[`PROFILE_SAMPLE_EVERY`]
    /// timing sample (the event is still *counted* by
    /// [`TelemetryHandle::profile_record`]).
    #[inline]
    #[must_use]
    pub fn profile_timer(&self) -> Option<Instant> {
        if !self.profile_on {
            return None;
        }
        let tick = self.profile_tick.get();
        self.profile_tick.set((tick + 1) % PROFILE_SAMPLE_EVERY);
        if tick == 0 {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Records a handled event against a timer from
    /// [`TelemetryHandle::profile_timer`]. The event is always counted
    /// while profiling is on; wall-clock timing lands in the histogram
    /// only when the timer sampled this event.
    #[inline]
    pub fn profile_record(&self, kind: ProfiledEvent, started: Option<Instant>) {
        if !self.profile_on {
            return;
        }
        if let Some(inner) = &self.inner {
            if let Some(profiler) = inner.lock().expect("telemetry lock").profiler.as_mut() {
                match started {
                    Some(t0) => profiler.record(kind, t0.elapsed().as_secs_f64() * 1e6),
                    None => profiler.count_only(kind),
                }
            }
        }
    }

    /// Counts one completed lockstep window of the parallel executor.
    #[inline]
    pub fn profile_window(&self, drained_events: u64) {
        if !self.profile_on {
            return;
        }
        if let Some(inner) = &self.inner {
            if let Some(profiler) = inner.lock().expect("telemetry lock").profiler.as_mut() {
                profiler.count_window(drained_events);
            }
        }
    }

    /// Counts one event handled at a window barrier (sequentially, by the
    /// coordinator) in the parallel executor.
    #[inline]
    pub fn profile_barrier_event(&self) {
        if !self.profile_on {
            return;
        }
        if let Some(inner) = &self.inner {
            if let Some(profiler) = inner.lock().expect("telemetry lock").profiler.as_mut() {
                profiler.count_barrier_event();
            }
        }
    }

    /// Drains the buffers into a plain-data result (`None` when fully
    /// disabled). Call once, after the run.
    #[must_use]
    pub fn finish(&self) -> Option<TelemetryOut> {
        let inner = self.inner.as_ref()?;
        let mut buf = inner.lock().expect("telemetry lock");
        Some(TelemetryOut {
            events: std::mem::take(&mut buf.events),
            series: std::mem::take(&mut buf.series),
            profile: buf.profiler.take().map(HotPathProfiler::report),
        })
    }
}

/// Everything a run's telemetry collected, as plain owned data (`Send`,
/// unlike the handle itself) ready for serialization.
#[derive(Clone, Debug, Default)]
pub struct TelemetryOut {
    /// The trace-event buffer, in emission (= sim time) order.
    pub events: Vec<TraceEvent>,
    /// The gauge snapshots, in sample-time order.
    pub series: Vec<SeriesRow>,
    /// The profiler summary, when profiling was on.
    pub profile: Option<ProfileReport>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEventKind;
    use pascal_sim::SimTime;

    fn arrival_at(ns: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_nanos(ns),
            region: 0,
            shard: 0,
            instance: None,
            request: Some(1),
            kind: TraceEventKind::Arrival,
        }
    }

    #[test]
    fn disabled_handle_collects_nothing_and_finishes_none() {
        let handle = TelemetryHandle::off();
        assert!(!handle.is_on());
        handle.trace(|| panic!("closure must not run when tracing is off"));
        handle.profile_record(ProfiledEvent::Arrival, handle.profile_timer());
        assert!(handle.finish().is_none());
        assert!(!TelemetryConfig::default().enabled());
    }

    #[test]
    fn clones_share_one_buffer() {
        let handle = TelemetryHandle::new(&TelemetryConfig {
            trace: true,
            ..TelemetryConfig::default()
        });
        let clone = handle.clone();
        handle.trace(|| arrival_at(1));
        clone.trace(|| arrival_at(2));
        let out = handle.finish().expect("enabled");
        assert_eq!(out.events.len(), 2);
        assert!(out.profile.is_none());
    }

    #[test]
    fn profile_only_config_reports_without_traces() {
        let handle = TelemetryHandle::new(&TelemetryConfig {
            profile: true,
            ..TelemetryConfig::default()
        });
        handle.trace(|| panic!("tracing is off"));
        let t0 = handle.profile_timer();
        assert!(t0.is_some());
        handle.profile_record(ProfiledEvent::IterationDone, t0);
        let out = handle.finish().expect("enabled");
        assert!(out.events.is_empty());
        let profile = out.profile.expect("profiler ran");
        assert_eq!(profile.events, 1);
    }

    #[test]
    fn series_interval_round_trips() {
        let interval = SimDuration::from_secs(2);
        let handle = TelemetryHandle::new(&TelemetryConfig {
            series_interval: Some(interval),
            ..TelemetryConfig::default()
        });
        assert_eq!(handle.series_interval(), Some(interval));
        assert_eq!(TelemetryHandle::off().series_interval(), None);
    }
}
