//! Latency anatomy: per-request span reconstruction and blame attribution.
//!
//! Replays a run's [`TraceEvent`] stream into one timeline per request and
//! decomposes its end-to-end latency into an **exact additive blame**
//! vector: at any instant between arrival and termination the request is
//! in exactly one of seven states (queued, in service, offloading, parked
//! in CPU memory, or migrating at one of the three escape tiers), so the
//! per-component durations partition the measured latency. The same
//! partition clipped at the first answering token yields the TTFT blame.
//! Both conservation identities are asserted for every request — a blame
//! vector that does not sum to the measured latency is a bug, never noise.
//!
//! The reconstruction is a pure function over the event slice: no
//! filesystem, no engine state, deterministic for a deterministic trace.

use std::collections::HashMap;

use pascal_sim::SimTime;

use crate::event::{EscapeTier, TraceEvent, TraceEventKind};

/// Number of blame components (see [`Blame::as_array`]).
pub const BLAME_COMPONENTS: usize = 7;

/// Stable component names, index-aligned with [`Blame::as_array`].
pub const BLAME_COMPONENT_NAMES: [&str; BLAME_COMPONENTS] = [
    "queue",
    "service",
    "offload",
    "parked",
    "migration_intra",
    "migration_cross_shard",
    "migration_cross_region",
];

/// An exact additive latency decomposition, in integer nanoseconds.
///
/// The components partition a request's wall interval, so
/// [`Blame::total_ns`] equals the measured latency exactly — u64
/// arithmetic, no float drift.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Blame {
    /// Waiting for first service: arrival → prefill launch (includes any
    /// post-outage rebalance waits — the request is still queued).
    pub queue_ns: u64,
    /// On a GPU: prefill plus decode plus any on-GPU scheduling slack.
    pub service_ns: u64,
    /// Preemption offload in flight (GPU → CPU over PCIe).
    pub offload_ns: u64,
    /// Parked in CPU memory waiting for readmission (includes the reload
    /// transfer — the trace marks its completion, not its launch).
    pub parked_ns: u64,
    /// Intra-shard migration transfer in flight.
    pub migration_intra_ns: u64,
    /// Cross-shard migration transfer in flight.
    pub migration_cross_shard_ns: u64,
    /// Cross-region (WAN) migration transfer in flight.
    pub migration_cross_region_ns: u64,
}

impl Blame {
    /// The components as an array, index-aligned with
    /// [`BLAME_COMPONENT_NAMES`].
    #[must_use]
    pub fn as_array(&self) -> [u64; BLAME_COMPONENTS] {
        [
            self.queue_ns,
            self.service_ns,
            self.offload_ns,
            self.parked_ns,
            self.migration_intra_ns,
            self.migration_cross_shard_ns,
            self.migration_cross_region_ns,
        ]
    }

    /// Sum of every component — by construction the measured latency.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.as_array().iter().sum()
    }

    fn add(&mut self, seg: Segment, ns: u64) {
        match seg {
            Segment::Queue => self.queue_ns += ns,
            Segment::Service => self.service_ns += ns,
            Segment::Offload => self.offload_ns += ns,
            Segment::Parked => self.parked_ns += ns,
            Segment::Migration(EscapeTier::Intra) => self.migration_intra_ns += ns,
            Segment::Migration(EscapeTier::CrossShard) => self.migration_cross_shard_ns += ns,
            Segment::Migration(EscapeTier::CrossRegion) => self.migration_cross_region_ns += ns,
        }
    }
}

/// How a request's timeline ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnatomyOutcome {
    /// Generated its final token.
    Completed,
    /// Lost to a fail-stop outage.
    Stranded,
}

/// One request's reconstructed timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestAnatomy {
    /// Request id.
    pub request: u64,
    /// Region of the arrival event (where the request was first placed).
    pub region: u32,
    /// Shard (global id) of the arrival event.
    pub shard: u32,
    /// Arrival time.
    pub arrival: SimTime,
    /// First answering token, when the request answered at all — the
    /// instant the paper's TTFT clock stops.
    pub first_answer: Option<SimTime>,
    /// Termination time (completion or stranding).
    pub end: SimTime,
    /// How the timeline ended.
    pub outcome: AnatomyOutcome,
    /// End-to-end blame: components sum exactly to `end - arrival`.
    pub e2e: Blame,
    /// TTFT blame (the E2E partition clipped at `first_answer`):
    /// components sum exactly to `first_answer - arrival`.
    pub ttft: Option<Blame>,
    /// Preemptions suffered.
    pub preemptions: u32,
    /// Migration transfers ridden (any tier).
    pub migrations: u32,
    /// Demotions (speculative or threshold-triggered).
    pub demotions: u32,
    /// Migration decisions vetoed by the cost/benefit test.
    pub vetoes: u32,
    /// Deferred intra-shard fallback moves after a failed escape.
    pub fallbacks: u32,
    /// Post-outage rebalancer re-placements while queued.
    pub rebalances: u32,
    /// Whether admission spilled the arrival to a remote region.
    pub spilled: bool,
}

impl RequestAnatomy {
    /// Measured end-to-end latency in nanoseconds.
    #[must_use]
    pub fn e2e_ns(&self) -> u64 {
        self.end.as_nanos() - self.arrival.as_nanos()
    }

    /// Measured TTFT in nanoseconds, when the request answered.
    #[must_use]
    pub fn ttft_ns(&self) -> Option<u64> {
        self.first_answer
            .map(|fa| fa.as_nanos() - self.arrival.as_nanos())
    }
}

/// The full anatomy of one traced run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AnatomyReport {
    /// One timeline per terminated request, ordered by request id.
    pub requests: Vec<RequestAnatomy>,
    /// Arrivals turned away by admission control (no timeline: a rejected
    /// request accrues no servable latency).
    pub rejected: u64,
    /// Request-scoped events whose request never terminated in this trace
    /// (a truncated capture) — their partial timelines are dropped rather
    /// than reported with broken conservation.
    pub unterminated: u64,
}

/// The state a request occupies between two of its trace events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Segment {
    Queue,
    Service,
    Offload,
    Parked,
    Migration(EscapeTier),
}

/// Per-request accumulator while scanning the event stream.
struct Builder {
    region: u32,
    shard: u32,
    arrival: SimTime,
    seg: Segment,
    seg_start: SimTime,
    e2e: Blame,
    first_answer: Option<SimTime>,
    ttft: Option<Blame>,
    preemptions: u32,
    migrations: u32,
    demotions: u32,
    vetoes: u32,
    fallbacks: u32,
    rebalances: u32,
    spilled: bool,
}

impl Builder {
    fn new(ev: &TraceEvent) -> Self {
        Builder {
            region: ev.region,
            shard: ev.shard,
            arrival: ev.at,
            seg: Segment::Queue,
            seg_start: ev.at,
            e2e: Blame::default(),
            first_answer: None,
            ttft: None,
            preemptions: 0,
            migrations: 0,
            demotions: 0,
            vetoes: 0,
            fallbacks: 0,
            rebalances: 0,
            spilled: false,
        }
    }

    /// Closes the open segment at `at` and opens the next one.
    fn advance(&mut self, at: SimTime, next: Segment) {
        let ns = at
            .as_nanos()
            .checked_sub(self.seg_start.as_nanos())
            .expect("trace timestamps are monotone per request");
        self.e2e.add(self.seg, ns);
        self.seg = next;
        self.seg_start = at;
    }

    fn finish(mut self, request: u64, at: SimTime, outcome: AnatomyOutcome) -> RequestAnatomy {
        self.advance(at, Segment::Queue);
        let anatomy = RequestAnatomy {
            request,
            region: self.region,
            shard: self.shard,
            arrival: self.arrival,
            first_answer: self.first_answer,
            end: at,
            outcome,
            e2e: self.e2e,
            ttft: self.ttft,
            preemptions: self.preemptions,
            migrations: self.migrations,
            demotions: self.demotions,
            vetoes: self.vetoes,
            fallbacks: self.fallbacks,
            rebalances: self.rebalances,
            spilled: self.spilled,
        };
        assert_eq!(
            anatomy.e2e.total_ns(),
            anatomy.e2e_ns(),
            "E2E blame conservation broken for request {request}"
        );
        if let Some(ttft) = &anatomy.ttft {
            assert_eq!(
                Some(ttft.total_ns()),
                anatomy.ttft_ns(),
                "TTFT blame conservation broken for request {request}"
            );
        }
        anatomy
    }
}

/// Reconstructs every request timeline in `events` (a run's full trace, in
/// emission order) and returns the blame decompositions.
///
/// # Panics
///
/// Panics if a reconstructed blame vector fails its conservation identity
/// — impossible for a well-formed trace, and a loud bug if the trace or
/// the reconstruction ever regresses.
#[must_use]
pub fn reconstruct(events: &[TraceEvent]) -> AnatomyReport {
    let mut open: HashMap<u64, Builder> = HashMap::new();
    let mut done: Vec<RequestAnatomy> = Vec::new();
    let mut rejected = 0u64;
    for ev in events {
        let Some(request) = ev.request else {
            continue; // fleet and alert events are not request-scoped
        };
        match &ev.kind {
            TraceEventKind::Arrival => {
                open.insert(request, Builder::new(ev));
            }
            TraceEventKind::AdmissionRejected { .. } => {
                rejected += 1;
                open.remove(&request);
            }
            TraceEventKind::AdmissionSpilled { .. } => {
                if let Some(b) = open.get_mut(&request) {
                    b.spilled = true;
                }
            }
            TraceEventKind::PrefillStart { .. } => {
                if let Some(b) = open.get_mut(&request) {
                    b.advance(ev.at, Segment::Service);
                }
            }
            TraceEventKind::FirstAnswerToken => {
                if let Some(b) = open.get_mut(&request) {
                    // TTFT blame = the E2E partition accumulated so far
                    // plus the open segment clipped at this instant.
                    let mut ttft = b.e2e;
                    ttft.add(b.seg, ev.at.as_nanos() - b.seg_start.as_nanos());
                    b.first_answer = Some(ev.at);
                    b.ttft = Some(ttft);
                }
            }
            TraceEventKind::Preempted => {
                if let Some(b) = open.get_mut(&request) {
                    b.preemptions += 1;
                    b.advance(ev.at, Segment::Offload);
                }
            }
            TraceEventKind::OffloadDone => {
                if let Some(b) = open.get_mut(&request) {
                    b.advance(ev.at, Segment::Parked);
                }
            }
            TraceEventKind::ReloadDone => {
                if let Some(b) = open.get_mut(&request) {
                    b.advance(ev.at, Segment::Service);
                }
            }
            TraceEventKind::MigrationLaunched { tier, .. } => {
                if let Some(b) = open.get_mut(&request) {
                    b.migrations += 1;
                    b.advance(ev.at, Segment::Migration(*tier));
                }
            }
            TraceEventKind::MigrationLanded { in_cpu } => {
                if let Some(b) = open.get_mut(&request) {
                    let next = if *in_cpu {
                        Segment::Parked
                    } else {
                        Segment::Service
                    };
                    b.advance(ev.at, next);
                }
            }
            TraceEventKind::Completed { .. } => {
                if let Some(b) = open.remove(&request) {
                    done.push(b.finish(request, ev.at, AnatomyOutcome::Completed));
                }
            }
            TraceEventKind::RequestStranded => {
                if let Some(b) = open.remove(&request) {
                    done.push(b.finish(request, ev.at, AnatomyOutcome::Stranded));
                }
            }
            TraceEventKind::SpeculativeDemotion | TraceEventKind::Demoted => {
                if let Some(b) = open.get_mut(&request) {
                    b.demotions += 1;
                }
            }
            TraceEventKind::MigrationVetoed { .. } => {
                if let Some(b) = open.get_mut(&request) {
                    b.vetoes += 1;
                }
            }
            TraceEventKind::EscapeFallback { .. } => {
                if let Some(b) = open.get_mut(&request) {
                    b.fallbacks += 1;
                }
            }
            TraceEventKind::RequestRebalanced { .. } => {
                if let Some(b) = open.get_mut(&request) {
                    b.rebalances += 1;
                }
            }
            // Decision markers and fleet/alert events leave the request's
            // occupancy state unchanged.
            TraceEventKind::PhaseTransition
            | TraceEventKind::MigrationConsidered { .. }
            | TraceEventKind::MigrationAborted { .. }
            | TraceEventKind::InstanceDown
            | TraceEventKind::InstanceDraining
            | TraceEventKind::InstanceUp
            | TraceEventKind::DrainComplete
            | TraceEventKind::AutoscaleUp
            | TraceEventKind::AutoscaleDown
            | TraceEventKind::SloAlertFired { .. }
            | TraceEventKind::SloAlertResolved { .. } => {}
        }
    }
    let unterminated = open.len() as u64;
    done.sort_by_key(|r| r.request);
    AnatomyReport {
        requests: done,
        rejected,
        unterminated,
    }
}

/// Aggregate blame statistics of one component across a run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ComponentProfile {
    /// Mean share of E2E latency this component eats (0..=1).
    pub mean_share: f64,
    /// p99 (nearest-rank) of the per-request share.
    pub p99_share: f64,
    /// Total nanoseconds attributed across all requests.
    pub total_ns: u64,
}

/// Per-run blame profile: the aggregation the CLI and sweep report expose.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BlameProfile {
    /// Requests with a blame decomposition (completed or stranded).
    pub requests: u64,
    /// One profile per component, index-aligned with
    /// [`BLAME_COMPONENT_NAMES`].
    pub components: [ComponentProfile; BLAME_COMPONENTS],
    /// Mean measured E2E latency, seconds.
    pub mean_e2e_s: f64,
    /// p99 (nearest-rank) measured E2E latency, seconds.
    pub p99_e2e_s: f64,
}

/// Nearest-rank percentile of a sorted slice (`q` in 0..=1).
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Aggregates per-request decompositions into a [`BlameProfile`].
/// Zero-latency requests contribute zero share to every component.
#[must_use]
pub fn aggregate(requests: &[RequestAnatomy]) -> BlameProfile {
    let n = requests.len();
    if n == 0 {
        return BlameProfile::default();
    }
    let mut components = [ComponentProfile::default(); BLAME_COMPONENTS];
    let mut shares: Vec<Vec<f64>> = (0..BLAME_COMPONENTS)
        .map(|_| Vec::with_capacity(n))
        .collect();
    let mut e2e: Vec<f64> = Vec::with_capacity(n);
    for r in requests {
        let total = r.e2e_ns();
        e2e.push(total as f64 / 1e9);
        let parts = r.e2e.as_array();
        for (c, &ns) in parts.iter().enumerate() {
            let share = if total == 0 {
                0.0
            } else {
                ns as f64 / total as f64
            };
            shares[c].push(share);
            components[c].total_ns += ns;
        }
    }
    for (c, comp) in components.iter_mut().enumerate() {
        comp.mean_share = shares[c].iter().sum::<f64>() / n as f64;
        let mut sorted = shares[c].clone();
        sorted.sort_by(f64::total_cmp);
        comp.p99_share = percentile_sorted(&sorted, 0.99);
    }
    let mut e2e_sorted = e2e.clone();
    e2e_sorted.sort_by(f64::total_cmp);
    BlameProfile {
        requests: n as u64,
        components,
        mean_e2e_s: e2e.iter().sum::<f64>() / n as f64,
        p99_e2e_s: percentile_sorted(&e2e_sorted, 0.99),
    }
}

/// The `k` worst requests by measured E2E latency, worst first (ties by
/// request id so the ranking is deterministic).
#[must_use]
pub fn worst_requests(requests: &[RequestAnatomy], k: usize) -> Vec<&RequestAnatomy> {
    let mut by_latency: Vec<&RequestAnatomy> = requests.iter().collect();
    by_latency.sort_by(|a, b| b.e2e_ns().cmp(&a.e2e_ns()).then(a.request.cmp(&b.request)));
    by_latency.truncate(k);
    by_latency
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64, request: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_nanos(t_ns),
            region: 0,
            shard: 0,
            instance: Some(0),
            request: Some(request),
            kind,
        }
    }

    #[test]
    fn straight_through_request_splits_queue_and_service() {
        let events = vec![
            ev(100, 1, TraceEventKind::Arrival),
            ev(400, 1, TraceEventKind::PrefillStart { queued_ns: 300 }),
            ev(700, 1, TraceEventKind::FirstAnswerToken),
            ev(1_000, 1, TraceEventKind::Completed { tokens: 4 }),
        ];
        let report = reconstruct(&events);
        assert_eq!(report.requests.len(), 1);
        let r = &report.requests[0];
        assert_eq!(r.e2e.queue_ns, 300);
        assert_eq!(r.e2e.service_ns, 600);
        assert_eq!(r.e2e.total_ns(), 900);
        assert_eq!(r.e2e_ns(), 900);
        let ttft = r.ttft.as_ref().expect("answered");
        assert_eq!(ttft.queue_ns, 300);
        assert_eq!(ttft.service_ns, 300);
        assert_eq!(r.ttft_ns(), Some(600));
        assert_eq!(r.outcome, AnatomyOutcome::Completed);
    }

    #[test]
    fn preemption_and_migration_segments_are_attributed() {
        let events = vec![
            ev(0, 2, TraceEventKind::Arrival),
            ev(10, 2, TraceEventKind::PrefillStart { queued_ns: 10 }),
            ev(30, 2, TraceEventKind::Preempted),
            ev(40, 2, TraceEventKind::OffloadDone),
            ev(90, 2, TraceEventKind::ReloadDone),
            ev(
                100,
                2,
                TraceEventKind::MigrationLaunched {
                    tier: EscapeTier::CrossShard,
                    to_shard: 1,
                    to_instance: 4,
                    bytes: 1,
                },
            ),
            ev(130, 2, TraceEventKind::MigrationLanded { in_cpu: true }),
            ev(150, 2, TraceEventKind::ReloadDone),
            ev(160, 2, TraceEventKind::FirstAnswerToken),
            ev(200, 2, TraceEventKind::Completed { tokens: 9 }),
        ];
        let report = reconstruct(&events);
        let r = &report.requests[0];
        assert_eq!(r.e2e.queue_ns, 10);
        assert_eq!(r.e2e.offload_ns, 10);
        // CPU-parked twice: 40→90 and the in-CPU landing 130→150.
        assert_eq!(r.e2e.parked_ns, 70);
        assert_eq!(r.e2e.migration_cross_shard_ns, 30);
        assert_eq!(r.e2e.service_ns, 80);
        assert_eq!(r.e2e.total_ns(), 200);
        assert_eq!(r.preemptions, 1);
        assert_eq!(r.migrations, 1);
        let ttft = r.ttft.as_ref().expect("answered");
        assert_eq!(ttft.total_ns(), 160);
    }

    #[test]
    fn stranded_and_rejected_requests_are_tallied() {
        let events = vec![
            ev(0, 3, TraceEventKind::Arrival),
            ev(50, 3, TraceEventKind::RequestStranded),
            ev(10, 4, TraceEventKind::Arrival),
            ev(
                10,
                4,
                TraceEventKind::AdmissionRejected {
                    projected_kv_bytes: 9,
                    budget_bytes: 1,
                },
            ),
            ev(20, 5, TraceEventKind::Arrival),
        ];
        let report = reconstruct(&events);
        assert_eq!(report.requests.len(), 1);
        assert_eq!(report.requests[0].outcome, AnatomyOutcome::Stranded);
        assert_eq!(report.requests[0].e2e.queue_ns, 50);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.unterminated, 1);
    }

    #[test]
    fn aggregate_profiles_share_out_to_one() {
        let events = vec![
            ev(0, 1, TraceEventKind::Arrival),
            ev(40, 1, TraceEventKind::PrefillStart { queued_ns: 40 }),
            ev(100, 1, TraceEventKind::Completed { tokens: 1 }),
            ev(0, 2, TraceEventKind::Arrival),
            ev(10, 2, TraceEventKind::PrefillStart { queued_ns: 10 }),
            ev(200, 2, TraceEventKind::Completed { tokens: 1 }),
        ];
        let report = reconstruct(&events);
        let profile = aggregate(&report.requests);
        assert_eq!(profile.requests, 2);
        let mean_total: f64 = profile.components.iter().map(|c| c.mean_share).sum();
        assert!((mean_total - 1.0).abs() < 1e-12, "shares sum to 1");
        assert!((profile.p99_e2e_s - 2e-7).abs() < 1e-18);
        let worst = worst_requests(&report.requests, 1);
        assert_eq!(worst[0].request, 2);
    }
}
