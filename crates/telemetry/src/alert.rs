//! In-sim SLO burn-rate alerting.
//!
//! An error budget says "at most `budget` of completions may violate the
//! SLO"; the **burn rate** is how fast a sliding window is spending that
//! budget: `(violations / completions in window) / budget`. A burn of 1.0
//! spends the budget exactly at the sustainable pace; an outage drives it
//! to `1/budget`. Declarative [`SloAlertRule`]s (window × threshold) are
//! evaluated in sim-time at every completion; rising edges latch and emit
//! [`SloAlertFired`](crate::TraceEventKind::SloAlertFired) trace events,
//! falling edges resolve. The tracker is pure bookkeeping over completion
//! outcomes — it never feeds back into scheduling, so an alerting run is
//! byte-identical to a quiet one in every existing output.
//!
//! The on-disk rule format is line-oriented (`#` comments allowed):
//!
//! ```text
//! budget 0.05          # error budget: ≤5% of completions may violate
//! min-samples 10       # suppress rules until a window holds this many
//! rule 5.0 6.0         # fire when the 5 s window burns ≥6× sustainable
//! rule 20.0 2.0        # and a slow-burn rule over a 20 s window
//! ```

use std::collections::VecDeque;

use pascal_sim::{SimDuration, SimTime};

/// One declarative burn-rate alert rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloAlertRule {
    /// Sliding window the burn rate is computed over.
    pub window: SimDuration,
    /// Burn-rate threshold: fire at `burn >= threshold`.
    pub threshold: f64,
}

/// A full alert specification: error budget plus rules.
#[derive(Clone, Debug, PartialEq)]
pub struct SloAlertSpec {
    /// Error budget: the tolerated SLO-violation fraction (0 < budget < 1).
    pub budget: f64,
    /// Completions a window must hold before its rule may fire — suppresses
    /// cold-start noise where one early violation reads as a 100% rate.
    pub min_samples: u32,
    /// The rules, evaluated independently; trace events carry the index.
    pub rules: Vec<SloAlertRule>,
}

impl SloAlertSpec {
    /// Parses the line-oriented alert-rule format.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line.
    pub fn parse(text: &str) -> Result<SloAlertSpec, String> {
        let mut budget: Option<f64> = None;
        let mut min_samples: Option<u32> = None;
        let mut rules = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let n = i + 1;
            let fields: Vec<&str> = line.split_whitespace().collect();
            match fields[0] {
                "budget" => {
                    if fields.len() != 2 {
                        return Err(format!("alert rules line {n}: budget takes one fraction"));
                    }
                    if budget.is_some() {
                        return Err(format!("alert rules line {n}: duplicate budget directive"));
                    }
                    budget = Some(parse_f64(fields[1], n, "budget")?);
                }
                "min-samples" => {
                    if fields.len() != 2 {
                        return Err(format!("alert rules line {n}: min-samples takes one count"));
                    }
                    if min_samples.is_some() {
                        return Err(format!(
                            "alert rules line {n}: duplicate min-samples directive"
                        ));
                    }
                    min_samples = Some(fields[1].parse().map_err(|_| {
                        format!("alert rules line {n}: bad min-samples '{}'", fields[1])
                    })?);
                }
                "rule" => {
                    if fields.len() != 3 {
                        return Err(format!(
                            "alert rules line {n}: rule takes <window_s> <burn_threshold>"
                        ));
                    }
                    let window = parse_f64(fields[1], n, "window")?;
                    let threshold = parse_f64(fields[2], n, "threshold")?;
                    if window <= 0.0 {
                        return Err(format!("alert rules line {n}: window must be positive"));
                    }
                    if threshold <= 0.0 {
                        return Err(format!("alert rules line {n}: threshold must be positive"));
                    }
                    rules.push(SloAlertRule {
                        window: SimDuration::from_secs_f64(window),
                        threshold,
                    });
                }
                other => {
                    return Err(format!(
                        "alert rules line {n}: unknown directive '{other}' \
                         (valid directives: budget, min-samples, rule)"
                    ));
                }
            }
        }
        if rules.is_empty() {
            return Err("alert rules: need at least one rule line".to_owned());
        }
        let budget = budget.unwrap_or(0.05);
        if !(0.0 < budget && budget < 1.0) {
            return Err(format!(
                "alert rules: budget must be in (0, 1), got {budget}"
            ));
        }
        Ok(SloAlertSpec {
            budget,
            min_samples: min_samples.unwrap_or(10),
            rules,
        })
    }

    /// The widest rule window — how much history the tracker retains.
    #[must_use]
    pub fn max_window(&self) -> SimDuration {
        self.rules
            .iter()
            .map(|r| r.window)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

fn parse_f64(s: &str, line: usize, what: &str) -> Result<f64, String> {
    let v: f64 = s
        .parse()
        .map_err(|_| format!("alert rules line {line}: bad {what} '{s}'"))?;
    if !v.is_finite() {
        return Err(format!("alert rules line {line}: bad {what} '{s}'"));
    }
    Ok(v)
}

/// Built-in alert presets, resolved against the run's horizon like the
/// fleet presets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloAlertPreset {
    /// Fast-burn page: a short window (5% of the horizon) burning ≥4×
    /// sustainable. Catches outages within a fraction of the incident.
    Paging,
    /// Slow-burn ticket: a long window (25% of the horizon) burning ≥1.5×.
    /// Catches sustained degradation a paging window forgives.
    Ticket,
}

impl SloAlertPreset {
    /// Every preset, in CLI listing order.
    pub const ALL: [SloAlertPreset; 2] = [SloAlertPreset::Paging, SloAlertPreset::Ticket];

    /// Stable lowercase key (the CLI value).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            SloAlertPreset::Paging => "paging",
            SloAlertPreset::Ticket => "ticket",
        }
    }

    /// Parses a CLI key.
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid presets.
    pub fn parse(s: &str) -> Result<SloAlertPreset, String> {
        SloAlertPreset::ALL
            .into_iter()
            .find(|p| p.key() == s)
            .ok_or_else(|| {
                let keys: Vec<&str> = SloAlertPreset::ALL.iter().map(|p| p.key()).collect();
                format!("unknown alert preset '{s}' (valid: {})", keys.join(", "))
            })
    }

    /// Resolves the preset against a concrete time horizon.
    #[must_use]
    pub fn spec(self, horizon_s: f64) -> SloAlertSpec {
        let window = |frac: f64| SimDuration::from_secs_f64((horizon_s * frac).max(0.5));
        match self {
            SloAlertPreset::Paging => SloAlertSpec {
                budget: 0.05,
                min_samples: 10,
                rules: vec![SloAlertRule {
                    window: window(0.05),
                    threshold: 4.0,
                }],
            },
            SloAlertPreset::Ticket => SloAlertSpec {
                budget: 0.05,
                min_samples: 20,
                rules: vec![SloAlertRule {
                    window: window(0.25),
                    threshold: 1.5,
                }],
            },
        }
    }
}

impl std::fmt::Display for SloAlertPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// One fired alert, as collected into the run output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloAlertRecord {
    /// When the rule's rising edge fired.
    pub at: SimTime,
    /// Region of the tracker that fired.
    pub region: u32,
    /// Shard (global id) of the tracker that fired.
    pub shard: u32,
    /// Index of the rule in the run's [`SloAlertSpec`].
    pub rule: u32,
    /// Burn rate at the edge, in milli-units (1000 = sustainable pace).
    pub burn_milli: u64,
}

/// One rule edge produced by [`SloBurnTracker::observe`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AlertEdge {
    /// Index of the rule that crossed its threshold.
    pub rule: u32,
    /// True on the rising (fire) edge, false on the falling (resolve) edge.
    pub fired: bool,
    /// Burn rate at the edge, in milli-units.
    pub burn_milli: u64,
}

/// Sliding-window burn-rate evaluator for one scope (a shard).
///
/// Fed every completion with its violation verdict; trims samples older
/// than the widest rule window; latches each rule independently so a
/// sustained burn fires once, not once per completion.
#[derive(Clone, Debug)]
pub struct SloBurnTracker {
    spec: SloAlertSpec,
    samples: VecDeque<(SimTime, bool)>,
    active: Vec<bool>,
}

impl SloBurnTracker {
    /// A tracker evaluating `spec`.
    #[must_use]
    pub fn new(spec: SloAlertSpec) -> Self {
        let rules = spec.rules.len();
        SloBurnTracker {
            spec,
            samples: VecDeque::new(),
            active: vec![false; rules],
        }
    }

    /// The spec this tracker evaluates.
    #[must_use]
    pub fn spec(&self) -> &SloAlertSpec {
        &self.spec
    }

    /// Violations and completions inside `window` ending at `now`.
    fn window_counts_for(&self, now: SimTime, window: SimDuration) -> (u64, u64) {
        let mut violations = 0u64;
        let mut total = 0u64;
        for &(t, violated) in self.samples.iter().rev() {
            if now.saturating_since(t) > window {
                break;
            }
            total += 1;
            if violated {
                violations += 1;
            }
        }
        (violations, total)
    }

    /// Violations and completions inside the widest rule window ending at
    /// `now` — the raw counts region rows aggregate across shards.
    #[must_use]
    pub fn window_counts(&self, now: SimTime) -> (u64, u64) {
        self.window_counts_for(now, self.spec.max_window())
    }

    /// The current burn rate over the widest rule window (`None` before
    /// the first completion) — the series-stream gauge.
    #[must_use]
    pub fn burn_gauge(&self, now: SimTime) -> Option<f64> {
        let (violations, total) = self.window_counts(now);
        (total > 0).then(|| burn_rate(violations, total, self.spec.budget))
    }

    /// Records one completion (`violated` = QoE below the SLO threshold)
    /// and returns every rule edge it caused, in rule order.
    pub fn observe(&mut self, now: SimTime, violated: bool) -> Vec<AlertEdge> {
        self.samples.push_back((now, violated));
        let max_window = self.spec.max_window();
        while let Some(&(t, _)) = self.samples.front() {
            if now.saturating_since(t) > max_window {
                self.samples.pop_front();
            } else {
                break;
            }
        }
        let mut edges = Vec::new();
        for (i, rule) in self.spec.rules.iter().enumerate() {
            let (violations, total) = self.window_counts_for(now, rule.window);
            if total < u64::from(self.spec.min_samples) {
                continue;
            }
            let burn = burn_rate(violations, total, self.spec.budget);
            let over = burn >= rule.threshold;
            if over != self.active[i] {
                self.active[i] = over;
                edges.push(AlertEdge {
                    rule: i as u32,
                    fired: over,
                    burn_milli: to_milli(burn),
                });
            }
        }
        edges
    }
}

/// Burn rate of `violations` out of `total` completions against `budget`.
#[must_use]
pub fn burn_rate(violations: u64, total: u64, budget: f64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    (violations as f64 / total as f64) / budget
}

/// Deterministic milli-unit encoding of a burn rate for trace payloads.
#[must_use]
pub fn to_milli(burn: f64) -> u64 {
    (burn * 1000.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn spec_one_rule() -> SloAlertSpec {
        SloAlertSpec {
            budget: 0.05,
            min_samples: 5,
            rules: vec![SloAlertRule {
                window: SimDuration::from_secs_f64(10.0),
                threshold: 4.0,
            }],
        }
    }

    #[test]
    fn quiet_stream_never_fires() {
        let mut tracker = SloBurnTracker::new(spec_one_rule());
        for i in 0..100 {
            let edges = tracker.observe(secs(i as f64 * 0.1), false);
            assert!(edges.is_empty(), "quiet completion fired: {edges:?}");
        }
        assert_eq!(tracker.burn_gauge(secs(10.0)), Some(0.0));
    }

    #[test]
    fn burst_of_violations_fires_once_then_resolves() {
        let mut tracker = SloBurnTracker::new(spec_one_rule());
        // Warm up with healthy completions.
        for i in 0..10 {
            assert!(tracker.observe(secs(i as f64 * 0.1), false).is_empty());
        }
        // An incident: every completion violates. Burn crosses 4× (20% of
        // the window violating) and must fire exactly once.
        let mut fired = 0;
        for i in 0..10 {
            for e in tracker.observe(secs(1.0 + i as f64 * 0.1), true) {
                assert!(e.fired);
                assert!(e.burn_milli >= 4_000, "burn at edge: {}", e.burn_milli);
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "a sustained burn latches");
        // Recovery: healthy completions push the window rate back down and
        // the rule resolves exactly once.
        let mut resolved = 0;
        for i in 0..200 {
            for e in tracker.observe(secs(2.0 + i as f64 * 0.1), false) {
                assert!(!e.fired);
                resolved += 1;
            }
        }
        assert_eq!(resolved, 1, "the latch resolves once");
    }

    #[test]
    fn min_samples_suppresses_cold_start() {
        let mut tracker = SloBurnTracker::new(spec_one_rule());
        // Four violations in a row — a 100% rate, but below min_samples.
        for i in 0..4 {
            assert!(tracker.observe(secs(i as f64), true).is_empty());
        }
        // The fifth reaches min_samples and fires.
        let edges = tracker.observe(secs(4.0), true);
        assert_eq!(edges.len(), 1);
        assert!(edges[0].fired);
    }

    #[test]
    fn old_samples_age_out_of_the_window() {
        let mut tracker = SloBurnTracker::new(spec_one_rule());
        for i in 0..5 {
            tracker.observe(secs(i as f64 * 0.1), true);
        }
        assert!(tracker.burn_gauge(secs(0.5)).unwrap() > 4.0);
        // 20 s later the window is empty again.
        assert_eq!(tracker.window_counts(secs(20.5)), (0, 0));
    }

    #[test]
    fn parse_round_trips_the_documented_format() {
        let spec = SloAlertSpec::parse(
            "# alerting\nbudget 0.05\nmin-samples 10\nrule 5.0 6.0\nrule 20.0 2.0 # slow\n",
        )
        .expect("parses");
        assert_eq!(spec.budget, 0.05);
        assert_eq!(spec.min_samples, 10);
        assert_eq!(spec.rules.len(), 2);
        assert_eq!(spec.rules[1].window, SimDuration::from_secs_f64(20.0));
        assert_eq!(spec.max_window(), SimDuration::from_secs_f64(20.0));
    }

    #[test]
    fn parse_rejects_malformed_lines_with_line_numbers() {
        assert!(SloAlertSpec::parse("rule 5.0")
            .expect_err("arity")
            .contains("line 1"));
        assert!(SloAlertSpec::parse("rule 0 2.0")
            .expect_err("window")
            .contains("window must be positive"));
        assert!(SloAlertSpec::parse("rule 5.0 -1")
            .expect_err("threshold")
            .contains("threshold must be positive"));
        assert!(SloAlertSpec::parse("budget 2.0\nrule 5 2")
            .expect_err("budget")
            .contains("(0, 1)"));
        assert!(SloAlertSpec::parse("explode 1\nrule 5 2")
            .expect_err("directive")
            .contains("valid directives: budget, min-samples, rule"));
        assert!(SloAlertSpec::parse("budget 0.05")
            .expect_err("no rules")
            .contains("at least one rule"));
        assert!(SloAlertSpec::parse("budget .1\nbudget .1\nrule 5 2")
            .expect_err("dup")
            .contains("duplicate budget"));
    }

    #[test]
    fn preset_keys_round_trip_and_errors_list_valid() {
        for p in SloAlertPreset::ALL {
            assert_eq!(SloAlertPreset::parse(p.key()), Ok(p));
        }
        let err = SloAlertPreset::parse("klaxon").expect_err("unknown");
        assert!(err.contains("valid: paging, ticket"), "{err}");
        let spec = SloAlertPreset::Paging.spec(100.0);
        assert_eq!(spec.rules.len(), 1);
        assert_eq!(spec.rules[0].window, SimDuration::from_secs_f64(5.0));
    }
}
