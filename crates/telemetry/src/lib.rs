//! # pascal-telemetry — run observability
//!
//! End-of-run aggregates tell you *what* a run did; this crate shows
//! *when* and *why*. Three independent streams, all off by default and all
//! with zero observer effect on the simulation (telemetry never touches
//! the RNG, the event order, or any deterministic output):
//!
//! * **Request-lifecycle tracing** — typed [`TraceEvent`]s emitted by the
//!   engine at every lifecycle edge (admit/reject/spill, queueing,
//!   phase transitions, demotions, the full migration decision tree,
//!   cross-shard and cross-region escapes with their fallbacks,
//!   completion), each tagged with sim time and region/shard/instance
//!   ids. Serialized as JSONL ([`events_to_jsonl`]) or as a Chrome
//!   trace-event array ([`events_to_chrome`]) loadable in Perfetto.
//! * **Time-series gauges** — [`SeriesRow`] snapshots of per-shard and
//!   per-region state (queue depth, KV utilization, active requests by
//!   phase, WAN port occupancy, admission headroom, predictor error) at a
//!   configurable sim-time interval, emitted as columnar CSV
//!   ([`series_to_csv`]) or JSON ([`series_to_json`]).
//! * **Hot-path self-profiling** — a [`HotPathProfiler`] wrapping the
//!   event loop with wall-clock, per-event-type counters and timing
//!   histograms. Its [`ProfileReport`] is *host-dependent by design* and
//!   excluded from every determinism guarantee — it is the measurement
//!   baseline for engine-speed work, not a simulation result.
//!
//! The engine talks to all three through one cheap [`TelemetryHandle`]:
//! when a stream is disabled, the corresponding emit call is a single
//! branch on a `bool` and nothing else.
//!
//! On top of the trace stream sit two analysis layers:
//!
//! * **Latency anatomy** ([`anatomy`]) — replays a trace into per-request
//!   span timelines and an exact additive blame decomposition of TTFT and
//!   E2E latency (components always sum to the measured latency).
//! * **SLO burn-rate alerting** ([`alert`]) — sliding-window error-budget
//!   tracking over completion outcomes, with declarative rules evaluated
//!   in sim-time; fired alerts become trace events and run outputs.
//!
//! # Examples
//!
//! ```
//! use pascal_sim::SimTime;
//! use pascal_telemetry::{
//!     events_to_jsonl, TelemetryConfig, TelemetryHandle, TraceEvent, TraceEventKind,
//! };
//!
//! let config = TelemetryConfig {
//!     trace: true,
//!     ..TelemetryConfig::default()
//! };
//! let handle = TelemetryHandle::new(&config);
//! handle.trace(|| TraceEvent {
//!     at: SimTime::from_secs_f64(1.5),
//!     region: 0,
//!     shard: 1,
//!     instance: Some(3),
//!     request: Some(42),
//!     kind: TraceEventKind::Arrival,
//! });
//! let out = handle.finish().expect("telemetry was enabled");
//! assert!(events_to_jsonl(&out.events).contains("\"arrival\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod anatomy;
mod event;
mod handle;
mod profiler;
mod series;
mod sink;

pub use alert::{
    AlertEdge, SloAlertPreset, SloAlertRecord, SloAlertRule, SloAlertSpec, SloBurnTracker,
};
pub use anatomy::{
    aggregate, reconstruct, worst_requests, AnatomyOutcome, AnatomyReport, Blame, BlameProfile,
    ComponentProfile, RequestAnatomy, BLAME_COMPONENTS, BLAME_COMPONENT_NAMES,
};
pub use event::{EscapeTier, TraceEvent, TraceEventKind};
pub use handle::{TelemetryConfig, TelemetryHandle, TelemetryOut};
pub use profiler::{HotPathProfiler, ProfileReport, ProfileRow, ProfiledEvent};
pub use series::{series_to_csv, series_to_json, SeriesRow, SeriesScope};
pub use sink::{events_to_chrome, events_to_jsonl, TraceFormat};
