//! Typed request-lifecycle trace events.
//!
//! One [`TraceEvent`] per lifecycle edge, stamped with the sim time and the
//! region/shard/instance where it happened. The variants mirror the
//! engine's controller decisions one-to-one, so a trace can be reconciled
//! against the end-of-run counters (`MigrationOutcomes`,
//! `AdmissionCounters`) exactly.

use pascal_sim::SimTime;

/// Which transfer tier a migration decision was priced at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EscapeTier {
    /// An intra-shard move over the local fabric.
    Intra,
    /// A cross-shard escape over the inter-shard interconnect.
    CrossShard,
    /// A cross-region escape over the WAN.
    CrossRegion,
}

impl EscapeTier {
    /// Stable lowercase key used in serialized traces.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            EscapeTier::Intra => "intra",
            EscapeTier::CrossShard => "cross_shard",
            EscapeTier::CrossRegion => "cross_region",
        }
    }
}

/// What happened at one lifecycle edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// An arrival was routed and placed on an instance's queue.
    Arrival,
    /// Admission control turned an arrival away at predicted overload.
    AdmissionRejected {
        /// Projected aggregate KV bytes at decision time.
        projected_kv_bytes: u64,
        /// The byte budget the projection was tested against.
        budget_bytes: u64,
    },
    /// The home region's admission would have rejected, but the federation
    /// placed the arrival in a remote region instead.
    AdmissionSpilled {
        /// The absorbing region.
        to_region: u32,
    },
    /// An arrival whose *predicted* reasoning length crossed the demotion
    /// threshold started directly in the low-priority queue.
    SpeculativeDemotion,
    /// A running request generated its threshold-th reasoning token and
    /// was demoted to the low-priority queue (§IV-C).
    Demoted,
    /// The request's prefill began executing.
    PrefillStart {
        /// Nanoseconds the request waited between arrival and this prefill
        /// launch — queue wait as a first-class field, so analyzers never
        /// have to re-derive it by joining against the arrival event.
        queued_ns: u64,
    },
    /// The reasoning → answering phase boundary (the boundary token).
    PhaseTransition,
    /// The request generated its first *answering* token — the instant the
    /// paper's TTFT clock stops (`RequestRecord::ttft`). Only emitted for
    /// requests that answer at all.
    FirstAnswerToken,
    /// The request was preempted: its KV offload to host memory started.
    Preempted,
    /// The KV offload finished; the request now waits in the CPU pool.
    OffloadDone,
    /// The KV reload finished; the request is GPU-resident again.
    ReloadDone,
    /// A migration decision was evaluated at the given tier.
    MigrationConsidered {
        /// The tier whose transfer price the decision used.
        tier: EscapeTier,
    },
    /// The predictive cost/benefit test vetoed a chosen destination.
    MigrationVetoed {
        /// The tier whose transfer price vetoed the move.
        tier: EscapeTier,
    },
    /// A migration was abandoned: no landing instance qualified, or its
    /// KV reservation failed at launch time.
    MigrationAborted {
        /// The tier at which the abort happened.
        tier: EscapeTier,
    },
    /// A transfer was actually launched onto the tier's link.
    MigrationLaunched {
        /// The tier carrying the transfer.
        tier: EscapeTier,
        /// Destination shard (global id).
        to_shard: u32,
        /// Destination instance (global id).
        to_instance: u32,
        /// KV bytes moved.
        bytes: u64,
    },
    /// A launched transfer landed at its destination.
    MigrationLanded {
        /// True when the KV landed in the destination's CPU pool (a
        /// guaranteed reload stall).
        in_cpu: bool,
    },
    /// A failed escape's deferred intra-shard fallback move was launched.
    EscapeFallback {
        /// True when the escape failed specifically on the cost veto.
        after_veto: bool,
    },
    /// The request generated its final token.
    Completed {
        /// Total tokens generated over the request's lifetime.
        tokens: u64,
    },
    /// A fleet event took the instance down (failure or unplanned leave).
    InstanceDown,
    /// A fleet event put the instance into planned drain: no new work, all
    /// resident requests migrate out or finish in place.
    InstanceDraining,
    /// The instance (re)joined the fleet and accepts work again.
    InstanceUp,
    /// A draining instance emptied out and left the fleet.
    DrainComplete,
    /// The request was stranded by an outage: its KV was lost and it never
    /// completes (fail-stop semantics).
    RequestStranded,
    /// A queued request was re-placed by the water-filling rebalancer
    /// after an outage.
    RequestRebalanced {
        /// Destination instance (global id).
        to_instance: u32,
    },
    /// The autoscaler scheduled a standby instance to join.
    AutoscaleUp,
    /// The autoscaler started draining a managed instance.
    AutoscaleDown,
    /// A sliding-window SLO burn-rate rule crossed its threshold (rising
    /// edge; the rule stays latched until [`TraceEventKind::SloAlertResolved`]).
    SloAlertFired {
        /// Index of the rule in the run's alert spec.
        rule: u32,
        /// Burn rate at the firing edge, in milli-units (1000 = budget
        /// burning exactly at the sustainable rate). Integer so serialized
        /// traces stay byte-stable.
        burn_milli: u64,
    },
    /// A latched burn-rate rule dropped back below its threshold.
    SloAlertResolved {
        /// Index of the rule in the run's alert spec.
        rule: u32,
    },
}

impl TraceEventKind {
    /// Stable lowercase key naming the event in serialized traces.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            TraceEventKind::Arrival => "arrival",
            TraceEventKind::AdmissionRejected { .. } => "admission_rejected",
            TraceEventKind::AdmissionSpilled { .. } => "admission_spilled",
            TraceEventKind::SpeculativeDemotion => "speculative_demotion",
            TraceEventKind::Demoted => "demoted",
            TraceEventKind::PrefillStart { .. } => "prefill_start",
            TraceEventKind::PhaseTransition => "phase_transition",
            TraceEventKind::FirstAnswerToken => "first_answer_token",
            TraceEventKind::Preempted => "preempted",
            TraceEventKind::OffloadDone => "offload_done",
            TraceEventKind::ReloadDone => "reload_done",
            TraceEventKind::MigrationConsidered { .. } => "migration_considered",
            TraceEventKind::MigrationVetoed { .. } => "migration_vetoed",
            TraceEventKind::MigrationAborted { .. } => "migration_aborted",
            TraceEventKind::MigrationLaunched { .. } => "migration_launched",
            TraceEventKind::MigrationLanded { .. } => "migration_landed",
            TraceEventKind::EscapeFallback { .. } => "escape_fallback",
            TraceEventKind::Completed { .. } => "completed",
            TraceEventKind::InstanceDown => "instance_down",
            TraceEventKind::InstanceDraining => "instance_draining",
            TraceEventKind::InstanceUp => "instance_up",
            TraceEventKind::DrainComplete => "drain_complete",
            TraceEventKind::RequestStranded => "request_stranded",
            TraceEventKind::RequestRebalanced { .. } => "request_rebalanced",
            TraceEventKind::AutoscaleUp => "autoscale_up",
            TraceEventKind::AutoscaleDown => "autoscale_down",
            TraceEventKind::SloAlertFired { .. } => "slo_alert_fired",
            TraceEventKind::SloAlertResolved { .. } => "slo_alert_resolved",
        }
    }
}

/// One lifecycle edge: when, where, which request, what happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time of the edge.
    pub at: SimTime,
    /// Region where it happened.
    pub region: u32,
    /// Shard (global id) where it happened.
    pub shard: u32,
    /// Instance (global id), when the edge is instance-scoped.
    pub instance: Option<u32>,
    /// The request involved, when the edge is request-scoped.
    pub request: Option<u64>,
    /// What happened.
    pub kind: TraceEventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_distinct() {
        let kinds = [
            TraceEventKind::Arrival,
            TraceEventKind::AdmissionRejected {
                projected_kv_bytes: 1,
                budget_bytes: 2,
            },
            TraceEventKind::AdmissionSpilled { to_region: 1 },
            TraceEventKind::SpeculativeDemotion,
            TraceEventKind::Demoted,
            TraceEventKind::PrefillStart { queued_ns: 5 },
            TraceEventKind::PhaseTransition,
            TraceEventKind::FirstAnswerToken,
            TraceEventKind::Preempted,
            TraceEventKind::OffloadDone,
            TraceEventKind::ReloadDone,
            TraceEventKind::MigrationConsidered {
                tier: EscapeTier::Intra,
            },
            TraceEventKind::MigrationVetoed {
                tier: EscapeTier::CrossShard,
            },
            TraceEventKind::MigrationAborted {
                tier: EscapeTier::CrossRegion,
            },
            TraceEventKind::MigrationLaunched {
                tier: EscapeTier::Intra,
                to_shard: 0,
                to_instance: 0,
                bytes: 0,
            },
            TraceEventKind::MigrationLanded { in_cpu: false },
            TraceEventKind::EscapeFallback { after_veto: true },
            TraceEventKind::Completed { tokens: 10 },
            TraceEventKind::InstanceDown,
            TraceEventKind::InstanceDraining,
            TraceEventKind::InstanceUp,
            TraceEventKind::DrainComplete,
            TraceEventKind::RequestStranded,
            TraceEventKind::RequestRebalanced { to_instance: 3 },
            TraceEventKind::AutoscaleUp,
            TraceEventKind::AutoscaleDown,
            TraceEventKind::SloAlertFired {
                rule: 0,
                burn_milli: 1500,
            },
            TraceEventKind::SloAlertResolved { rule: 0 },
        ];
        let mut keys: Vec<&str> = kinds.iter().map(TraceEventKind::key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), kinds.len(), "every kind has a distinct key");
    }

    #[test]
    fn tier_keys_are_distinct() {
        assert_ne!(EscapeTier::Intra.key(), EscapeTier::CrossShard.key());
        assert_ne!(EscapeTier::CrossShard.key(), EscapeTier::CrossRegion.key());
    }
}
