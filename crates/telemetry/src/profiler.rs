//! The hot-path self-profiler: wall-clock timing of the event loop.
//!
//! Everything here measures the *host*, not the simulation: counts per
//! event class, per-event wall-clock histograms
//! ([`pascal_metrics::Histogram`] over microseconds) and an overall
//! events/sec figure. Counts are exact; the histograms are built from a
//! 1-in-N sample of events (see the handle) so the profiler itself stays
//! off the hot path it measures. The numbers vary run to run and machine
//! to machine by design — they are the measurement baseline for
//! engine-speed work and are excluded from every determinism guarantee
//! and from the CI perf gate's compared fields.

use std::time::Instant;

use pascal_metrics::Histogram;

/// Histogram bin width for per-event wall-clock samples, in microseconds.
const BIN_WIDTH_US: f64 = 0.25;

/// The event-loop event classes the profiler distinguishes — one per
/// variant of the engine's internal event enum, plus trace arrivals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProfiledEvent {
    /// A trace arrival delivered through the router.
    Arrival,
    /// A batch iteration completing on an instance.
    IterationDone,
    /// A KV offload (preemption) completing.
    OffloadDone,
    /// A KV reload completing.
    ReloadDone,
    /// An intra-shard migration transfer landing.
    MigrationDone,
    /// A cross-shard escape transfer landing.
    CrossShardDone,
    /// A cross-region (WAN) escape transfer landing.
    CrossRegionDone,
    /// A fleet transition (join/drain/fail) or autoscaler tick firing.
    Fleet,
}

impl ProfiledEvent {
    /// Every class, in report order.
    pub const ALL: [ProfiledEvent; 8] = [
        ProfiledEvent::Arrival,
        ProfiledEvent::IterationDone,
        ProfiledEvent::OffloadDone,
        ProfiledEvent::ReloadDone,
        ProfiledEvent::MigrationDone,
        ProfiledEvent::CrossShardDone,
        ProfiledEvent::CrossRegionDone,
        ProfiledEvent::Fleet,
    ];

    /// Stable lowercase name used in report rows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProfiledEvent::Arrival => "arrival",
            ProfiledEvent::IterationDone => "iteration_done",
            ProfiledEvent::OffloadDone => "offload_done",
            ProfiledEvent::ReloadDone => "reload_done",
            ProfiledEvent::MigrationDone => "migration_done",
            ProfiledEvent::CrossShardDone => "cross_shard_done",
            ProfiledEvent::CrossRegionDone => "cross_region_done",
            ProfiledEvent::Fleet => "fleet",
        }
    }

    fn index(self) -> usize {
        match self {
            ProfiledEvent::Arrival => 0,
            ProfiledEvent::IterationDone => 1,
            ProfiledEvent::OffloadDone => 2,
            ProfiledEvent::ReloadDone => 3,
            ProfiledEvent::MigrationDone => 4,
            ProfiledEvent::CrossShardDone => 5,
            ProfiledEvent::CrossRegionDone => 6,
            ProfiledEvent::Fleet => 7,
        }
    }
}

/// Accumulates wall-clock samples while the event loop runs.
#[derive(Clone, Debug)]
pub struct HotPathProfiler {
    started: Instant,
    counts: [u64; ProfiledEvent::ALL.len()],
    timings: Vec<Histogram>,
    windows: u64,
    window_events: u64,
    barrier_events: u64,
}

impl HotPathProfiler {
    /// Starts the wall clock.
    #[must_use]
    pub fn new() -> Self {
        HotPathProfiler {
            started: Instant::now(),
            counts: [0; ProfiledEvent::ALL.len()],
            timings: vec![Histogram::from_samples(&[], BIN_WIDTH_US); ProfiledEvent::ALL.len()],
            windows: 0,
            window_events: 0,
            barrier_events: 0,
        }
    }

    /// Records one handled event of class `kind` that took `elapsed_us`
    /// wall-clock microseconds.
    pub fn record(&mut self, kind: ProfiledEvent, elapsed_us: f64) {
        let i = kind.index();
        self.counts[i] += 1;
        self.timings[i].add(elapsed_us.max(0.0));
    }

    /// Counts one handled event of class `kind` without a timing sample —
    /// the handle's 1-in-N timing sampler calls this for the unsampled
    /// majority, keeping counts (and events/sec) exact.
    pub fn count_only(&mut self, kind: ProfiledEvent) {
        self.counts[kind.index()] += 1;
    }

    /// Counts one completed lockstep window of the windowed parallel
    /// executor, and the events its workers drained inside it. Window
    /// boundaries are derived from simulation state alone, so these
    /// counters are identical at any thread count.
    pub fn count_window(&mut self, drained_events: u64) {
        self.windows += 1;
        self.window_events += drained_events;
    }

    /// Counts one event the parallel executor's coordinator handled
    /// sequentially at a window barrier (arrivals, cross-shard/region
    /// landings, fleet transitions, autoscaler ticks).
    pub fn count_barrier_event(&mut self) {
        self.barrier_events += 1;
    }

    /// Stops the wall clock and condenses the samples into a report.
    #[must_use]
    pub fn report(self) -> ProfileReport {
        let wall_s = self.started.elapsed().as_secs_f64();
        let events: u64 = self.counts.iter().sum();
        let rows = ProfiledEvent::ALL
            .iter()
            .map(|&kind| {
                let h = &self.timings[kind.index()];
                ProfileRow {
                    name: kind.name(),
                    count: self.counts[kind.index()],
                    mean_us: h.mean(),
                    p50_us: h.quantile(0.50),
                    p99_us: h.quantile(0.99),
                }
            })
            .collect();
        ProfileReport {
            wall_s,
            events,
            events_per_sec: if wall_s > 0.0 {
                events as f64 / wall_s
            } else {
                0.0
            },
            windows: self.windows,
            window_events: self.window_events,
            barrier_events: self.barrier_events,
            rows,
        }
    }
}

impl Default for HotPathProfiler {
    fn default() -> Self {
        HotPathProfiler::new()
    }
}

/// One event class's profile line.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileRow {
    /// The event class ([`ProfiledEvent::name`]).
    pub name: &'static str,
    /// Events handled.
    pub count: u64,
    /// Mean wall-clock handling time, microseconds.
    pub mean_us: f64,
    /// Median wall-clock handling time, microseconds.
    pub p50_us: f64,
    /// 99th-percentile wall-clock handling time, microseconds.
    pub p99_us: f64,
}

/// The profiler's end-of-run summary. Host-dependent; never part of any
/// deterministic output.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileReport {
    /// Wall-clock seconds from engine construction to report time.
    pub wall_s: f64,
    /// Total events handled.
    pub events: u64,
    /// Events handled per wall-clock second — the headline throughput
    /// figure the engine-speed work is judged against.
    pub events_per_sec: f64,
    /// Lockstep windows executed by the parallel executor (0 on the
    /// sequential path). Deterministic: window boundaries depend only on
    /// simulation state, never on thread count.
    pub windows: u64,
    /// Events drained inside windows by the parallel workers.
    pub window_events: u64,
    /// Events the coordinator handled sequentially at window barriers.
    pub barrier_events: u64,
    /// One row per event class, [`ProfiledEvent::ALL`] order.
    pub rows: Vec<ProfileRow>,
}

impl ProfileReport {
    /// Renders the report as indented text lines (for the run footer).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "hot-path profile (wall-clock, host-dependent; excluded from determinism)\n  {} events in {:.3}s = {:.0} events/sec\n",
            self.events, self.wall_s, self.events_per_sec
        );
        if self.windows > 0 {
            out.push_str(&format!(
                "  {} windows: {} events drained in parallel, {} at barriers ({:.1} events/window)\n",
                self.windows,
                self.window_events,
                self.barrier_events,
                self.window_events as f64 / self.windows as f64,
            ));
        }
        for row in &self.rows {
            if row.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:<18} count {:<8} mean {:>8.2}us  p50 {:>8.2}us  p99 {:>8.2}us\n",
                row.name, row.count, row.mean_us, row.p50_us, row.p99_us
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_rates_are_consistent() {
        let mut p = HotPathProfiler::new();
        for _ in 0..10 {
            p.record(ProfiledEvent::IterationDone, 2.0);
        }
        p.record(ProfiledEvent::Arrival, 1.0);
        let report = p.report();
        assert_eq!(report.events, 11);
        assert!(report.wall_s >= 0.0);
        let iter_row = report
            .rows
            .iter()
            .find(|r| r.name == "iteration_done")
            .expect("row exists");
        assert_eq!(iter_row.count, 10);
        assert!((iter_row.mean_us - 2.0).abs() < BIN_WIDTH_US);
        assert!(iter_row.p50_us > 0.0);
    }

    #[test]
    fn render_skips_empty_classes() {
        let mut p = HotPathProfiler::new();
        p.record(ProfiledEvent::Arrival, 0.5);
        let text = p.report().render();
        assert!(text.contains("events/sec"));
        assert!(text.contains("arrival"));
        assert!(!text.contains("cross_region_done"));
    }

    #[test]
    fn every_class_has_a_distinct_index_and_name() {
        let mut names: Vec<&str> = ProfiledEvent::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ProfiledEvent::ALL.len());
        let mut indices: Vec<usize> = ProfiledEvent::ALL.iter().map(|e| e.index()).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..ProfiledEvent::ALL.len()).collect::<Vec<_>>());
    }
}
